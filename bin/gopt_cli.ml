(* gopt — run Cypher/Gremlin queries against generated graphs from the
   command line.

   Examples:
     dune exec bin/gopt_cli.exe -- --stats
     dune exec bin/gopt_cli.exe -- "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN count(*) AS c"
     dune exec bin/gopt_cli.exe -- --lang gremlin "g.V().hasLabel('Person').out('KNOWS').count()"
     dune exec bin/gopt_cli.exe -- --planner cypher --explain "MATCH ... RETURN ..."
     dune exec bin/gopt_cli.exe -- --workload IC5 *)

open Cmdliner

let run_main dataset persons accounts seed lang planner backend explain analyze stats_only
    workload load save query =
  let graph =
    match load with
    | Some path -> Gopt_graph.Graph_io.load path
    | None -> (
      match dataset with
      | "ldbc" -> Gopt_workloads.Ldbc.generate ~seed ~persons ()
      | "transfer" -> Gopt_workloads.Transfer_graph.generate ~seed ~accounts ()
      | other -> failwith (Printf.sprintf "unknown dataset %S (ldbc|transfer)" other))
  in
  (match save with
  | Some path ->
    Gopt_graph.Graph_io.save graph path;
    Printf.printf "graph saved to %s\n" path
  | None -> ());
  if stats_only then begin
    Format.printf "%a@." Gopt_graph.Property_graph.pp_stats graph;
    0
  end
  else begin
    let session = Gopt.Session.create graph in
    let spec =
      match backend with
      | "graphscope" -> Gopt_opt.Physical_spec.graphscope
      | "neo4j" -> Gopt_opt.Physical_spec.neo4j
      | other -> failwith (Printf.sprintf "unknown backend %S (graphscope|neo4j)" other)
    in
    let config =
      match planner with
      | "gopt" -> Gopt_opt.Baselines.gopt_config spec
      | "cypher" -> Gopt_opt.Baselines.cypher_planner_config
      | "gsrbo" -> Gopt_opt.Baselines.gs_rbo_config
      | other -> failwith (Printf.sprintf "unknown planner %S (gopt|cypher|gsrbo)" other)
    in
    let query =
      match workload, query with
      | Some name, _ ->
        let q =
          Gopt_workloads.Queries.find
            (Gopt_workloads.Queries.comprehensive @ Gopt_workloads.Queries.qr
           @ Gopt_workloads.Queries.qt @ Gopt_workloads.Queries.qc)
            name
        in
        Printf.printf "-- %s: %s\n%s\n\n" q.Gopt_workloads.Queries.name
          q.Gopt_workloads.Queries.description q.Gopt_workloads.Queries.cypher;
        q.Gopt_workloads.Queries.cypher
      | None, Some q -> q
      | None, None -> failwith "provide a query or --workload NAME (or --stats)"
    in
    if explain then begin
      print_endline (Gopt.explain_cypher ~config session query);
      0
    end
    else begin
      let t0 = Sys.time () in
      let out =
        match lang with
        | "cypher" -> Gopt.run_cypher ~config session query
        | "gremlin" -> Gopt.run_gremlin ~config session query
        | other -> failwith (Printf.sprintf "unknown language %S (cypher|gremlin)" other)
      in
      let dt = Sys.time () -. t0 in
      Format.printf "%a@." (Gopt_exec.Batch.pp graph) out.Gopt.result;
      Printf.printf "-- %d rows in %.3fs cpu; %d intermediate rows; %d edges touched\n"
        (Gopt_exec.Batch.n_rows out.Gopt.result)
        dt out.Gopt.exec_stats.Gopt_exec.Engine.intermediate_rows
        out.Gopt.exec_stats.Gopt_exec.Engine.edges_touched;
      if analyze then begin
        print_endline "-- per-operator trace (rows in/out, self cpu time):";
        print_endline (Gopt.render_trace out)
      end;
      0
    end
  end

let dataset = Arg.(value & opt string "ldbc" & info [ "dataset" ] ~doc:"ldbc or transfer")
let persons = Arg.(value & opt int 800 & info [ "persons" ] ~doc:"LDBC scale (persons)")
let accounts = Arg.(value & opt int 8000 & info [ "accounts" ] ~doc:"transfer-graph scale")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"generator seed")
let lang = Arg.(value & opt string "cypher" & info [ "lang" ] ~doc:"cypher or gremlin")
let planner = Arg.(value & opt string "gopt" & info [ "planner" ] ~doc:"gopt, cypher or gsrbo")
let backend =
  Arg.(value & opt string "graphscope" & info [ "backend" ] ~doc:"graphscope or neo4j")
let explain = Arg.(value & flag & info [ "explain" ] ~doc:"show plans instead of executing")
let analyze =
  Arg.(value & flag & info [ "analyze" ] ~doc:"after executing, print the per-operator trace (EXPLAIN ANALYZE)")
let stats_only = Arg.(value & flag & info [ "stats" ] ~doc:"print dataset statistics and exit")
let workload =
  Arg.(value & opt (some string) None & info [ "workload" ] ~doc:"run a named workload query (IC1..BI18, QR, QT, QC)")
let load_file =
  Arg.(value & opt (some string) None & info [ "load" ] ~doc:"load the graph from a file instead of generating")
let save_file =
  Arg.(value & opt (some string) None & info [ "save" ] ~doc:"save the (generated or loaded) graph to a file")
let query = Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY")

let cmd =
  let doc = "GOpt: modular graph-native query optimization (SIGMOD 2025 reproduction)" in
  Cmd.v
    (Cmd.info "gopt" ~doc)
    Term.(
      const run_main $ dataset $ persons $ accounts $ seed $ lang $ planner $ backend
      $ explain $ analyze $ stats_only $ workload $ load_file $ save_file $ query)

let () = exit (Cmd.eval' cmd)
