(* gopt — run Cypher/Gremlin queries against generated graphs from the
   command line.

   Examples:
     dune exec bin/gopt_cli.exe -- --stats
     dune exec bin/gopt_cli.exe -- "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN count(*) AS c"
     dune exec bin/gopt_cli.exe -- --lang gremlin "g.V().hasLabel('Person').out('KNOWS').count()"
     dune exec bin/gopt_cli.exe -- --planner cypher --explain "MATCH ... RETURN ..."
     dune exec bin/gopt_cli.exe -- --workload IC5 *)

open Cmdliner

module Diag = Gopt_check.Diagnostic

(* Static analysis of one query: frontend checks (parse/lower/Plan_check),
   then — when the frontend is clean — the full checked planning pipeline
   (every rule firing verified, every stage re-checked). *)
let lint_query session config lang src =
  let front =
    match lang with
    | "gremlin" -> Gopt.check_gremlin session src
    | _ -> Gopt.check_cypher session src
  in
  let staged =
    if not (Diag.is_clean front) then []
    else begin
      let config = { config with Gopt_opt.Planner.check_plans = true } in
      let gir =
        match lang with
        | "gremlin" -> Gopt.gremlin_to_gir session src
        | _ -> Gopt.cypher_to_gir session src
      in
      match
        Gopt_opt.Planner.plan config (Gopt.Session.estimator session) gir
      with
      | _, report ->
        List.concat_map
          (fun (stage, ds) ->
            (* the "logical" stage re-checks the same GIR the frontend just
               reported on — skip the duplicate *)
            if stage = "logical" then []
            else List.map (fun d -> Diag.{ d with path = stage ^ "/" ^ d.path }) ds)
          report.Gopt_opt.Planner.diagnostics
      | exception Gopt_opt.Rule.Check_failed { rule; diag } ->
        [
          Diag.errorf ~path:("rbo/" ^ diag.Diag.path)
            "rule %S broke a plan invariant: %s" rule diag.Diag.message;
        ]
      | exception Invalid_argument m -> [ Diag.error ~path:"plan" m ]
    end
  in
  front @ staged

let run_lint session config lang workload query =
  let named =
    Gopt_workloads.Queries.comprehensive @ Gopt_workloads.Queries.qr
    @ Gopt_workloads.Queries.qt @ Gopt_workloads.Queries.qc
  in
  let targets =
    match (workload, query) with
    | Some name, _ ->
      let q = Gopt_workloads.Queries.find named name in
      [ (q.Gopt_workloads.Queries.name, q.Gopt_workloads.Queries.cypher) ]
    | None, Some q -> [ ("query", q) ]
    | None, None ->
      List.map
        (fun q -> (q.Gopt_workloads.Queries.name, q.Gopt_workloads.Queries.cypher))
        named
  in
  let n_errors = ref 0 in
  List.iter
    (fun (name, src) ->
      let diags = lint_query session config lang src in
      n_errors := !n_errors + List.length (Diag.errors diags);
      if diags = [] then Printf.printf "%-16s clean\n" name
      else begin
        Printf.printf "%-16s %d error(s), %d warning(s)\n" name
          (List.length (Diag.errors diags))
          (List.length diags - List.length (Diag.errors diags));
        print_endline (Gopt.render_diagnostics diags)
      end)
    targets;
  Printf.printf "-- linted %d quer%s, %d error(s)\n" (List.length targets)
    (if List.length targets = 1 then "y" else "ies")
    !n_errors;
  if !n_errors > 0 then 1 else 0

let run_main dataset persons accounts seed lang planner backend workers chunk_size
    no_vectorize explain analyze stats_only lint workload repeat cache_stats load save
    query =
  let graph =
    match load with
    | Some path -> Gopt_graph.Graph_io.load path
    | None -> (
      match dataset with
      | "ldbc" -> Gopt_workloads.Ldbc.generate ~seed ~persons ()
      | "transfer" -> Gopt_workloads.Transfer_graph.generate ~seed ~accounts ()
      | other -> failwith (Printf.sprintf "unknown dataset %S (ldbc|transfer)" other))
  in
  (match save with
  | Some path ->
    Gopt_graph.Graph_io.save graph path;
    Printf.printf "graph saved to %s\n" path
  | None -> ());
  if stats_only then begin
    Format.printf "%a@." Gopt_graph.Property_graph.pp_stats graph;
    0
  end
  else begin
    let session = Gopt.Session.create graph in
    let spec =
      match backend with
      | "graphscope" -> Gopt_opt.Physical_spec.graphscope
      | "neo4j" -> Gopt_opt.Physical_spec.neo4j
      | other -> failwith (Printf.sprintf "unknown backend %S (graphscope|neo4j)" other)
    in
    let config =
      match planner with
      | "gopt" -> Gopt_opt.Baselines.gopt_config spec
      | "cypher" -> Gopt_opt.Baselines.cypher_planner_config
      | "gsrbo" -> Gopt_opt.Baselines.gs_rbo_config
      | other -> failwith (Printf.sprintf "unknown planner %S (gopt|cypher|gsrbo)" other)
    in
    if lint then run_lint session config lang workload query
    else begin
    let query =
      match workload, query with
      | Some name, _ ->
        let q =
          Gopt_workloads.Queries.find
            (Gopt_workloads.Queries.comprehensive @ Gopt_workloads.Queries.qr
           @ Gopt_workloads.Queries.qt @ Gopt_workloads.Queries.qc)
            name
        in
        Printf.printf "-- %s: %s\n%s\n\n" q.Gopt_workloads.Queries.name
          q.Gopt_workloads.Queries.description q.Gopt_workloads.Queries.cypher;
        q.Gopt_workloads.Queries.cypher
      | None, Some q -> q
      | None, None -> failwith "provide a query or --workload NAME (or --stats)"
    in
    if explain then begin
      print_endline (Gopt.explain_cypher ~config session query);
      0
    end
    else begin
      let workers = if workers <= 0 then None else Some workers in
      let vectorize = not no_vectorize in
      let run () =
        match lang with
        | "cypher" -> Gopt.run_cypher ~config ?chunk_size ?workers ~vectorize session query
        | "gremlin" ->
          Gopt.run_gremlin ~config ?chunk_size ?workers ~vectorize session query
        | other -> failwith (Printf.sprintf "unknown language %S (cypher|gremlin)" other)
      in
      let t0 = Sys.time () in
      let out = run () in
      let dt = Sys.time () -. t0 in
      (* Repetitions after the first run through the session plan cache:
         [dt] above is the cold (optimize + execute) time, [warm] the
         amortized per-execution time. *)
      let warm =
        if repeat <= 1 then None
        else begin
          let t1 = Sys.time () in
          for _ = 2 to repeat do
            ignore (run ())
          done;
          Some ((Sys.time () -. t1) /. float_of_int (repeat - 1))
        end
      in
      Format.printf "%a@." (Gopt_exec.Batch.pp graph) out.Gopt.result;
      Printf.printf "-- %d rows in %.3fs cpu; %d intermediate rows; %d edges touched\n"
        (Gopt_exec.Batch.n_rows out.Gopt.result)
        dt out.Gopt.exec_stats.Gopt_exec.Engine.intermediate_rows
        out.Gopt.exec_stats.Gopt_exec.Engine.edges_touched;
      (match warm with
      | Some w ->
        Printf.printf "-- repeat %d: cold %.3fs, warm %.4fs/run (plan cached)\n" repeat
          dt w
      | None -> ());
      if out.Gopt.exec_stats.Gopt_exec.Engine.workers_used > 1 then
        Printf.printf "-- %d workers; %d exchange rows (%d cells)\n"
          out.Gopt.exec_stats.Gopt_exec.Engine.workers_used
          out.Gopt.exec_stats.Gopt_exec.Engine.exchange_rows
          out.Gopt.exec_stats.Gopt_exec.Engine.exchange_cells;
      if cache_stats then begin
        let st = Gopt.Session.plan_cache_stats session in
        Printf.printf
          "-- plan cache: %d/%d entries; %d hits, %d misses, %d evictions, %d \
           invalidations (epoch %d)\n"
          st.Gopt_cache.Plan_cache.entries st.Gopt_cache.Plan_cache.capacity
          st.Gopt_cache.Plan_cache.hits st.Gopt_cache.Plan_cache.misses
          st.Gopt_cache.Plan_cache.evictions st.Gopt_cache.Plan_cache.invalidations
          (Gopt.Session.stats_epoch session)
      end;
      if analyze then begin
        print_endline
          "-- per-operator trace (rows in/out, self cpu time; kernel: rows selected \
           by vectorized kernels and kernel cpu time):";
        print_endline (Gopt.render_trace out)
      end;
      0
    end
    end
  end

let dataset = Arg.(value & opt string "ldbc" & info [ "dataset" ] ~doc:"ldbc or transfer")
let persons = Arg.(value & opt int 800 & info [ "persons" ] ~doc:"LDBC scale (persons)")
let accounts = Arg.(value & opt int 8000 & info [ "accounts" ] ~doc:"transfer-graph scale")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"generator seed")
let lang = Arg.(value & opt string "cypher" & info [ "lang" ] ~doc:"cypher or gremlin")
let planner = Arg.(value & opt string "gopt" & info [ "planner" ] ~doc:"gopt, cypher or gsrbo")
let backend =
  Arg.(value & opt string "graphscope" & info [ "backend" ] ~doc:"graphscope or neo4j")
let workers =
  Arg.(
    value & opt int 0
    & info [ "workers" ]
        ~doc:
          "execute on the morsel-driven parallel engine with $(docv) OCaml domains \
           (0 = sequential pipeline). Results are deterministic across worker counts; \
           speedup requires a multi-core machine")
let chunk_size =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk-size" ] ~doc:"pipelined batch granularity in rows (default 1024)")
let no_vectorize =
  Arg.(
    value & flag
    & info [ "no-vectorize" ]
        ~doc:
          "evaluate predicates and projections with the row-at-a-time interpreter \
           instead of the columnar expression kernels (the benchmark baseline; \
           results are identical)")
let explain = Arg.(value & flag & info [ "explain" ] ~doc:"show plans instead of executing")
let analyze =
  Arg.(value & flag & info [ "analyze" ] ~doc:"after executing, print the per-operator trace (EXPLAIN ANALYZE)")
let stats_only = Arg.(value & flag & info [ "stats" ] ~doc:"print dataset statistics and exit")
let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "statically check queries instead of executing: parse/lowering failures, \
           undefined variables, schema mismatches, plan invariants at every optimizer \
           stage. Lints the given QUERY (or --workload), or every workload query when \
           none is given; exits 1 if any error is reported")
let workload =
  Arg.(value & opt (some string) None & info [ "workload" ] ~doc:"run a named workload query (IC1..BI18, QR, QT, QC)")
let repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat" ]
        ~doc:
          "execute the query $(docv) times through the session plan cache and report \
           cold vs amortized (warm) per-run time")
let cache_stats =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:"after executing, print the session plan-cache counters")
let load_file =
  Arg.(value & opt (some string) None & info [ "load" ] ~doc:"load the graph from a file instead of generating")
let save_file =
  Arg.(value & opt (some string) None & info [ "save" ] ~doc:"save the (generated or loaded) graph to a file")
let query = Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY")

let cmd =
  let doc = "GOpt: modular graph-native query optimization (SIGMOD 2025 reproduction)" in
  Cmd.v
    (Cmd.info "gopt" ~doc)
    Term.(
      const run_main $ dataset $ persons $ accounts $ seed $ lang $ planner $ backend
      $ workers $ chunk_size $ no_vectorize $ explain $ analyze $ stats_only $ lint
      $ workload $ repeat $ cache_stats $ load_file $ save_file $ query)

let () = exit (Cmd.eval' cmd)
