module L = Lexer
module Value = Gopt_graph.Value
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
open Cypher_ast

exception Parse_error of string

type state = {
  toks : L.token array;
  mutable pos : int;
  params : (string * Value.t list) list;
  defer : bool;
      (* Prepared-statement mode: scalar [$x] parses to [Expr.Param x] instead
         of being substituted from [params]; IN-lists and property maps still
         bind at parse time (they shape the pattern, not a runtime value). *)
}

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else L.Eof
let advance st = st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s but found %s" what (L.pp_token (peek st))

(* keyword check, case-insensitive *)
let is_kw st kw =
  match peek st with
  | L.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw = if not (eat_kw st kw) then fail "expected keyword %s" kw

let ident st =
  match peek st with
  | L.Ident s ->
    advance st;
    s
  | t -> fail "expected identifier, found %s" (L.pp_token t)

let param_values st name =
  match List.assoc_opt name st.params with
  | Some vs -> vs
  | None ->
    let supplied =
      match List.map fst st.params with
      | [] -> "none"
      | names -> String.concat ", " (List.map (fun n -> "$" ^ n) names)
    in
    fail "undefined parameter $%s (supplied: %s)" name supplied

(* --- literals and expressions ------------------------------------------- *)

let literal st =
  match peek st with
  | L.Int_lit n ->
    advance st;
    Value.Int n
  | L.Float_lit f ->
    advance st;
    Value.Float f
  | L.Str_lit s ->
    advance st;
    Value.Str s
  | L.Ident s when String.uppercase_ascii s = "TRUE" ->
    advance st;
    Value.Bool true
  | L.Ident s when String.uppercase_ascii s = "FALSE" ->
    advance st;
    Value.Bool false
  | L.Ident s when String.uppercase_ascii s = "NULL" ->
    advance st;
    Value.Null
  | L.Dash -> begin
    advance st;
    match peek st with
    | L.Int_lit n ->
      advance st;
      Value.Int (-n)
    | L.Float_lit f ->
      advance st;
      Value.Float (-.f)
    | t -> fail "expected number after '-', found %s" (L.pp_token t)
  end
  | t -> fail "expected literal, found %s" (L.pp_token t)

let value_list st =
  (* [v1, v2, ...] or $param *)
  match peek st with
  | L.Dollar -> begin
    advance st;
    let name = ident st in
    param_values st name
  end
  | L.Lbracket ->
    advance st;
    let acc = ref [] in
    if peek st <> L.Rbracket then begin
      acc := [ literal st ];
      while peek st = L.Comma do
        advance st;
        acc := literal st :: !acc
      done
    end;
    expect st L.Rbracket "]";
    List.rev !acc
  | t -> fail "expected list or parameter, found %s" (L.pp_token t)

let rec parse_or st =
  let left = parse_and st in
  if is_kw st "OR" then begin
    advance st;
    Expr.Binop (Expr.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if is_kw st "AND" then begin
    advance st;
    Expr.Binop (Expr.And, left, parse_and st)
  end
  else left

and parse_not st =
  if is_kw st "NOT" then begin
    advance st;
    Expr.Unop (Expr.Not, parse_not st)
  end
  else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | L.Eq ->
    advance st;
    Expr.Binop (Expr.Eq, left, parse_additive st)
  | L.Neq ->
    advance st;
    Expr.Binop (Expr.Neq, left, parse_additive st)
  | L.Lt ->
    advance st;
    Expr.Binop (Expr.Lt, left, parse_additive st)
  | L.Leq ->
    advance st;
    Expr.Binop (Expr.Leq, left, parse_additive st)
  | L.Gt ->
    advance st;
    Expr.Binop (Expr.Gt, left, parse_additive st)
  | L.Geq ->
    advance st;
    Expr.Binop (Expr.Geq, left, parse_additive st)
  | L.Ident s when String.uppercase_ascii s = "IN" ->
    advance st;
    Expr.In_list (left, value_list st)
  | L.Ident s when String.uppercase_ascii s = "IS" -> begin
    advance st;
    if eat_kw st "NOT" then begin
      expect_kw st "NULL";
      Expr.Unop (Expr.Is_not_null, left)
    end
    else begin
      expect_kw st "NULL";
      Expr.Unop (Expr.Is_null, left)
    end
  end
  | L.Ident s when String.uppercase_ascii s = "STARTS" ->
    advance st;
    expect_kw st "WITH";
    Expr.Binop (Expr.Starts_with, left, parse_additive st)
  | L.Ident s when String.uppercase_ascii s = "ENDS" ->
    advance st;
    expect_kw st "WITH";
    Expr.Binop (Expr.Ends_with, left, parse_additive st)
  | L.Ident s when String.uppercase_ascii s = "CONTAINS" ->
    advance st;
    Expr.Binop (Expr.Contains, left, parse_additive st)
  | _ -> left

and parse_additive st =
  let left = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.Plus ->
      advance st;
      left := Expr.Binop (Expr.Add, !left, parse_multiplicative st)
    | L.Dash ->
      advance st;
      left := Expr.Binop (Expr.Sub, !left, parse_multiplicative st)
    | _ -> continue := false
  done;
  !left

and parse_multiplicative st =
  let left = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.Star ->
      advance st;
      left := Expr.Binop (Expr.Mul, !left, parse_unary st)
    | L.Slash ->
      advance st;
      left := Expr.Binop (Expr.Div, !left, parse_unary st)
    | L.Percent ->
      advance st;
      left := Expr.Binop (Expr.Mod, !left, parse_unary st)
    | _ -> continue := false
  done;
  !left

and parse_unary st =
  match peek st with
  | L.Dash ->
    advance st;
    Expr.Unop (Expr.Neg, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | L.Int_lit _ | L.Float_lit _ | L.Str_lit _ -> Expr.Const (literal st)
  | L.Dollar -> begin
    advance st;
    let name = ident st in
    if st.defer then Expr.Param name
    else
      match param_values st name with
      | [ v ] -> Expr.Const v
      | _ -> fail "multi-value parameter $%s used as a scalar" name
  end
  | L.Lparen ->
    advance st;
    let e = parse_or st in
    expect st L.Rparen ")";
    e
  | L.Ident s -> begin
    let upper = String.uppercase_ascii s in
    if upper = "TRUE" || upper = "FALSE" || upper = "NULL" then Expr.Const (literal st)
    else begin
      advance st;
      match peek st with
      | L.Dot ->
        advance st;
        let key = ident st in
        Expr.Prop (s, key)
      | L.Lparen when String.lowercase_ascii s = "label" || String.lowercase_ascii s = "labels"
        ->
        advance st;
        let tag = ident st in
        expect st L.Rparen ")";
        Expr.Label tag
      | L.Lparen -> fail "unsupported function %s in scalar expression" s
      | _ -> Expr.Var s
    end
  end
  | t -> fail "unexpected token %s in expression" (L.pp_token t)

(* --- patterns ------------------------------------------------------------ *)

let props_map st =
  if peek st <> L.Lbrace then []
  else begin
    advance st;
    let acc = ref [] in
    if peek st <> L.Rbrace then begin
      let rec item () =
        let key = ident st in
        expect st L.Colon ":";
        let v =
          match peek st with
          | L.Dollar ->
            advance st;
            let name = ident st in
            (match param_values st name with
            | [ v ] -> v
            | _ -> fail "multi-value parameter $%s in a property map" name)
          | _ -> literal st
        in
        acc := (key, v) :: !acc;
        if peek st = L.Comma then begin
          advance st;
          item ()
        end
      in
      item ()
    end;
    expect st L.Rbrace "}";
    List.rev !acc
  end

let label_list st =
  if peek st <> L.Colon then []
  else begin
    advance st;
    let acc = ref [ ident st ] in
    while peek st = L.Pipe do
      advance st;
      (* allow optional ':' after '|' as in some Cypher dialects *)
      if peek st = L.Colon then advance st;
      acc := ident st :: !acc
    done;
    List.rev !acc
  end

let node_pattern st =
  expect st L.Lparen "(";
  let name =
    match peek st with
    | L.Ident s when peek2 st = L.Colon || peek2 st = L.Rparen || peek2 st = L.Lbrace ->
      advance st;
      Some s
    | _ -> None
  in
  let labels = label_list st in
  let props = props_map st in
  expect st L.Rparen ")";
  { n_name = name; n_labels = labels; n_props = props }

let hops_spec st =
  (* '*' [n ['..' m]] ; bare '*' means 1..default_max *)
  if peek st <> L.Star then None
  else begin
    advance st;
    match peek st with
    | L.Int_lit lo -> begin
      advance st;
      match peek st with
      | L.Dotdot -> begin
        advance st;
        match peek st with
        | L.Int_lit hi ->
          advance st;
          Some (max 1 lo, hi)
        | t -> fail "expected upper bound after '..', found %s" (L.pp_token t)
      end
      | _ -> Some (lo, lo)
    end
    | _ -> Some (1, 4)
  end

let rel_pattern st =
  (* leading '-' or '<-' already determines one side of the direction *)
  let from_left =
    match peek st with
    | L.Dash ->
      advance st;
      false (* no left arrowhead *)
    | L.Arrow_left ->
      advance st;
      true
    | t -> fail "expected relationship, found %s" (L.pp_token t)
  in
  let name, types, hops, props =
    if peek st = L.Lbracket then begin
      advance st;
      let name =
        match peek st with
        | L.Ident s
          when peek2 st = L.Colon || peek2 st = L.Rbracket || peek2 st = L.Star
               || peek2 st = L.Lbrace ->
          advance st;
          Some s
        | _ -> None
      in
      let types = label_list st in
      let hops = hops_spec st in
      let props = props_map st in
      expect st L.Rbracket "]";
      (name, types, hops, props)
    end
    else (None, [], None, [])
  in
  let to_right =
    match peek st with
    | L.Arrow_right ->
      advance st;
      true
    | L.Dash ->
      advance st;
      false
    | t -> fail "expected '->' or '-', found %s" (L.pp_token t)
  in
  let dir =
    match from_left, to_right with
    | false, true -> R_out
    | true, false -> R_in
    | false, false -> R_both
    | true, true -> fail "relationship cannot point both ways"
  in
  { r_name = name; r_types = types; r_dir = dir; r_hops = hops; r_props = props }

let path_pattern st =
  let head = node_pattern st in
  let tail = ref [] in
  while peek st = L.Dash || peek st = L.Arrow_left do
    let rel = rel_pattern st in
    let node = node_pattern st in
    tail := (rel, node) :: !tail
  done;
  { head; tail = List.rev !tail }

let path_pattern_list st =
  let acc = ref [ path_pattern st ] in
  while peek st = L.Comma do
    advance st;
    acc := path_pattern st :: !acc
  done;
  List.rev !acc

(* --- WHERE: scalar conjuncts and pattern predicates ---------------------- *)

let try_parse st f =
  let saved = st.pos in
  match f st with
  | v -> Some v
  | exception Parse_error _ ->
    st.pos <- saved;
    None

let looks_like_pattern st =
  (* '(' ident? (':' | ')') ... ')' ('-' | '<-') — cheap lookahead *)
  peek st = L.Lparen
  &&
  let saved = st.pos in
  let result =
    match try_parse st node_pattern with
    | Some _ -> peek st = L.Dash || peek st = L.Arrow_left
    | None -> false
  in
  st.pos <- saved;
  result

(* A scalar conjunct: an OR-chain of NOT-level expressions. Top-level ANDs
   must stay unconsumed so that pattern predicates can appear between
   them. *)
let where_scalar st =
  let rec ors left =
    if is_kw st "OR" then begin
      advance st;
      ors (Expr.Binop (Expr.Or, left, parse_not st))
    end
    else left
  in
  ors (parse_not st)

let where_conjunct st =
  if is_kw st "NOT" && (match peek2 st with L.Lparen -> true | _ -> false) then begin
    let saved = st.pos in
    advance st;
    if looks_like_pattern st then Wc_pattern (false, path_pattern_list st)
    else begin
      st.pos <- saved;
      Wc_expr (where_scalar st)
    end
  end
  else if is_kw st "EXISTS" then begin
    advance st;
    let wrapped = peek st = L.Lparen && not (looks_like_pattern st) in
    if wrapped then begin
      expect st L.Lparen "(";
      let pats = path_pattern_list st in
      expect st L.Rparen ")";
      Wc_pattern (true, pats)
    end
    else Wc_pattern (true, path_pattern_list st)
  end
  else if looks_like_pattern st then Wc_pattern (true, path_pattern_list st)
  else Wc_expr (where_scalar st)

let where_clause st =
  let acc = ref [ where_conjunct st ] in
  while is_kw st "AND" do
    advance st;
    acc := where_conjunct st :: !acc
  done;
  List.rev !acc

(* --- projections ---------------------------------------------------------- *)

let agg_fn_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Logical.Count
  | "sum" -> Some Logical.Sum
  | "avg" -> Some Logical.Avg
  | "min" -> Some Logical.Min
  | "max" -> Some Logical.Max
  | "collect" -> Some Logical.Collect
  | _ -> None

let proj_item st =
  let item =
    match peek st, peek2 st with
    | L.Ident name, L.Lparen when agg_fn_of_name name <> None -> begin
      let fn = Option.get (agg_fn_of_name name) in
      advance st;
      advance st;
      let distinct = eat_kw st "DISTINCT" in
      if peek st = L.Star then begin
        advance st;
        expect st L.Rparen ")";
        if fn <> Logical.Count then fail "only count(*) is supported";
        Agg (Logical.Count, distinct, None)
      end
      else begin
        let arg = parse_or st in
        expect st L.Rparen ")";
        let fn = if fn = Logical.Count && distinct then Logical.Count_distinct else fn in
        Agg (fn, distinct, Some arg)
      end
    end
    | _ -> Scalar (parse_or st)
  in
  let alias = if eat_kw st "AS" then Some (ident st) else None in
  { item; alias }

let order_items st =
  let one () =
    let e = parse_or st in
    let dir =
      if eat_kw st "DESC" then Logical.Desc
      else begin
        ignore (eat_kw st "ASC");
        Logical.Asc
      end
    in
    (e, dir)
  in
  let acc = ref [ one () ] in
  while peek st = L.Comma do
    advance st;
    acc := one () :: !acc
  done;
  List.rev !acc

let projection st =
  let distinct = eat_kw st "DISTINCT" in
  let items = ref [ proj_item st ] in
  while peek st = L.Comma do
    advance st;
    items := proj_item st :: !items
  done;
  let order_by =
    if eat_kw st "ORDER" then begin
      expect_kw st "BY";
      order_items st
    end
    else []
  in
  let int_after kw =
    if eat_kw st kw then begin
      match peek st with
      | L.Int_lit n ->
        advance st;
        Some n
      | t -> fail "expected integer after %s, found %s" kw (L.pp_token t)
    end
    else None
  in
  let skip = int_after "SKIP" in
  let limit = int_after "LIMIT" in
  let where = if eat_kw st "WHERE" then Some (parse_or st) else None in
  { distinct; items = List.rev !items; order_by; skip; limit; where }

(* --- queries --------------------------------------------------------------- *)

let single_query st =
  let clauses = ref [] in
  let finished = ref false in
  while not !finished do
    if eat_kw st "OPTIONAL" then begin
      expect_kw st "MATCH";
      let paths = path_pattern_list st in
      let where = if eat_kw st "WHERE" then where_clause st else [] in
      clauses := C_match { optional = true; paths; where } :: !clauses
    end
    else if eat_kw st "MATCH" then begin
      let paths = path_pattern_list st in
      let where = if eat_kw st "WHERE" then where_clause st else [] in
      clauses := C_match { optional = false; paths; where } :: !clauses
    end
    else if eat_kw st "UNWIND" then begin
      let e = parse_or st in
      expect_kw st "AS";
      let name = ident st in
      clauses := C_unwind (e, name) :: !clauses
    end
    else if eat_kw st "WITH" then clauses := C_with (projection st) :: !clauses
    else if eat_kw st "RETURN" then begin
      clauses := C_return (projection st) :: !clauses;
      finished := true
    end
    else fail "expected MATCH, UNWIND, WITH or RETURN, found %s" (L.pp_token (peek st))
  done;
  List.rev !clauses

let parse ?(params = []) ?(defer_params = false) src =
  let st = { toks = Lexer.tokenize src; pos = 0; params; defer = defer_params } in
  let parts = ref [ single_query st ] in
  let union_all = ref false in
  while is_kw st "UNION" do
    advance st;
    if eat_kw st "ALL" then union_all := true;
    parts := single_query st :: !parts
  done;
  if peek st = L.Semi then advance st;
  if peek st <> L.Eof then fail "trailing input: %s" (L.pp_token (peek st));
  { parts = List.rev !parts; union_all = !union_all }

let parse_expression src =
  let st = { toks = Lexer.tokenize src; pos = 0; params = []; defer = false } in
  let e = parse_or st in
  if peek st <> L.Eof then fail "trailing input in expression";
  e
