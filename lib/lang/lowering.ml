module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
open Cypher_ast

exception Lowering_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Lowering_error m)) fmt

let resolve_vcon schema labels =
  match labels with
  | [] -> Tc.All
  | _ ->
    let ids =
      List.map
        (fun l ->
          match Schema.find_vtype schema l with
          | Some i -> i
          | None -> fail "unknown vertex label %S" l)
        labels
    in
    (match Tc.of_list ~universe:(Schema.n_vtypes schema) ids with
    | Some c -> c
    | None ->
      invalid_arg
        (Printf.sprintf
           "Lowering.resolve_vcon: labels [%s] resolved to no representable constraint \
            over %d vertex types"
           (String.concat "; " labels) (Schema.n_vtypes schema)))

let resolve_econ schema types =
  match types with
  | [] -> Tc.All
  | _ ->
    let ids =
      List.map
        (fun l ->
          match Schema.find_etype schema l with
          | Some i -> i
          | None -> fail "unknown edge type %S" l)
        types
    in
    (match Tc.of_list ~universe:(Schema.n_etypes schema) ids with
    | Some c -> c
    | None ->
      invalid_arg
        (Printf.sprintf
           "Lowering.resolve_econ: edge types [%s] resolved to no representable \
            constraint over %d edge types"
           (String.concat "; " types) (Schema.n_etypes schema)))

let props_pred alias props =
  Expr.conj
    (List.map (fun (k, v) -> Expr.Binop (Expr.Eq, Expr.Prop (alias, k), Expr.Const v)) props)

let conj_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some p, Some q -> Some (Expr.Binop (Expr.And, p, q))

let build_pattern schema ~fresh paths =
  let vuniv = Schema.n_vtypes schema in
  let index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let vertices = Gopt_util.Vec.create () in
  let edges = Gopt_util.Vec.create () in
  let add_node (n : node_pat) =
    let name = match n.n_name with Some s -> s | None -> fresh "v" in
    let con = resolve_vcon schema n.n_labels in
    let pred = props_pred name n.n_props in
    match Hashtbl.find_opt index name with
    | Some i ->
      (* node reuse: intersect constraints, conjoin predicates *)
      let v = Gopt_util.Vec.get vertices i in
      let con' =
        match Tc.inter ~universe:vuniv v.Pattern.v_con con with
        | Some c -> c
        | None -> fail "contradictory labels on %S" name
      in
      Gopt_util.Vec.set vertices i
        { v with Pattern.v_con = con'; v_pred = conj_opt v.Pattern.v_pred pred };
      i
    | None ->
      let i = Gopt_util.Vec.length vertices in
      Hashtbl.add index name i;
      Gopt_util.Vec.push vertices (Pattern.mk_vertex ?pred ~alias:name con);
      i
  in
  List.iter
    (fun path ->
      let prev = ref (add_node path.head) in
      List.iter
        (fun (rel, node) ->
          let cur = add_node node in
          let alias = match rel.r_name with Some s -> s | None -> fresh "e" in
          let con = resolve_econ schema rel.r_types in
          let pred = props_pred alias rel.r_props in
          let src, dst, directed =
            match rel.r_dir with
            | R_out -> (!prev, cur, true)
            | R_in -> (cur, !prev, true)
            | R_both -> (!prev, cur, false)
          in
          (* Cypher variable-length semantics: no repeated edge inside the
             path (Trail) *)
          let path_sem = if rel.r_hops = None then Pattern.Arbitrary else Pattern.Trail in
          Gopt_util.Vec.push edges
            (Pattern.mk_edge ?pred ~directed ?hops:rel.r_hops ~path:path_sem ~alias ~src ~dst
               con);
          prev := cur)
        path.tail)
    paths;
  Pattern.create (Gopt_util.Vec.to_array vertices) (Gopt_util.Vec.to_array edges)

let default_alias = function
  | Scalar (Expr.Var x) -> x
  | Scalar (Expr.Prop (t, k)) -> t ^ "." ^ k
  | Scalar e -> Expr.to_string e
  | Agg (Logical.Count, _, None) -> "count(*)"
  | Agg (fn, _, arg) ->
    let name =
      match fn with
      | Logical.Count -> "count"
      | Logical.Count_distinct -> "count_distinct"
      | Logical.Sum -> "sum"
      | Logical.Avg -> "avg"
      | Logical.Min -> "min"
      | Logical.Max -> "max"
      | Logical.Collect -> "collect"
    in
    Printf.sprintf "%s(%s)" name (match arg with Some e -> Expr.to_string e | None -> "*")

let lower_projection plan (proj : projection) =
  let has_agg = List.exists (fun it -> match it.item with Agg _ -> true | Scalar _ -> false) proj.items in
  let alias_of it = match it.alias with Some a -> a | None -> default_alias it.item in
  let plan =
    if has_agg then begin
      let keys =
        List.filter_map
          (fun it ->
            match it.item with Scalar e -> Some (e, alias_of it) | Agg _ -> None)
          proj.items
      in
      let aggs =
        List.filter_map
          (fun it ->
            match it.item with
            | Agg (fn, _, arg) ->
              Some { Logical.agg_fn = fn; agg_arg = arg; agg_alias = alias_of it }
            | Scalar _ -> None)
          proj.items
      in
      Logical.Group (plan, keys, aggs)
    end
    else
      Logical.Project (plan, List.map (fun it ->
          match it.item with
          | Scalar e -> (e, alias_of it)
          | Agg _ ->
            (* unreachable: this branch only runs when no item is an Agg *)
            invalid_arg
              (Printf.sprintf
                 "Lowering: aggregate %S in a non-aggregating projection (the checker \
                  types Group outputs, not bare Project items)"
                 (alias_of it)))
          proj.items)
  in
  let plan = if proj.distinct then Logical.Dedup (plan, []) else plan in
  let plan = match proj.where with Some e -> Logical.Select (plan, e) | None -> plan in
  let plan =
    if proj.order_by <> [] then Logical.Order (plan, proj.order_by, None) else plan
  in
  let plan = match proj.skip with Some n -> Logical.Skip (plan, n) | None -> plan in
  match proj.limit with Some n -> Logical.Limit (plan, n) | None -> plan

let shared_fields a b =
  let fb = Logical.output_fields b in
  List.filter (fun f -> List.mem f fb) (Logical.output_fields a)

let cypher ?(edge_distinct = true) schema (q : query) =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "@%s%d" prefix !counter
  in
  let lower_single clauses =
    let plan = ref None in
    let match_plan paths =
      let p = build_pattern schema ~fresh paths in
      let base = Logical.Match p in
      if edge_distinct && Pattern.n_edges p >= 2 then
        let tags =
          Array.to_list (Pattern.edges p) |> List.map (fun e -> e.Pattern.e_alias)
        in
        Logical.All_distinct (base, tags)
      else base
    in
    let combine kind new_plan =
      match !plan with
      | None -> new_plan
      | Some prev ->
        let keys = shared_fields prev new_plan in
        Logical.Join { left = prev; right = new_plan; keys; kind }
    in
    List.iter
      (fun clause ->
        match clause with
        | C_match { optional; paths; where } ->
          let base = match_plan paths in
          let kind = if optional then Logical.Left_outer else Logical.Inner in
          let joined = combine kind base in
          let with_where =
            List.fold_left
              (fun acc conj ->
                match conj with
                | Wc_expr e -> Logical.Select (acc, e)
                | Wc_pattern (positive, pats) ->
                  let sub = Logical.Match (build_pattern schema ~fresh pats) in
                  let keys = shared_fields acc sub in
                  if keys = [] then
                    fail "pattern predicate shares no variables with the query";
                  Logical.Join
                    {
                      left = acc;
                      right = sub;
                      keys;
                      kind = (if positive then Logical.Semi else Logical.Anti);
                    })
              joined where
          in
          plan := Some with_where
        | C_unwind (e, name) -> begin
          match !plan with
          | Some p -> plan := Some (Logical.Unwind (p, e, name))
          | None -> fail "UNWIND before any MATCH is not supported"
        end
        | C_with proj | C_return proj ->
          let cur =
            match !plan with
            | Some p -> p
            | None -> fail "WITH/RETURN before any MATCH"
          in
          plan := Some (lower_projection cur proj))
      clauses;
    match !plan with Some p -> p | None -> fail "empty query"
  in
  match List.map lower_single q.parts with
  | [] -> fail "empty query"
  | [ single ] -> single
  | first :: rest ->
    let unioned = List.fold_left (fun acc p -> Logical.Union (acc, p)) first rest in
    if q.union_all then unioned else Logical.Dedup (unioned, [])
