(** Recursive-descent parser for the Cypher subset.

    [$name] parameters are substituted at parse time from [params]: a
    single-value parameter becomes a constant, a multi-value parameter is
    only legal as the right-hand side of [IN]. An undefined [$name] raises
    {!Parse_error} naming the missing parameter and the supplied set.

    With [defer_params] (prepared statements), scalar [$name] parses to
    {!Gopt_pattern.Expr.Param} — a placeholder carried through the whole
    optimization pipeline and bound at execution — while [IN]-list and
    property-map parameters still substitute at parse time from [params]
    (they shape the pattern itself, not a runtime scalar). *)

exception Parse_error of string

val parse :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?defer_params:bool ->
  string ->
  Cypher_ast.query
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input. *)

val parse_expression : string -> Gopt_pattern.Expr.t
(** Parse a standalone scalar expression (test/tooling helper). *)
