(** In-memory property graph store.

    This is the data substrate the paper's backends (Neo4j, GraphScope) stand
    on: a schema-strict directed multigraph with typed vertices and edges and
    dynamically-typed property columns. The frozen representation is CSR
    (compressed sparse row) adjacency in both directions, with each vertex's
    adjacency sorted by [(etype, neighbour)] so that per-edge-type expansion
    and sorted-neighbour intersection (the worst-case-optimal join kernel)
    are cheap.

    Vertices and edges are dense integer ids ([0 .. n-1]). *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t
  (** A mutable graph under construction. *)

  val create : Schema.t -> t

  val add_vertex : t -> vtype:int -> (string * Value.t) list -> int
  (** [add_vertex b ~vtype props] appends a vertex and returns its id.
      Raises [Invalid_argument] if [vtype] is out of range. *)

  val add_edge : t -> src:int -> dst:int -> etype:int -> (string * Value.t) list -> int
  (** [add_edge b ~src ~dst ~etype props] appends a directed edge and returns
      its id. Schema-strict: raises [Invalid_argument] if the
      [(vtype src, etype, vtype dst)] triple is not allowed by the schema. *)

  val n_vertices : t -> int

  val vtype : t -> int -> int
  (** Type of an already-added vertex (useful while generating edges). *)

  val freeze : t -> graph
  (** Build the immutable CSR representation. The builder can be reused
      afterwards, but further mutation does not affect the frozen graph. *)
end

(** {1 Basic accessors} *)

val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int

val vtype : t -> int -> int
(** Type of vertex [v]. *)

val etype : t -> int -> int
(** Type of edge [e]. *)

val esrc : t -> int -> int
(** Source vertex of edge [e]. *)

val edst : t -> int -> int
(** Destination vertex of edge [e]. *)

(** {1 Adjacency} *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val out_degree_etype : t -> int -> int -> int
val in_degree_etype : t -> int -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out g v f] calls [f eid] for every outgoing edge of [v]. *)

val iter_in : t -> int -> (int -> unit) -> unit

val iter_out_etype : t -> int -> int -> (int -> unit) -> unit
(** [iter_out_etype g v et f] restricts {!iter_out} to edges of type [et]. *)

val iter_in_etype : t -> int -> int -> (int -> unit) -> unit

val out_neighbors_etype : t -> int -> int -> int array
(** [out_neighbors_etype g v et] is the sorted array of destination vertices
    of [v]'s outgoing [et]-edges (may contain duplicates for parallel
    edges). Shares no storage with the graph. *)

val in_neighbors_etype : t -> int -> int -> int array

val has_out_edge : t -> src:int -> etype:int -> dst:int -> bool
(** Sorted-adjacency membership test, O(log degree). *)

val find_out_edges : t -> src:int -> etype:int -> dst:int -> int list
(** All parallel [etype]-edges from [src] to [dst]. *)

(** {1 Type-indexed access and statistics} *)

val vertices_of_vtype : t -> int -> int array
(** All vertices of a given type (ascending ids). The returned array is owned
    by the graph: do not mutate. *)

val count_vtype : t -> int -> int
val count_etype : t -> int -> int

val triple_count : t -> src:int -> etype:int -> dst:int -> int
(** Number of edges realizing a schema triple — the single-edge "high-order"
    statistic GLogue builds on. *)

val avg_out_degree : t -> src_vtype:int -> etype:int -> float
(** Average number of outgoing [etype]-edges per vertex of [src_vtype]. *)

val avg_in_degree : t -> dst_vtype:int -> etype:int -> float

(** {1 Properties} *)

val vprop : t -> int -> string -> Value.t
(** [vprop g v key] is vertex [v]'s property [key], or [Null]. *)

val eprop : t -> int -> string -> Value.t

val vprop_column : t -> string -> Value.t array option
(** The dense property column for [key], indexed by vertex id (absent
    entries hold [Null]); [None] when no vertex carries the property.
    Owned by the graph — do not mutate. Vectorized expression kernels use
    this to hoist the per-key hashtable lookup out of their row loops. *)

val eprop_column : t -> string -> Value.t array option
(** Edge-indexed analogue of {!vprop_column}. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: vertex/edge counts per type. *)
