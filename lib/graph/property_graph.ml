type t = {
  schema : Schema.t;
  vtype : int array;
  esrc : int array;
  edst : int array;
  etype : int array;
  (* CSR, adjacency of each vertex sorted by (etype, neighbour, eid) *)
  out_off : int array;
  out_eid : int array;
  out_et : int array;
  out_dst : int array;
  in_off : int array;
  in_eid : int array;
  in_et : int array;
  in_src : int array;
  vprops : (string, Value.t array) Hashtbl.t;
  eprops : (string, Value.t array) Hashtbl.t;
  vertices_by_type : int array array;
  etype_counts : int array;
  triple_counts : (int * int * int, int) Hashtbl.t;
}

let schema t = t.schema
let n_vertices t = Array.length t.vtype
let n_edges t = Array.length t.etype
let vtype t v = t.vtype.(v)
let etype t e = t.etype.(e)
let esrc t e = t.esrc.(e)
let edst t e = t.edst.(e)

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

(* First index in [lo,hi) whose etype is >= et (adjacency sorted by etype). *)
let lower_bound_et ets lo hi et =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ets.(mid) < et then lo := mid + 1 else hi := mid
  done;
  !lo

let etype_range off ets v et =
  let lo = off.(v) and hi = off.(v + 1) in
  let a = lower_bound_et ets lo hi et in
  let b = lower_bound_et ets lo hi (et + 1) in
  (a, b)

let out_degree_etype t v et =
  let a, b = etype_range t.out_off t.out_et v et in
  b - a

let in_degree_etype t v et =
  let a, b = etype_range t.in_off t.in_et v et in
  b - a

let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f t.out_eid.(i)
  done

let iter_in t v f =
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f t.in_eid.(i)
  done

let iter_out_etype t v et f =
  let a, b = etype_range t.out_off t.out_et v et in
  for i = a to b - 1 do
    f t.out_eid.(i)
  done

let iter_in_etype t v et f =
  let a, b = etype_range t.in_off t.in_et v et in
  for i = a to b - 1 do
    f t.in_eid.(i)
  done

let out_neighbors_etype t v et =
  let a, b = etype_range t.out_off t.out_et v et in
  Array.sub t.out_dst a (b - a)

let in_neighbors_etype t v et =
  let a, b = etype_range t.in_off t.in_et v et in
  Array.sub t.in_src a (b - a)

(* Within the etype range the neighbour column is sorted, so membership is a
   binary search. *)
let search_nbr nbrs lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if nbrs.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let has_out_edge t ~src ~etype ~dst =
  let a, b = etype_range t.out_off t.out_et src etype in
  let i = search_nbr t.out_dst a b dst in
  i < b && t.out_dst.(i) = dst

let find_out_edges t ~src ~etype ~dst =
  let a, b = etype_range t.out_off t.out_et src etype in
  let i = ref (search_nbr t.out_dst a b dst) in
  let acc = ref [] in
  while !i < b && t.out_dst.(!i) = dst do
    acc := t.out_eid.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let vertices_of_vtype t vt = t.vertices_by_type.(vt)
let count_vtype t vt = Array.length t.vertices_by_type.(vt)
let count_etype t et = t.etype_counts.(et)

let triple_count t ~src ~etype ~dst =
  Option.value ~default:0 (Hashtbl.find_opt t.triple_counts (src, etype, dst))

let avg_out_degree t ~src_vtype ~etype =
  let nv = count_vtype t src_vtype in
  if nv = 0 then 0.0
  else begin
    let total = ref 0 in
    Hashtbl.iter
      (fun (s, e, _) c -> if s = src_vtype && e = etype then total := !total + c)
      t.triple_counts;
    float_of_int !total /. float_of_int nv
  end

let avg_in_degree t ~dst_vtype ~etype =
  let nv = count_vtype t dst_vtype in
  if nv = 0 then 0.0
  else begin
    let total = ref 0 in
    Hashtbl.iter
      (fun (_, e, d) c -> if d = dst_vtype && e = etype then total := !total + c)
      t.triple_counts;
    float_of_int !total /. float_of_int nv
  end

let vprop t v key =
  match Hashtbl.find_opt t.vprops key with
  | Some col -> col.(v)
  | None -> Value.Null

let eprop t e key =
  match Hashtbl.find_opt t.eprops key with
  | Some col -> col.(e)
  | None -> Value.Null

let vprop_column t key = Hashtbl.find_opt t.vprops key
let eprop_column t key = Hashtbl.find_opt t.eprops key

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>|V|=%d |E|=%d@," (n_vertices t) (n_edges t);
  List.iter
    (fun vt ->
      Format.fprintf ppf "  %s: %d@," (Schema.vtype_name t.schema vt) (count_vtype t vt))
    (Schema.all_vtypes t.schema);
  List.iter
    (fun et ->
      Format.fprintf ppf "  -[%s]-: %d@," (Schema.etype_name t.schema et) (count_etype t et))
    (Schema.all_etypes t.schema);
  Format.fprintf ppf "@]"

module Builder = struct
  type t = {
    bschema : Schema.t;
    bvtype : int Gopt_util.Vec.t;
    besrc : int Gopt_util.Vec.t;
    bedst : int Gopt_util.Vec.t;
    betype : int Gopt_util.Vec.t;
    bvprops : (string, (int * Value.t) Gopt_util.Vec.t) Hashtbl.t;
    beprops : (string, (int * Value.t) Gopt_util.Vec.t) Hashtbl.t;
  }

  let create schema =
    {
      bschema = schema;
      bvtype = Gopt_util.Vec.create ();
      besrc = Gopt_util.Vec.create ();
      bedst = Gopt_util.Vec.create ();
      betype = Gopt_util.Vec.create ();
      bvprops = Hashtbl.create 16;
      beprops = Hashtbl.create 16;
    }

  let record_props tbl id props =
    List.iter
      (fun (key, v) ->
        let col =
          match Hashtbl.find_opt tbl key with
          | Some col -> col
          | None ->
            let col = Gopt_util.Vec.create () in
            Hashtbl.add tbl key col;
            col
        in
        Gopt_util.Vec.push col (id, v))
      props

  let add_vertex b ~vtype props =
    if vtype < 0 || vtype >= Schema.n_vtypes b.bschema then
      invalid_arg "Builder.add_vertex: vtype out of range";
    let id = Gopt_util.Vec.length b.bvtype in
    Gopt_util.Vec.push b.bvtype vtype;
    record_props b.bvprops id props;
    id

  let n_vertices b = Gopt_util.Vec.length b.bvtype

  let vtype b v = Gopt_util.Vec.get b.bvtype v

  let add_edge b ~src ~dst ~etype props =
    let n = n_vertices b in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Builder.add_edge: endpoint out of range";
    let st = Gopt_util.Vec.get b.bvtype src and dt = Gopt_util.Vec.get b.bvtype dst in
    if not (Schema.triple_allowed b.bschema ~src:st ~etype ~dst:dt) then
      invalid_arg
        (Printf.sprintf "Builder.add_edge: triple (%s)-[%s]->(%s) not in schema"
           (Schema.vtype_name b.bschema st)
           (Schema.etype_name b.bschema etype)
           (Schema.vtype_name b.bschema dt));
    let id = Gopt_util.Vec.length b.betype in
    Gopt_util.Vec.push b.besrc src;
    Gopt_util.Vec.push b.bedst dst;
    Gopt_util.Vec.push b.betype etype;
    record_props b.beprops id props;
    id

  let freeze_props tbl n =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun key cells ->
        let col = Array.make n Value.Null in
        Gopt_util.Vec.iter (fun (id, v) -> col.(id) <- v) cells;
        Hashtbl.add out key col)
      tbl;
    out

  (* Build one direction of CSR adjacency, sorted by (etype, neighbour, eid),
     via a per-vertex counting pass and an in-place sort of each slice. *)
  let build_csr ~n ~anchors ~etypes ~nbrs =
    let m = Array.length anchors in
    let off = Array.make (n + 1) 0 in
    Array.iter (fun v -> off.(v + 1) <- off.(v + 1) + 1) anchors;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let cursor = Array.copy off in
    let eid_arr = Array.make m 0 in
    for e = 0 to m - 1 do
      let v = anchors.(e) in
      eid_arr.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done;
    (* sort each vertex slice *)
    for v = 0 to n - 1 do
      let lo = off.(v) and hi = off.(v + 1) in
      if hi - lo > 1 then begin
        let slice = Array.sub eid_arr lo (hi - lo) in
        Array.sort
          (fun e1 e2 ->
            let c = Int.compare etypes.(e1) etypes.(e2) in
            if c <> 0 then c
            else
              let c = Int.compare nbrs.(e1) nbrs.(e2) in
              if c <> 0 then c else Int.compare e1 e2)
          slice;
        Array.blit slice 0 eid_arr lo (hi - lo)
      end
    done;
    let et_arr = Array.map (fun e -> etypes.(e)) eid_arr in
    let nbr_arr = Array.map (fun e -> nbrs.(e)) eid_arr in
    (off, eid_arr, et_arr, nbr_arr)

  let freeze b =
    let vtype = Gopt_util.Vec.to_array b.bvtype in
    let esrc = Gopt_util.Vec.to_array b.besrc in
    let edst = Gopt_util.Vec.to_array b.bedst in
    let etype = Gopt_util.Vec.to_array b.betype in
    let n = Array.length vtype in
    let out_off, out_eid, out_et, out_dst =
      build_csr ~n ~anchors:esrc ~etypes:etype ~nbrs:edst
    in
    let in_off, in_eid, in_et, in_src =
      build_csr ~n ~anchors:edst ~etypes:etype ~nbrs:esrc
    in
    let nvt = Schema.n_vtypes b.bschema and net = Schema.n_etypes b.bschema in
    let by_type = Array.make nvt [] in
    for v = n - 1 downto 0 do
      by_type.(vtype.(v)) <- v :: by_type.(vtype.(v))
    done;
    let etype_counts = Array.make net 0 in
    Array.iter (fun et -> etype_counts.(et) <- etype_counts.(et) + 1) etype;
    let triple_counts = Hashtbl.create 64 in
    Array.iteri
      (fun e et ->
        let key = (vtype.(esrc.(e)), et, vtype.(edst.(e))) in
        let c = Option.value ~default:0 (Hashtbl.find_opt triple_counts key) in
        Hashtbl.replace triple_counts key (c + 1))
      etype;
    {
      schema = b.bschema;
      vtype;
      esrc;
      edst;
      etype;
      out_off;
      out_eid;
      out_et;
      out_dst;
      in_off;
      in_eid;
      in_et;
      in_src;
      vprops = freeze_props b.bvprops n;
      eprops = freeze_props b.beprops (Array.length etype);
      vertices_by_type = Array.map Array.of_list by_type;
      etype_counts;
      triple_counts;
    }
end
