(* Format:
     gopt-graph v1
     vtype <name> [<prop>:<kind> ...]
     etype <name> [<prop>:<kind> ...]
     triple <src> <etype> <dst>
     v <vtype> [<prop>=<tagged-value> ...]
     e <src-id> <dst-id> <etype> [<prop>=<tagged-value> ...]
   Fields are tab-separated; strings are escaped (\t \n \\). Vertices are
   written in id order so edge endpoints refer to line order. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | 't' -> Buffer.add_char buf '\t'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | other -> Buffer.add_char buf other);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let value_str = function
  | Value.Null -> "n:"
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int n -> "i:" ^ string_of_int n
  | Value.Float f -> "f:" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s:" ^ escape s

(* Internal parse failure; [of_string] re-raises as [Failure] with the
   offending line number attached. *)
exception Parse_error of string

let perr fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let value_of_str str =
  if String.length str < 2 || str.[1] <> ':' then perr "malformed value %S" str
  else begin
    let payload = String.sub str 2 (String.length str - 2) in
    match str.[0] with
    | 'n' -> Value.Null
    | 'b' -> (
      try Value.Bool (bool_of_string payload)
      with _ -> perr "malformed bool payload %S" payload)
    | 'i' -> (
      try Value.Int (int_of_string payload)
      with _ -> perr "malformed int payload %S" payload)
    | 'f' -> (
      try Value.Float (float_of_string payload)
      with _ -> perr "malformed float payload %S" payload)
    | 's' -> Value.Str (unescape payload)
    | c -> perr "unknown value tag %C in %S" c str
  end

let kind_str = function
  | Schema.P_bool -> "bool"
  | Schema.P_int -> "int"
  | Schema.P_float -> "float"
  | Schema.P_string -> "string"

let kind_of_str = function
  | "bool" -> Schema.P_bool
  | "int" -> Schema.P_int
  | "float" -> Schema.P_float
  | "string" -> Schema.P_string
  | other -> perr "unknown property kind %S" other

let write_graph buf g =
  let schema = Property_graph.schema g in
  Buffer.add_string buf "gopt-graph v1\n";
  let decl kw name props =
    Buffer.add_string buf kw;
    Buffer.add_char buf '\t';
    Buffer.add_string buf (escape name);
    List.iter
      (fun (p, k) ->
        Buffer.add_char buf '\t';
        Buffer.add_string buf (escape p ^ ":" ^ kind_str k))
      props;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun vt -> decl "vtype" (Schema.vtype_name schema vt) (Schema.vprops schema vt))
    (Schema.all_vtypes schema);
  List.iter
    (fun et -> decl "etype" (Schema.etype_name schema et) (Schema.eprops schema et))
    (Schema.all_etypes schema);
  Array.iter
    (fun (s, e, d) ->
      Buffer.add_string buf
        (Printf.sprintf "triple\t%s\t%s\t%s\n"
           (escape (Schema.vtype_name schema s))
           (escape (Schema.etype_name schema e))
           (escape (Schema.vtype_name schema d))))
    (Schema.triples schema);
  let emit_props decls getter id =
    List.iter
      (fun (key, _) ->
        let v = getter id key in
        if not (Value.is_null v) then
          Buffer.add_string buf (Printf.sprintf "\t%s=%s" (escape key) (value_str v)))
      decls
  in
  for v = 0 to Property_graph.n_vertices g - 1 do
    let vt = Property_graph.vtype g v in
    Buffer.add_string buf ("v\t" ^ escape (Schema.vtype_name schema vt));
    emit_props (Schema.vprops schema vt) (Property_graph.vprop g) v;
    Buffer.add_char buf '\n'
  done;
  for e = 0 to Property_graph.n_edges g - 1 do
    let et = Property_graph.etype g e in
    Buffer.add_string buf
      (Printf.sprintf "e\t%d\t%d\t%s" (Property_graph.esrc g e) (Property_graph.edst g e)
         (escape (Schema.etype_name schema et)));
    emit_props (Schema.eprops schema et) (Property_graph.eprop g) e;
    Buffer.add_char buf '\n'
  done

let to_string g =
  let buf = Buffer.create 65536 in
  write_graph buf g;
  Buffer.contents buf

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

(* --- parsing --------------------------------------------------------------- *)

let split_tabs line = String.split_on_char '\t' line

let parse_prop_decl field =
  match String.rindex_opt field ':' with
  | Some i ->
    (unescape (String.sub field 0 i), kind_of_str (String.sub field (i + 1) (String.length field - i - 1)))
  | None -> perr "malformed property declaration %S" field

let parse_prop_value field =
  match String.index_opt field '=' with
  | Some i ->
    ( unescape (String.sub field 0 i),
      value_of_str (String.sub field (i + 1) (String.length field - i - 1)) )
  | None -> perr "malformed property %S" field

let of_string text =
  let lines = String.split_on_char '\n' text in
  let fail lineno msg = failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg) in
  (* run one line's parsing, attaching the line number to any failure *)
  let on_line lineno f =
    try f () with
    | Parse_error m -> fail lineno m
    | Failure m -> fail lineno m
  in
  let vtypes = ref [] and etypes = ref [] and triples = ref [] in
  let pending : (int * string list) list ref = ref [] in
  (* first pass: declarations; collect entity lines (with their original
     line numbers) for the second pass *)
  let lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      if line <> "" then
        on_line !lineno (fun () ->
            match split_tabs line with
            | [ "gopt-graph v1" ] -> ()
            | "vtype" :: name :: props ->
              vtypes := (unescape name, List.map parse_prop_decl props) :: !vtypes
            | "etype" :: name :: props ->
              etypes := (unescape name, List.map parse_prop_decl props) :: !etypes
            | [ "triple"; s; e; d ] ->
              triples := (unescape s, unescape e, unescape d) :: !triples
            | ("v" | "e") :: _ as fields -> pending := (!lineno, fields) :: !pending
            | [ "" ] -> ()
            | _ -> perr "unrecognized line"))
    lines;
  let schema =
    Schema.create ~vtypes:(List.rev !vtypes) ~etypes:(List.rev !etypes)
      ~triples:(List.rev !triples)
  in
  let b = Property_graph.Builder.create schema in
  List.iter
    (fun (lineno, fields) ->
      on_line lineno (fun () ->
          match fields with
          | "v" :: vtype_name :: props ->
            let vt =
              match Schema.find_vtype schema (unescape vtype_name) with
              | Some vt -> vt
              | None -> perr "unknown vertex type %S" vtype_name
            in
            ignore
              (Property_graph.Builder.add_vertex b ~vtype:vt
                 (List.map parse_prop_value props))
          | "e" :: src :: dst :: etype_name :: props ->
            let et =
              match Schema.find_etype schema (unescape etype_name) with
              | Some et -> et
              | None -> perr "unknown edge type %S" etype_name
            in
            let src =
              try int_of_string src with _ -> perr "malformed source id %S" src
            in
            let dst =
              try int_of_string dst with _ -> perr "malformed destination id %S" dst
            in
            ignore
              (Property_graph.Builder.add_edge b ~src ~dst ~etype:et
                 (List.map parse_prop_value props))
          | _ -> perr "unrecognized entity line"))
    (List.rev !pending);
  Property_graph.Builder.freeze b

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      of_string bytes)
