type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Int and the equal integral Float must hash identically ([compare] treats
   them as equal). Both canonicalize through the int image of their float
   value: for |n| < 2^53 that is [n] itself, and for larger magnitudes two
   ints with the same float image collapse to the same hash — exactly the
   agreement [compare] requires. Unlike the previous [(tag, float)] tuple
   round-trip this allocates nothing: the intermediate float never escapes
   a register and [Hashtbl.hash] on an immediate int does not box. *)
let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int n -> Hashtbl.hash (int_of_float (float_of_int n))
  | Float f -> if Float.is_integer f then Hashtbl.hash (int_of_float f) else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let as_bool = function Bool b -> Some b | Null | Int _ | Float _ | Str _ -> None

let as_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Float _ | Str _ -> None

let as_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Null | Bool _ | Str _ -> None

let as_string = function Str s -> Some s | Null | Bool _ | Int _ | Float _ -> None

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false
