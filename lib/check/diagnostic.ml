type severity = Error | Warning

type t = {
  severity : severity;
  path : string;
  message : string;
}

let error ~path message = { severity = Error; path; message }
let warning ~path message = { severity = Warning; path; message }

let errorf ~path fmt = Printf.ksprintf (error ~path) fmt
let warningf ~path fmt = Printf.ksprintf (warning ~path) fmt

let is_error d = d.severity = Error

let errors l = List.filter is_error l

let is_clean l = not (List.exists is_error l)

let pp ppf d =
  Format.fprintf ppf "%s: %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.path d.message

let render = function
  | [] -> "(no diagnostics)"
  | ds -> String.concat "\n" (List.map (fun d -> Format.asprintf "%a" pp d) ds)
