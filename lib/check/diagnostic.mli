(** Structured static-analysis diagnostics.

    Every check in [gopt_check] (and the physical-plan checker layered on top
    in [gopt_opt]) reports findings as a list of diagnostics instead of
    raising deep inside the optimizer: each carries a severity, the path of
    the plan node it anchors to (e.g. ["Order/Group/Select/Match"]), and a
    human-readable message. *)

type severity = Error | Warning

type t = {
  severity : severity;
  path : string;  (** Slash-joined node-kind path from the plan root. *)
  message : string;
}

val error : path:string -> string -> t
val warning : path:string -> string -> t

val errorf : path:string -> ('a, unit, string, t) format4 -> 'a
val warningf : path:string -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool

val errors : t list -> t list
(** Keep only [Error]-severity diagnostics. *)

val is_clean : t list -> bool
(** No errors (warnings allowed). *)

val pp : Format.formatter -> t -> unit
(** ["error: <path>: <message>"]. *)

val render : t list -> string
(** One diagnostic per line; ["(no diagnostics)"] when empty. *)
