module Logical = Gopt_gir.Logical
module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr
module Ti = Gopt_typeinf.Type_inference
module D = Diagnostic
module Et = Expr_type
module SS = Set.Make (String)

(* --- typed field environments --------------------------------------------- *)

(* [open_world] models a plan fragment boundary (a Common_ref whose
   With_common ancestor is outside the checked fragment): every name
   resolves, with unknown type. *)
type env = { fields : (string * Et.ty) list; open_world : bool }

let closed fields = { fields; open_world = false }

let lookup env x =
  match List.assoc_opt x env.fields with
  | Some t -> Some t
  | None -> if env.open_world then Some Et.Any else None

let mem env x = lookup env x <> None

let union_env a b =
  {
    fields = a.fields @ List.filter (fun (f, _) -> not (List.mem_assoc f a.fields)) b.fields;
    open_world = a.open_world || b.open_world;
  }

let field_names env = List.map fst env.fields

(* --- node naming / paths --------------------------------------------------- *)

let node_name = function
  | Logical.Match _ -> "Match"
  | Logical.Pattern_cont _ -> "PatternCont"
  | Logical.Common_ref -> "CommonRef"
  | Logical.With_common _ -> "WithCommon"
  | Logical.Select _ -> "Select"
  | Logical.Project _ -> "Project"
  | Logical.Join _ -> "Join"
  | Logical.Group _ -> "Group"
  | Logical.Order _ -> "Order"
  | Logical.Limit _ -> "Limit"
  | Logical.Skip _ -> "Skip"
  | Logical.Unwind _ -> "Unwind"
  | Logical.Dedup _ -> "Dedup"
  | Logical.Union _ -> "Union"
  | Logical.All_distinct _ -> "AllDistinct"

let child_path path ?side child =
  path ^ "/" ^ (match side with None -> "" | Some s -> s ^ ":") ^ node_name child

(* --- pattern connectivity -------------------------------------------------- *)

let pattern_components p =
  let nv = Pattern.n_vertices p in
  let comp = Array.make nv (-1) in
  let next = ref 0 in
  for v = 0 to nv - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let rec dfs x =
        if comp.(x) < 0 then begin
          comp.(x) <- id;
          List.iter (fun (_, y) -> dfs y) (Pattern.neighbors p x)
        end
      in
      dfs v
    end
  done;
  List.init !next (fun c ->
      List.filter (fun v -> comp.(v) = c) (List.init nv Fun.id))

(* --- aggregate naming ------------------------------------------------------ *)

let agg_name = function
  | Logical.Count -> "COUNT"
  | Logical.Count_distinct -> "COUNT_DISTINCT"
  | Logical.Sum -> "SUM"
  | Logical.Avg -> "AVG"
  | Logical.Min -> "MIN"
  | Logical.Max -> "MAX"
  | Logical.Collect -> "COLLECT"

(* --- the checker ----------------------------------------------------------- *)

let run ?schema ~partial plan =
  let diags = ref [] in
  let err ~path fmt = Printf.ksprintf (fun m -> diags := D.error ~path m :: !diags) fmt in
  let warn ~path fmt = Printf.ksprintf (fun m -> diags := D.warning ~path m :: !diags) fmt in
  (* unused-binding lint state: alias -> (declaring path, structurally_used).
     Structurally used = appears in more than one pattern (patterns meet on
     it) or is a junction vertex (degree >= 2). *)
  let declared : (string, string * bool) Hashtbl.t = Hashtbl.create 16 in
  let used = ref SS.empty in
  let use tag = used := SS.add tag !used in
  let use_expr e = List.iter use (Expr.free_tags e) in
  let anonymous a = String.length a > 0 && a.[0] = '@' in
  let declare ~path alias ~structural =
    if not (anonymous alias) then
      match Hashtbl.find_opt declared alias with
      | Some (p0, _) -> Hashtbl.replace declared alias (p0, true)
      | None -> Hashtbl.add declared alias (path, structural)
  in
  let infer_expr ~path env e =
    let t, ds = Et.infer ?schema ~lookup:(lookup env) ~path e in
    diags := List.rev_append ds !diags;
    use_expr e;
    t
  in
  let check_bool_pred ~path ~what env e =
    let t = infer_expr ~path env e in
    if not (Et.compatible t Et.Bool) then
      err ~path "%s has type %s (expected bool)" what (Et.to_string t)
  in
  (* Narrow a pattern's constraints through schema type inference. *)
  let narrow ~path p =
    match schema with
    | None -> p
    | Some s -> begin
      match Ti.infer s p with
      | Ti.Inferred (p', _) -> p'
      | Ti.Invalid ->
        warn ~path "pattern admits no valid type assignment under the schema (matches nothing)";
        p
    end
  in
  let pattern_env p =
    let fields = ref [] in
    Array.iter
      (fun (v : Pattern.vertex) ->
        fields := (v.Pattern.v_alias, Et.Node (Some v.Pattern.v_con)) :: !fields)
      (Pattern.vertices p);
    Array.iter
      (fun (e : Pattern.edge) ->
        let ty =
          if e.Pattern.e_hops <> None then Et.Path else Et.Edge (Some e.Pattern.e_con)
        in
        fields := (e.Pattern.e_alias, ty) :: !fields)
      (Pattern.edges p);
    closed (List.rev !fields)
  in
  let check_pattern ~path ~input p =
    Array.iteri
      (fun i (v : Pattern.vertex) ->
        declare ~path v.Pattern.v_alias ~structural:(Pattern.degree p i >= 2))
      (Pattern.vertices p);
    Array.iter
      (fun (e : Pattern.edge) -> declare ~path e.Pattern.e_alias ~structural:false)
      (Pattern.edges p);
    (* vertex and edge aliases land in the same row namespace *)
    let valiases =
      Array.fold_left
        (fun s (v : Pattern.vertex) -> SS.add v.Pattern.v_alias s)
        SS.empty (Pattern.vertices p)
    in
    Array.iter
      (fun (e : Pattern.edge) ->
        if SS.mem e.Pattern.e_alias valiases then
          err ~path "alias %S names both a vertex and an edge of the pattern"
            e.Pattern.e_alias)
      (Pattern.edges p);
    (* element predicates must type as booleans over pattern + input fields *)
    let penv = union_env (pattern_env p) input in
    Array.iter
      (fun (v : Pattern.vertex) ->
        match v.Pattern.v_pred with
        | Some e ->
          check_bool_pred ~path
            ~what:(Printf.sprintf "predicate on pattern vertex %S" v.Pattern.v_alias)
            penv e
        | None -> ())
      (Pattern.vertices p);
    Array.iter
      (fun (e : Pattern.edge) ->
        match e.Pattern.e_pred with
        | Some pred ->
          check_bool_pred ~path
            ~what:(Printf.sprintf "predicate on pattern edge %S" e.Pattern.e_alias)
            penv pred
        | None -> ())
      (Pattern.edges p)
  in
  let check_join_keys ~path ~keys lenv renv =
    List.iter
      (fun k ->
        let lt = lookup lenv k and rt = lookup renv k in
        (match lt with
        | None -> err ~path "join key %S is not a field of the left input" k
        | Some _ -> ());
        (match rt with
        | None -> err ~path "join key %S is not a field of the right input" k
        | Some _ -> ());
        use k;
        match (lt, rt) with
        | Some l, Some r when not (Et.compatible l r) ->
          err ~path "join key %S has type %s on the left but %s on the right" k
            (Et.to_string l) (Et.to_string r)
        | _ -> ())
      keys
  in
  let check_union_fields ~path ~what lenv renv =
    if not (lenv.open_world || renv.open_world) then begin
      let lf = field_names lenv and rf = field_names renv in
      if not (SS.equal (SS.of_list lf) (SS.of_list rf)) then
        err ~path "%s branches produce different fields: [%s] vs [%s]" what
          (String.concat ", " lf) (String.concat ", " rf)
      else if lf <> rf then
        warn ~path "%s branches produce the same fields in a different order: [%s] vs [%s]"
          what (String.concat ", " lf) (String.concat ", " rf)
    end
  in
  let rec go ~path ~common node =
    match node with
    | Logical.Match p ->
      let p = narrow ~path p in
      check_pattern ~path ~input:(closed []) p;
      if Pattern.n_vertices p > 1 && not (Pattern.is_connected p) then
        warn ~path "disconnected pattern: the planner will form a cartesian product";
      pattern_env p
    | Logical.Pattern_cont (x, p) ->
      let env_x = go ~path:(child_path path x) ~common x in
      let p = narrow ~path p in
      check_pattern ~path ~input:env_x p;
      if not env_x.open_world then
        List.iter
          (fun component ->
            let bound =
              List.exists
                (fun v -> mem env_x (Pattern.vertex p v).Pattern.v_alias)
                component
            in
            if not bound then
              err ~path
                "pattern continuation component {%s} shares no vertex with its bound input \
                 (fields: %s)"
                (String.concat ", "
                   (List.map (fun v -> (Pattern.vertex p v).Pattern.v_alias) component))
                (String.concat ", " (field_names env_x)))
          (pattern_components p);
      union_env env_x (pattern_env p)
    | Logical.Common_ref -> begin
      match common with
      | Some cenv -> cenv
      | None ->
        if not partial then
          err ~path "COMMON_REF outside the scope of a WITH_COMMON operator";
        { fields = []; open_world = true }
    end
    | Logical.With_common { common = c; left; right; combine } ->
      let cenv = go ~path:(child_path path ~side:"common" c) ~common c in
      let lenv = go ~path:(child_path path ~side:"left" left) ~common:(Some cenv) left in
      let renv = go ~path:(child_path path ~side:"right" right) ~common:(Some cenv) right in
      begin
        match combine with
        | Logical.C_union ->
          check_union_fields ~path ~what:"WITH_COMMON(UNION)" lenv renv;
          lenv
        | Logical.C_join (keys, kind) -> begin
          check_join_keys ~path ~keys lenv renv;
          match kind with
          | Logical.Semi | Logical.Anti -> lenv
          | Logical.Inner | Logical.Left_outer -> union_env lenv renv
        end
      end
    | Logical.Select (x, e) ->
      let env = go ~path:(child_path path x) ~common x in
      check_bool_pred ~path ~what:"filter predicate" env e;
      env
    | Logical.Project (x, ps) ->
      let env = go ~path:(child_path path x) ~common x in
      let seen = Hashtbl.create 8 in
      let fields =
        List.map
          (fun (e, a) ->
            if Hashtbl.mem seen a then err ~path "duplicate projection alias %S" a;
            Hashtbl.replace seen a ();
            (a, infer_expr ~path env e))
          ps
      in
      closed fields
    | Logical.Join { left; right; keys; kind } -> begin
      let lenv = go ~path:(child_path path ~side:"left" left) ~common left in
      let renv = go ~path:(child_path path ~side:"right" right) ~common right in
      check_join_keys ~path ~keys lenv renv;
      match kind with
      | Logical.Semi | Logical.Anti -> lenv
      | Logical.Inner | Logical.Left_outer -> union_env lenv renv
    end
    | Logical.Group (x, ks, aggs) ->
      let env = go ~path:(child_path path x) ~common x in
      let seen = Hashtbl.create 8 in
      let out_alias a =
        if Hashtbl.mem seen a then err ~path "duplicate GROUP output alias %S" a;
        Hashtbl.replace seen a ()
      in
      let key_fields =
        List.map
          (fun (e, a) ->
            out_alias a;
            (a, infer_expr ~path env e))
          ks
      in
      let agg_fields =
        List.map
          (fun (a : Logical.agg) ->
            out_alias a.Logical.agg_alias;
            let arg_ty =
              match a.Logical.agg_arg with
              | Some e -> Some (infer_expr ~path env e)
              | None ->
                (match a.Logical.agg_fn with
                | Logical.Count -> ()
                | fn ->
                  err ~path "%s aggregate %S requires an argument" (agg_name fn)
                    a.Logical.agg_alias);
                None
            in
            let numeric_arg () =
              match arg_ty with
              | Some t when not (Et.is_numeric t) ->
                err ~path "%s aggregate %S over a %s argument"
                  (agg_name a.Logical.agg_fn) a.Logical.agg_alias (Et.to_string t)
              | _ -> ()
            in
            let ty =
              match a.Logical.agg_fn with
              | Logical.Count | Logical.Count_distinct -> Et.Int
              | Logical.Avg ->
                numeric_arg ();
                Et.Float
              | Logical.Sum -> begin
                numeric_arg ();
                match arg_ty with
                | Some (Et.Int as t) | Some (Et.Float as t) -> t
                | _ -> Et.Any
              end
              | Logical.Min | Logical.Max ->
                (match arg_ty with Some t -> t | None -> Et.Any)
              | Logical.Collect -> Et.List (match arg_ty with Some t -> t | None -> Et.Any)
            in
            (a.Logical.agg_alias, ty))
          aggs
      in
      closed (key_fields @ agg_fields)
    | Logical.Order (x, ks, lim) ->
      let env = go ~path:(child_path path x) ~common x in
      List.iter
        (fun (e, _) ->
          let t = infer_expr ~path env e in
          match t with
          | Et.List _ | Et.Path ->
            err ~path "ORDER BY on a %s value has no meaningful order (compares by length)"
              (Et.to_string t)
          | _ -> ())
        ks;
      (match lim with
      | Some n when n < 0 -> err ~path "negative ORDER top-k %d" n
      | _ -> ());
      env
    | Logical.Limit (x, n) ->
      let env = go ~path:(child_path path x) ~common x in
      if n < 0 then err ~path "negative LIMIT %d" n;
      env
    | Logical.Skip (x, n) ->
      let env = go ~path:(child_path path x) ~common x in
      if n < 0 then err ~path "negative SKIP %d" n;
      env
    | Logical.Unwind (x, e, alias) ->
      let env = go ~path:(child_path path x) ~common x in
      let t = infer_expr ~path env e in
      (match t with
      | Et.List _ | Et.Any -> ()
      | t -> err ~path "UNWIND over a %s value (expected a list)" (Et.to_string t));
      if mem env alias then warn ~path "UNWIND alias %S shadows an existing field" alias;
      let elem = match t with Et.List t' -> t' | _ -> Et.Any in
      union_env env (closed [ (alias, elem) ])
    | Logical.Dedup (x, tags) ->
      let env = go ~path:(child_path path x) ~common x in
      List.iter
        (fun tag ->
          use tag;
          if not (mem env tag) then err ~path "DEDUP tag %S is not a field of its input" tag)
        tags;
      env
    | Logical.Union (a, b) ->
      let lenv = go ~path:(child_path path ~side:"left" a) ~common a in
      let renv = go ~path:(child_path path ~side:"right" b) ~common b in
      check_union_fields ~path ~what:"UNION" lenv renv;
      lenv
    | Logical.All_distinct (x, tags) ->
      let env = go ~path:(child_path path x) ~common x in
      (* [tags = []] means "all edge fields below" (resolved by the planner) *)
      if tags = [] then
        Logical.fold
          (fun () node ->
            match node with
            | Logical.Match p | Logical.Pattern_cont (_, p) ->
              Array.iter (fun (e : Pattern.edge) -> use e.Pattern.e_alias) (Pattern.edges p)
            | _ -> ())
          () x;
      List.iter
        (fun tag ->
          use tag;
          match lookup env tag with
          | None -> err ~path "ALL_DISTINCT tag %S is not a field of its input" tag
          | Some (Et.Edge _ | Et.Path | Et.Any | Et.List _) -> ()
          | Some t ->
            err ~path "ALL_DISTINCT tag %S has type %s (expected an edge or path field)" tag
              (Et.to_string t))
        tags;
      env
  in
  let root_env = go ~path:(node_name plan) ~common:None plan in
  (* unused-binding lint: user-named pattern elements never referenced by any
     expression, key or tag, not junction vertices, and absent from the
     plan's output *)
  if not partial then begin
    let outputs = SS.of_list (field_names root_env) in
    Hashtbl.iter
      (fun alias (path, structural) ->
        if (not structural) && (not (SS.mem alias !used)) && not (SS.mem alias outputs)
        then warn ~path "binding %S is never used" alias)
      declared
  end;
  (List.rev !diags, root_env)

let check ?schema ?(partial = false) plan = fst (run ?schema ~partial plan)

let first_error ds = List.find_opt D.is_error ds

let env_of ?schema plan = (snd (run ?schema ~partial:true plan)).fields
