module Value = Gopt_graph.Value
module Schema = Gopt_graph.Schema
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module D = Diagnostic

type ty =
  | Any
  | Bool
  | Int
  | Float
  | Str
  | Node of Tc.t option
  | Edge of Tc.t option
  | Path
  | List of ty

let rec to_string = function
  | Any -> "any"
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | Str -> "string"
  | Node _ -> "node"
  | Edge _ -> "edge"
  | Path -> "path"
  | List t -> "list<" ^ to_string t ^ ">"

let of_value = function
  | Value.Null -> Any
  | Value.Bool _ -> Bool
  | Value.Int _ -> Int
  | Value.Float _ -> Float
  | Value.Str _ -> Str

(* Kind lattice used for compatibility questions: values of different kinds
   never compare equal at runtime (Value.compare orders them by constructor,
   elements scalarize to ids), so a known cross-kind comparison is at best a
   constant. *)
type kind = K_any | K_num | K_str | K_bool | K_elem | K_path | K_list

let kind = function
  | Any -> K_any
  | Int | Float -> K_num
  | Str -> K_str
  | Bool -> K_bool
  | Node _ | Edge _ -> K_elem
  | Path -> K_path
  | List _ -> K_list

let is_numeric t = match kind t with K_num | K_any -> true | _ -> false

let compatible a b =
  match kind a, kind b with
  | K_any, _ | _, K_any -> true
  | ka, kb -> ka = kb

let of_kind = function
  | Schema.P_bool -> Bool
  | Schema.P_int -> Int
  | Schema.P_float -> Float
  | Schema.P_string -> Str

let join a b =
  if a = b then a
  else
    match a, b with
    | (Int | Float), (Int | Float) -> Float
    | _ -> Any

let prop_ty schema ~is_vertex con key =
  let universe = if is_vertex then Schema.n_vtypes schema else Schema.n_etypes schema in
  let props t = if is_vertex then Schema.vprops schema t else Schema.eprops schema t in
  let name t = if is_vertex then Schema.vtype_name schema t else Schema.etype_name schema t in
  match con with
  | None -> (Any, None)
  | Some con ->
    let admitted = Tc.to_list ~universe con in
    let declared =
      List.filter_map (fun t -> Option.map of_kind (List.assoc_opt key (props t))) admitted
    in
    (match declared with
    | [] ->
      ( Any,
        Some
          (Printf.sprintf "property %S is not declared on %s type%s %s" key
             (if is_vertex then "vertex" else "edge")
             (if List.length admitted = 1 then "" else "s")
             (String.concat "|" (List.map name admitted))) )
    | k :: rest -> (List.fold_left join k rest, None))

let infer ?schema ?(param_ty = fun _ -> None) ~lookup ~path e =
  let diags = ref [] in
  let err fmt = Printf.ksprintf (fun m -> diags := D.error ~path m :: !diags) fmt in
  let warn fmt = Printf.ksprintf (fun m -> diags := D.warning ~path m :: !diags) fmt in
  let resolve x =
    match lookup x with
    | Some t -> t
    | None ->
      err "unbound variable %S" x;
      Any
  in
  let rec go e =
    match e with
    | Expr.Const v -> of_value v
    | Expr.Param name -> begin
      (* A runtime placeholder: typed [Any] unless the caller declares (or
         has inferred) a kind for the binding, in which case the parameter
         participates in compatibility checks like any other operand. *)
      match param_ty name with
      | Some t -> begin
        match kind t with
        | K_any | K_num | K_str | K_bool -> t
        | _ ->
          err "parameter $%s declared with non-scalar type %s" name (to_string t);
          Any
      end
      | None -> Any
    end
    | Expr.Var x -> resolve x
    | Expr.Prop (x, key) -> begin
      match resolve x with
      | Node con -> begin
        match schema with
        | None -> Any
        | Some s ->
          let t, w = prop_ty s ~is_vertex:true con key in
          Option.iter (fun m -> warn "%s" m) w;
          t
      end
      | Edge con -> begin
        match schema with
        | None -> Any
        | Some s ->
          let t, w = prop_ty s ~is_vertex:false con key in
          Option.iter (fun m -> warn "%s" m) w;
          t
      end
      | Path ->
        warn "property access %s.%s on a variable-length path is always null" x key;
        Any
      | Any -> Any
      | t ->
        err "property access %s.%s on a %s value" x key (to_string t);
        Any
    end
    | Expr.Label x -> begin
      match resolve x with
      | Node _ | Edge _ | Any -> Str
      | t ->
        err "label(%s) on a %s value" x (to_string t);
        Str
    end
    | Expr.Unop (op, inner) -> begin
      let t = go inner in
      match op with
      | Expr.Not ->
        if not (compatible t Bool) then err "NOT applied to a %s operand" (to_string t);
        Bool
      | Expr.Neg ->
        if not (is_numeric t) then err "unary minus applied to a %s operand" (to_string t);
        (match t with Int | Float -> t | _ -> Any)
      | Expr.Is_null | Expr.Is_not_null -> Bool
    end
    | Expr.Binop (op, l, r) -> begin
      let tl = go l and tr = go r in
      match op with
      | Expr.And | Expr.Or ->
        if not (compatible tl Bool) then
          err "%s with a %s operand" (Expr.binop_name op) (to_string tl);
        if not (compatible tr Bool) then
          err "%s with a %s operand" (Expr.binop_name op) (to_string tr);
        Bool
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod ->
        if not (is_numeric tl) then
          err "arithmetic %S on a %s operand" (Expr.binop_name op) (to_string tl);
        if not (is_numeric tr) then
          err "arithmetic %S on a %s operand" (Expr.binop_name op) (to_string tr);
        (match tl, tr with
        | Int, Int -> Int
        | (Int | Float), (Int | Float) -> Float
        | _ -> Any)
      | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq ->
        if not (compatible tl tr) then
          warn "comparison %s %s %s between incompatible types never holds at runtime"
            (to_string tl) (Expr.binop_name op) (to_string tr);
        Bool
      | Expr.Starts_with | Expr.Ends_with | Expr.Contains ->
        if not (compatible tl Str) then
          err "%s on a %s operand" (Expr.binop_name op) (to_string tl);
        if not (compatible tr Str) then
          err "%s on a %s operand" (Expr.binop_name op) (to_string tr);
        Bool
    end
    | Expr.In_list (inner, vs) ->
      let t = go inner in
      let vts = List.filter_map (fun v -> if Value.is_null v then None else Some (of_value v)) vs in
      if vts <> [] && not (List.exists (compatible t) vts) then
        warn "IN over a list of %s values never matches a %s operand"
          (to_string (List.hd vts)) (to_string t);
      Bool
  in
  let t = go e in
  (t, List.rev !diags)
