(** Static well-formedness verification of GIR logical plans.

    The optimizer's rewrite contract (paper §6–§7) requires every stage —
    RBO rules, ComSubPattern factoring, CBO orders, physical lowering — to
    preserve plan well-formedness. This module makes that contract
    machine-checked: {!check} walks a {!Gopt_gir.Logical.t} bottom-up,
    tracking the typed field environment every operator produces, and
    reports structural violations as {!Diagnostic.t}s instead of letting
    them surface as [assert false]/[failwith] deep in lowering or the
    engines.

    Invariant catalog (errors unless noted):
    - every expression variable resolves to an output field of its input;
    - filter predicates type as booleans; arithmetic/string/logic operands
      type-check against the schema's declared property kinds;
    - [Join] keys exist on both sides, with kind-compatible types;
    - [Common_ref] appears only inside a [With_common] branch;
    - pattern aliases are namespace-disjoint (no vertex/edge collision);
    - disconnected [Match] patterns warn (planner forms a cartesian
      product); a [Pattern_cont] component sharing no vertex with its bound
      input is an error (the continuation compiler cannot bind it);
    - [Project]/[Group] output aliases are collision-free;
    - [Group] aggregates have required arguments with numeric inputs where
      the aggregate demands it ([SUM]/[AVG]);
    - [Order] keys are not lists/paths; [Order] top-k, [Limit], [Skip]
      counts are non-negative;
    - [Unwind] operands are lists; [Dedup] tags are input fields;
    - [All_distinct] tags name edge or path fields of the input;
    - [Union] (and [With_common C_union]) branches produce the same field
      set (differing order is a warning);
    - user-named pattern bindings that are never referenced warn (skipped
      in [~partial] mode). *)

val check :
  ?schema:Gopt_graph.Schema.t ->
  ?partial:bool ->
  Gopt_gir.Logical.t ->
  Diagnostic.t list
(** [check ?schema ?partial plan] returns all diagnostics, outermost
    operators first. With [schema], pattern constraints are narrowed through
    {!Gopt_typeinf.Type_inference} first (an unsatisfiable pattern is a
    warning — the planner compiles it to an empty scan) and property
    accesses are checked against declared property kinds.

    [~partial:true] checks a plan {e fragment}, as the checked rule rewriter
    does after each rule firing: a [Common_ref] whose [With_common] ancestor
    lies outside the fragment is treated as an unknown-but-bound input
    rather than an error, and the unused-binding lint is skipped. *)

val first_error : Diagnostic.t list -> Diagnostic.t option

val env_of :
  ?schema:Gopt_graph.Schema.t ->
  Gopt_gir.Logical.t ->
  (string * Expr_type.ty) list
(** The typed output fields the checker derives for a plan (exposed for the
    physical-plan checker and tests). *)
