(** Static types for GIR expressions.

    The execution engines are dynamically typed over {!Gopt_graph.Value.t}
    (plus vertices/edges/paths/lists at the {i Rval} level); this module
    assigns each {!Gopt_pattern.Expr.t} a static type against a field
    environment and, when available, the graph schema's declared property
    kinds — flagging expressions that can only evaluate to [Null] at runtime
    (e.g. [a.name + 1], [NOT a.age]) before the plan ever executes. *)

type ty =
  | Any  (** Unknown / dynamically null-able; unifies with everything. *)
  | Bool
  | Int
  | Float
  | Str
  | Node of Gopt_pattern.Type_constraint.t option
      (** A pattern vertex, with its (possibly inferred) type constraint. *)
  | Edge of Gopt_pattern.Type_constraint.t option
  | Path  (** A variable-length path binding. *)
  | List of ty  (** Result of COLLECT. *)

val to_string : ty -> string

val of_value : Gopt_graph.Value.t -> ty
(** [Null] maps to {!Any}. *)

val is_numeric : ty -> bool
(** [Int], [Float] or [Any]. *)

val compatible : ty -> ty -> bool
(** Whether two types can meaningfully compare/join: same kind (numeric,
    string, bool, element, path, list), or either side is {!Any}. *)

val infer :
  ?schema:Gopt_graph.Schema.t ->
  ?param_ty:(string -> ty option) ->
  lookup:(string -> ty option) ->
  path:string ->
  Gopt_pattern.Expr.t ->
  ty * Diagnostic.t list
(** [infer ?schema ~lookup ~path e] types [e] under the field environment
    [lookup]. Diagnostics (unbound variables, arithmetic on non-numeric
    operands, boolean connectives over non-booleans, string predicates over
    non-strings, property access on scalars, undeclared properties) are
    anchored at [path]. With [schema], [Prop] accesses resolve the declared
    property kinds of the types admitted by the element's constraint.
    [param_ty] supplies a declared/inferred scalar kind for [Param]
    placeholders (prepared statements); parameters without one type as
    {!Any}, and a declared non-scalar parameter kind is an error. *)

val prop_ty :
  Gopt_graph.Schema.t ->
  is_vertex:bool ->
  Gopt_pattern.Type_constraint.t option ->
  string ->
  ty * string option
(** [prop_ty schema ~is_vertex con key] is the static type of property [key]
    on an element constrained by [con], together with [Some warning] when no
    admitted type declares [key]. *)
