module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
module D = Gopt_check.Diagnostic
module Et = Gopt_check.Expr_type
module SS = Set.Make (String)

(* A light bottom-up mirror of Plan_check for Physical.t: every operator's
   input requirements (expand sources bound, join keys present, expressions
   typed over the incoming fields) are checked against the typed env its
   input produces. *)

let node_path p = Physical.node_label p

let check ?schema plan =
  let diags = ref [] in
  let err ~path fmt = Printf.ksprintf (fun m -> diags := D.error ~path m :: !diags) fmt in
  let infer ~path env e =
    let lookup x = List.assoc_opt x env in
    let t, ds = Et.infer ?schema ~lookup ~path e in
    diags := List.rev_append ds !diags;
    t
  in
  let check_pred ~path ~what env e =
    let t = infer ~path env e in
    if not (Et.compatible t Et.Bool) then
      err ~path "%s has type %s (expected bool)" what (Et.to_string t)
  in
  let add env (f, t) = if List.mem_assoc f env then env else env @ [ (f, t) ] in
  let step_fields (s : Physical.edge_step) =
    let ety =
      if s.Physical.s_edge.Pattern.e_hops <> None then Et.Path
      else Et.Edge (Some s.Physical.s_edge.Pattern.e_con)
    in
    (ety, (s.Physical.s_to, Et.Node (Some s.Physical.s_to_con)))
  in
  let check_step ~path ~expand env (s : Physical.edge_step) =
    if not (List.mem_assoc s.Physical.s_from env) then
      err ~path "expand source %S is not bound by the input" s.Physical.s_from;
    let ety, tof = step_fields s in
    let env' = add (add env (s.Physical.s_edge.Pattern.e_alias, ety)) tof in
    (match s.Physical.s_to_pred with
    | Some p ->
      check_pred ~path ~what:(Printf.sprintf "target predicate on %S" s.Physical.s_to) env' p
    | None -> ());
    ignore expand;
    env'
  in
  let rec go ~common node =
    let path = node_path node in
    match node with
    | Physical.Scan { alias; con; pred } ->
      let env = [ (alias, Et.Node (Some con)) ] in
      (match pred with
      | Some p -> check_pred ~path ~what:(Printf.sprintf "scan predicate on %S" alias) env p
      | None -> ());
      env
    | Physical.Expand_all (x, s) | Physical.Path_expand (x, s) ->
      let env = go ~common x in
      check_step ~path ~expand:`All env s
    | Physical.Expand_into (x, s) ->
      let env = go ~common x in
      if not (List.mem_assoc s.Physical.s_to env) then
        err ~path "ExpandInto target %S is not bound by the input (use ExpandAll)"
          s.Physical.s_to;
      check_step ~path ~expand:`Into env s
    | Physical.Expand_intersect (x, steps) -> begin
      let env = go ~common x in
      match steps with
      | [] ->
        err ~path "ExpandIntersect with no steps";
        env
      | s0 :: rest ->
        List.iter
          (fun s ->
            if s.Physical.s_to <> s0.Physical.s_to then
              err ~path "ExpandIntersect steps target different vertices (%S vs %S)"
                s.Physical.s_to s0.Physical.s_to)
          rest;
        if List.mem_assoc s0.Physical.s_to env then
          err ~path "ExpandIntersect target %S is already bound by the input"
            s0.Physical.s_to;
        List.fold_left (fun env s -> check_step ~path ~expand:`Intersect env s) env steps
    end
    | Physical.Hash_join { left; right; keys; kind } -> begin
      let lenv = go ~common left and renv = go ~common right in
      List.iter
        (fun k ->
          (match List.assoc_opt k lenv with
          | None -> err ~path "join key %S is not a field of the left input" k
          | Some _ -> ());
          (match List.assoc_opt k renv with
          | None -> err ~path "join key %S is not a field of the right input" k
          | Some _ -> ());
          match (List.assoc_opt k lenv, List.assoc_opt k renv) with
          | Some l, Some r when not (Et.compatible l r) ->
            err ~path "join key %S has type %s on the left but %s on the right" k
              (Et.to_string l) (Et.to_string r)
          | _ -> ())
        keys;
      match kind with
      | Logical.Semi | Logical.Anti -> lenv
      | Logical.Inner | Logical.Left_outer -> List.fold_left add lenv renv
    end
    | Physical.Select (x, e) ->
      let env = go ~common x in
      check_pred ~path ~what:"filter predicate" env e;
      env
    | Physical.Project (x, ps) ->
      let env = go ~common x in
      let seen = Hashtbl.create 8 in
      List.map
        (fun (e, a) ->
          if Hashtbl.mem seen a then err ~path "duplicate projection alias %S" a;
          Hashtbl.replace seen a ();
          (a, infer ~path env e))
        ps
    | Physical.Group (x, ks, aggs) ->
      let env = go ~common x in
      let seen = Hashtbl.create 8 in
      let out a =
        if Hashtbl.mem seen a then err ~path "duplicate GROUP output alias %S" a;
        Hashtbl.replace seen a ()
      in
      let keys = List.map (fun (e, a) -> out a; (a, infer ~path env e)) ks in
      let afs =
        List.map
          (fun (a : Logical.agg) ->
            out a.Logical.agg_alias;
            (match a.Logical.agg_arg with
            | Some e -> ignore (infer ~path env e)
            | None ->
              if a.Logical.agg_fn <> Logical.Count then
                err ~path "aggregate %S requires an argument" a.Logical.agg_alias);
            (a.Logical.agg_alias, Et.Any))
          aggs
      in
      keys @ afs
    | Physical.Order (x, ks, lim) ->
      let env = go ~common x in
      List.iter
        (fun (e, _) ->
          match infer ~path env e with
          | Et.List _ | Et.Path ->
            err ~path "ORDER BY on a list/path value has no meaningful order"
          | _ -> ())
        ks;
      (match lim with Some n when n < 0 -> err ~path "negative ORDER top-k %d" n | _ -> ());
      env
    | Physical.Limit (x, n) ->
      let env = go ~common x in
      if n < 0 then err ~path "negative LIMIT %d" n;
      env
    | Physical.Skip (x, n) ->
      let env = go ~common x in
      if n < 0 then err ~path "negative SKIP %d" n;
      env
    | Physical.Unfold (x, e, alias) ->
      let env = go ~common x in
      let t = infer ~path env e in
      (match t with
      | Et.List _ | Et.Any -> ()
      | t -> err ~path "Unfold over a %s value (expected a list)" (Et.to_string t));
      add env (alias, match t with Et.List t' -> t' | _ -> Et.Any)
    | Physical.Dedup (x, tags) ->
      let env = go ~common x in
      List.iter
        (fun tag ->
          if not (List.mem_assoc tag env) then
            err ~path "DEDUP tag %S is not a field of its input" tag)
        tags;
      env
    | Physical.Union (a, b) ->
      let lenv = go ~common a and renv = go ~common b in
      if not (SS.equal (SS.of_list (List.map fst lenv)) (SS.of_list (List.map fst renv)))
      then
        err ~path "UNION branches produce different fields: [%s] vs [%s]"
          (String.concat ", " (List.map fst lenv))
          (String.concat ", " (List.map fst renv));
      lenv
    | Physical.All_distinct (x, tags) ->
      let env = go ~common x in
      List.iter
        (fun tag ->
          match List.assoc_opt tag env with
          | None -> err ~path "ALL_DISTINCT tag %S is not a field of its input" tag
          | Some (Et.Edge _ | Et.Path | Et.Any | Et.List _) -> ()
          | Some t ->
            err ~path "ALL_DISTINCT tag %S has type %s (expected an edge or path field)"
              tag (Et.to_string t))
        tags;
      env
    | Physical.With_common { common = c; left; right; combine } -> begin
      let cenv = go ~common c in
      let lenv = go ~common:(Some cenv) left and renv = go ~common:(Some cenv) right in
      match combine with
      | Logical.C_union ->
        if
          not
            (SS.equal (SS.of_list (List.map fst lenv)) (SS.of_list (List.map fst renv)))
        then
          err ~path "WITH_COMMON(UNION) branches produce different fields: [%s] vs [%s]"
            (String.concat ", " (List.map fst lenv))
            (String.concat ", " (List.map fst renv));
        lenv
      | Logical.C_join (keys, kind) -> begin
        List.iter
          (fun k ->
            if not (List.mem_assoc k lenv) then
              err ~path "join key %S is not a field of the left branch" k;
            if not (List.mem_assoc k renv) then
              err ~path "join key %S is not a field of the right branch" k)
          keys;
        match kind with
        | Logical.Semi | Logical.Anti -> lenv
        | Logical.Inner | Logical.Left_outer -> List.fold_left add lenv renv
      end
    end
    | Physical.Common_ref fields -> begin
      match common with
      | None ->
        err ~path "CommonRef outside the scope of a WithCommon operator";
        List.map (fun f -> (f, Et.Any)) fields
      | Some cenv ->
        List.map
          (fun f ->
            match List.assoc_opt f cenv with
            | Some t -> (f, t)
            | None ->
              err ~path "CommonRef field %S is not produced by the common sub-plan" f;
              (f, Et.Any))
          fields
    end
    | Physical.Empty fields -> List.map (fun f -> (f, Et.Any)) fields
  in
  let _ = go ~common:None plan in
  List.rev !diags
