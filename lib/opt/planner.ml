module Logical = Gopt_gir.Logical
module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr
module Gq = Gopt_glogue.Glogue_query
module Ti = Gopt_typeinf.Type_inference
module SS = Set.Make (String)

type config = {
  spec : Physical_spec.t;
  enable_rbo : bool;
  rules : Rule.t list;
  enable_field_trim : bool;
  enable_type_inference : bool;
  inference_schema : Gopt_graph.Schema.t option;
  enable_cbo : bool;
  cbo_options : Cbo.options;
  check_plans : bool;
}

let default_config ?(spec = Physical_spec.graphscope) () =
  {
    spec;
    enable_rbo = true;
    rules = Rules_pattern.all @ Rules_relational.all;
    enable_field_trim = true;
    enable_type_inference = true;
    inference_schema = None;
    enable_cbo = true;
    cbo_options = Cbo.default_options;
    check_plans = false;
  }

type cache_note = {
  cache_hit : bool;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
}

type report = {
  logical_input : Logical.t;
  logical_optimized : Logical.t;
  rules_applied : string list;
  invalid_patterns : int;
  search_stats : Cbo.search_stats list;
  est_costs : float list;
  diagnostics : (string * Gopt_check.Diagnostic.t list) list;
  plan_cache : cache_note option;
}

(* --- user-order compilation (rule-based-only backends) ------------------ *)

let binding_groups p ~initially_bound =
  let nv = Pattern.n_vertices p in
  let bound = Array.make nv false in
  let alias i = (Pattern.vertex p i).Pattern.v_alias in
  List.iter
    (fun a ->
      match Pattern.vertex_of_alias p a with Some i -> bound.(i) <- true | None -> ())
    initially_bound;
  let start =
    if Array.exists Fun.id bound then None
    else begin
      bound.(0) <- true;
      Some 0
    end
  in
  let groups = ref [] in
  let remaining () =
    List.filter (fun v -> not bound.(v)) (List.init nv Fun.id)
  in
  let adjacent_to_bound v =
    List.exists (fun (_, u) -> bound.(u)) (Pattern.neighbors p v)
  in
  while remaining () <> [] do
    let next =
      match List.filter adjacent_to_bound (remaining ()) with
      | v :: _ -> v
      | [] ->
        (* disconnected from the bound part: start a fresh component (the
           engine handles the implied cartesian semantics of ExpandAll from
           nothing is not possible, so callers split components first) *)
        List.hd (remaining ())
    in
    let edges =
      List.filter
        (fun ei ->
          let e = Pattern.edge p ei in
          let other = if e.Pattern.e_src = next then e.Pattern.e_dst else e.Pattern.e_src in
          bound.(other))
        (Pattern.incident_edges p next)
    in
    bound.(next) <- true;
    groups := (alias next, List.map (Pattern.edge p) edges) :: !groups
  done;
  (start, List.rev !groups)

let compile_user_order spec p =
  if Pattern.n_vertices p = 0 then
    invalid_arg
      "Planner.compile_user_order: empty pattern — a Match must bind at least one vertex \
       (PlanCheck rejects such plans statically)";
  let start, groups = binding_groups p ~initially_bound:[] in
  let input =
    match start with
    | Some i ->
      let v = Pattern.vertex p i in
      Physical.Scan { alias = v.Pattern.v_alias; con = v.Pattern.v_con; pred = v.Pattern.v_pred }
    | None ->
      (* unreachable with initially_bound:[] and a non-empty pattern *)
      invalid_arg "Planner.compile_user_order: no start vertex for a non-empty pattern"
  in
  List.fold_left
    (fun acc (alias, edges) -> Cbo.compile_expansion spec acc p ~new_vertex_alias:alias edges)
    input groups

(* --- continuation compilation (after ComSubPattern) --------------------- *)

let compile_continuation gq spec input p ~bound =
  let nv = Pattern.n_vertices p in
  let bound_v = Array.make nv false in
  List.iter
    (fun a ->
      match Pattern.vertex_of_alias p a with Some i -> bound_v.(i) <- true | None -> ())
    bound;
  let bound_e = Array.make (Pattern.n_edges p) false in
  List.iter
    (fun a ->
      match Pattern.edge_of_alias p a with Some i -> bound_e.(i) <- true | None -> ())
    bound;
  let alias i = (Pattern.vertex p i).Pattern.v_alias in
  let result = ref input in
  let unmatched_edges () =
    List.filter (fun e -> not bound_e.(e)) (List.init (Pattern.n_edges p) Fun.id)
  in
  (* single-edge frequency, used to order candidate expansions greedily *)
  let edge_weight ei =
    let sub, _ = Pattern.sub_by_edges p [ ei ] in
    Gq.get_freq gq sub
  in
  while unmatched_edges () <> [] do
    (* close edges whose endpoints are both bound *)
    let closing =
      List.filter
        (fun ei ->
          let e = Pattern.edge p ei in
          bound_v.(e.Pattern.e_src) && bound_v.(e.Pattern.e_dst))
        (unmatched_edges ())
    in
    if closing <> [] then
      List.iter
        (fun ei ->
          let e = Pattern.edge p ei in
          let step =
            {
              Physical.s_edge = e;
              s_from = alias e.Pattern.e_src;
              s_to = alias e.Pattern.e_dst;
              s_forward = true;
              s_to_con = (Pattern.vertex p e.Pattern.e_dst).Pattern.v_con;
              s_to_pred = (Pattern.vertex p e.Pattern.e_dst).Pattern.v_pred;
            }
          in
          result :=
            (if e.Pattern.e_hops = None then Physical.Expand_into (!result, step)
             else Physical.Path_expand (!result, step));
          bound_e.(ei) <- true)
        closing
    else begin
      (* bind the frontier vertex with the cheapest connecting edges *)
      let candidates =
        List.filter
          (fun v ->
            (not bound_v.(v))
            && List.exists (fun (_, u) -> bound_v.(u)) (Pattern.neighbors p v))
          (List.init nv Fun.id)
      in
      match candidates with
      | [] ->
        let unbound =
          List.filter_map
            (fun v -> if bound_v.(v) then None else Some (alias v))
            (List.init nv Fun.id)
        in
        invalid_arg
          (Printf.sprintf
             "Planner.compile_continuation: pattern vertices {%s} share no vertex with the \
              bound set [%s] — PlanCheck reports this as a disconnected PatternCont \
              component before planning"
             (String.concat ", " unbound) (String.concat ", " bound))
      | _ ->
        let score v =
          let connecting =
            List.filter
              (fun ei ->
                let e = Pattern.edge p ei in
                let other = if e.Pattern.e_src = v then e.Pattern.e_dst else e.Pattern.e_src in
                (not bound_e.(ei)) && bound_v.(other))
              (Pattern.incident_edges p v)
          in
          (List.fold_left (fun acc ei -> Float.min acc (edge_weight ei)) Float.infinity connecting, connecting)
        in
        let v, (_, connecting) =
          List.fold_left
            (fun (bv, (bs, bc)) v ->
              let s, c = score v in
              if s < bs then (v, (s, c)) else (bv, (bs, bc)))
            (List.hd candidates, score (List.hd candidates))
            (List.tl candidates)
        in
        result :=
          Cbo.compile_expansion spec !result p ~new_vertex_alias:(alias v)
            (List.map (Pattern.edge p) connecting);
        bound_v.(v) <- true;
        List.iter (fun ei -> bound_e.(ei) <- true) connecting
    end
  done;
  !result

(* --- pattern components -------------------------------------------------- *)

let components p =
  let nv = Pattern.n_vertices p in
  let comp = Array.make nv (-1) in
  let next = ref 0 in
  for v = 0 to nv - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let rec dfs x =
        if comp.(x) < 0 then begin
          comp.(x) <- id;
          List.iter (fun (_, y) -> dfs y) (Pattern.neighbors p x)
        end
      in
      dfs v
    end
  done;
  List.init !next (fun c ->
      let vs = List.filter (fun v -> comp.(v) = c) (List.init nv Fun.id) in
      let es =
        List.filter
          (fun ei -> comp.((Pattern.edge p ei).Pattern.e_src) = c)
          (List.init (Pattern.n_edges p) Fun.id)
      in
      if es = [] then Pattern.single_vertex p (List.hd vs)
      else fst (Pattern.sub_by_edges p es))

(* --- full pipeline -------------------------------------------------------- *)

let infer_pass schema plan =
  let invalid = ref 0 in
  let narrow p =
    match Ti.infer schema p with
    | Ti.Inferred (p', _) -> p'
    | Ti.Invalid ->
      incr invalid;
      p
  in
  let rec go node =
    let node =
      match node with
      | Logical.Match p -> Logical.Match (narrow p)
      | Logical.Pattern_cont (x, p) -> Logical.Pattern_cont (x, narrow p)
      | other -> other
    in
    Logical.map_children go node
  in
  let plan' = go plan in
  (plan', !invalid)

let edge_aliases_below plan =
  Logical.fold
    (fun acc node ->
      match node with
      | Logical.Match p | Logical.Pattern_cont (_, p) ->
        Array.fold_left
          (fun acc (e : Pattern.edge) -> SS.add e.Pattern.e_alias acc)
          acc (Pattern.edges p)
      | _ -> acc)
    SS.empty plan

let plan config gq logical =
  let schema =
    match config.inference_schema with Some s -> s | None -> Gq.schema gq
  in
  let diagnostics = ref [] in
  let stage name check x =
    if config.check_plans then diagnostics := (name, check x) :: !diagnostics;
    x
  in
  let check_logical = Gopt_check.Plan_check.check ~schema in
  let logical = stage "logical" check_logical logical in
  let l1 =
    if config.enable_rbo then
      Rule.fixpoint ~check:config.check_plans ~schema config.rules logical
    else (logical, [])
  in
  let l1, rules_applied = l1 in
  let l1 = if config.enable_field_trim then Rules_pattern.field_trim l1 else l1 in
  let l1 = stage "rbo" check_logical l1 in
  let l2, invalid_patterns =
    if config.enable_type_inference then infer_pass schema l1 else (l1, 0)
  in
  let l2 = stage "optimized" check_logical l2 in
  (* Reject structurally broken plans before the cost-based search runs:
     the invariants PlanCheck flags as errors are exactly the ones the
     pattern compilers below cannot handle. *)
  (if config.check_plans then
     match Gopt_check.Plan_check.first_error (check_logical l2) with
     | Some d ->
       invalid_arg
         (Printf.sprintf "Planner.plan: ill-formed plan reaches the CBO: %s"
            (Format.asprintf "%a" Gopt_check.Diagnostic.pp d))
     | None -> ());
  let search_stats = ref [] and est_costs = ref [] in
  let plan_pattern p =
    if config.enable_type_inference && Ti.infer schema p = Ti.Invalid then
      Physical.Empty (Logical.output_fields (Logical.Match p))
    else begin
      let plan_component sub =
        if config.enable_cbo then begin
          let cplan, stats = Cbo.optimize ~options:config.cbo_options gq config.spec sub in
          search_stats := stats :: !search_stats;
          est_costs := cplan.Cbo.cost :: !est_costs;
          Cbo.to_physical config.spec cplan
        end
        else compile_user_order config.spec sub
      in
      match components p with
      | [] -> Physical.Empty []
      | [ single ] -> plan_component single
      | many ->
        (* cartesian combination of independent components *)
        let phys = List.map plan_component many in
        List.fold_left
          (fun acc ph ->
            Physical.Hash_join { left = acc; right = ph; keys = []; kind = Logical.Inner })
          (List.hd phys) (List.tl phys)
    end
  in
  let rec to_phys ?(common_fields = []) node =
    let to_phys_c n = to_phys ~common_fields n in
    match node with
    | Logical.Match p -> plan_pattern p
    | Logical.Pattern_cont (x, p) ->
      let input = to_phys_c x in
      if config.enable_type_inference && Ti.infer schema p = Ti.Invalid then
        Physical.Empty (Logical.output_fields node)
      else
        let bound = Physical.output_fields input in
        compile_continuation gq config.spec input p ~bound
    | Logical.Common_ref -> Physical.Common_ref common_fields
    | Logical.With_common { common; left; right; combine } ->
      let common_phys = to_phys_c common in
      let cf = Physical.output_fields common_phys in
      Physical.With_common
        {
          common = common_phys;
          left = to_phys ~common_fields:cf left;
          right = to_phys ~common_fields:cf right;
          combine;
        }
    | Logical.Select (x, e) -> Physical.Select (to_phys_c x, e)
    | Logical.Project (x, ps) -> Physical.Project (to_phys_c x, ps)
    | Logical.Join { left; right; keys; kind } ->
      Physical.Hash_join { left = to_phys_c left; right = to_phys_c right; keys; kind }
    | Logical.Group (x, ks, aggs) -> Physical.Group (to_phys_c x, ks, aggs)
    | Logical.Order (x, ks, lim) -> Physical.Order (to_phys_c x, ks, lim)
    | Logical.Limit (x, n) -> Physical.Limit (to_phys_c x, n)
    | Logical.Skip (x, n) -> Physical.Skip (to_phys_c x, n)
    | Logical.Unwind (x, e, a) -> Physical.Unfold (to_phys_c x, e, a)
    | Logical.Dedup (x, tags) -> Physical.Dedup (to_phys_c x, tags)
    | Logical.Union (a, b) -> Physical.Union (to_phys_c a, to_phys_c b)
    | Logical.All_distinct (x, tags) ->
      let phys = to_phys_c x in
      let aliases =
        match tags with
        | [] ->
          SS.elements
            (SS.inter (edge_aliases_below x) (SS.of_list (Physical.output_fields phys)))
        | _ -> tags
      in
      Physical.All_distinct (phys, aliases)
  in
  let phys = to_phys l2 in
  let phys = stage "physical" (Physical_check.check ~schema) phys in
  ( phys,
    {
      logical_input = logical;
      logical_optimized = l2;
      rules_applied;
      invalid_patterns;
      search_stats = List.rev !search_stats;
      est_costs = List.rev !est_costs;
      diagnostics = List.rev !diagnostics;
      plan_cache = None;
    } )
