module Logical = Gopt_gir.Logical
module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr
module Tc = Gopt_pattern.Type_constraint
module SS = Set.Make (String)

(* --- FilterIntoPattern ------------------------------------------------- *)

(* A conjunct is pushable when all its tag references resolve to one pattern
   element; it then becomes part of that element's matching predicate. *)
let push_conjunct p conj =
  match Expr.free_tags conj with
  | [ tag ] -> begin
    match Pattern.vertex_of_alias p tag with
    | Some v -> Some (Pattern.add_vertex_pred p v conj)
    | None -> (
      match Pattern.edge_of_alias p tag with
      | Some e when (Pattern.edge p e).Pattern.e_hops = None ->
        Some (Pattern.add_edge_pred p e conj)
      | _ -> None)
  end
  | _ -> None

let filter_into_pattern =
  Rule.make "FilterIntoPattern" (fun node ->
      let rewrite inner_rebuild p pred =
        let pushed, remaining =
          List.fold_left
            (fun (p, rem) conj ->
              match push_conjunct p conj with
              | Some p' -> (p', rem)
              | None -> (p, conj :: rem))
            (p, []) (Expr.conjuncts pred)
        in
        if List.length remaining = List.length (Expr.conjuncts pred) then None
        else
          let inner = inner_rebuild pushed in
          match Expr.conj (List.rev remaining) with
          | None -> Some inner
          | Some rest -> Some (Logical.Select (inner, rest))
      in
      match node with
      | Logical.Select (Logical.Match p, pred) ->
        rewrite (fun p' -> Logical.Match p') p pred
      | Logical.Select (Logical.Pattern_cont (x, p), pred) ->
        rewrite (fun p' -> Logical.Pattern_cont (x, p')) p pred
      | _ -> None)

(* --- JoinToPattern ------------------------------------------------------ *)

(* A MATCH side possibly carrying its per-clause no-repeated-edge filter.
   The filter's explicit edge list lets it survive the fusion: each original
   clause keeps distinctness among its own edges only (Cypher semantics). *)
let match_side = function
  | Logical.Match p -> Some (p, [])
  | Logical.All_distinct (Logical.Match p, tags) when tags <> [] -> Some (p, tags)
  | _ -> None

let join_to_pattern =
  Rule.make "JoinToPattern" (fun node ->
      match node with
      | Logical.Join { left; right; keys; kind = Logical.Inner } -> begin
        match match_side left, match_side right with
        | Some (p1, tags1), Some (p2, tags2) -> begin
          let shared = List.sort String.compare (Pattern.shared_aliases p1 p2) in
          let keys' = List.sort String.compare keys in
          if shared <> [] && shared = keys' then
            match Pattern.merge p1 p2 with
            | merged ->
              let plan = Logical.Match merged in
              let plan = if tags1 = [] then plan else Logical.All_distinct (plan, tags1) in
              let plan = if tags2 = [] then plan else Logical.All_distinct (plan, tags2) in
              Some plan
            | exception Invalid_argument _ -> None
          else None
        end
        | _ -> None
      end
      | _ -> None)

(* --- ComSubPattern ------------------------------------------------------ *)

(* Peel Select/Project/Dedup wrappers off a branch down to its MATCH. *)
let rec peel = function
  | Logical.Match p -> Some ((fun m -> m), p)
  | Logical.Select (x, e) ->
    Option.map (fun (rb, p) -> ((fun m -> Logical.Select (rb m, e)), p)) (peel x)
  | Logical.Project (x, ps) ->
    Option.map (fun (rb, p) -> ((fun m -> Logical.Project (rb m, ps)), p)) (peel x)
  | Logical.Dedup (x, tags) ->
    Option.map (fun (rb, p) -> ((fun m -> Logical.Dedup (rb m, tags)), p)) (peel x)
  | Logical.All_distinct (x, tags) ->
    Option.map (fun (rb, p) -> ((fun m -> Logical.All_distinct (rb m, tags)), p)) (peel x)
  | _ -> None

let vertex_equal (a : Pattern.vertex) (b : Pattern.vertex) =
  Tc.equal a.Pattern.v_con b.Pattern.v_con
  && Option.equal Expr.equal a.Pattern.v_pred b.Pattern.v_pred

let edge_equal p1 p2 (a : Pattern.edge) (b : Pattern.edge) =
  let alias_of p i = (Pattern.vertex p i).Pattern.v_alias in
  String.equal (alias_of p1 a.Pattern.e_src) (alias_of p2 b.Pattern.e_src)
  && String.equal (alias_of p1 a.Pattern.e_dst) (alias_of p2 b.Pattern.e_dst)
  && Tc.equal a.Pattern.e_con b.Pattern.e_con
  && a.Pattern.e_directed = b.Pattern.e_directed
  && a.Pattern.e_hops = b.Pattern.e_hops
  && Option.equal Expr.equal a.Pattern.e_pred b.Pattern.e_pred

let anonymous alias = String.length alias > 0 && alias.[0] = '@'

(* The common subpattern: vertices shared by (user-chosen) alias with
   identical constraints and predicates; edges shared structurally — same
   endpoint aliases and shape, and either the same alias or both anonymous
   (frontends invent distinct anonymous aliases per branch). Returns the
   common pattern plus [p2] with its matched anonymous edges renamed to
   [p1]'s aliases, so the continuation sees them as already matched. *)
let common_subpattern p1 p2 =
  let matches =
    Array.to_list (Pattern.edges p1)
    |> List.filter_map (fun (e1 : Pattern.edge) ->
           let candidate_in_p2 =
             Array.to_list (Pattern.edges p2)
             |> List.find_opt (fun (e2 : Pattern.edge) ->
                    (String.equal e1.Pattern.e_alias e2.Pattern.e_alias
                    || (anonymous e1.Pattern.e_alias && anonymous e2.Pattern.e_alias))
                    && edge_equal p1 p2 e1 e2
                    && vertex_equal
                         (Pattern.vertex p1 e1.Pattern.e_src)
                         (Pattern.vertex p2 e2.Pattern.e_src)
                    && vertex_equal
                         (Pattern.vertex p1 e1.Pattern.e_dst)
                         (Pattern.vertex p2 e2.Pattern.e_dst))
           in
           Option.map (fun e2 -> (e1, e2)) candidate_in_p2)
  in
  (* one p2 edge must not serve two p1 edges *)
  let matches =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun ((_ : Pattern.edge), (e2 : Pattern.edge)) ->
        if Hashtbl.mem seen e2.Pattern.e_alias then false
        else begin
          Hashtbl.add seen e2.Pattern.e_alias ();
          true
        end)
      matches
  in
  if matches = [] then None
  else begin
    let eids =
      List.filter_map
        (fun ((e1 : Pattern.edge), _) -> Pattern.edge_of_alias p1 e1.Pattern.e_alias)
        matches
    in
    let common, _ = Pattern.sub_by_edges p1 eids in
    if
      Pattern.is_connected common
      && Pattern.n_edges common < Pattern.n_edges p1
      && Pattern.n_edges common < Pattern.n_edges p2
    then begin
      let rename =
        List.filter_map
          (fun ((e1 : Pattern.edge), (e2 : Pattern.edge)) ->
            if String.equal e1.Pattern.e_alias e2.Pattern.e_alias then None
            else Some (e2.Pattern.e_alias, e1.Pattern.e_alias))
          matches
      in
      let p2' =
        Pattern.map_edges
          (fun _ e ->
            match List.assoc_opt e.Pattern.e_alias rename with
            | Some fresh -> { e with Pattern.e_alias = fresh }
            | None -> e)
          p2
      in
      Some (common, p2', rename)
    end
    else None
  end

(* Rename field references in a plan's operators (not its patterns — the
   caller renames those): used to keep a branch's wrappers consistent after
   its common edges were renamed to the other branch's aliases. *)
let rec rename_plan_fields ren plan =
  let rt tag = Option.value ~default:tag (List.assoc_opt tag ren) in
  let re e = Expr.rename_tags rt e in
  let plan =
    match plan with
    | Logical.Select (x, e) -> Logical.Select (x, re e)
    | Logical.Project (x, ps) -> Logical.Project (x, List.map (fun (e, a) -> (re e, a)) ps)
    | Logical.Dedup (x, tags) -> Logical.Dedup (x, List.map rt tags)
    | Logical.All_distinct (x, tags) -> Logical.All_distinct (x, List.map rt tags)
    | other -> other
  in
  Logical.map_children (rename_plan_fields ren) plan

let com_sub_pattern =
  Rule.make "ComSubPattern" (fun node ->
      match node with
      | Logical.Union (a, b) -> begin
        match peel a, peel b with
        | Some (rb1, p1), Some (rb2, p2) -> begin
          match common_subpattern p1 p2 with
          | Some (common, p2', rename) ->
            let right =
              rename_plan_fields rename
                (rb2 (Logical.Pattern_cont (Logical.Common_ref, p2')))
            in
            Some
              (Logical.With_common
                 {
                   common = Logical.Match common;
                   left = rb1 (Logical.Pattern_cont (Logical.Common_ref, p1));
                   right;
                   combine = Logical.C_union;
                 })
          | None -> None
        end
        | _ -> None
      end
      | _ -> None)

(* --- FieldTrim ----------------------------------------------------------- *)

let expr_tags e = SS.of_list (Expr.free_tags e)

let rec expr_props acc = function
  | Expr.Const _ | Expr.Param _ | Expr.Var _ | Expr.Label _ -> acc
  | Expr.Prop (tag, key) -> (tag, key) :: acc
  | Expr.Binop (_, l, r) -> expr_props (expr_props acc l) r
  | Expr.Unop (_, e) | Expr.In_list (e, _) -> expr_props acc e

(* All edge-and-path aliases anywhere in the plan — the fields the
   AllDistinct operator inspects. *)
let all_edge_aliases plan =
  Logical.fold
    (fun acc node ->
      match node with
      | Logical.Match p | Logical.Pattern_cont (_, p) ->
        Array.fold_left
          (fun acc (e : Pattern.edge) -> SS.add e.Pattern.e_alias acc)
          acc (Pattern.edges p)
      | _ -> acc)
    SS.empty plan

let field_trim plan =
  let edge_aliases = all_edge_aliases plan in
  (* props used per tag, collected on the way down *)
  let annotate_pattern p needed props =
    let p =
      Pattern.map_vertices
        (fun _ v ->
          let used =
            List.filter_map
              (fun (tag, key) -> if String.equal tag v.Pattern.v_alias then Some key else None)
              props
          in
          if used = [] then v
          else { v with Pattern.v_columns = Some (List.sort_uniq String.compare used) })
        p
    in
    let fields = Logical.output_fields (Logical.Match p) in
    let kept = List.filter (fun f -> SS.mem f needed) fields in
    (p, fields, kept)
  in
  (* Insert a trimming PROJECT only where row width is actually paid for:
     under joins (hash build and output copies), whole-row dedups and unions
     (row re-materialization), and distributed shuffles of wide rows. The
     [narrow] flag tracks whether such a consumer is above us; width-
     indifferent operators (Select, Order, Limit, ...) pass rows through by
     reference, so trimming below them is pure overhead unless a consumer
     higher up wants narrow rows. *)
  let wrap_trim ~narrow inner fields kept =
    if narrow && List.length kept < List.length fields && kept <> [] then
      Logical.Project (inner, List.map (fun f -> (Expr.Var f, f)) kept)
    else inner
  in
  let rec go node needed props ~narrow =
    match node with
    | Logical.Match p ->
      let p, fields, kept = annotate_pattern p needed props in
      wrap_trim ~narrow (Logical.Match p) fields kept
    | Logical.Pattern_cont (x, p) ->
      (* the continuation needs all of its input *)
      let x' = go x (SS.of_list (Logical.output_fields x)) props ~narrow:false in
      let p, fields, kept = annotate_pattern p (SS.union needed (SS.of_list (Logical.output_fields x))) props in
      wrap_trim ~narrow (Logical.Pattern_cont (x', p)) fields kept
    | Logical.Common_ref -> node
    | Logical.With_common { common; left; right; combine } ->
      let common' = go common (SS.of_list (Logical.output_fields common)) props ~narrow:false in
      let left' = go left needed props ~narrow:true in
      let right' = go right needed props ~narrow:true in
      Logical.With_common { common = common'; left = left'; right = right'; combine }
    | Logical.Select (x, pred) ->
      let needed_x = SS.union needed (expr_tags pred) in
      Logical.Select (go x needed_x (expr_props props pred) ~narrow, pred)
    | Logical.Project (x, ps) ->
      let kept = List.filter (fun (_, a) -> SS.mem a needed) ps in
      let kept = if kept = [] then ps else kept in
      let needed_x =
        List.fold_left (fun acc (e, _) -> SS.union acc (expr_tags e)) SS.empty kept
      in
      let props_x = List.fold_left (fun acc (e, _) -> expr_props acc e) props kept in
      Logical.Project (go x needed_x props_x ~narrow:false, kept)
    | Logical.Join { left; right; keys; kind } ->
      let lf = SS.of_list (Logical.output_fields left) in
      let rf = SS.of_list (Logical.output_fields right) in
      let keyset = SS.of_list keys in
      let needed_l = SS.union (SS.inter needed lf) keyset in
      let needed_r = SS.union (SS.inter needed rf) keyset in
      Logical.Join
        {
          left = go left needed_l props ~narrow:true;
          right = go right needed_r props ~narrow:true;
          keys;
          kind;
        }
    | Logical.Group (x, ks, aggs) ->
      let needed_x =
        List.fold_left (fun acc (e, _) -> SS.union acc (expr_tags e)) SS.empty ks
      in
      let needed_x =
        List.fold_left
          (fun acc a ->
            match a.Logical.agg_arg with Some e -> SS.union acc (expr_tags e) | None -> acc)
          needed_x aggs
      in
      let props_x = List.fold_left (fun acc (e, _) -> expr_props acc e) props ks in
      let props_x =
        List.fold_left
          (fun acc a -> match a.Logical.agg_arg with Some e -> expr_props acc e | None -> acc)
          props_x aggs
      in
      Logical.Group (go x needed_x props_x ~narrow:false, ks, aggs)
    | Logical.Order (x, ks, lim) ->
      let needed_x =
        List.fold_left (fun acc (e, _) -> SS.union acc (expr_tags e)) needed ks
      in
      let props_x = List.fold_left (fun acc (e, _) -> expr_props acc e) props ks in
      Logical.Order (go x needed_x props_x ~narrow, ks, lim)
    | Logical.Limit (x, n) -> Logical.Limit (go x needed props ~narrow, n)
    | Logical.Skip (x, n) -> Logical.Skip (go x needed props ~narrow, n)
    | Logical.Unwind (x, e, alias) ->
      let needed_x = SS.remove alias (SS.union needed (expr_tags e)) in
      Logical.Unwind (go x needed_x (expr_props props e) ~narrow, e, alias)
    | Logical.Dedup (x, tags) ->
      let needed_x =
        if tags = [] then SS.of_list (Logical.output_fields x)
        else SS.union needed (SS.of_list tags)
      in
      (* whole-row dedup hashes every column *)
      Logical.Dedup (go x needed_x props ~narrow:(narrow || tags = []), tags)
    | Logical.Union (a, b) ->
      Logical.Union (go a needed props ~narrow:true, go b needed props ~narrow:true)
    | Logical.All_distinct (x, tags) ->
      let fields = SS.of_list (Logical.output_fields x) in
      let scope = if tags = [] then edge_aliases else SS.of_list tags in
      let needed_x = SS.union needed (SS.inter fields scope) in
      Logical.All_distinct (go x needed_x props ~narrow, tags)
  in
  go plan (SS.of_list (Logical.output_fields plan)) [] ~narrow:false

let all = [ filter_into_pattern; join_to_pattern; com_sub_pattern ]
