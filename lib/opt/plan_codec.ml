module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
module Logical = Gopt_gir.Logical

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

module Sexp = struct
  type t = Atom of string | List of t list

  let needs_quoting s =
    s = ""
    || String.exists
         (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
         s

  let quote s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let rec write buf = function
    | Atom s -> Buffer.add_string buf (if needs_quoting s then quote s else s)
    | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf item)
        items;
      Buffer.add_char buf ')'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  let of_string src =
    let n = String.length src in
    let pos = ref 0 in
    let peek () = if !pos < n then Some src.[!pos] else None in
    let skip_ws () =
      while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\n' || src.[!pos] = '\t' || src.[!pos] = '\r') do
        incr pos
      done
    in
    let rec parse () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> incr pos
          | None -> fail "unterminated list"
          | Some _ ->
            items := parse () :: !items;
            loop ()
        in
        loop ();
        List (List.rev !items)
      | Some ')' -> fail "unexpected ')'"
      | Some '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then fail "unterminated string"
          else begin
            let c = src.[!pos] in
            incr pos;
            if c = '"' then ()
            else if c = '\\' && !pos < n then begin
              let e = src.[!pos] in
              incr pos;
              Buffer.add_char buf
                (match e with 'n' -> '\n' | 't' -> '\t' | other -> other);
              loop ()
            end
            else begin
              Buffer.add_char buf c;
              loop ()
            end
          end
        in
        loop ();
        Atom (Buffer.contents buf)
      | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          let c = src.[!pos] in
          c <> ' ' && c <> '(' && c <> ')' && c <> '\n' && c <> '\t' && c <> '\r'
        do
          incr pos
        done;
        Atom (String.sub src start (!pos - start))
    in
    let result = parse () in
    skip_ws ();
    if !pos <> n then fail "trailing input after s-expression";
    result
end

open Sexp

(* --- encoders --------------------------------------------------------------- *)

let enc_int n = Atom (string_of_int n)
let enc_bool b = Atom (string_of_bool b)

let enc_value = function
  | Value.Null -> List [ Atom "null" ]
  | Value.Bool b -> List [ Atom "bool"; enc_bool b ]
  | Value.Int n -> List [ Atom "int"; enc_int n ]
  | Value.Float f -> List [ Atom "float"; Atom (Printf.sprintf "%h" f) ]
  | Value.Str s -> List [ Atom "str"; Atom s ]

let enc_tc = function
  | Tc.Basic t -> List [ Atom "basic"; enc_int t ]
  | Tc.Union ts -> List (Atom "union" :: List.map enc_int ts)
  | Tc.All -> Atom "all"

let binop_name = function
  | Expr.Add -> "add" | Expr.Sub -> "sub" | Expr.Mul -> "mul" | Expr.Div -> "div"
  | Expr.Mod -> "mod" | Expr.Eq -> "eq" | Expr.Neq -> "neq" | Expr.Lt -> "lt"
  | Expr.Leq -> "leq" | Expr.Gt -> "gt" | Expr.Geq -> "geq" | Expr.And -> "and"
  | Expr.Or -> "or" | Expr.Starts_with -> "starts" | Expr.Ends_with -> "ends"
  | Expr.Contains -> "contains"

let binop_of = function
  | "add" -> Expr.Add | "sub" -> Expr.Sub | "mul" -> Expr.Mul | "div" -> Expr.Div
  | "mod" -> Expr.Mod | "eq" -> Expr.Eq | "neq" -> Expr.Neq | "lt" -> Expr.Lt
  | "leq" -> Expr.Leq | "gt" -> Expr.Gt | "geq" -> Expr.Geq | "and" -> Expr.And
  | "or" -> Expr.Or | "starts" -> Expr.Starts_with | "ends" -> Expr.Ends_with
  | "contains" -> Expr.Contains
  | other -> fail "unknown binop %s" other

let unop_name = function
  | Expr.Not -> "not" | Expr.Neg -> "neg" | Expr.Is_null -> "isnull"
  | Expr.Is_not_null -> "isnotnull"

let unop_of = function
  | "not" -> Expr.Not | "neg" -> Expr.Neg | "isnull" -> Expr.Is_null
  | "isnotnull" -> Expr.Is_not_null
  | other -> fail "unknown unop %s" other

let rec enc_expr = function
  | Expr.Const v -> List [ Atom "const"; enc_value v ]
  | Expr.Param x -> List [ Atom "param"; Atom x ]
  | Expr.Var x -> List [ Atom "var"; Atom x ]
  | Expr.Prop (x, k) -> List [ Atom "prop"; Atom x; Atom k ]
  | Expr.Label x -> List [ Atom "label"; Atom x ]
  | Expr.Binop (op, l, r) -> List [ Atom "binop"; Atom (binop_name op); enc_expr l; enc_expr r ]
  | Expr.Unop (op, e) -> List [ Atom "unop"; Atom (unop_name op); enc_expr e ]
  | Expr.In_list (e, vs) -> List (Atom "in" :: enc_expr e :: List.map enc_value vs)

let enc_opt enc = function None -> Atom "-" | Some x -> List [ Atom "some"; enc x ]

let path_sem_name = function
  | Pattern.Arbitrary -> "arbitrary"
  | Pattern.Simple -> "simple"
  | Pattern.Trail -> "trail"

let path_sem_of = function
  | "arbitrary" -> Pattern.Arbitrary
  | "simple" -> Pattern.Simple
  | "trail" -> Pattern.Trail
  | other -> fail "unknown path semantics %s" other

let enc_edge (e : Pattern.edge) =
  List
    [
      Atom "edge";
      enc_int e.Pattern.e_src;
      enc_int e.Pattern.e_dst;
      enc_tc e.Pattern.e_con;
      enc_opt enc_expr e.Pattern.e_pred;
      Atom e.Pattern.e_alias;
      enc_bool e.Pattern.e_directed;
      enc_opt (fun (lo, hi) -> List [ enc_int lo; enc_int hi ]) e.Pattern.e_hops;
      Atom (path_sem_name e.Pattern.e_path);
    ]

let enc_step (s : Physical.edge_step) =
  List
    [
      Atom "step";
      enc_edge s.Physical.s_edge;
      Atom s.Physical.s_from;
      Atom s.Physical.s_to;
      enc_bool s.Physical.s_forward;
      enc_tc s.Physical.s_to_con;
      enc_opt enc_expr s.Physical.s_to_pred;
    ]

let agg_name = function
  | Logical.Count -> "count" | Logical.Count_distinct -> "countd" | Logical.Sum -> "sum"
  | Logical.Avg -> "avg" | Logical.Min -> "min" | Logical.Max -> "max"
  | Logical.Collect -> "collect"

let agg_of = function
  | "count" -> Logical.Count | "countd" -> Logical.Count_distinct | "sum" -> Logical.Sum
  | "avg" -> Logical.Avg | "min" -> Logical.Min | "max" -> Logical.Max
  | "collect" -> Logical.Collect
  | other -> fail "unknown aggregate %s" other

let kind_name = function
  | Logical.Inner -> "inner" | Logical.Left_outer -> "louter" | Logical.Semi -> "semi"
  | Logical.Anti -> "anti"

let kind_of = function
  | "inner" -> Logical.Inner | "louter" -> Logical.Left_outer | "semi" -> Logical.Semi
  | "anti" -> Logical.Anti
  | other -> fail "unknown join kind %s" other

let enc_agg (a : Logical.agg) =
  List [ Atom (agg_name a.Logical.agg_fn); enc_opt enc_expr a.Logical.agg_arg; Atom a.Logical.agg_alias ]

let enc_named (e, name) = List [ enc_expr e; Atom name ]

let enc_sort (e, dir) =
  List [ enc_expr e; Atom (match dir with Logical.Asc -> "asc" | Logical.Desc -> "desc") ]

let enc_strings tags = List (List.map (fun t -> Atom t) tags)

let rec enc_plan = function
  | Physical.Scan { alias; con; pred } ->
    List [ Atom "scan"; Atom alias; enc_tc con; enc_opt enc_expr pred ]
  | Physical.Expand_all (x, s) -> List [ Atom "expand-all"; enc_plan x; enc_step s ]
  | Physical.Expand_into (x, s) -> List [ Atom "expand-into"; enc_plan x; enc_step s ]
  | Physical.Expand_intersect (x, steps) ->
    List (Atom "expand-intersect" :: enc_plan x :: List.map enc_step steps)
  | Physical.Path_expand (x, s) -> List [ Atom "path-expand"; enc_plan x; enc_step s ]
  | Physical.Hash_join { left; right; keys; kind } ->
    List [ Atom "hash-join"; Atom (kind_name kind); enc_strings keys; enc_plan left; enc_plan right ]
  | Physical.Select (x, e) -> List [ Atom "select"; enc_plan x; enc_expr e ]
  | Physical.Project (x, ps) -> List (Atom "project" :: enc_plan x :: List.map enc_named ps)
  | Physical.Group (x, ks, aggs) ->
    List
      [ Atom "group"; enc_plan x; List (List.map enc_named ks); List (List.map enc_agg aggs) ]
  | Physical.Order (x, ks, lim) ->
    List [ Atom "order"; enc_plan x; List (List.map enc_sort ks); enc_opt enc_int lim ]
  | Physical.Limit (x, n) -> List [ Atom "limit"; enc_plan x; enc_int n ]
  | Physical.Skip (x, n) -> List [ Atom "skip"; enc_plan x; enc_int n ]
  | Physical.Unfold (x, e, a) -> List [ Atom "unfold"; enc_plan x; enc_expr e; Atom a ]
  | Physical.Dedup (x, tags) -> List [ Atom "dedup"; enc_plan x; enc_strings tags ]
  | Physical.Union (a, b) -> List [ Atom "union"; enc_plan a; enc_plan b ]
  | Physical.All_distinct (x, tags) -> List [ Atom "all-distinct"; enc_plan x; enc_strings tags ]
  | Physical.With_common { common; left; right; combine } ->
    let comb =
      match combine with
      | Logical.C_union -> List [ Atom "c-union" ]
      | Logical.C_join (keys, kind) ->
        List [ Atom "c-join"; Atom (kind_name kind); enc_strings keys ]
    in
    List [ Atom "with-common"; comb; enc_plan common; enc_plan left; enc_plan right ]
  | Physical.Common_ref fields -> List [ Atom "common-ref"; enc_strings fields ]
  | Physical.Empty fields -> List [ Atom "empty"; enc_strings fields ]

let encode plan = Sexp.to_string (List [ Atom "gopt-plan"; Atom "v1"; enc_plan plan ])

(* --- decoders --------------------------------------------------------------- *)

let dec_int = function Atom s -> ( try int_of_string s with _ -> fail "expected int, got %s" s) | List _ -> fail "expected int"

let dec_bool = function
  | Atom "true" -> true
  | Atom "false" -> false
  | _ -> fail "expected bool"

let dec_atom = function Atom s -> s | List _ -> fail "expected atom"

let dec_value = function
  | List [ Atom "null" ] -> Value.Null
  | List [ Atom "bool"; b ] -> Value.Bool (dec_bool b)
  | List [ Atom "int"; n ] -> Value.Int (dec_int n)
  | List [ Atom "float"; Atom f ] -> Value.Float (float_of_string f)
  | List [ Atom "str"; Atom s ] -> Value.Str s
  | _ -> fail "malformed value"

let dec_tc = function
  | List [ Atom "basic"; t ] -> Tc.Basic (dec_int t)
  | List (Atom "union" :: ts) -> Tc.Union (List.map dec_int ts)
  | Atom "all" -> Tc.All
  | _ -> fail "malformed type constraint"

let dec_opt dec = function
  | Atom "-" -> None
  | List [ Atom "some"; x ] -> Some (dec x)
  | _ -> fail "malformed option"

let rec dec_expr = function
  | List [ Atom "const"; v ] -> Expr.Const (dec_value v)
  | List [ Atom "param"; Atom x ] -> Expr.Param x
  | List [ Atom "var"; Atom x ] -> Expr.Var x
  | List [ Atom "prop"; Atom x; Atom k ] -> Expr.Prop (x, k)
  | List [ Atom "label"; Atom x ] -> Expr.Label x
  | List [ Atom "binop"; Atom op; l; r ] -> Expr.Binop (binop_of op, dec_expr l, dec_expr r)
  | List [ Atom "unop"; Atom op; e ] -> Expr.Unop (unop_of op, dec_expr e)
  | List (Atom "in" :: e :: vs) -> Expr.In_list (dec_expr e, List.map dec_value vs)
  | _ -> fail "malformed expression"

let dec_edge = function
  | List [ Atom "edge"; src; dst; con; pred; Atom alias; directed; hops; Atom sem ] ->
    {
      Pattern.e_src = dec_int src;
      e_dst = dec_int dst;
      e_con = dec_tc con;
      e_pred = dec_opt dec_expr pred;
      e_alias = alias;
      e_directed = dec_bool directed;
      e_hops =
        dec_opt
          (function
            | List [ lo; hi ] -> (dec_int lo, dec_int hi)
            | _ -> fail "malformed hops")
          hops;
      e_path = path_sem_of sem;
    }
  | _ -> fail "malformed edge"

let dec_step = function
  | List [ Atom "step"; edge; Atom from_a; Atom to_a; forward; con; pred ] ->
    {
      Physical.s_edge = dec_edge edge;
      s_from = from_a;
      s_to = to_a;
      s_forward = dec_bool forward;
      s_to_con = dec_tc con;
      s_to_pred = dec_opt dec_expr pred;
    }
  | _ -> fail "malformed step"

let dec_agg = function
  | List [ Atom fn; arg; Atom alias ] ->
    { Logical.agg_fn = agg_of fn; agg_arg = dec_opt dec_expr arg; agg_alias = alias }
  | _ -> fail "malformed aggregate"

let dec_named = function
  | List [ e; Atom name ] -> (dec_expr e, name)
  | _ -> fail "malformed projection item"

let dec_sort = function
  | List [ e; Atom "asc" ] -> (dec_expr e, Logical.Asc)
  | List [ e; Atom "desc" ] -> (dec_expr e, Logical.Desc)
  | _ -> fail "malformed sort key"

let dec_strings = function
  | List items -> List.map dec_atom items
  | Atom _ -> fail "expected a string list"

let rec dec_plan = function
  | List [ Atom "scan"; Atom alias; con; pred ] ->
    Physical.Scan { alias; con = dec_tc con; pred = dec_opt dec_expr pred }
  | List [ Atom "expand-all"; x; s ] -> Physical.Expand_all (dec_plan x, dec_step s)
  | List [ Atom "expand-into"; x; s ] -> Physical.Expand_into (dec_plan x, dec_step s)
  | List (Atom "expand-intersect" :: x :: steps) ->
    Physical.Expand_intersect (dec_plan x, List.map dec_step steps)
  | List [ Atom "path-expand"; x; s ] -> Physical.Path_expand (dec_plan x, dec_step s)
  | List [ Atom "hash-join"; Atom kind; keys; left; right ] ->
    Physical.Hash_join
      { left = dec_plan left; right = dec_plan right; keys = dec_strings keys; kind = kind_of kind }
  | List [ Atom "select"; x; e ] -> Physical.Select (dec_plan x, dec_expr e)
  | List (Atom "project" :: x :: ps) -> Physical.Project (dec_plan x, List.map dec_named ps)
  | List [ Atom "group"; x; List ks; List aggs ] ->
    Physical.Group (dec_plan x, List.map dec_named ks, List.map dec_agg aggs)
  | List [ Atom "order"; x; List ks; lim ] ->
    Physical.Order (dec_plan x, List.map dec_sort ks, dec_opt dec_int lim)
  | List [ Atom "limit"; x; n ] -> Physical.Limit (dec_plan x, dec_int n)
  | List [ Atom "skip"; x; n ] -> Physical.Skip (dec_plan x, dec_int n)
  | List [ Atom "unfold"; x; e; Atom a ] -> Physical.Unfold (dec_plan x, dec_expr e, a)
  | List [ Atom "dedup"; x; tags ] -> Physical.Dedup (dec_plan x, dec_strings tags)
  | List [ Atom "union"; a; b ] -> Physical.Union (dec_plan a, dec_plan b)
  | List [ Atom "all-distinct"; x; tags ] ->
    Physical.All_distinct (dec_plan x, dec_strings tags)
  | List [ Atom "with-common"; comb; common; left; right ] ->
    let combine =
      match comb with
      | List [ Atom "c-union" ] -> Logical.C_union
      | List [ Atom "c-join"; Atom kind; keys ] ->
        Logical.C_join (dec_strings keys, kind_of kind)
      | _ -> fail "malformed combine"
    in
    Physical.With_common
      { common = dec_plan common; left = dec_plan left; right = dec_plan right; combine }
  | List [ Atom "common-ref"; fields ] -> Physical.Common_ref (dec_strings fields)
  | List [ Atom "empty"; fields ] -> Physical.Empty (dec_strings fields)
  | other -> fail "malformed plan node: %s" (Sexp.to_string other)

let decode src =
  match Sexp.of_string src with
  | List [ Atom "gopt-plan"; Atom "v1"; plan ] -> dec_plan plan
  | List (Atom "gopt-plan" :: Atom v :: _) -> fail "unsupported plan version %s" v
  | _ -> fail "not a gopt plan"
