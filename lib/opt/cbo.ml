module Pattern = Gopt_pattern.Pattern
module Canonical = Gopt_pattern.Canonical
module Gq = Gopt_glogue.Glogue_query

type op =
  | Scan
  | Expand of { sub : plan; new_vertex_alias : string; edges : Pattern.edge list }
  | Join of { left : plan; right : plan; keys : string list }

and plan = { pattern : Pattern.t; op : op; cost : float; freq : float }

type options = {
  use_greedy_init : bool;
  use_pruning : bool;
  max_join_edges : int;
  greedy_only : bool;
}

let default_options =
  { use_greedy_init = true; use_pruning = true; max_join_edges = 10; greedy_only = false }

type search_stats = {
  mutable nodes_searched : int;
  mutable candidates_considered : int;
  mutable candidates_pruned : int;
  mutable memo_hits : int;
}

(* A candidate transformation producing the target pattern. *)
type cand =
  | C_expand of {
      sub_pat : Pattern.t;
      new_vertex : int; (* index in target *)
      new_edges : int list; (* edge ids in target *)
      anchor : int; (* a vertex of the subpattern, for single-vertex subs *)
    }
  | C_join of { left_pat : Pattern.t; right_pat : Pattern.t; keys : string list }

let expand_candidates target =
  let nv = Pattern.n_vertices target in
  List.filter_map
    (fun v ->
      match Pattern.remove_vertex target v with
      | None -> None
      | Some sub_pat ->
        let new_edges = Pattern.incident_edges target v in
        (* anchor: any vertex of target that survives in sub *)
        let anchor =
          let rec find i = if i = v then find (i + 1) else i in
          find 0
        in
        Some (C_expand { sub_pat; new_vertex = v; new_edges; anchor }))
    (List.init nv Fun.id)

let join_candidates target ~max_join_edges =
  let ne = Pattern.n_edges target in
  if ne < 2 || ne > max_join_edges then []
  else begin
    let nv = Pattern.n_vertices target in
    let acc = ref [] in
    (* subsets containing edge 0, excluding the full set *)
    for mask = 1 to (1 lsl ne) - 2 do
      if mask land 1 = 1 then begin
        let left_edges = ref [] and right_edges = ref [] in
        for e = 0 to ne - 1 do
          if mask land (1 lsl e) <> 0 then left_edges := e :: !left_edges
          else right_edges := e :: !right_edges
        done;
        let left_pat, _ = Pattern.sub_by_edges target !left_edges in
        let right_pat, _ = Pattern.sub_by_edges target !right_edges in
        if Pattern.is_connected left_pat && Pattern.is_connected right_pat then begin
          let keys = Pattern.shared_aliases left_pat right_pat in
          let covered =
            Pattern.n_vertices left_pat + Pattern.n_vertices right_pat - List.length keys
          in
          if keys <> [] && covered = nv then
            acc := C_join { left_pat; right_pat; keys } :: !acc
        end
      end
    done;
    !acc
  end

let scan_plan gq pattern =
  let freq = Gq.get_freq gq pattern in
  { pattern; op = Scan; cost = freq; freq }

(* Order a new vertex's binding edges cheapest-first (by the frequency of the
   subpattern extended with just that edge). *)
let order_edges gq target sub_edges anchor new_edges =
  let keyed =
    List.map
      (fun e -> (Physical_spec.sub_freq gq target (e :: sub_edges) ~anchor, e))
      new_edges
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Float.compare a b) keyed)

let make_expand_plan gq spec target ~sub_plan ~new_vertex ~new_edges ~anchor ~freq =
  let sub_edges =
    (* edges of target present in the subpattern = all edges not incident to
       the new vertex *)
    List.filter
      (fun e -> not (List.mem e new_edges))
      (List.init (Pattern.n_edges target) Fun.id)
  in
  let step_cost =
    spec.Physical_spec.expand_cost gq ~target ~sub_edges ~new_edges ~anchor_vertex:anchor
  in
  let ordered = order_edges gq target sub_edges anchor new_edges in
  let edges = List.map (Pattern.edge target) ordered in
  let alias = (Pattern.vertex target new_vertex).Pattern.v_alias in
  {
    pattern = target;
    op = Expand { sub = sub_plan; new_vertex_alias = alias; edges };
    cost = sub_plan.cost +. freq +. step_cost;
    freq;
  }

let rec greedy_opt gq spec target =
  if Pattern.n_vertices target = 1 then scan_plan gq target
  else begin
    let freq = Gq.get_freq gq target in
    let cands = expand_candidates target in
    let cands =
      List.map
        (fun c ->
          match c with
          | C_expand { sub_pat; new_edges; anchor; _ } ->
            let sub_edges =
              List.filter
                (fun e -> not (List.mem e new_edges))
                (List.init (Pattern.n_edges target) Fun.id)
            in
            let cost =
              spec.Physical_spec.expand_cost gq ~target ~sub_edges ~new_edges
                ~anchor_vertex:anchor
            in
            (cost, c, sub_pat)
          | C_join _ -> assert false)
        cands
    in
    match List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) cands with
    | [] ->
      (* a connected pattern always has a non-cut vertex *)
      invalid_arg
        "Cbo.greedy: no expand candidate — the pattern is disconnected, which PlanCheck \
         reports on the logical plan before the CBO runs"
    | (_, C_expand { sub_pat; new_vertex; new_edges; anchor }, _) :: _ ->
      let sub_plan = greedy_opt gq spec sub_pat in
      make_expand_plan gq spec target ~sub_plan ~new_vertex ~new_edges ~anchor ~freq
    | (_, C_join _, _) :: _ -> assert false
  end

let greedy gq spec target =
  if Pattern.n_vertices target = 0 then invalid_arg "Cbo.greedy: empty pattern";
  if not (Pattern.is_connected target) then invalid_arg "Cbo.greedy: disconnected pattern";
  greedy_opt gq spec target

let optimize ?(options = default_options) gq spec target =
  if Pattern.n_vertices target = 0 then invalid_arg "Cbo.optimize: empty pattern";
  if not (Pattern.is_connected target) then invalid_arg "Cbo.optimize: disconnected pattern";
  let stats =
    { nodes_searched = 0; candidates_considered = 0; candidates_pruned = 0; memo_hits = 0 }
  in
  if options.greedy_only then (greedy_opt gq spec target, stats)
  else begin
  let memo : (string, plan) Hashtbl.t = Hashtbl.create 64 in
  let target_code = Canonical.keyed_code target in
  let bound = ref Float.infinity in
  if options.use_greedy_init then bound := (greedy_opt gq spec target).cost;
  let rec search p =
    let code = Canonical.keyed_code p in
    match Hashtbl.find_opt memo code with
    | Some plan ->
      stats.memo_hits <- stats.memo_hits + 1;
      plan
    | None ->
      stats.nodes_searched <- stats.nodes_searched + 1;
      let plan =
        if Pattern.n_vertices p = 1 then scan_plan gq p
        else begin
          let freq = Gq.get_freq gq p in
          let best = ref None in
          let consider plan' =
            match !best with
            | Some b when b.cost <= plan'.cost -> ()
            | _ -> best := Some plan'
          in
          let cands =
            expand_candidates p @ join_candidates p ~max_join_edges:options.max_join_edges
          in
          List.iter
            (fun cand ->
              stats.candidates_considered <- stats.candidates_considered + 1;
              match cand with
              | C_expand { sub_pat; new_vertex; new_edges; anchor } ->
                let sub_edges =
                  List.filter
                    (fun e -> not (List.mem e new_edges))
                    (List.init (Pattern.n_edges p) Fun.id)
                in
                let step_cost =
                  spec.Physical_spec.expand_cost gq ~target:p ~sub_edges ~new_edges
                    ~anchor_vertex:anchor
                in
                let memoized_sub =
                  Hashtbl.find_opt memo (Canonical.keyed_code sub_pat)
                in
                let lb =
                  freq +. step_cost
                  +. (match memoized_sub with Some s -> s.cost | None -> 0.0)
                in
                if options.use_pruning && lb >= !bound then
                  stats.candidates_pruned <- stats.candidates_pruned + 1
                else begin
                  let sub_plan = search sub_pat in
                  consider
                    (make_expand_plan gq spec p ~sub_plan ~new_vertex ~new_edges ~anchor
                       ~freq)
                end
              | C_join { left_pat; right_pat; keys } ->
                let step_cost =
                  spec.Physical_spec.join_cost gq ~left:left_pat ~right:right_pat ~target:p
                in
                let lb = freq +. step_cost in
                if options.use_pruning && lb >= !bound then
                  stats.candidates_pruned <- stats.candidates_pruned + 1
                else begin
                  let left = search left_pat and right = search right_pat in
                  consider
                    {
                      pattern = p;
                      op = Join { left; right; keys };
                      cost = left.cost +. right.cost +. freq +. step_cost;
                      freq;
                    }
                end)
            cands;
          match !best with
          | Some plan -> plan
          | None ->
            (* everything pruned: fall back to greedy under this subpattern *)
            greedy_opt gq spec p
        end
      in
      Hashtbl.replace memo code plan;
      if String.equal target_code code && plan.cost < !bound then bound := plan.cost;
      plan
  in
  let plan = search target in
  (plan, stats)
  end

(* --- compilation to physical operators --- *)

let step_of_edge target_plan_pattern new_vertex_alias (e : Pattern.edge) =
  let p = target_plan_pattern in
  let dst_v = Pattern.vertex p e.Pattern.e_dst and src_v = Pattern.vertex p e.Pattern.e_src in
  let forward = String.equal dst_v.Pattern.v_alias new_vertex_alias in
  let from_v, to_v = if forward then (src_v, dst_v) else (dst_v, src_v) in
  {
    Physical.s_edge = e;
    s_from = from_v.Pattern.v_alias;
    s_to = to_v.Pattern.v_alias;
    s_forward = forward;
    s_to_con = to_v.Pattern.v_con;
    s_to_pred = to_v.Pattern.v_pred;
  }

let rec to_physical spec plan =
  match plan.op with
  | Scan ->
    let v = Pattern.vertex plan.pattern 0 in
    Physical.Scan { alias = v.Pattern.v_alias; con = v.Pattern.v_con; pred = v.Pattern.v_pred }
  | Join { left; right; keys } ->
    Physical.Hash_join
      {
        left = to_physical spec left;
        right = to_physical spec right;
        keys;
        kind = Gopt_gir.Logical.Inner;
      }
  | Expand { sub; new_vertex_alias; edges } ->
    let input = to_physical spec sub in
    compile_expand spec input plan.pattern new_vertex_alias edges

and compile_expand spec input pat new_vertex_alias edges =
  let steps = List.map (step_of_edge pat new_vertex_alias) edges in
  let is_path s = s.Physical.s_edge.Pattern.e_hops <> None in
  match steps with
  | [] -> input
  | [ s ] -> if is_path s then Physical.Path_expand (input, s) else Physical.Expand_all (input, s)
  | s :: rest ->
    if spec.Physical_spec.use_intersect && not (List.exists is_path steps) then
      Physical.Expand_intersect (input, steps)
    else begin
      let first =
        if is_path s then Physical.Path_expand (input, s) else Physical.Expand_all (input, s)
      in
      List.fold_left
        (fun acc s ->
          if is_path s then Physical.Path_expand (acc, s) else Physical.Expand_into (acc, s))
        first rest
    end

let compile_expansion spec input pat ~new_vertex_alias edges =
  compile_expand spec input pat new_vertex_alias edges

let rec plan_order plan =
  match plan.op with
  | Scan -> [ (Pattern.vertex plan.pattern 0).Pattern.v_alias ]
  | Expand { sub; new_vertex_alias; _ } -> plan_order sub @ [ new_vertex_alias ]
  | Join { left; right; _ } -> plan_order left @ plan_order right
