module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical

type edge_step = {
  s_edge : Pattern.edge;
  s_from : string;
  s_to : string;
  s_forward : bool;
  s_to_con : Tc.t;
  s_to_pred : Expr.t option;
}

type t =
  | Scan of { alias : string; con : Tc.t; pred : Expr.t option }
  | Expand_all of t * edge_step
  | Expand_into of t * edge_step
  | Expand_intersect of t * edge_step list
  | Path_expand of t * edge_step
  | Hash_join of { left : t; right : t; keys : string list; kind : Logical.join_kind }
  | Select of t * Expr.t
  | Project of t * (Expr.t * string) list
  | Group of t * (Expr.t * string) list * Logical.agg list
  | Order of t * (Expr.t * Logical.sort_dir) list * int option
  | Limit of t * int
  | Skip of t * int
  | Unfold of t * Expr.t * string
  | Dedup of t * string list
  | Union of t * t
  | All_distinct of t * string list
  | With_common of { common : t; left : t; right : t; combine : Logical.combine }
  | Common_ref of string list
  | Empty of string list

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let rec output_fields = function
  | Scan { alias; _ } -> [ alias ]
  | Expand_all (x, s) ->
    dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias; s.s_to ])
  | Expand_into (x, s) -> dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias ])
  | Expand_intersect (x, steps) ->
    dedup_keep_order
      (output_fields x
      @ List.concat_map (fun s -> [ s.s_edge.Pattern.e_alias ]) steps
      @ match steps with [] -> [] | s :: _ -> [ s.s_to ])
  | Path_expand (x, s) ->
    dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias; s.s_to ])
  | Hash_join { left; right; kind; _ } -> begin
    match kind with
    | Logical.Semi | Logical.Anti -> output_fields left
    | Logical.Inner | Logical.Left_outer ->
      dedup_keep_order (output_fields left @ output_fields right)
  end
  | Select (x, _) | Limit (x, _) | Skip (x, _) | Dedup (x, _) | All_distinct (x, _)
  | Order (x, _, _) ->
    output_fields x
  | Unfold (x, _, alias) -> dedup_keep_order (output_fields x @ [ alias ])
  | Project (_, ps) -> List.map snd ps
  | Group (_, ks, aggs) -> List.map snd ks @ List.map (fun a -> a.Logical.agg_alias) aggs
  | Union (a, _) -> output_fields a
  | With_common { left; right; combine; _ } -> begin
    match combine with
    | Logical.C_union -> output_fields left
    | Logical.C_join (_, (Logical.Semi | Logical.Anti)) -> output_fields left
    | Logical.C_join (_, _) -> dedup_keep_order (output_fields left @ output_fields right)
  end
  | Common_ref fields -> fields
  | Empty fields -> fields

let rec operator_count = function
  | Scan _ | Common_ref _ | Empty _ -> 1
  | Expand_all (x, _) | Expand_into (x, _) | Expand_intersect (x, _) | Path_expand (x, _)
  | Select (x, _) | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _)
  | Skip (x, _) | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) -> 1 + operator_count x
  | Hash_join { left; right; _ } | Union (left, right) ->
    1 + operator_count left + operator_count right
  | With_common { common; left; right; _ } ->
    1 + operator_count common + operator_count left + operator_count right

let rec uses_intersect = function
  | Expand_intersect _ -> true
  | Scan _ | Common_ref _ | Empty _ -> false
  | Expand_all (x, _) | Expand_into (x, _) | Path_expand (x, _) | Select (x, _)
  | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _) | Skip (x, _)
  | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) -> uses_intersect x
  | Hash_join { left; right; _ } | Union (left, right) ->
    uses_intersect left || uses_intersect right
  | With_common { common; left; right; _ } ->
    uses_intersect common || uses_intersect left || uses_intersect right

(* --- expression positions (prepared-statement parameters) ----------------- *)

let map_step f s =
  {
    s with
    s_edge = { s.s_edge with Pattern.e_pred = Option.map f s.s_edge.Pattern.e_pred };
    s_to_pred = Option.map f s.s_to_pred;
  }

let rec map_exprs f = function
  | Scan { alias; con; pred } -> Scan { alias; con; pred = Option.map f pred }
  | Expand_all (x, s) -> Expand_all (map_exprs f x, map_step f s)
  | Expand_into (x, s) -> Expand_into (map_exprs f x, map_step f s)
  | Expand_intersect (x, steps) ->
    Expand_intersect (map_exprs f x, List.map (map_step f) steps)
  | Path_expand (x, s) -> Path_expand (map_exprs f x, map_step f s)
  | Hash_join { left; right; keys; kind } ->
    Hash_join { left = map_exprs f left; right = map_exprs f right; keys; kind }
  | Select (x, e) -> Select (map_exprs f x, f e)
  | Project (x, ps) -> Project (map_exprs f x, List.map (fun (e, a) -> (f e, a)) ps)
  | Group (x, ks, aggs) ->
    Group
      ( map_exprs f x,
        List.map (fun (e, a) -> (f e, a)) ks,
        List.map
          (fun a -> { a with Logical.agg_arg = Option.map f a.Logical.agg_arg })
          aggs )
  | Order (x, ks, lim) ->
    Order (map_exprs f x, List.map (fun (e, d) -> (f e, d)) ks, lim)
  | Limit (x, n) -> Limit (map_exprs f x, n)
  | Skip (x, n) -> Skip (map_exprs f x, n)
  | Unfold (x, e, alias) -> Unfold (map_exprs f x, f e, alias)
  | Dedup (x, tags) -> Dedup (map_exprs f x, tags)
  | Union (a, b) -> Union (map_exprs f a, map_exprs f b)
  | All_distinct (x, tags) -> All_distinct (map_exprs f x, tags)
  | With_common { common; left; right; combine } ->
    With_common
      {
        common = map_exprs f common;
        left = map_exprs f left;
        right = map_exprs f right;
        combine;
      }
  | (Common_ref _ | Empty _) as p -> p

let params plan =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let note e =
    List.iter
      (fun name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          acc := name :: !acc
        end)
      (Expr.params e);
    e
  in
  ignore (map_exprs note plan);
  List.rev !acc

let bind_params bindings plan =
  let supplied () =
    match List.map fst bindings with
    | [] -> "none"
    | names -> String.concat ", " (List.map (fun n -> "$" ^ n) names)
  in
  let resolve name =
    match List.assoc_opt name bindings with
    | Some [ v ] -> Some v
    | Some vs ->
      invalid_arg
        (Printf.sprintf
           "parameter $%s binds %d values but is used as a scalar placeholder" name
           (List.length vs))
    | None ->
      invalid_arg
        (Printf.sprintf "undefined parameter $%s (supplied: %s)" name (supplied ()))
  in
  map_exprs (Expr.bind_params resolve) plan

(* --- pipeline classification (push-based engine support) ------------------ *)

type pipeline_role =
  | Streaming  (** Emits as input arrives; holds no unbounded state. *)
  | Stateful
      (** Emits eagerly but accumulates state proportional to distinct
          input (e.g. Dedup's seen-set). *)
  | Breaker
      (** Must materialize (part of) its input before emitting: Group,
          Order, the Hash_join build side, the With_common common
          sub-plan. *)

let pipeline_role = function
  | Group _ | Order _ | Hash_join _ | With_common _ -> Breaker
  | Dedup _ -> Stateful
  | Scan _ | Expand_all _ | Expand_into _ | Expand_intersect _ | Path_expand _
  | Select _ | Project _ | Limit _ | Skip _ | Unfold _ | Union _ | All_distinct _
  | Common_ref _ | Empty _ ->
    Streaming

let is_pipeline_breaker plan = pipeline_role plan = Breaker

let rec breaker_count plan =
  let self = if is_pipeline_breaker plan then 1 else 0 in
  match plan with
  | Scan _ | Common_ref _ | Empty _ -> self
  | Expand_all (x, _) | Expand_into (x, _) | Expand_intersect (x, _) | Path_expand (x, _)
  | Select (x, _) | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _)
  | Skip (x, _) | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) ->
    self + breaker_count x
  | Hash_join { left; right; _ } | Union (left, right) ->
    self + breaker_count left + breaker_count right
  | With_common { common; left; right; _ } ->
    self + breaker_count common + breaker_count left + breaker_count right

(* --- rendering ------------------------------------------------------------ *)

let node_label ?schema plan =
  let ename =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.etype_name s i
    | None -> string_of_int
  in
  let vname =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.vtype_name s i
    | None -> string_of_int
  in
  let step_str s =
    let hops =
      match s.s_edge.Pattern.e_hops with
      | None -> ""
      | Some (lo, hi) when lo = hi -> Printf.sprintf "*%d" lo
      | Some (lo, hi) -> Printf.sprintf "*%d..%d" lo hi
    in
    Format.asprintf "%s-[%s:%a%s]%s>%s:%a" s.s_from s.s_edge.Pattern.e_alias
      (Tc.pp ~names:ename) s.s_edge.Pattern.e_con hops
      (if s.s_forward then "-" else "<-")
      s.s_to (Tc.pp ~names:vname) s.s_to_con
  in
  match plan with
  | Scan { alias; con; pred } ->
    Format.asprintf "Scan(%s:%a)%s" alias (Tc.pp ~names:vname) con
      (match pred with None -> "" | Some p -> " WHERE " ^ Expr.to_string p)
  | Expand_all (_, s) -> Printf.sprintf "ExpandAll(%s)" (step_str s)
  | Expand_into (_, s) -> Printf.sprintf "ExpandInto(%s)" (step_str s)
  | Expand_intersect (_, steps) ->
    Printf.sprintf "ExpandIntersect(%s)" (String.concat " & " (List.map step_str steps))
  | Path_expand (_, s) -> Printf.sprintf "PathExpand(%s)" (step_str s)
  | Hash_join { keys; kind; _ } ->
    Printf.sprintf "HashJoin[%s](%s)"
      (match kind with
      | Logical.Inner -> "INNER"
      | Logical.Left_outer -> "LEFT"
      | Logical.Semi -> "SEMI"
      | Logical.Anti -> "ANTI")
      (String.concat ", " keys)
  | Select (_, e) -> Printf.sprintf "Select(%s)" (Expr.to_string e)
  | Project (_, ps) ->
    Printf.sprintf "Project(%s)"
      (String.concat ", "
         (List.map (fun (e, a) -> Printf.sprintf "%s AS %s" (Expr.to_string e) a) ps))
  | Group (_, ks, aggs) ->
    Printf.sprintf "Group(keys=%d, aggs=%d)" (List.length ks) (List.length aggs)
  | Order (_, ks, lim) ->
    Printf.sprintf "Order(keys=%d%s)" (List.length ks)
      (match lim with None -> "" | Some n -> Printf.sprintf ", topk=%d" n)
  | Limit (_, n) -> Printf.sprintf "Limit(%d)" n
  | Skip (_, n) -> Printf.sprintf "Skip(%d)" n
  | Unfold (_, e, a) -> Printf.sprintf "Unfold(%s AS %s)" (Expr.to_string e) a
  | Dedup (_, tags) -> Printf.sprintf "Dedup(%s)" (String.concat ", " tags)
  | Union _ -> "Union"
  | All_distinct (_, tags) -> Printf.sprintf "AllDistinct(%s)" (String.concat ", " tags)
  | With_common _ -> "WithCommon"
  | Common_ref _ -> "CommonRef"
  | Empty fields -> Printf.sprintf "Empty(%s)" (String.concat ", " fields)

let pp ?schema ppf plan =
  let rec go indent plan =
    Format.fprintf ppf "%s%s@," (String.make (2 * indent) ' ') (node_label ?schema plan);
    match plan with
    | Scan _ | Common_ref _ | Empty _ -> ()
    | Expand_all (x, _) | Expand_into (x, _) | Expand_intersect (x, _) | Path_expand (x, _)
    | Select (x, _) | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _)
    | Skip (x, _) | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) ->
      go (indent + 1) x
    | Hash_join { left; right; _ } | Union (left, right) ->
      go (indent + 1) left;
      go (indent + 1) right
    | With_common { common; left; right; _ } ->
      go (indent + 1) common;
      go (indent + 1) left;
      go (indent + 1) right
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"


let to_string ?schema plan = Format.asprintf "%a" (pp ?schema) plan
