module Logical = Gopt_gir.Logical
module Plan_check = Gopt_check.Plan_check
module Diagnostic = Gopt_check.Diagnostic

type t = {
  name : string;
  apply : Logical.t -> Logical.t option;
}

exception Check_failed of { rule : string; diag : Diagnostic.t }

let () =
  Printexc.register_printer (function
    | Check_failed { rule; diag } ->
      Some
        (Printf.sprintf "Rule.Check_failed: rule %S broke a plan invariant: %s" rule
           (Format.asprintf "%a" Diagnostic.pp diag))
    | _ -> None)

let make name apply = { name; apply }

let fixpoint ?(max_passes = 20) ?(check = false) ?schema rules plan =
  let log = ref [] in
  (* In checked mode, re-verify the rewritten subtree after every firing and
     blame the rule that produced the first broken invariant. The subtree is a
     plan fragment — its Common_ref ancestors may lie above the rewrite site —
     so the checker runs in partial mode. *)
  let verify name node =
    if check then
      match Plan_check.first_error (Plan_check.check ?schema ~partial:true node) with
      | Some diag -> raise (Check_failed { rule = name; diag })
      | None -> ()
  in
  (* One top-down sweep: at each node, apply rules until none fires (a rule's
     output may enable another rule at the same node), then recurse. *)
  let rec sweep node =
    let rec at_node node budget =
      if budget = 0 then node
      else
        match List.find_map (fun r -> Option.map (fun p -> (r.name, p)) (r.apply node)) rules with
        | Some (name, node') ->
          verify name node';
          log := name :: !log;
          at_node node' (budget - 1)
        | None -> node
    in
    let node = at_node node 50 in
    Logical.map_children sweep node
  in
  let rec iterate plan passes =
    if passes = 0 then plan
    else begin
      let plan' = sweep plan in
      if Logical.equal plan plan' then plan else iterate plan' (passes - 1)
    end
  in
  let result = iterate plan max_passes in
  (result, List.rev !log)
