(** The full optimization pipeline (paper §4, "Overall Workflow"):
    RBO -> type inference -> CBO -> backend-specific physical plan.

    Every stage can be toggled independently, which is how the paper's
    controlled experiments (heuristic rules on/off, type inference on/off,
    CBO vs user order) and the baseline planners in {!Baselines} are
    realized. *)

type config = {
  spec : Physical_spec.t;  (** Backend operator/cost registration. *)
  enable_rbo : bool;
  rules : Rule.t list;  (** Rules used when [enable_rbo]. *)
  enable_field_trim : bool;  (** The FieldTrim whole-plan pass. *)
  enable_type_inference : bool;
  inference_schema : Gopt_graph.Schema.t option;
      (** Schema used by type inference; [None] = the estimator's (declared)
          schema. Pass {!Gopt_graph.Schema_discovery.observed} output here to
          model schema-loose systems whose schema is extracted from data
          (paper Remark 6.1) — strictly tighter inference. *)
  enable_cbo : bool;
      (** [false]: patterns compile in user-specified order (the behaviour
          of a rule-based-only backend). *)
  cbo_options : Cbo.options;
  check_plans : bool;
      (** Run {!Gopt_check.Plan_check} on the plan at every stage (input,
          post-RBO, post-inference, physical), verify each RBO rule firing
          ({!Rule.fixpoint}[ ~check:true] — raises {!Rule.Check_failed} on an
          unsound rewrite), and reject structurally broken plans with
          [Invalid_argument] before the CBO runs. Stage diagnostics are
          collected in {!report.diagnostics}. *)
}

val default_config : ?spec:Physical_spec.t -> unit -> config
(** Everything enabled, all shipped rules, default CBO options;
    [spec] defaults to {!Physical_spec.graphscope}. *)

type cache_note = {
  cache_hit : bool;  (** This report was served from the session plan cache. *)
  cache_hits : int;  (** Cumulative session-cache counters at serve time. *)
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
}
(** Plan-cache observability attached by the [Gopt] façade when a query is
    answered through the session's prepared-plan cache. The planner itself
    never consults a cache — [plan] always reports [plan_cache = None]. *)

type report = {
  logical_input : Gopt_gir.Logical.t;
  logical_optimized : Gopt_gir.Logical.t;  (** After RBO + type inference. *)
  rules_applied : string list;
  invalid_patterns : int;
      (** Patterns proven unsatisfiable by type inference (compiled to
          Empty). *)
  search_stats : Cbo.search_stats list;  (** One entry per CBO-planned pattern. *)
  est_costs : float list;  (** Estimated cost per CBO-planned pattern. *)
  diagnostics : (string * Gopt_check.Diagnostic.t list) list;
      (** Per-stage verifier output when [config.check_plans]: ["logical"],
          ["rbo"], ["optimized"] (both after {!Gopt_check.Plan_check}) and
          ["physical"] (after {!Physical_check.check}). Empty otherwise. *)
  plan_cache : cache_note option;
}

val plan :
  config -> Gopt_glogue.Glogue_query.t -> Gopt_gir.Logical.t -> Physical.t * report
(** Optimize a logical plan end to end. *)

val compile_user_order : Physical_spec.t -> Gopt_pattern.Pattern.t -> Physical.t
(** Left-deep compilation in the pattern's declaration order (scan vertex 0,
    then bind each subsequent vertex adjacent to the bound set, lowest index
    first) — what a purely rule-based backend executes. *)

val compile_continuation :
  Gopt_glogue.Glogue_query.t ->
  Physical_spec.t ->
  Physical.t ->
  Gopt_pattern.Pattern.t ->
  bound:string list ->
  Physical.t
(** Extend rows that already bind [bound] vertex aliases to full matches of
    the pattern, choosing the expansion order greedily by estimated
    cardinality. Used for [Pattern_cont] (ComSubPattern continuations). *)
