(** Static well-formedness verification of physical plans — the
    {!Physical.t} counterpart of {!Gopt_check.Plan_check}.

    Checks, per operator: expand sources ([ExpandAll]/[PathExpand]) and
    targets ([ExpandInto]) bound by the input; [ExpandIntersect] steps
    non-empty, converging on one unbound target vertex; join keys present on
    both sides with compatible types; expressions typed over the incoming
    fields; [CommonRef] only under [WithCommon], referencing fields the
    common sub-plan actually produces; union branches field-compatible. *)

val check : ?schema:Gopt_graph.Schema.t -> Physical.t -> Gopt_check.Diagnostic.t list
(** Diagnostics for a lowered plan, outermost operators first. Each
    diagnostic's [path] is the offending operator's {!Physical.node_label}. *)
