(** The heuristic-rule framework of GOpt's RBO (paper §6.1).

    A rule is a named local rewrite: it inspects one plan node (the
    condition) and, when applicable, returns a replacement subplan (the
    action) — the two-step recipe of paper §7. Rules are extensible and
    pluggable: the rewriter applies any rule list to a fixpoint, mirroring
    Calcite's HepPlanner. *)

type t = {
  name : string;
  apply : Gopt_gir.Logical.t -> Gopt_gir.Logical.t option;
      (** [apply node] is [Some node'] if the rule fires at this node. The
          rewriter walks the whole plan; rules never need to recurse. *)
}

exception
  Check_failed of {
    rule : string;  (** The rule whose rewrite broke a plan invariant. *)
    diag : Gopt_check.Diagnostic.t;  (** The first violated invariant. *)
  }
(** Raised by {!fixpoint} in [~check:true] mode. *)

val make : string -> (Gopt_gir.Logical.t -> Gopt_gir.Logical.t option) -> t

val fixpoint :
  ?max_passes:int ->
  ?check:bool ->
  ?schema:Gopt_graph.Schema.t ->
  t list ->
  Gopt_gir.Logical.t ->
  Gopt_gir.Logical.t * string list
(** Repeatedly sweep the plan top-down, applying the first applicable rule at
    each node, until no rule fires or [max_passes] (default 20) sweeps have
    run. Returns the rewritten plan and the names of rules applied, in
    order.

    With [~check:true], {!Gopt_check.Plan_check} re-verifies the rewritten
    subtree (in partial mode, with [?schema] when given) after every rule
    firing; the first broken invariant aborts the rewrite with
    {!Check_failed}, naming the offending rule. *)
