(** Physical plans (paper §5.1, Fig. 3(d)/(e)).

    The physical plan fixes operator implementations and their order: how a
    pattern is matched (scans, edge expansions, intersections, hash joins)
    and how the relational part executes. Backends differ in which operators
    the planner emits — e.g. a Neo4j-profile plan closes cycles with
    [Expand_into] while a GraphScope-profile plan uses [Expand_intersect] —
    but every operator here is executable by the engine in [gopt_exec].

    Plans are serializable with {!to_string}, standing in for the paper's
    protobuf hand-off to backends. *)

type edge_step = {
  s_edge : Gopt_pattern.Pattern.edge;
      (** Constraint/alias/direction/predicate of the traversed pattern
          edge. Endpoint {e indices} in this record are pattern-local and not
          meaningful at execution time; the aliases below are. *)
  s_from : string;  (** Alias of the bound endpoint the step starts from. *)
  s_to : string;  (** Alias of the endpoint the step arrives at. *)
  s_forward : bool;
      (** [true] when the traversal follows the edge's stored direction
          (from its [e_src] to its [e_dst]). *)
  s_to_con : Gopt_pattern.Type_constraint.t;  (** Target vertex constraint. *)
  s_to_pred : Gopt_pattern.Expr.t option;  (** Target vertex predicate. *)
}

type t =
  | Scan of {
      alias : string;
      con : Gopt_pattern.Type_constraint.t;
      pred : Gopt_pattern.Expr.t option;
    }  (** Emit all vertices satisfying the constraint. *)
  | Expand_all of t * edge_step
      (** Bind the step's edge and its (new) far vertex, flattening: one
          output row per traversed edge. *)
  | Expand_into of t * edge_step
      (** Both endpoints already bound: keep rows where the edge exists,
          binding the edge alias (one row per parallel edge). *)
  | Expand_intersect of t * edge_step list
      (** Worst-case-optimal vertex expansion: all steps share [s_to]; the
          new vertex is the sorted-adjacency intersection of all steps'
          neighbour lists, then edges are unfolded. *)
  | Path_expand of t * edge_step
      (** Variable-length expansion ([s_edge.e_hops] is [Some _]): binds the
          path value under the edge alias and the far endpoint under
          [s_to] (or filters if [s_to] is already bound). *)
  | Hash_join of { left : t; right : t; keys : string list; kind : Gopt_gir.Logical.join_kind }
  | Select of t * Gopt_pattern.Expr.t
  | Project of t * (Gopt_pattern.Expr.t * string) list
  | Group of t * (Gopt_pattern.Expr.t * string) list * Gopt_gir.Logical.agg list
  | Order of t * (Gopt_pattern.Expr.t * Gopt_gir.Logical.sort_dir) list * int option
  | Limit of t * int
  | Skip of t * int
  | Unfold of t * Gopt_pattern.Expr.t * string
      (** One output row per element of the evaluated collection. *)
  | Dedup of t * string list
  | Union of t * t
  | All_distinct of t * string list
      (** Pairwise-distinct filter over the given edge-valued fields. *)
  | With_common of { common : t; left : t; right : t; combine : Gopt_gir.Logical.combine }
  | Common_ref of string list
      (** Rows of the enclosing [With_common]'s shared subplan; carries its
          field layout. *)
  | Empty of string list
      (** Produces no rows (e.g. a pattern proven INVALID by type
          inference), with the given output fields. *)

val output_fields : t -> string list
(** Visible fields, mirroring {!Gopt_gir.Logical.output_fields}. *)

val map_exprs : (Gopt_pattern.Expr.t -> Gopt_pattern.Expr.t) -> t -> t
(** Rewrite every expression position in the plan: scan and expansion
    predicates, selections, projections, group keys and aggregate arguments,
    sort keys, and unfold sources. Structure (aliases, constraints, join
    keys, limits) is untouched. *)

val params : t -> string list
(** Names of unresolved [Expr.Param] placeholders anywhere in the plan, in
    first-occurrence order, without duplicates. Empty for plans compiled from
    fully-substituted queries. *)

val bind_params : (string * Gopt_graph.Value.t list) list -> t -> t
(** [bind_params bindings plan] substitutes every [Expr.Param] placeholder
    with its bound constant. Each scalar placeholder must bind exactly one
    value; raises [Invalid_argument] with a descriptive message naming the
    missing parameter and the supplied set otherwise. *)

type pipeline_role =
  | Streaming  (** Emits as input arrives; holds no unbounded state. *)
  | Stateful
      (** Emits eagerly but accumulates state proportional to distinct
          input (e.g. Dedup's seen-set). *)
  | Breaker
      (** Must materialize (part of) its input before emitting: Group,
          Order, the Hash_join build side, the With_common common
          sub-plan. *)

val pipeline_role : t -> pipeline_role
(** How the push-based engine executes this operator (classification of the
    node itself, not the subtree). *)

val is_pipeline_breaker : t -> bool
(** [pipeline_role t = Breaker]. *)

val breaker_count : t -> int
(** Pipeline breakers in the whole plan tree; a plan with [n] breakers
    executes as at least [n + 1] pipelines. *)

val node_label : ?schema:Gopt_graph.Schema.t -> t -> string
(** Single-line description of the root operator (no children) — shared by
    {!pp} and the engine's per-operator traces. *)

val pp : ?schema:Gopt_graph.Schema.t -> Format.formatter -> t -> unit
val to_string : ?schema:Gopt_graph.Schema.t -> t -> string

val operator_count : t -> int

val uses_intersect : t -> bool
(** Does the plan contain an [Expand_intersect]? (Observability for tests
    and experiment reports.) *)
