module Pattern = Gopt_pattern.Pattern

let cypher_planner_config =
  {
    Planner.spec = Physical_spec.neo4j;
    enable_rbo = true;
    rules =
      [
        Rules_relational.constant_fold;
        Rules_relational.select_merge;
        Rules_relational.select_pushdown;
        Rules_relational.project_merge;
        Rules_relational.limit_pushdown;
        Rules_pattern.filter_into_pattern;
      ];
    enable_field_trim = false;
    enable_type_inference = false;
    inference_schema = None;
    enable_cbo = true;
    cbo_options =
      { Cbo.default_options with max_join_edges = 0 (* expansions only *); greedy_only = true };
    check_plans = false;
  }

let gs_rbo_config =
  {
    Planner.spec = Physical_spec.graphscope;
    enable_rbo = true;
    rules =
      [
        Rules_relational.constant_fold;
        Rules_relational.select_merge;
        Rules_relational.limit_pushdown;
        Rules_pattern.join_to_pattern;
      ];
    enable_field_trim = false;
    enable_type_inference = false;
    inference_schema = None;
    enable_cbo = false;
    cbo_options = Cbo.default_options;
    check_plans = false;
  }

let gopt_config spec = Planner.default_config ~spec ()

let gopt_neo_cost_config =
  let spec =
    (* GraphScope operators, Neo4j (flattening) expansion costs: the
       mismatched cost model of Fig. 8(c)'s GOpt-Neo-Plan *)
    Physical_spec.make ~name:"graphscope-neo-cost" ~use_intersect:true ~comm_factor:0.0
      ~expand_cost:Physical_spec.neo4j.Physical_spec.expand_cost
      ~join_cost:Physical_spec.neo4j.Physical_spec.join_cost ()
  in
  Planner.default_config ~spec ()

let random_plan rng spec p =
  let nv = Pattern.n_vertices p in
  if nv = 0 || not (Pattern.is_connected p) then
    invalid_arg "Baselines.random_plan: need a connected pattern";
  let bound = Array.make nv false in
  let alias i = (Pattern.vertex p i).Pattern.v_alias in
  let start = Gopt_util.Prng.int rng nv in
  bound.(start) <- true;
  let v0 = Pattern.vertex p start in
  let plan =
    ref
      (Physical.Scan { alias = v0.Pattern.v_alias; con = v0.Pattern.v_con; pred = v0.Pattern.v_pred })
  in
  let order = ref [ alias start ] in
  for _ = 2 to nv do
    let frontier =
      List.filter
        (fun v ->
          (not bound.(v)) && List.exists (fun (_, u) -> bound.(u)) (Pattern.neighbors p v))
        (List.init nv Fun.id)
    in
    let v = Gopt_util.Prng.choice rng (Array.of_list frontier) in
    let edges =
      List.filter
        (fun ei ->
          let e = Pattern.edge p ei in
          let other = if e.Pattern.e_src = v then e.Pattern.e_dst else e.Pattern.e_src in
          bound.(other))
        (Pattern.incident_edges p v)
    in
    plan := Cbo.compile_expansion spec !plan p ~new_vertex_alias:(alias v) (List.map (Pattern.edge p) edges);
    bound.(v) <- true;
    order := alias v :: !order
  done;
  (!plan, List.rev !order)
