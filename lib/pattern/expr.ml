module Value = Gopt_graph.Value

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Leq | Gt | Geq
  | And | Or
  | Starts_with | Ends_with | Contains

type unop = Not | Neg | Is_null | Is_not_null

type t =
  | Const of Value.t
  | Param of string
  | Var of string
  | Prop of string * string
  | Label of string
  | Binop of binop * t * t
  | Unop of unop * t
  | In_list of t * Value.t list

let rec compare a b = Stdlib.compare (erase a) (erase b)

(* [Value.t] contains floats, for which polymorphic compare is fine here
   (total, NaN-free in practice); erase to a comparable skeleton. *)
and erase = function
  | Const v -> `Const (Value.to_string v)
  | Param x -> `Param x
  | Var x -> `Var x
  | Prop (x, k) -> `Prop (x, k)
  | Label x -> `Label x
  | Binop (op, l, r) -> `Binop (op, erase l, erase r)
  | Unop (op, e) -> `Unop (op, erase e)
  | In_list (e, vs) -> `In (erase e, List.map Value.to_string vs)

let equal a b = compare a b = 0

let free_tags e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let visit tag =
    if not (Hashtbl.mem seen tag) then begin
      Hashtbl.add seen tag ();
      acc := tag :: !acc
    end
  in
  let rec go = function
    | Const _ | Param _ -> ()
    | Var x | Prop (x, _) | Label x -> visit x
    | Binop (_, l, r) -> go l; go r
    | Unop (_, e) -> go e
    | In_list (e, _) -> go e
  in
  go e;
  List.rev !acc

let params e =
  let seen = Hashtbl.create 4 in
  let acc = ref [] in
  let rec go = function
    | Const _ | Var _ | Prop _ | Label _ -> ()
    | Param name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        acc := name :: !acc
      end
    | Binop (_, l, r) -> go l; go r
    | Unop (_, e) -> go e
    | In_list (e, _) -> go e
  in
  go e;
  List.rev !acc

let rec bind_params f = function
  | (Const _ | Var _ | Prop _ | Label _) as e -> e
  | Param name as e -> ( match f name with Some v -> Const v | None -> e)
  | Binop (op, l, r) -> Binop (op, bind_params f l, bind_params f r)
  | Unop (op, e) -> Unop (op, bind_params f e)
  | In_list (e, vs) -> In_list (bind_params f e, vs)

let rec conjuncts = function
  | Binop (And, l, r) -> conjuncts l @ conjuncts r
  | e -> [ e ]

let conj = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> Binop (And, acc, x)) e rest)

let rec rename_tags f = function
  | (Const _ | Param _) as e -> e
  | Var x -> Var (f x)
  | Prop (x, k) -> Prop (f x, k)
  | Label x -> Label (f x)
  | Binop (op, l, r) -> Binop (op, rename_tags f l, rename_tags f r)
  | Unop (op, e) -> Unop (op, rename_tags f e)
  | In_list (e, vs) -> In_list (rename_tags f e, vs)

let substitute f e =
  let exception Fail in
  let rec go = function
    | (Const _ | Param _) as e -> e
    | Var x as e -> ( match f x with Some e' -> e' | None -> e)
    | Prop (x, k) as e -> begin
      match f x with
      | Some (Var y) -> Prop (y, k)
      | Some _ -> raise Fail
      | None -> e
    end
    | Label x as e -> begin
      match f x with
      | Some (Var y) -> Label y
      | Some _ -> raise Fail
      | None -> e
    end
    | Binop (op, l, r) -> Binop (op, go l, go r)
    | Unop (op, inner) -> Unop (op, go inner)
    | In_list (inner, vs) -> In_list (go inner, vs)
  in
  match go e with e' -> Some e' | exception Fail -> None

(* Constant folding shares the arithmetic/comparison semantics with the
   evaluator in the execution layer; only total, side-effect-free cases are
   folded, everything else is preserved. *)
let num_binop op x y =
  match x, y with
  | Value.Int a, Value.Int b -> begin
    match op with
    | Add -> Some (Value.Int (a + b))
    | Sub -> Some (Value.Int (a - b))
    | Mul -> Some (Value.Int (a * b))
    | Div -> if b = 0 then None else Some (Value.Int (a / b))
    | Mod -> if b = 0 then None else Some (Value.Int (a mod b))
    | _ -> None
  end
  | _ -> begin
    match Value.as_float x, Value.as_float y with
    | Some a, Some b -> begin
      match op with
      | Add -> Some (Value.Float (a +. b))
      | Sub -> Some (Value.Float (a -. b))
      | Mul -> Some (Value.Float (a *. b))
      | Div -> if b = 0.0 then None else Some (Value.Float (a /. b))
      | _ -> None
    end
    | _ -> None
  end

let cmp_binop op x y =
  if Value.is_null x || Value.is_null y then None
  else
    let c = Value.compare x y in
    let r =
      match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Leq -> c <= 0
      | Gt -> c > 0
      | Geq -> c >= 0
      | _ -> assert false
    in
    Some (Value.Bool r)

let rec const_fold e =
  match e with
  | Const _ | Param _ | Var _ | Prop _ | Label _ -> e
  | Unop (op, inner) -> begin
    let inner = const_fold inner in
    match op, inner with
    | Not, Const (Value.Bool b) -> Const (Value.Bool (not b))
    | Neg, Const (Value.Int n) -> Const (Value.Int (-n))
    | Neg, Const (Value.Float f) -> Const (Value.Float (-.f))
    | Is_null, Const v -> Const (Value.Bool (Value.is_null v))
    | Is_not_null, Const v -> Const (Value.Bool (not (Value.is_null v)))
    | _ -> Unop (op, inner)
  end
  | Binop (op, l, r) -> begin
    let l = const_fold l and r = const_fold r in
    match op, l, r with
    | And, Const (Value.Bool true), e | And, e, Const (Value.Bool true) -> e
    | And, (Const (Value.Bool false) as f), _ | And, _, (Const (Value.Bool false) as f) -> f
    | Or, Const (Value.Bool false), e | Or, e, Const (Value.Bool false) -> e
    | Or, (Const (Value.Bool true) as t'), _ | Or, _, (Const (Value.Bool true) as t') -> t'
    | (Add | Sub | Mul | Div | Mod), Const x, Const y -> begin
      match num_binop op x y with Some v -> Const v | None -> Binop (op, l, r)
    end
    | (Eq | Neq | Lt | Leq | Gt | Geq), Const x, Const y -> begin
      match cmp_binop op x y with Some v -> Const v | None -> Binop (op, l, r)
    end
    | _ -> Binop (op, l, r)
  end
  | In_list (inner, vs) -> begin
    match const_fold inner with
    | Const v -> Const (Value.Bool (List.exists (Value.equal v) vs))
    | inner -> In_list (inner, vs)
  end

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Leq -> "<=" | Gt -> ">" | Geq -> ">="
  | And -> "AND" | Or -> "OR"
  | Starts_with -> "STARTS WITH" | Ends_with -> "ENDS WITH" | Contains -> "CONTAINS"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Param x -> Format.fprintf ppf "$%s" x
  | Var x -> Format.pp_print_string ppf x
  | Prop (x, k) -> Format.fprintf ppf "%s.%s" x k
  | Label x -> Format.fprintf ppf "label(%s)" x
  | Binop (op, l, r) -> Format.fprintf ppf "(%a %s %a)" pp l (binop_name op) pp r
  | Unop (Not, e) -> Format.fprintf ppf "NOT %a" pp e
  | Unop (Neg, e) -> Format.fprintf ppf "-%a" pp e
  | Unop (Is_null, e) -> Format.fprintf ppf "%a IS NULL" pp e
  | Unop (Is_not_null, e) -> Format.fprintf ppf "%a IS NOT NULL" pp e
  | In_list (e, vs) ->
    Format.fprintf ppf "%a IN [%s]" pp e
      (String.concat "; " (List.map Value.to_string vs))

let to_string e = Format.asprintf "%a" pp e
