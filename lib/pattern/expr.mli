(** Scalar expressions of the GIR (paper §5.1).

    Expressions reference earlier results by tag (the [Alias]/[Tag] mechanism
    of the GraphIrBuilder), access vertex/edge properties, and combine values
    with the usual comparison, arithmetic, boolean and string operators.
    Evaluation is defined in the execution layer; this module is the pure
    syntax plus the static analyses the optimizer needs (free tags,
    conjunction splitting, constant folding). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Leq | Gt | Geq
  | And | Or
  | Starts_with | Ends_with | Contains

type unop = Not | Neg | Is_null | Is_not_null

type t =
  | Const of Gopt_graph.Value.t
  | Param of string
      (** A named query parameter ([$name]), left unresolved through the
          whole optimization pipeline and bound to a constant only at
          execution time (prepared statements). Parameters are scalars;
          labels and IN-list value sets are {e not} parameterizable, so type
          inference and label narrowing stay sound on prepared plans. *)
  | Var of string
      (** Value of a tagged result: the id of a vertex/edge, or a scalar. *)
  | Prop of string * string  (** [Prop (tag, key)] is [tag.key]. *)
  | Label of string
      (** [Label tag]: the type name of the tagged vertex/edge. *)
  | Binop of binop * t * t
  | Unop of unop * t
  | In_list of t * Gopt_graph.Value.t list

val equal : t -> t -> bool
val compare : t -> t -> int

val free_tags : t -> string list
(** Tags the expression references, duplicate-free, in first-use order. The
    FilterIntoPattern rule pushes a predicate into a pattern element only when
    all its free tags resolve to that element. *)

val params : t -> string list
(** Parameter names the expression references, duplicate-free, in first-use
    order. A closed (fully bindable) expression has [params e = []]. *)

val bind_params : (string -> Gopt_graph.Value.t option) -> t -> t
(** [bind_params f e] replaces each [Param name] for which [f name] is
    [Some v] by [Const v]; unresolved parameters are left in place (callers
    decide whether that is an error). *)

val conjuncts : t -> t list
(** Split an expression on top-level [And]s. *)

val conj : t list -> t option
(** Rebuild a conjunction; [None] for the empty list. *)

val rename_tags : (string -> string) -> t -> t
(** Apply a tag substitution to all [Var]/[Prop]/[Label] occurrences. *)

val substitute : (string -> t option) -> t -> t option
(** [substitute f e] replaces each tag reference [x] for which [f x] is
    [Some e'] by [e']. [Var x] accepts any replacement; [Prop (x, k)] and
    [Label x] only accept a replacement of the form [Var y] (one cannot take
    the property of a computed value) — in that case the whole substitution
    fails with [None]. Used by predicate push-down through projections. *)

val const_fold : t -> t
(** Fold constant subexpressions (pure, best-effort: arithmetic, comparisons
    and boolean connectives over constants). *)

val binop_name : binop -> string
(** Surface-syntax name of a binary operator ("+", "AND", "CONTAINS", ...). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
