type t = {
  field_list : string list;
  index : (string, int) Hashtbl.t;
  rows : Rval.t array Gopt_util.Vec.t;
}

let create field_list =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      if Hashtbl.mem index f then invalid_arg (Printf.sprintf "Batch.create: duplicate field %S" f);
      Hashtbl.add index f i)
    field_list;
  { field_list; index; rows = Gopt_util.Vec.create () }

let fields t = t.field_list
let has_field t f = Hashtbl.mem t.index f

let pos_opt t f = Hashtbl.find_opt t.index f

let pos t f =
  match Hashtbl.find_opt t.index f with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Batch.pos: no field %S in batch [%s]" f
         (String.concat "; " t.field_list))

let n_rows t = Gopt_util.Vec.length t.rows
let n_fields t = List.length t.field_list

let add t row =
  assert (Array.length row = n_fields t);
  Gopt_util.Vec.push t.rows row

let row t i = Gopt_util.Vec.get t.rows i

let iter f t = Gopt_util.Vec.iter f t.rows

let of_rows field_list rows =
  let t = create field_list in
  List.iter (add t) rows;
  t

let project_to t target_fields row =
  Array.of_list (List.map (fun f -> row.(pos t f)) target_fields)

let pp g ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.field_list);
  let n = n_rows t in
  let shown = min n 20 in
  for i = 0 to shown - 1 do
    let r = row t i in
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (Array.to_list (Array.map (fun v -> Format.asprintf "%a" (Rval.pp g) v) r)))
  done;
  if n > shown then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"
