(* Columnar chunk with adaptive per-field columns and a selection vector.

   Columns start untyped and specialize on first write: vertex and edge
   bindings go to dense [int] arrays (no per-cell boxing), anything else to
   a boxed [Rval.t] array. If a later write does not conform (e.g. an outer
   join pads an [Rnull] into a vertex column) the column promotes itself to
   the boxed representation, re-boxing the rows written so far — promotion
   is a one-time cost per column, not per row.

   Views ([sub]/[select]/[project] results) share the physical columns of
   their parent and carry a selection vector mapping logical to physical row
   indices. The engine never mutates a batch after handing it downstream, so
   sharing is safe; [add] additionally refuses to run on views. *)

type col =
  | C_empty  (* nothing written yet; kind unknown *)
  | C_vertex of int array
  | C_edge of int array
  | C_boxed of Rval.t array

type t = {
  field_list : string list;
  index : (string, int) Hashtbl.t;
  width : int;
  mutable cols : col array;
  mutable phys : int;  (* valid physical rows in [cols] *)
  mutable sel : int array option;  (* logical -> physical; None = identity *)
  view : bool;  (* shares another batch's columns; [add] is forbidden *)
}

let create field_list =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      if Hashtbl.mem index f then invalid_arg (Printf.sprintf "Batch.create: duplicate field %S" f);
      Hashtbl.add index f i)
    field_list;
  let width = List.length field_list in
  {
    field_list;
    index;
    width;
    cols = Array.make (max width 1) C_empty;
    phys = 0;
    sel = None;
    view = false;
  }

let fields t = t.field_list
let has_field t f = Hashtbl.mem t.index f

let pos_opt t f = Hashtbl.find_opt t.index f

let pos t f =
  match Hashtbl.find_opt t.index f with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Batch.pos: no field %S in batch [%s]" f
         (String.concat "; " t.field_list))

let n_rows t = match t.sel with Some s -> Array.length s | None -> t.phys
let n_fields t = t.width

(* --- cell writes with column adaptation ---------------------------------- *)

let grow_int a need =
  if Array.length a > need then a
  else begin
    let na = Array.make (max 8 (2 * (need + 1))) 0 in
    Array.blit a 0 na 0 (Array.length a);
    na
  end

let grow_boxed a need =
  if Array.length a > need then a
  else begin
    let na = Array.make (max 8 (2 * (need + 1))) Rval.Rnull in
    Array.blit a 0 na 0 (Array.length a);
    na
  end

(* box the first [n] cells of an int column so a non-conforming value can be
   stored; [mk] re-boxes the existing ids *)
let promote a n mk v =
  let b = Array.make (max 8 (2 * (n + 1))) Rval.Rnull in
  for k = 0 to n - 1 do
    b.(k) <- mk a.(k)
  done;
  b.(n) <- v;
  b

(* write cell [i] of column [j]; [i] is the next physical row (cells are
   written append-only, all columns advancing in lockstep) *)
let set_cell t j i (v : Rval.t) =
  match t.cols.(j), v with
  | C_vertex a, Rval.Rvertex x ->
    let a = grow_int a i in
    a.(i) <- x;
    t.cols.(j) <- C_vertex a
  | C_edge a, Rval.Redge x ->
    let a = grow_int a i in
    a.(i) <- x;
    t.cols.(j) <- C_edge a
  | C_vertex a, v -> t.cols.(j) <- C_boxed (promote a i (fun x -> Rval.Rvertex x) v)
  | C_edge a, v -> t.cols.(j) <- C_boxed (promote a i (fun x -> Rval.Redge x) v)
  | C_boxed a, v ->
    let a = grow_boxed a i in
    a.(i) <- v;
    t.cols.(j) <- C_boxed a
  | C_empty, Rval.Rvertex x ->
    let a = Array.make 8 0 in
    a.(0) <- x;
    t.cols.(j) <- C_vertex a
  | C_empty, Rval.Redge x ->
    let a = Array.make 8 0 in
    a.(0) <- x;
    t.cols.(j) <- C_edge a
  | C_empty, v ->
    let a = Array.make 8 Rval.Rnull in
    a.(0) <- v;
    t.cols.(j) <- C_boxed a

let add t row =
  if t.view || t.sel <> None then
    invalid_arg "Batch.add: batch is an immutable view (sub/select/project result)";
  assert (Array.length row = t.width);
  let i = t.phys in
  for j = 0 to t.width - 1 do
    set_cell t j i row.(j)
  done;
  t.phys <- i + 1

(* --- reads ---------------------------------------------------------------- *)

let phys_of t i = match t.sel with Some s -> s.(i) | None -> i

let get t i j =
  let p = phys_of t i in
  match t.cols.(j) with
  | C_vertex a -> Rval.Rvertex a.(p)
  | C_edge a -> Rval.Redge a.(p)
  | C_boxed a -> a.(p)
  | C_empty -> invalid_arg "Batch.get: empty column"

let row t i =
  if i < 0 || i >= n_rows t then invalid_arg "Batch.row: index out of bounds";
  Array.init t.width (fun j -> get t i j)

let lookup t i tag =
  match Hashtbl.find_opt t.index tag with Some j -> Some (get t i j) | None -> None

let iter f t =
  let n = n_rows t in
  for i = 0 to n - 1 do
    f (row t i)
  done

let of_rows field_list rows =
  let t = create field_list in
  List.iter (add t) rows;
  t

let of_vertex_ids alias ids ~pos ~len =
  let t = create [ alias ] in
  t.cols.(0) <- C_vertex (Array.sub ids pos len);
  t.phys <- len;
  t

let project_to t target_fields row =
  Array.of_list (List.map (fun f -> row.(pos t f)) target_fields)

(* --- zero-copy views ------------------------------------------------------ *)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > n_rows t then
    invalid_arg
      (Printf.sprintf "Batch.sub: range [%d, %d) out of bounds (%d rows)" pos (pos + len)
         (n_rows t));
  let sel =
    match t.sel with
    | None -> Array.init len (fun k -> pos + k)
    | Some s -> Array.sub s pos len
  in
  { t with sel = Some sel; view = true }

let select t idxs =
  let sel =
    match t.sel with None -> idxs | Some s -> Array.map (fun i -> s.(i)) idxs
  in
  { t with sel = Some sel; view = true }

let project t pairs =
  let out_fields = List.map snd pairs in
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      if Hashtbl.mem index f then
        invalid_arg (Printf.sprintf "Batch.project: duplicate field %S" f);
      Hashtbl.add index f i)
    out_fields;
  {
    field_list = out_fields;
    index;
    width = List.length out_fields;
    cols = Array.of_list (List.map (fun (j, _) -> t.cols.(j)) pairs);
    phys = t.phys;
    sel = t.sel;
    view = true;
  }

(* --- kernel access -------------------------------------------------------- *)

type data = D_vertex of int array | D_edge of int array | D_boxed of Rval.t array

let col t j =
  match t.cols.(j) with
  | C_vertex a -> D_vertex a
  | C_edge a -> D_edge a
  | C_boxed a -> D_boxed a
  | C_empty -> D_boxed [||]

let selection t = t.sel

(* --- column-wise append (exchange merge) ---------------------------------- *)

let append_batch dst src =
  if dst.view || dst.sel <> None then invalid_arg "Batch.append_batch: target is a view";
  if src.field_list <> dst.field_list then
    invalid_arg
      (Printf.sprintf "Batch.append_batch: layout mismatch ([%s] vs [%s])"
         (String.concat "; " src.field_list)
         (String.concat "; " dst.field_list));
  let n = n_rows src in
  if n > 0 then begin
    let base = dst.phys in
    for j = 0 to dst.width - 1 do
      (* fast paths: same-kind dense copies, compacting through the source
         selection vector; anything else falls back to per-cell writes *)
      match src.cols.(j), dst.cols.(j), src.sel with
      | C_vertex a, C_vertex d, sel ->
        let d = grow_int d (base + n - 1) in
        (match sel with
        | None -> Array.blit a 0 d base n
        | Some s ->
          for k = 0 to n - 1 do
            d.(base + k) <- a.(s.(k))
          done);
        dst.cols.(j) <- C_vertex d
      | C_edge a, C_edge d, sel ->
        let d = grow_int d (base + n - 1) in
        (match sel with
        | None -> Array.blit a 0 d base n
        | Some s ->
          for k = 0 to n - 1 do
            d.(base + k) <- a.(s.(k))
          done);
        dst.cols.(j) <- C_edge d
      | (C_vertex _ | C_edge _ | C_boxed _), _, _ ->
        for k = 0 to n - 1 do
          set_cell dst j (base + k) (get src k j)
        done
      | C_empty, _, _ -> invalid_arg "Batch.append_batch: empty column with rows"
    done;
    dst.phys <- base + n
  end

let concat field_list bs =
  let out = create field_list in
  List.iter
    (fun b ->
      if b.field_list <> field_list then
        invalid_arg
          (Printf.sprintf "Batch.concat: layout mismatch ([%s] vs [%s])"
             (String.concat "; " b.field_list)
             (String.concat "; " field_list));
      append_batch out b)
    bs;
  out

let pp g ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.field_list);
  let n = n_rows t in
  let shown = min n 20 in
  for i = 0 to shown - 1 do
    let r = row t i in
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (Array.to_list (Array.map (fun v -> Format.asprintf "%a" (Rval.pp g) v) r)))
  done;
  if n > shown then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"
