type t = {
  field_list : string list;
  index : (string, int) Hashtbl.t;
  rows : Rval.t array Gopt_util.Vec.t;
}

let create field_list =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      if Hashtbl.mem index f then invalid_arg (Printf.sprintf "Batch.create: duplicate field %S" f);
      Hashtbl.add index f i)
    field_list;
  { field_list; index; rows = Gopt_util.Vec.create () }

let fields t = t.field_list
let has_field t f = Hashtbl.mem t.index f

let pos_opt t f = Hashtbl.find_opt t.index f

let pos t f =
  match Hashtbl.find_opt t.index f with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Batch.pos: no field %S in batch [%s]" f
         (String.concat "; " t.field_list))

let n_rows t = Gopt_util.Vec.length t.rows
let n_fields t = List.length t.field_list

let add t row =
  assert (Array.length row = n_fields t);
  Gopt_util.Vec.push t.rows row

let row t i = Gopt_util.Vec.get t.rows i

let iter f t = Gopt_util.Vec.iter f t.rows

let of_rows field_list rows =
  let t = create field_list in
  List.iter (add t) rows;
  t

let project_to t target_fields row =
  Array.of_list (List.map (fun f -> row.(pos t f)) target_fields)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > n_rows t then
    invalid_arg
      (Printf.sprintf "Batch.sub: range [%d, %d) out of bounds (%d rows)" pos (pos + len)
         (n_rows t));
  let out = create t.field_list in
  for i = pos to pos + len - 1 do
    add out (row t i)
  done;
  out

let concat field_list bs =
  let out = create field_list in
  List.iter
    (fun b ->
      if b.field_list <> field_list then
        invalid_arg
          (Printf.sprintf "Batch.concat: layout mismatch ([%s] vs [%s])"
             (String.concat "; " b.field_list)
             (String.concat "; " field_list));
      iter (add out) b)
    bs;
  out

let pp g ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.field_list);
  let n = n_rows t in
  let shown = min n 20 in
  for i = 0 to shown - 1 do
    let r = row t i in
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (Array.to_list (Array.map (fun v -> Format.asprintf "%a" (Rval.pp g) v) r)))
  done;
  if n > shown then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"
