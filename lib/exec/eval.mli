(** Expression evaluation over rows.

    Comparison and arithmetic follow SQL-ish null semantics: any comparison
    or arithmetic involving Null yields Null; AND/OR use Kleene logic; a
    SELECT keeps a row only when its predicate evaluates to [Bool true]
    ({!is_true}). *)

val eval :
  Gopt_graph.Property_graph.t ->
  (string -> Rval.t option) ->
  Gopt_pattern.Expr.t ->
  Gopt_graph.Value.t
(** [eval g lookup e] evaluates [e]; [lookup] resolves tags to row values
    (unknown tags evaluate to Null, matching optional-field semantics). *)

val eval_rval :
  Gopt_graph.Property_graph.t ->
  (string -> Rval.t option) ->
  Gopt_pattern.Expr.t ->
  Rval.t
(** Like {!eval} but preserves graph-typed values: [Var tag] returns the
    tag's raw runtime value (so projecting a vertex keeps it a vertex). *)

val is_true : Gopt_graph.Value.t -> bool

val lookup_of_row : Batch.t -> Rval.t array -> string -> Rval.t option
(** Standard row-based tag resolver. *)

val contains : sub:string -> string -> bool
(** Allocation-free substring test ([CONTAINS]); the empty needle is
    contained in every string. Exposed for unit tests. *)

(** {1 Vectorized predicate kernels}

    A kernel is an expression compiled once per operator into a function
    that narrows candidate logical row indices of a columnar {!Batch.t} to
    the rows where the expression evaluates to [Bool true]. Hot shapes
    (AND-chains, [tag.key <op> const] comparisons, null tests, property
    IN-lists) become monomorphic column-at-a-time loops with the property
    column lookup hoisted out of the row loop; every other shape falls back
    to the row interpreter, row by row, with identical semantics. *)

type kernel

val compile :
  ?vectorize:bool ->
  Gopt_graph.Property_graph.t ->
  fields:string list ->
  Gopt_pattern.Expr.t ->
  kernel
(** [compile g ~fields e] compiles [e] against the given chunk layout.
    [~vectorize:false] forces the row-interpreter fallback for the whole
    expression (the benchmark baseline). *)

val run_kernel : kernel -> Batch.t -> int array -> int array
(** [run_kernel k b cand] filters the candidate logical row indices. The
    result is in candidate order and may share [cand] when all survive.
    Kernels are pure readers: one compiled kernel may run concurrently on
    several domains. *)

val vectorized : kernel -> bool
(** Whether at least part of the kernel runs as a specialized column loop
    (drives the [rows_selected]/[kernel_ns] trace counters). *)
