(* Push-based pipelined execution.

   Each Physical.t node compiles into an operator with consume/close
   callbacks; rows flow through pipelines in chunks of [chunk_size] rows of
   the Batch representation. Pipelines break only where semantics require
   materialization: the Hash_join build side, Group, Order, and the
   With_common common sub-plan (Dedup streams but holds its seen-set).

   Stop protocol: Limit raises the internal [Stop] exception once satisfied;
   it unwinds through the upstream operator frames to the pipeline's source
   (Scan / Common_ref / branch driver), which catches it and closes the
   pipeline. Sources additionally poll their sink's [k_alive] chain before
   producing, so sibling pipelines that feed an already-satisfied Limit
   (e.g. the second Union branch) never start. *)

module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Logical = Gopt_gir.Logical
module Physical = Gopt_opt.Physical
module KeyTbl = Agg.KeyTbl
module Vec = Gopt_util.Vec

exception Stop

let default_chunk_size = 1024

type sink = {
  k_consume : Batch.t -> unit;  (** Receive a chunk (never empty). *)
  k_close : unit -> unit;  (** End of stream; called exactly once. *)
  k_alive : unit -> bool;  (** Does anything downstream still want rows? *)
}

(* --- shared operator cores ------------------------------------------------ *)

(* Hash-join core shared by this engine and the parallel engine's probe
   stage ([Parallel]): key extraction, build-side table, and the per-row
   probe for all four join kinds. *)
module Join_core = struct
  type t = {
    table : Rval.t array list KeyTbl.t;
    lkeys : int list;
    rkeys : int list;
    right_extra_pos : int list;
    kind : Logical.join_kind;
    out_fields : string list;
  }

  let create ~left_fields ~right_fields ~keys ~kind =
    let l_layout = Batch.create left_fields in
    let r_layout = Batch.create right_fields in
    let right_extra =
      List.filter (fun f -> not (Batch.has_field l_layout f)) right_fields
    in
    let out_fields =
      match kind with
      | Logical.Semi | Logical.Anti -> left_fields
      | Logical.Inner | Logical.Left_outer -> left_fields @ right_extra
    in
    {
      table = KeyTbl.create 64;
      lkeys = List.map (Batch.pos l_layout) keys;
      rkeys = List.map (Batch.pos r_layout) keys;
      right_extra_pos = List.map (Batch.pos r_layout) right_extra;
      kind;
      out_fields;
    }

  (* Build rows are consed in arrival order, so matches come back in reverse
     arrival order — identical in both engines by construction. *)
  let build t row =
    let key = List.map (fun p -> row.(p)) t.rkeys in
    let cur = Option.value ~default:[] (KeyTbl.find_opt t.table key) in
    KeyTbl.replace t.table key (row :: cur)

  let size t = KeyTbl.fold (fun _ rows n -> n + List.length rows) t.table 0

  let probe t lrow emit =
    let key = List.map (fun p -> lrow.(p)) t.lkeys in
    let matches = Option.value ~default:[] (KeyTbl.find_opt t.table key) in
    let emit_pair rrow =
      emit
        (Array.append lrow
           (Array.of_list (List.map (fun p -> rrow.(p)) t.right_extra_pos)))
    in
    match t.kind with
    | Logical.Inner -> List.iter emit_pair matches
    | Logical.Left_outer ->
      if matches = [] then
        emit (Array.append lrow (Array.make (List.length t.right_extra_pos) Rval.Rnull))
      else List.iter emit_pair matches
    | Logical.Semi -> if matches <> [] then emit lrow
    | Logical.Anti -> if matches = [] then emit lrow
end

(* ORDER BY comparator over evaluated sort keys, shared with the parallel
   engine's k-way merge. *)
let compare_keys ks ka kb =
  let rec go ks ka kb =
    match ks, ka, kb with
    | [], _, _ -> 0
    | (_, dir) :: ks', a :: ka', b :: kb' ->
      let c = Value.compare a b in
      let c = match dir with Logical.Asc -> c | Logical.Desc -> -c in
      if c <> 0 then c else go ks' ka' kb'
    | _ -> 0
  in
  go ks ka kb

let run ?(profile = Op_trace.graphscope_profile) ?budget ?stop_poll
    ?(chunk_size = default_chunk_size) ?(vectorize = true) ?source g plan =
  let schema = G.schema g in
  let vuniv = Schema.n_vtypes schema and euniv = Schema.n_etypes schema in
  let st = Op_trace.fresh_stats () in
  let clk = Op_trace.clock () in
  let start = Sys.time () in
  let ticks = ref 0 in
  let tick_check () =
    (match budget with
    | Some b when Sys.time () -. start > b -> raise Op_trace.Timeout
    | _ -> ());
    match stop_poll with
    | Some poll when poll () -> raise Op_trace.Timeout
    | _ -> ()
  in
  let tick () =
    incr ticks;
    if !ticks land 8191 = 0 then tick_check ()
  in
  (* chunk-granular tick: fires whenever the counter crosses an 8192
     boundary, so budget polling frequency matches the row-at-a-time path *)
  let tick_n n =
    let before = !ticks in
    ticks := before + n;
    if !ticks lsr 13 <> before lsr 13 then tick_check ()
  in
  (* run a compiled predicate kernel, charging kernel-level counters to the
     operator's trace node (only genuinely vectorized kernels are counted —
     fallback kernels are the row interpreter under another name) *)
  let run_kern tr kern b cand =
    if Eval.vectorized kern then begin
      let t0 = Sys.time () in
      let out = Eval.run_kernel kern b cand in
      tr.Op_trace.kernel_ns <- tr.Op_trace.kernel_ns +. ((Sys.time () -. t0) *. 1e9);
      tr.Op_trace.rows_selected <- tr.Op_trace.rows_selected + Array.length out;
      out
    end
    else Eval.run_kernel kern b cand
  in
  let mk_trace ?(count_op = true) label =
    if count_op then st.Op_trace.operators <- st.Op_trace.operators + 1;
    Op_trace.make label []
  in
  (* wrap an operator body into a sink; consume/close are timed against the
     operator's trace node and rows-in is counted *)
  let mk_sink tr ~consume ~close ~alive =
    {
      k_consume =
        (fun chunk ->
          if Batch.n_rows chunk = 0 then
            invalid_arg "Operator: empty chunk pushed downstream";
          Op_trace.timed clk tr (fun () ->
              tr.Op_trace.rows_in <- tr.Op_trace.rows_in + Batch.n_rows chunk;
              consume chunk));
      k_close = (fun () -> Op_trace.timed clk tr close);
      k_alive = alive;
    }
  in
  (* chunked output buffer: counts emissions into the trace and the engine
     stats, flushes full chunks downstream, and raises Stop when the
     downstream chain no longer wants rows. [count] is false only for
     Common_ref re-emission (those rows were accounted when the common
     sub-plan materialized). *)
  let emitter ?(count = true) tr fields sink =
    let buf = ref (Batch.create fields) in
    let width = List.length fields in
    let flush () =
      if Batch.n_rows !buf > 0 then begin
        let b = !buf in
        buf := Batch.create fields;
        sink.k_consume b
      end
    in
    let account n =
      tr.Op_trace.rows_out <- tr.Op_trace.rows_out + n;
      if count then begin
        st.Op_trace.intermediate_rows <- st.Op_trace.intermediate_rows + n;
        st.Op_trace.intermediate_cells <- st.Op_trace.intermediate_cells + (n * width);
        if profile.Op_trace.count_comm then begin
          st.Op_trace.comm_rows <- st.Op_trace.comm_rows + n;
          st.Op_trace.comm_cells <- st.Op_trace.comm_cells + (n * width)
        end
      end
    in
    let emit row =
      Batch.add !buf row;
      account 1;
      if Batch.n_rows !buf >= chunk_size then begin
        flush ();
        if not (sink.k_alive ()) then raise Stop
      end
    in
    (* push a pre-built chunk (a filtered view or a column swap) downstream
       without row-at-a-time rebuffering; any buffered rows flush first so
       output order is preserved *)
    let emit_chunk b =
      let n = Batch.n_rows b in
      if n > 0 then begin
        flush ();
        account n;
        sink.k_consume b;
        if not (sink.k_alive ()) then raise Stop
      end
    in
    let close () =
      (try flush () with Stop -> ());
      sink.k_close ()
    in
    (emit, emit_chunk, close)
  in
  (* collect a pipeline's output into a batch (final results, the common
     sub-plan, join build inputs); collected rows are live *)
  let collector fields =
    let out = Batch.create fields in
    let sink =
      {
        k_consume =
          (fun chunk ->
            Batch.append_batch out chunk;
            Op_trace.live_add st (Batch.n_rows chunk));
        k_close = ignore;
        k_alive = (fun () -> true);
      }
    in
    (out, sink)
  in
  let etypes con = Tc.to_list ~universe:euniv con in
  let vcheck con v = Tc.mem ~universe:vuniv con (G.vtype g v) in
  let iter_step_adj (step : Physical.edge_step) v f =
    let e = step.Physical.s_edge in
    let visit_out et = G.iter_out_etype g v et (fun eid -> tick (); f eid (G.edst g eid)) in
    let visit_in et = G.iter_in_etype g v et (fun eid -> tick (); f eid (G.esrc g eid)) in
    List.iter
      (fun et ->
        if e.Pattern.e_directed then
          if step.Physical.s_forward then visit_out et else visit_in et
        else begin
          visit_out et;
          visit_in et
        end)
      (etypes e.Pattern.e_con)
  in
  let step_edges_between (step : Physical.edge_step) u w =
    let e = step.Physical.s_edge in
    List.concat_map
      (fun et ->
        if e.Pattern.e_directed then
          if step.Physical.s_forward then G.find_out_edges g ~src:u ~etype:et ~dst:w
          else G.find_out_edges g ~src:w ~etype:et ~dst:u
        else
          G.find_out_edges g ~src:u ~etype:et ~dst:w
          @ G.find_out_edges g ~src:w ~etype:et ~dst:u)
      (etypes e.Pattern.e_con)
  in
  let sorted_step_neighbors (step : Physical.edge_step) v =
    let e = step.Physical.s_edge in
    let arrays =
      List.concat_map
        (fun et ->
          if e.Pattern.e_directed then
            if step.Physical.s_forward then [ G.out_neighbors_etype g v et ]
            else [ G.in_neighbors_etype g v et ]
          else [ G.out_neighbors_etype g v et; G.in_neighbors_etype g v et ])
        (etypes e.Pattern.e_con)
    in
    let merged =
      match arrays with
      | [ single ] -> single (* per-etype adjacency is already sorted *)
      | _ ->
        let m = Array.concat arrays in
        Array.sort Int.compare m;
        m
    in
    let out = Vec.create () in
    Array.iteri (fun i x -> if i = 0 || merged.(i - 1) <> x then Vec.push out x) merged;
    Vec.to_array out
  in
  let vertex_of rv =
    match rv with
    | Rval.Rvertex v -> v
    | _ -> invalid_arg "Engine: expected a vertex binding"
  in
  let label plan = Physical.node_label ~schema plan in
  (* [run_plan common plan sink] executes the subtree rooted at [plan],
     pushing chunks into [sink] and closing it exactly once; returns the
     subtree's trace *)
  let rec run_plan common plan sink : Op_trace.t =
    (* drive a source iteration: honour the stop signal, then close *)
    let drive tr close iterate =
      (try
         Op_trace.timed clk tr (fun () ->
             if not (sink.k_alive ()) then raise Stop;
             iterate ())
       with Stop -> ());
      Op_trace.timed clk tr close;
      tr
    in
    (* streaming unary operator: per-input-row body emitting via [emit] *)
    let streaming ?alive x tr fields on_row =
      let emit, _, close = emitter tr fields sink in
      let alive = match alive with Some f -> f | None -> sink.k_alive in
      let op =
        mk_sink tr ~alive ~close
          ~consume:(fun chunk -> Batch.iter (fun row -> on_row emit row) chunk)
      in
      let ctr = run_plan common x op in
      tr.Op_trace.children <- [ ctr ];
      tr
    in
    (* hash-join machinery shared by Hash_join and With_common's C_join:
       materializes the build side via [run_build], then streams the probe
       side *)
    let hash_join tr ~left_fields ~right_fields ~keys ~kind ~run_build ~run_probe =
      let jc = Join_core.create ~left_fields ~right_fields ~keys ~kind in
      let build_sink =
        mk_sink tr ~alive:sink.k_alive ~close:ignore
          ~consume:(fun chunk ->
            Batch.iter
              (fun row ->
                tick ();
                Join_core.build jc row;
                Op_trace.live_add st 1)
              chunk)
      in
      let build_tr = run_build build_sink in
      let emit, _, close = emitter tr jc.Join_core.out_fields sink in
      let probe_sink =
        mk_sink tr ~alive:sink.k_alive
          ~consume:(fun chunk ->
            Batch.iter
              (fun lrow ->
                tick ();
                Join_core.probe jc lrow emit)
              chunk)
          ~close:(fun () ->
            Op_trace.live_sub st (Join_core.size jc);
            close ())
      in
      let probe_tr = run_probe probe_sink in
      (build_tr, probe_tr)
    in
    match plan with
    | Physical.Empty _ ->
      let tr = mk_trace (label plan) in
      drive tr (fun () -> sink.k_close ()) (fun () -> ())
    | Physical.Common_ref _ -> begin
      match common with
      | None -> failwith "Engine: CommonRef outside WithCommon"
      | Some cb ->
        let tr = mk_trace ~count_op:false (label plan) in
        let emit, _, close = emitter ~count:false tr (Batch.fields cb) sink in
        drive tr close (fun () -> Batch.iter emit cb)
    end
    | Physical.Scan { alias; con; pred } ->
      let tr = mk_trace (label plan) in
      let fields = [ alias ] in
      let kernel = Option.map (fun p -> Eval.compile ~vectorize g ~fields p) pred in
      let _, emit_chunk, close = emitter tr fields sink in
      (* vectorized scan: fill a dense id column per chunk straight from the
         type index, then narrow it with the compiled predicate kernel — no
         per-vertex boxing, no per-row closure dispatch *)
      drive tr close (fun () ->
          List.iter
            (fun t ->
              let verts = G.vertices_of_vtype g t in
              let nv = Array.length verts in
              let at = ref 0 in
              while !at < nv do
                let len = min chunk_size (nv - !at) in
                tick_n len;
                let b = Batch.of_vertex_ids alias verts ~pos:!at ~len in
                at := !at + len;
                match kernel with
                | None -> emit_chunk b
                | Some k ->
                  let selected = run_kern tr k b (Array.init len Fun.id) in
                  if Array.length selected = len then emit_chunk b
                  else if Array.length selected > 0 then
                    emit_chunk (Batch.select b selected)
              done)
            (Tc.to_list ~universe:vuniv con))
    | Physical.Expand_all (x, step) ->
      let child_fields = Physical.output_fields x in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let fields = child_fields @ [ e_alias; step.Physical.s_to ] in
      let layout = Batch.create fields in
      let from_pos = Batch.pos layout step.Physical.s_from in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          let v = vertex_of row.(from_pos) in
          iter_step_adj step v (fun eid other ->
              st.Op_trace.edges_touched <- st.Op_trace.edges_touched + 1;
              if vcheck step.Physical.s_to_con other then begin
                let row' = Array.append row [| Rval.Redge eid; Rval.Rvertex other |] in
                let lk = Eval.lookup_of_row layout row' in
                let keep =
                  (match step.Physical.s_edge.Pattern.e_pred with
                  | None -> true
                  | Some p -> Eval.is_true (Eval.eval g lk p))
                  &&
                  match step.Physical.s_to_pred with
                  | None -> true
                  | Some p -> Eval.is_true (Eval.eval g lk p)
                in
                if keep then emit row'
              end))
    | Physical.Expand_into (x, step) ->
      let child_fields = Physical.output_fields x in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let fields = child_fields @ [ e_alias ] in
      let layout = Batch.create fields in
      let from_pos = Batch.pos layout step.Physical.s_from in
      let to_pos = Batch.pos layout step.Physical.s_to in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          tick ();
          let u = vertex_of row.(from_pos) and w = vertex_of row.(to_pos) in
          List.iter
            (fun eid ->
              st.Op_trace.edges_touched <- st.Op_trace.edges_touched + 1;
              let row' = Array.append row [| Rval.Redge eid |] in
              let lk = Eval.lookup_of_row layout row' in
              let keep =
                match step.Physical.s_edge.Pattern.e_pred with
                | None -> true
                | Some p -> Eval.is_true (Eval.eval g lk p)
              in
              if keep then emit row')
            (step_edges_between step u w))
    | Physical.Expand_intersect (x, steps) ->
      let child_fields = Physical.output_fields x in
      let to_alias = (List.hd steps).Physical.s_to in
      let edge_aliases = List.map (fun s -> s.Physical.s_edge.Pattern.e_alias) steps in
      let fields = child_fields @ edge_aliases @ [ to_alias ] in
      let layout = Batch.create fields in
      let child_layout = Batch.create child_fields in
      let from_pos = List.map (fun s -> Batch.pos child_layout s.Physical.s_from) steps in
      let to_con = (List.hd steps).Physical.s_to_con in
      let to_pred = (List.hd steps).Physical.s_to_pred in
      (* hub vertices recur across rows: memoize their extracted adjacency *)
      let nbr_cache : (int * int, int array) Hashtbl.t = Hashtbl.create 256 in
      let step_neighbors idx step v =
        match Hashtbl.find_opt nbr_cache (idx, v) with
        | Some a -> a
        | None ->
          let a = sorted_step_neighbors step v in
          st.Op_trace.edges_touched <- st.Op_trace.edges_touched + Array.length a;
          Hashtbl.add nbr_cache (idx, v) a;
          a
      in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          tick ();
          let anchors = List.map (fun p -> vertex_of row.(p)) from_pos in
          let nbr_arrays =
            List.mapi (fun i (s, v) -> step_neighbors i s v) (List.combine steps anchors)
          in
          match nbr_arrays with
          | [] -> ()
          | _ ->
            let first =
              List.fold_left
                (fun acc a -> if Array.length a < Array.length acc then a else acc)
                (List.hd nbr_arrays) (List.tl nbr_arrays)
            in
            let rest = List.filter (fun a -> a != first) nbr_arrays in
            Array.iter
              (fun c ->
                tick ();
                if
                  List.for_all
                    (fun arr ->
                      let lo = ref 0 and hi = ref (Array.length arr) in
                      while !lo < !hi do
                        let mid = (!lo + !hi) / 2 in
                        if arr.(mid) < c then lo := mid + 1 else hi := mid
                      done;
                      !lo < Array.length arr && arr.(!lo) = c)
                    rest
                  && vcheck to_con c
                then begin
                  let rec assemble acc_edges = function
                    | [] ->
                      let row' =
                        Array.concat
                          [
                            row;
                            Array.of_list (List.rev_map (fun e -> Rval.Redge e) acc_edges);
                            [| Rval.Rvertex c |];
                          ]
                      in
                      let lk = Eval.lookup_of_row layout row' in
                      let keep =
                        (match to_pred with
                        | None -> true
                        | Some p -> Eval.is_true (Eval.eval g lk p))
                        && List.for_all
                             (fun (s : Physical.edge_step) ->
                               match s.Physical.s_edge.Pattern.e_pred with
                               | None -> true
                               | Some p -> Eval.is_true (Eval.eval g lk p))
                             steps
                      in
                      if keep then emit row'
                    | (s, v) :: more ->
                      List.iter
                        (fun eid -> assemble (eid :: acc_edges) more)
                        (step_edges_between s v c)
                  in
                  assemble [] (List.combine steps anchors)
                end)
              first)
    | Physical.Path_expand (x, step) ->
      let child_fields = Physical.output_fields x in
      let lo, hi =
        match step.Physical.s_edge.Pattern.e_hops with
        | Some (lo, hi) -> (lo, hi)
        | None -> (1, 1)
      in
      let sem = step.Physical.s_edge.Pattern.e_path in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let bound_mode = List.mem step.Physical.s_to child_fields in
      let fields =
        if bound_mode then child_fields @ [ e_alias ]
        else child_fields @ [ e_alias; step.Physical.s_to ]
      in
      let layout = Batch.create fields in
      let from_pos = Batch.pos layout step.Physical.s_from in
      let to_pos = if bound_mode then Some (Batch.pos layout step.Physical.s_to) else None in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          let v0 = vertex_of row.(from_pos) in
          let target = Option.map (fun p -> vertex_of row.(p)) to_pos in
          let rec dfs v depth edges_rev verts_rev =
            tick ();
            if depth >= lo && depth <= hi then begin
              let ok_endpoint =
                match target with Some t -> t = v | None -> vcheck step.Physical.s_to_con v
              in
              if ok_endpoint then begin
                let path =
                  Rval.Rpath { edges = List.rev edges_rev; verts = List.rev verts_rev }
                in
                let row' =
                  if bound_mode then Array.append row [| path |]
                  else Array.append row [| path; Rval.Rvertex v |]
                in
                let lk = Eval.lookup_of_row layout row' in
                let keep =
                  match step.Physical.s_to_pred with
                  | None -> true
                  | Some p -> if bound_mode then true else Eval.is_true (Eval.eval g lk p)
                in
                if keep then emit row'
              end
            end;
            if depth < hi then
              iter_step_adj step v (fun eid other ->
                  st.Op_trace.edges_touched <- st.Op_trace.edges_touched + 1;
                  let ok =
                    match sem with
                    | Pattern.Arbitrary -> true
                    | Pattern.Simple -> not (List.mem other verts_rev)
                    | Pattern.Trail -> not (List.mem eid edges_rev)
                  in
                  if ok then dfs other (depth + 1) (eid :: edges_rev) (other :: verts_rev))
          in
          dfs v0 0 [] [ v0 ])
    | Physical.Hash_join { left; right; keys; kind } ->
      let tr = mk_trace (label plan) in
      let build_tr, probe_tr =
        hash_join tr
          ~left_fields:(Physical.output_fields left)
          ~right_fields:(Physical.output_fields right)
          ~keys ~kind
          ~run_build:(fun s -> run_plan common right s)
          ~run_probe:(fun s -> run_plan common left s)
      in
      tr.Op_trace.children <- [ probe_tr; build_tr ];
      tr
    | Physical.Select (x, pred) ->
      let fields = Physical.output_fields x in
      let tr = mk_trace (label plan) in
      let kernel = Eval.compile ~vectorize g ~fields pred in
      let _, emit_chunk, close = emitter tr fields sink in
      (* vectorized filter: the kernel marks survivors and the chunk is
         forwarded as a selection-vector view — no row copying *)
      let op =
        mk_sink tr ~alive:sink.k_alive ~close
          ~consume:(fun chunk ->
            let n = Batch.n_rows chunk in
            tick_n n;
            let selected = run_kern tr kernel chunk (Array.init n Fun.id) in
            if Array.length selected = n then emit_chunk chunk
            else if Array.length selected > 0 then
              emit_chunk (Batch.select chunk selected))
      in
      let ctr = run_plan common x op in
      tr.Op_trace.children <- [ ctr ];
      tr
    | Physical.Project (x, ps) ->
      let child_fields = Physical.output_fields x in
      let child_layout = Batch.create child_fields in
      let fields = List.map snd ps in
      let tr = mk_trace (label plan) in
      (* when every projection is a bound [Var], the whole operator is a
         column swap: the output chunk shares the input's columns and
         selection vector *)
      let var_positions =
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | (Gopt_pattern.Expr.Var tag, alias) :: rest -> begin
            match Batch.pos_opt child_layout tag with
            | Some j -> go ((j, alias) :: acc) rest
            | None -> None
          end
          | _ -> None
        in
        if vectorize then go [] ps else None
      in
      begin
        match var_positions with
        | Some pairs ->
          let _, emit_chunk, close = emitter tr fields sink in
          let op =
            mk_sink tr ~alive:sink.k_alive ~close
              ~consume:(fun chunk ->
                let n = Batch.n_rows chunk in
                tick_n n;
                let t0 = Sys.time () in
                let out = Batch.project chunk pairs in
                tr.Op_trace.kernel_ns <-
                  tr.Op_trace.kernel_ns +. ((Sys.time () -. t0) *. 1e9);
                tr.Op_trace.rows_selected <- tr.Op_trace.rows_selected + n;
                emit_chunk out)
          in
          let ctr = run_plan common x op in
          tr.Op_trace.children <- [ ctr ];
          tr
        | None ->
          streaming x tr fields (fun emit row ->
              tick ();
              let lk = Eval.lookup_of_row child_layout row in
              emit (Array.of_list (List.map (fun (e, _) -> Eval.eval_rval g lk e) ps)))
      end
    | Physical.Group (x, ks, aggs) ->
      let child_fields = Physical.output_fields x in
      let child_layout = Batch.create child_fields in
      let fields = List.map snd ks @ List.map (fun a -> a.Logical.agg_alias) aggs in
      let tr = mk_trace (label plan) in
      let emit, _, close_down = emitter tr fields sink in
      let groups : (Rval.t list * Agg.state array) KeyTbl.t = KeyTbl.create 64 in
      let op =
        mk_sink tr ~alive:sink.k_alive
          ~consume:(fun chunk ->
            Batch.iter
              (fun row ->
                tick ();
                let lk = Eval.lookup_of_row child_layout row in
                let key = List.map (fun (e, _) -> Eval.eval_rval g lk e) ks in
                let _, states =
                  match KeyTbl.find_opt groups key with
                  | Some entry -> entry
                  | None ->
                    let entry = (key, Array.of_list (List.map Agg.init aggs)) in
                    KeyTbl.add groups key entry;
                    Op_trace.live_add st 1;
                    entry
                in
                Agg.update_all g lk states aggs)
              chunk)
          ~close:(fun () ->
            (try
               if KeyTbl.length groups = 0 && ks = [] then
                 (* aggregate over an empty input still yields one row *)
                 emit (Array.of_list (List.map (fun a -> Agg.finish (Agg.init a) a) aggs))
               else
                 KeyTbl.iter
                   (fun key (_, states) ->
                     let agg_vals = List.mapi (fun i a -> Agg.finish states.(i) a) aggs in
                     emit (Array.of_list (key @ agg_vals)))
                   groups
             with Stop -> ());
            Op_trace.live_sub st (KeyTbl.length groups);
            close_down ())
      in
      let ctr = run_plan common x op in
      tr.Op_trace.children <- [ ctr ];
      tr
    | Physical.Order (x, ks, lim) ->
      let fields = Physical.output_fields x in
      let layout = Batch.create fields in
      let tr = mk_trace (label plan) in
      let emit, _, close_down = emitter tr fields sink in
      let cmp (ka, _) (kb, _) = compare_keys ks ka kb in
      let buf : (Value.t list * Rval.t array) Vec.t = Vec.create () in
      (* with a limit, keep the buffer bounded: sort-and-truncate whenever it
         overflows a small multiple of the target (amortized O(n log k)) *)
      let prune_at =
        match lim with Some l -> max (4 * l) chunk_size | None -> max_int
      in
      let truncate k =
        Vec.sort cmp buf;
        let kept = min k (Vec.length buf) in
        let dropped = Vec.length buf - kept in
        if dropped > 0 then begin
          let keep = Array.init kept (Vec.get buf) in
          Vec.clear buf;
          Array.iter (Vec.push buf) keep;
          Op_trace.live_sub st dropped
        end
      in
      let op =
        mk_sink tr ~alive:sink.k_alive
          ~consume:(fun chunk ->
            Batch.iter
              (fun row ->
                tick ();
                let lk = Eval.lookup_of_row layout row in
                Vec.push buf (List.map (fun (e, _) -> Eval.eval g lk e) ks, row);
                Op_trace.live_add st 1;
                if Vec.length buf > prune_at then
                  truncate (match lim with Some l -> l | None -> max_int))
              chunk)
          ~close:(fun () ->
            Vec.sort cmp buf;
            let n =
              match lim with Some l -> min l (Vec.length buf) | None -> Vec.length buf
            in
            (try
               for i = 0 to n - 1 do
                 emit (snd (Vec.get buf i))
               done
             with Stop -> ());
            Op_trace.live_sub st (Vec.length buf);
            close_down ())
      in
      let ctr = run_plan common x op in
      tr.Op_trace.children <- [ ctr ];
      tr
    | Physical.Limit (x, n) ->
      let fields = Physical.output_fields x in
      let tr = mk_trace (label plan) in
      let count = ref 0 in
      streaming
        ~alive:(fun () -> !count < n && sink.k_alive ())
        x tr fields
        (fun emit row ->
          if !count < n then begin
            emit row;
            incr count;
            (* stop signal: unwinds to this pipeline's source *)
            if !count >= n then raise Stop
          end)
    | Physical.Skip (x, n) ->
      let fields = Physical.output_fields x in
      let tr = mk_trace (label plan) in
      let seen = ref 0 in
      streaming x tr fields (fun emit row ->
          incr seen;
          if !seen > n then emit row)
    | Physical.Unfold (x, e, alias) ->
      let child_fields = Physical.output_fields x in
      let child_layout = Batch.create child_fields in
      let fields = child_fields @ [ alias ] in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          tick ();
          let emit1 v = emit (Array.append row [| v |]) in
          match Eval.eval_rval g (Eval.lookup_of_row child_layout row) e with
          | Rval.Rlist items -> List.iter emit1 items
          | Rval.Rpath { verts; _ } -> List.iter (fun v -> emit1 (Rval.Rvertex v)) verts
          | Rval.Rnull -> ()
          | single -> emit1 single)
    | Physical.Dedup (x, tags) ->
      let fields = Physical.output_fields x in
      let layout = Batch.create fields in
      let positions =
        match tags with
        | [] -> List.init (List.length fields) Fun.id
        | tags -> List.map (Batch.pos layout) tags
      in
      let tr = mk_trace (label plan) in
      let seen = KeyTbl.create 64 in
      let emit, _, close_down = emitter tr fields sink in
      let op =
        mk_sink tr ~alive:sink.k_alive
          ~consume:(fun chunk ->
            Batch.iter
              (fun row ->
                tick ();
                let key = List.map (fun p -> row.(p)) positions in
                if not (KeyTbl.mem seen key) then begin
                  KeyTbl.add seen key ();
                  Op_trace.live_add st 1;
                  emit row
                end)
              chunk)
          ~close:(fun () ->
            Op_trace.live_sub st (KeyTbl.length seen);
            close_down ())
      in
      let ctr = run_plan common x op in
      tr.Op_trace.children <- [ ctr ];
      tr
    | Physical.All_distinct (x, distinct_fields) ->
      let fields = Physical.output_fields x in
      let layout = Batch.create fields in
      let positions = List.map (Batch.pos layout) distinct_fields in
      let tr = mk_trace (label plan) in
      streaming x tr fields (fun emit row ->
          tick ();
          let ids = List.concat_map (fun p -> Rval.edge_ids row.(p)) positions in
          let distinct =
            let tbl = Hashtbl.create (List.length ids) in
            List.for_all
              (fun e ->
                if Hashtbl.mem tbl e then false
                else begin
                  Hashtbl.add tbl e ();
                  true
                end)
              ids
          in
          if distinct then emit row)
    | Physical.Union (a, b) ->
      let fields = Physical.output_fields a in
      let b_layout = Batch.create (Physical.output_fields b) in
      let tr = mk_trace (label plan) in
      (* forwarding node: counts the combined stream once, like the
         materialized engine recorded the concatenated batch *)
      let emit, _, close = emitter tr fields sink in
      let pending = ref 2 in
      let branch_close () =
        decr pending;
        if !pending = 0 then close ()
      in
      let branch on_row =
        mk_sink tr ~alive:sink.k_alive ~close:branch_close
          ~consume:(fun chunk -> Batch.iter on_row chunk)
      in
      let tra = run_plan common a (branch emit) in
      let trb =
        run_plan common b (branch (fun row -> emit (Batch.project_to b_layout fields row)))
      in
      tr.Op_trace.children <- [ tra; trb ];
      tr
    | Physical.With_common { common = c; left; right; combine } ->
      let tr = mk_trace (label plan) in
      let c_fields = Physical.output_fields c in
      let cb, c_sink = collector c_fields in
      let c_tr = run_plan common c c_sink in
      let inner = Some cb in
      let l_tr, r_tr =
        match combine with
        | Logical.C_union ->
          let fields = Physical.output_fields left in
          let r_layout = Batch.create (Physical.output_fields right) in
          let emit, _, close = emitter tr fields sink in
          let pending = ref 2 in
          let branch_close () =
            decr pending;
            if !pending = 0 then close ()
          in
          let branch on_row =
            mk_sink tr ~alive:sink.k_alive ~close:branch_close
              ~consume:(fun chunk -> Batch.iter on_row chunk)
          in
          let l_tr = run_plan inner left (branch emit) in
          let r_tr =
            run_plan inner right
              (branch (fun row -> emit (Batch.project_to r_layout fields row)))
          in
          (l_tr, r_tr)
        | Logical.C_join (keys, kind) ->
          let build_tr, probe_tr =
            hash_join tr
              ~left_fields:(Physical.output_fields left)
              ~right_fields:(Physical.output_fields right)
              ~keys ~kind
              ~run_build:(fun s -> run_plan inner right s)
              ~run_probe:(fun s -> run_plan inner left s)
          in
          (probe_tr, build_tr)
      in
      Op_trace.live_sub st (Batch.n_rows cb);
      tr.Op_trace.children <- [ c_tr; l_tr; r_tr ];
      tr
  in
  let result, final_sink = collector (Physical.output_fields plan) in
  let root_tr = run_plan source plan final_sink in
  st.Op_trace.op_trace <- Some root_tr;
  (result, st)
