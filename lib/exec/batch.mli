(** Materialized row batches exchanged between physical operators.

    A batch has a fixed field layout (tag -> column position) and a growable
    set of rows. Rows are immutable arrays; extending a row means allocating
    a wider copy, so sharing between operators is safe. *)

type t

val create : string list -> t
(** Fresh empty batch with the given field layout. Raises
    [Invalid_argument] on duplicate fields. *)

val fields : t -> string list

val has_field : t -> string -> bool

val pos : t -> string -> int
(** Column position of a field; raises [Invalid_argument] naming the missing
    field and the batch's layout (planner/engine mismatches are bugs and
    should be diagnosable). *)

val pos_opt : t -> string -> int option
(** Total variant, for optional-field lookups. *)

val n_rows : t -> int
val n_fields : t -> int

val add : t -> Rval.t array -> unit
(** Append a row (length must match the layout). *)

val row : t -> int -> Rval.t array
(** The [i]-th row — do not mutate. *)

val iter : (Rval.t array -> unit) -> t -> unit

val of_rows : string list -> Rval.t array list -> t

val project_to : t -> string list -> Rval.t array -> Rval.t array
(** [project_to b target_fields row] reorders [row] (laid out as [b]) into
    the target field order. Used to align UNION branches. *)

val sub : t -> pos:int -> len:int -> t
(** [sub b ~pos ~len] is a fresh batch with the same layout holding rows
    [pos .. pos+len-1] (row arrays are shared, not copied). Raises
    [Invalid_argument] when the range is out of bounds. Morsel-driven
    execution uses this to split a materialized batch into morsels. *)

val concat : string list -> t list -> t
(** [concat fields bs] is a fresh batch with layout [fields] holding the
    rows of every batch of [bs] in order. Each input batch must have
    exactly the layout [fields] (raises [Invalid_argument] otherwise);
    row arrays are shared. The exchange merge of the parallel engine. *)

val pp : Gopt_graph.Property_graph.t -> Format.formatter -> t -> unit
(** Tabular rendering (for examples and debugging); truncates long
    batches. *)
