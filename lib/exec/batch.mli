(** Columnar chunks exchanged between physical operators.

    A batch has a fixed field layout (tag -> column position) and stores its
    rows column-wise: vertex and edge bindings live in dense unboxed [int]
    arrays, everything else (scalars, paths, lists, nulls) in boxed
    {!Rval.t} columns. A column adapts on first write and promotes itself to
    the boxed representation if a non-conforming value arrives later (e.g. an
    [Rnull] padded in by an outer join).

    On top of the physical columns sits an optional {e selection vector}: a
    logical-to-physical row mapping that lets filters mark survivors and
    morsel splitting take row ranges without copying any column data.
    Batches carrying a selection vector (and batches sharing another batch's
    columns — the results of {!sub}, {!select} and {!project}) are immutable
    views; {!add} applies only to freshly {!create}d batches.

    The row-oriented API ({!row}, {!iter}) is preserved for operators that
    genuinely need row-at-a-time processing (expansions, joins): it
    materializes row arrays on demand. Vectorized kernels instead read the
    physical columns directly via {!col} and index them through
    {!selection}. *)

type t

val create : string list -> t
(** Fresh empty batch with the given field layout. Raises
    [Invalid_argument] on duplicate fields. *)

val fields : t -> string list

val has_field : t -> string -> bool

val pos : t -> string -> int
(** Column position of a field; raises [Invalid_argument] naming the missing
    field and the batch's layout (planner/engine mismatches are bugs and
    should be diagnosable). *)

val pos_opt : t -> string -> int option
(** Total variant, for optional-field lookups. *)

val n_rows : t -> int
(** Logical row count (selection-vector length when one is present). *)

val n_fields : t -> int

val add : t -> Rval.t array -> unit
(** Append a row (length must match the layout). Raises [Invalid_argument]
    on views — batches returned by {!sub}, {!select} or {!project} share
    column storage and are immutable. *)

val get : t -> int -> int -> Rval.t
(** [get b i j] is the value of logical row [i] at column [j]. Vertex/edge
    cells are boxed on access; kernels that want the raw ids use {!col}. *)

val row : t -> int -> Rval.t array
(** The [i]-th logical row, materialized as a fresh array. *)

val lookup : t -> int -> string -> Rval.t option
(** [lookup b i tag] resolves [tag] in logical row [i] without materializing
    the row ([None] when the field is absent) — the columnar counterpart of
    {!Eval.lookup_of_row}. *)

val iter : (Rval.t array -> unit) -> t -> unit
(** Row-at-a-time iteration in logical order; each row is a fresh array. *)

val of_rows : string list -> Rval.t array list -> t

val of_vertex_ids : string -> int array -> pos:int -> len:int -> t
(** [of_vertex_ids alias ids ~pos ~len] is a single-field batch over the
    given slice of vertex ids, filled column-wise without boxing — the
    vectorized scan's chunk constructor. *)

val project_to : t -> string list -> Rval.t array -> Rval.t array
(** [project_to b target_fields row] reorders [row] (laid out as [b]) into
    the target field order. Used to align UNION branches. *)

val sub : t -> pos:int -> len:int -> t
(** [sub b ~pos ~len] is a zero-copy view of rows [pos .. pos+len-1]: the
    columns are shared and the range becomes a selection vector. Raises
    [Invalid_argument] when the range is out of bounds. Morsel-driven
    execution uses this to split a materialized batch into morsels. *)

val select : t -> int array -> t
(** [select b sel] is a zero-copy view keeping the logical rows listed in
    [sel], in that order (composes with an existing selection vector). The
    array is taken over by the view — do not mutate it afterwards. Filters
    use this to mark survivors without copying column data. *)

val project : t -> (int * string) list -> t
(** [project b [(j, alias); ...]] is a zero-copy view whose [alias] column
    is [b]'s column [j] — projection of already-bound fields as pure column
    swaps. Raises [Invalid_argument] on duplicate output aliases. *)

type data =
  | D_vertex of int array  (** Dense vertex ids. *)
  | D_edge of int array  (** Dense edge ids. *)
  | D_boxed of Rval.t array  (** Boxed values (mixed or scalar columns). *)

val col : t -> int -> data
(** Physical storage of column [j], for vectorized kernels. Arrays may be
    longer than the row count (capacity); index them only through
    {!selection} / physical row indices [< n_rows] and do not mutate. *)

val selection : t -> int array option
(** The selection vector: logical row [i] lives at physical index
    [sel.(i)]; [None] means the identity mapping. *)

val append_batch : t -> t -> unit
(** [append_batch dst src] appends [src]'s logical rows to [dst]
    column-wise (compacting through [src]'s selection vector). Layouts must
    match and [dst] must not be a view. *)

val concat : string list -> t list -> t
(** [concat fields bs] is a fresh batch with layout [fields] holding the
    rows of every batch of [bs] in order, built by column-wise appends.
    Each input batch must have exactly the layout [fields] (raises
    [Invalid_argument] otherwise). The exchange merge of the parallel
    engine. *)

val pp : Gopt_graph.Property_graph.t -> Format.formatter -> t -> unit
(** Tabular rendering (for examples and debugging); truncates long
    batches. *)
