(* Engine facade.

   [run] is the push-based pipelined engine ([Operator]); [run_materialized]
   is the original batch-at-a-time interpreter ([Engine_reference]), retained
   as the semantic oracle. Both share the accounting types in [Op_trace],
   re-exported here so existing callers keep matching on [Engine.Timeout] and
   reading [stats] fields unchanged. *)

type profile = Op_trace.profile = { prof_name : string; count_comm : bool }

let neo4j_profile = Op_trace.neo4j_profile
let graphscope_profile = Op_trace.graphscope_profile

type stats = Op_trace.stats = {
  mutable operators : int;
  mutable intermediate_rows : int;
  mutable intermediate_cells : int;
  mutable comm_rows : int;
  mutable comm_cells : int;
  mutable edges_touched : int;
  mutable peak_rows : int;
  mutable live_rows : int;
  mutable op_trace : Op_trace.t option;
}

exception Timeout = Op_trace.Timeout

let run = Operator.run
let run_materialized = Engine_reference.run
