(* Engine facade.

   [run] is the push-based pipelined engine ([Operator]); [run_materialized]
   is the original batch-at-a-time interpreter ([Engine_reference]), retained
   as the semantic oracle. Both share the accounting types in [Op_trace],
   re-exported here so existing callers keep matching on [Engine.Timeout] and
   reading [stats] fields unchanged. *)

type profile = Op_trace.profile = {
  prof_name : string;
  count_comm : bool;
  parallel : bool;
}

let neo4j_profile = Op_trace.neo4j_profile
let graphscope_profile = Op_trace.graphscope_profile

type stats = Op_trace.stats = {
  mutable operators : int;
  mutable intermediate_rows : int;
  mutable intermediate_cells : int;
  mutable comm_rows : int;
  mutable comm_cells : int;
  mutable edges_touched : int;
  mutable peak_rows : int;
  mutable live_rows : int;
  mutable exchange_rows : int;
  mutable exchange_cells : int;
  mutable workers_used : int;
  mutable op_trace : Op_trace.t option;
}

exception Timeout = Op_trace.Timeout

(* [workers = Some w] routes through the morsel-driven parallel engine even
   for [w = 1]: the parallel path's merge ordering is deterministic in the
   morsel partitioning (not the worker count), so results are byte-identical
   across worker counts — but may order set-semantics results (GROUP BY
   without ORDER BY) differently from the sequential push engine. *)
(* Parameter bindings are resolved once, at plan granularity, before either
   engine sees the plan: substituting [Param -> Const] up front keeps the
   per-row evaluators binding-free and makes prepared execution byte-identical
   to executing the equivalent literal plan. *)
let resolve_params ?params plan =
  match params with
  | None -> plan
  (* an empty binding list still runs the pass: a plan that carries
     placeholders must fail with the descriptive undefined-parameter
     diagnostic, not the Eval safety net *)
  | Some bindings -> Gopt_opt.Physical.bind_params bindings plan

let run ?profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize ?params g plan =
  let plan = resolve_params ?params plan in
  match workers with
  | Some w ->
    Parallel.run ?profile ?budget ?chunk_size ?morsel_size ?vectorize ~workers:w g plan
  | None -> Operator.run ?profile ?budget ?chunk_size ?vectorize g plan

let run_materialized ?profile ?budget ?params g plan =
  Engine_reference.run ?profile ?budget g (resolve_params ?params plan)
