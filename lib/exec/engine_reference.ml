(* Materialized reference engine.

   The original batch-at-a-time tree-walking interpreter: every operator
   fully materializes its output before the parent runs. Kept as the
   semantic oracle for the pipelined engine (differential tests run every
   workload query through both and compare), and as the baseline that makes
   the pipelined engine's [peak_rows] / short-circuit wins measurable.

   Accounting matches [Operator]: per-operator totals go to the same
   [Op_trace.stats] fields, and [peak_rows] is the maximum number of
   simultaneously-live materialized rows — an input batch stays live until
   its consuming operator has produced (and recorded) its output. No
   per-operator trace is produced ([op_trace] stays [None]). *)

module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Logical = Gopt_gir.Logical
module Physical = Gopt_opt.Physical
module KeyTbl = Agg.KeyTbl

let run ?(profile = Op_trace.graphscope_profile) ?budget g plan =
  let schema = G.schema g in
  let vuniv = Schema.n_vtypes schema and euniv = Schema.n_etypes schema in
  let stats = Op_trace.fresh_stats () in
  let start = Sys.time () in
  let ticks = ref 0 in
  let tick () =
    incr ticks;
    if !ticks land 8191 = 0 then
      match budget with
      | Some b when Sys.time () -. start > b -> raise Op_trace.Timeout
      | _ -> ()
  in
  let record batch =
    stats.Op_trace.operators <- stats.Op_trace.operators + 1;
    let n = Batch.n_rows batch in
    stats.Op_trace.intermediate_rows <- stats.Op_trace.intermediate_rows + n;
    stats.Op_trace.intermediate_cells <-
      stats.Op_trace.intermediate_cells + (n * Batch.n_fields batch);
    if profile.Op_trace.count_comm then begin
      stats.Op_trace.comm_rows <- stats.Op_trace.comm_rows + n;
      stats.Op_trace.comm_cells <- stats.Op_trace.comm_cells + (n * Batch.n_fields batch)
    end;
    Op_trace.live_add stats n;
    batch
  in
  (* an input batch dies once its consumer produced output — except the
     shared common batch, which outlives all its Common_ref readers *)
  let release common b =
    match common with
    | Some cb when b == cb -> ()
    | _ -> Op_trace.live_sub stats (Batch.n_rows b)
  in
  let etypes con = Tc.to_list ~universe:euniv con in
  let vcheck con v = Tc.mem ~universe:vuniv con (G.vtype g v) in
  (* iterate (eid, other) over a step's adjacency from bound vertex [v] *)
  let iter_step_adj (step : Physical.edge_step) v f =
    let e = step.Physical.s_edge in
    let visit_out et = G.iter_out_etype g v et (fun eid -> tick (); f eid (G.edst g eid)) in
    let visit_in et = G.iter_in_etype g v et (fun eid -> tick (); f eid (G.esrc g eid)) in
    List.iter
      (fun et ->
        if e.Pattern.e_directed then
          if step.Physical.s_forward then visit_out et else visit_in et
        else begin
          visit_out et;
          visit_in et
        end)
      (etypes e.Pattern.e_con)
  in
  (* all edges realizing a step between two bound endpoints *)
  let step_edges_between (step : Physical.edge_step) u w =
    let e = step.Physical.s_edge in
    List.concat_map
      (fun et ->
        if e.Pattern.e_directed then
          if step.Physical.s_forward then G.find_out_edges g ~src:u ~etype:et ~dst:w
          else G.find_out_edges g ~src:w ~etype:et ~dst:u
        else
          G.find_out_edges g ~src:u ~etype:et ~dst:w
          @ G.find_out_edges g ~src:w ~etype:et ~dst:u)
      (etypes e.Pattern.e_con)
  in
  let sorted_step_neighbors (step : Physical.edge_step) v =
    let e = step.Physical.s_edge in
    let arrays =
      List.concat_map
        (fun et ->
          if e.Pattern.e_directed then
            if step.Physical.s_forward then [ G.out_neighbors_etype g v et ]
            else [ G.in_neighbors_etype g v et ]
          else [ G.out_neighbors_etype g v et; G.in_neighbors_etype g v et ])
        (etypes e.Pattern.e_con)
    in
    let merged =
      match arrays with
      | [ single ] -> single (* per-etype adjacency is already sorted *)
      | _ ->
        let m = Array.concat arrays in
        Array.sort Int.compare m;
        m
    in
    (* distinct candidate vertices; multiplicity recovered via
       step_edges_between *)
    let out = Gopt_util.Vec.create () in
    Array.iteri
      (fun i x -> if i = 0 || merged.(i - 1) <> x then Gopt_util.Vec.push out x)
      merged;
    Gopt_util.Vec.to_array out
  in
  let vertex_of rv =
    match rv with
    | Rval.Rvertex v -> v
    | _ -> invalid_arg "Engine: expected a vertex binding"
  in
  let rec exec common plan =
    match plan with
    | Physical.Empty fields -> record (Batch.create fields)
    | Physical.Common_ref _ -> begin
      match common with
      | Some batch -> batch (* already recorded when produced *)
      | None -> failwith "Engine: CommonRef outside WithCommon"
    end
    | Physical.Scan { alias; con; pred } ->
      let out = Batch.create [ alias ] in
      List.iter
        (fun t ->
          Array.iter
            (fun v ->
              tick ();
              let row = [| Rval.Rvertex v |] in
              let keep =
                match pred with
                | None -> true
                | Some p -> Eval.is_true (Eval.eval g (Eval.lookup_of_row out row) p)
              in
              if keep then Batch.add out row)
            (G.vertices_of_vtype g t))
        (Tc.to_list ~universe:vuniv con);
      record out
    | Physical.Expand_all (x, step) ->
      let input = exec common x in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let out = Batch.create (Batch.fields input @ [ e_alias; step.Physical.s_to ]) in
      let from_pos = Batch.pos input step.Physical.s_from in
      Batch.iter
        (fun row ->
          let v = vertex_of row.(from_pos) in
          iter_step_adj step v (fun eid other ->
              stats.Op_trace.edges_touched <- stats.Op_trace.edges_touched + 1;
              if vcheck step.Physical.s_to_con other then begin
                let row' = Array.append row [| Rval.Redge eid; Rval.Rvertex other |] in
                let lk = Eval.lookup_of_row out row' in
                let keep =
                  (match step.Physical.s_edge.Pattern.e_pred with
                  | None -> true
                  | Some p -> Eval.is_true (Eval.eval g lk p))
                  &&
                  match step.Physical.s_to_pred with
                  | None -> true
                  | Some p -> Eval.is_true (Eval.eval g lk p)
                in
                if keep then Batch.add out row'
              end))
        input;
      let r = record out in
      release common input;
      r
    | Physical.Expand_into (x, step) ->
      let input = exec common x in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let out = Batch.create (Batch.fields input @ [ e_alias ]) in
      let from_pos = Batch.pos input step.Physical.s_from in
      let to_pos = Batch.pos input step.Physical.s_to in
      Batch.iter
        (fun row ->
          tick ();
          let u = vertex_of row.(from_pos) and w = vertex_of row.(to_pos) in
          List.iter
            (fun eid ->
              stats.Op_trace.edges_touched <- stats.Op_trace.edges_touched + 1;
              let row' = Array.append row [| Rval.Redge eid |] in
              let lk = Eval.lookup_of_row out row' in
              let keep =
                match step.Physical.s_edge.Pattern.e_pred with
                | None -> true
                | Some p -> Eval.is_true (Eval.eval g lk p)
              in
              if keep then Batch.add out row')
            (step_edges_between step u w))
        input;
      let r = record out in
      release common input;
      r
    | Physical.Expand_intersect (x, steps) ->
      let input = exec common x in
      let to_alias = (List.hd steps).Physical.s_to in
      let edge_aliases = List.map (fun s -> s.Physical.s_edge.Pattern.e_alias) steps in
      let out = Batch.create (Batch.fields input @ edge_aliases @ [ to_alias ]) in
      let from_pos = List.map (fun s -> Batch.pos input s.Physical.s_from) steps in
      let to_con = (List.hd steps).Physical.s_to_con in
      let to_pred = (List.hd steps).Physical.s_to_pred in
      (* hub vertices recur across rows: memoize their extracted adjacency *)
      let nbr_cache : (int * int, int array) Hashtbl.t = Hashtbl.create 256 in
      let step_neighbors idx step v =
        match Hashtbl.find_opt nbr_cache (idx, v) with
        | Some a -> a
        | None ->
          let a = sorted_step_neighbors step v in
          stats.Op_trace.edges_touched <- stats.Op_trace.edges_touched + Array.length a;
          Hashtbl.add nbr_cache (idx, v) a;
          a
      in
      Batch.iter
        (fun row ->
          tick ();
          let anchors = List.map (fun p -> vertex_of row.(p)) from_pos in
          let nbr_arrays =
            List.mapi (fun i (s, v) -> step_neighbors i s v) (List.combine steps anchors)
          in
          (* candidates = intersection of all sorted distinct arrays; probe
             from the smallest list *)
          match nbr_arrays with
          | [] -> ()
          | _ ->
            let first =
              List.fold_left
                (fun acc a -> if Array.length a < Array.length acc then a else acc)
                (List.hd nbr_arrays) (List.tl nbr_arrays)
            in
            let rest = List.filter (fun a -> a != first) nbr_arrays in
            Array.iter
              (fun c ->
                tick ();
                if
                  List.for_all
                    (fun arr ->
                      let lo = ref 0 and hi = ref (Array.length arr) in
                      while !lo < !hi do
                        let mid = (!lo + !hi) / 2 in
                        if arr.(mid) < c then lo := mid + 1 else hi := mid
                      done;
                      !lo < Array.length arr && arr.(!lo) = c)
                    rest
                  && vcheck to_con c
                then begin
                  (* unfold edge bindings: product over steps *)
                  let rec assemble acc_edges = function
                    | [] ->
                      let row' =
                        Array.concat
                          [
                            row;
                            Array.of_list (List.rev_map (fun e -> Rval.Redge e) acc_edges);
                            [| Rval.Rvertex c |];
                          ]
                      in
                      let lk = Eval.lookup_of_row out row' in
                      let keep =
                        (match to_pred with
                        | None -> true
                        | Some p -> Eval.is_true (Eval.eval g lk p))
                        && List.for_all
                             (fun (s : Physical.edge_step) ->
                               match s.Physical.s_edge.Pattern.e_pred with
                               | None -> true
                               | Some p -> Eval.is_true (Eval.eval g lk p))
                             steps
                      in
                      if keep then Batch.add out row'
                    | (s, v) :: more ->
                      List.iter
                        (fun eid -> assemble (eid :: acc_edges) more)
                        (step_edges_between s v c)
                  in
                  (* rev to preserve steps order after rev_map above *)
                  assemble [] (List.combine steps anchors)
                end)
              first)
        input;
      let r = record out in
      release common input;
      r
    | Physical.Path_expand (x, step) ->
      let input = exec common x in
      let lo, hi =
        match step.Physical.s_edge.Pattern.e_hops with
        | Some (lo, hi) -> (lo, hi)
        | None -> (1, 1)
      in
      let sem = step.Physical.s_edge.Pattern.e_path in
      let e_alias = step.Physical.s_edge.Pattern.e_alias in
      let bound_mode = Batch.has_field input step.Physical.s_to in
      let out_fields =
        if bound_mode then Batch.fields input @ [ e_alias ]
        else Batch.fields input @ [ e_alias; step.Physical.s_to ]
      in
      let out = Batch.create out_fields in
      let from_pos = Batch.pos input step.Physical.s_from in
      let to_pos = if bound_mode then Some (Batch.pos input step.Physical.s_to) else None in
      Batch.iter
        (fun row ->
          let v0 = vertex_of row.(from_pos) in
          let target = Option.map (fun p -> vertex_of row.(p)) to_pos in
          let rec dfs v depth edges_rev verts_rev =
            tick ();
            if depth >= lo && depth <= hi then begin
              let ok_endpoint =
                match target with Some t -> t = v | None -> vcheck step.Physical.s_to_con v
              in
              if ok_endpoint then begin
                let path =
                  Rval.Rpath { edges = List.rev edges_rev; verts = List.rev verts_rev }
                in
                let row' =
                  if bound_mode then Array.append row [| path |]
                  else Array.append row [| path; Rval.Rvertex v |]
                in
                let lk = Eval.lookup_of_row out row' in
                let keep =
                  match step.Physical.s_to_pred with
                  | None -> true
                  | Some p -> if bound_mode then true else Eval.is_true (Eval.eval g lk p)
                in
                if keep then Batch.add out row'
              end
            end;
            if depth < hi then
              iter_step_adj step v (fun eid other ->
                  stats.Op_trace.edges_touched <- stats.Op_trace.edges_touched + 1;
                  let ok =
                    match sem with
                    | Pattern.Arbitrary -> true
                    | Pattern.Simple -> not (List.mem other verts_rev)
                    | Pattern.Trail -> not (List.mem eid edges_rev)
                  in
                  if ok then dfs other (depth + 1) (eid :: edges_rev) (other :: verts_rev))
          in
          dfs v0 0 [] [ v0 ])
        input;
      let r = record out in
      release common input;
      r
    | Physical.Hash_join { left; right; keys; kind } ->
      let lb = exec common left and rb = exec common right in
      let lkeys = List.map (Batch.pos lb) keys and rkeys = List.map (Batch.pos rb) keys in
      let right_extra =
        List.filter (fun f -> not (Batch.has_field lb f)) (Batch.fields rb)
      in
      let out_fields =
        match kind with
        | Logical.Semi | Logical.Anti -> Batch.fields lb
        | Logical.Inner | Logical.Left_outer -> Batch.fields lb @ right_extra
      in
      let out = Batch.create out_fields in
      let right_extra_pos = List.map (Batch.pos rb) right_extra in
      let emit lrow rrow =
        Batch.add out
          (Array.append lrow (Array.of_list (List.map (fun p -> rrow.(p)) right_extra_pos)))
      in
      if kind = Logical.Inner && Batch.n_rows lb < Batch.n_rows rb then begin
        (* inner joins are symmetric: build the hash table on the smaller
           input and probe with the larger one *)
        let table = KeyTbl.create (max 16 (Batch.n_rows lb)) in
        Batch.iter
          (fun lrow ->
            tick ();
            let key = List.map (fun p -> lrow.(p)) lkeys in
            let cur = Option.value ~default:[] (KeyTbl.find_opt table key) in
            KeyTbl.replace table key (lrow :: cur))
          lb;
        Batch.iter
          (fun rrow ->
            tick ();
            let key = List.map (fun p -> rrow.(p)) rkeys in
            List.iter
              (fun lrow -> emit lrow rrow)
              (Option.value ~default:[] (KeyTbl.find_opt table key)))
          rb
      end
      else begin
        let table = KeyTbl.create (max 16 (Batch.n_rows rb)) in
        Batch.iter
          (fun row ->
            tick ();
            let key = List.map (fun p -> row.(p)) rkeys in
            let cur = Option.value ~default:[] (KeyTbl.find_opt table key) in
            KeyTbl.replace table key (row :: cur))
          rb;
        Batch.iter
          (fun lrow ->
            tick ();
            let key = List.map (fun p -> lrow.(p)) lkeys in
            let matches = Option.value ~default:[] (KeyTbl.find_opt table key) in
            match kind with
            | Logical.Inner -> List.iter (fun rrow -> emit lrow rrow) matches
            | Logical.Left_outer ->
              if matches = [] then
                Batch.add out
                  (Array.append lrow (Array.make (List.length right_extra_pos) Rval.Rnull))
              else List.iter (fun rrow -> emit lrow rrow) matches
            | Logical.Semi -> if matches <> [] then Batch.add out lrow
            | Logical.Anti -> if matches = [] then Batch.add out lrow)
          lb
      end;
      let r = record out in
      release common lb;
      release common rb;
      r
    | Physical.Select (x, pred) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input) in
      Batch.iter
        (fun row ->
          tick ();
          if Eval.is_true (Eval.eval g (Eval.lookup_of_row input row) pred) then
            Batch.add out row)
        input;
      let r = record out in
      release common input;
      r
    | Physical.Project (x, ps) ->
      let input = exec common x in
      let out = Batch.create (List.map snd ps) in
      Batch.iter
        (fun row ->
          tick ();
          let lk = Eval.lookup_of_row input row in
          Batch.add out
            (Array.of_list (List.map (fun (e, _) -> Eval.eval_rval g lk e) ps)))
        input;
      let r = record out in
      release common input;
      r
    | Physical.Group (x, ks, aggs) ->
      let input = exec common x in
      let out = Batch.create (List.map snd ks @ List.map (fun a -> a.Logical.agg_alias) aggs) in
      let groups : (Rval.t list * Agg.state array) KeyTbl.t = KeyTbl.create 64 in
      Batch.iter
        (fun row ->
          tick ();
          let lk = Eval.lookup_of_row input row in
          let key = List.map (fun (e, _) -> Eval.eval_rval g lk e) ks in
          let _, states =
            match KeyTbl.find_opt groups key with
            | Some entry -> entry
            | None ->
              let entry = (key, Array.of_list (List.map Agg.init aggs)) in
              KeyTbl.add groups key entry;
              entry
          in
          Agg.update_all g lk states aggs)
        input;
      if KeyTbl.length groups = 0 && ks = [] then
        (* aggregate over an empty input still yields one row *)
        Batch.add out (Array.of_list (List.map (fun a -> Agg.finish (Agg.init a) a) aggs))
      else
        KeyTbl.iter
          (fun key (_, states) ->
            let agg_vals = List.mapi (fun i a -> Agg.finish states.(i) a) aggs in
            Batch.add out (Array.of_list (key @ agg_vals)))
          groups;
      let r = record out in
      release common input;
      r
    | Physical.Order (x, ks, lim) ->
      let input = exec common x in
      let keyed =
        Array.init (Batch.n_rows input) (fun i ->
            let row = Batch.row input i in
            let lk = Eval.lookup_of_row input row in
            (List.map (fun (e, _) -> Eval.eval g lk e) ks, row))
      in
      let cmp (ka, _) (kb, _) =
        let rec go ks ka kb =
          match ks, ka, kb with
          | [], _, _ -> 0
          | (_, dir) :: ks', a :: ka', b :: kb' ->
            let c = Value.compare a b in
            let c = match dir with Logical.Asc -> c | Logical.Desc -> -c in
            if c <> 0 then c else go ks' ka' kb'
          | _ -> 0
        in
        go ks ka kb
      in
      Array.sort cmp keyed;
      let out = Batch.create (Batch.fields input) in
      let n =
        match lim with Some l -> min l (Array.length keyed) | None -> Array.length keyed
      in
      for i = 0 to n - 1 do
        Batch.add out (snd keyed.(i))
      done;
      let r = record out in
      release common input;
      r
    | Physical.Limit (x, n) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input) in
      let count = min n (Batch.n_rows input) in
      for i = 0 to count - 1 do
        Batch.add out (Batch.row input i)
      done;
      let r = record out in
      release common input;
      r
    | Physical.Skip (x, n) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input) in
      for i = n to Batch.n_rows input - 1 do
        Batch.add out (Batch.row input i)
      done;
      let r = record out in
      release common input;
      r
    | Physical.Unfold (x, e, alias) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input @ [ alias ]) in
      Batch.iter
        (fun row ->
          tick ();
          let emit v = Batch.add out (Array.append row [| v |]) in
          match Eval.eval_rval g (Eval.lookup_of_row input row) e with
          | Rval.Rlist items -> List.iter emit items
          | Rval.Rpath { verts; _ } -> List.iter (fun v -> emit (Rval.Rvertex v)) verts
          | Rval.Rnull -> ()
          | single -> emit single)
        input;
      let r = record out in
      release common input;
      r
    | Physical.Dedup (x, tags) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input) in
      let positions =
        match tags with
        | [] -> List.init (Batch.n_fields input) Fun.id
        | tags -> List.map (Batch.pos input) tags
      in
      let seen = KeyTbl.create 64 in
      Batch.iter
        (fun row ->
          tick ();
          let key = List.map (fun p -> row.(p)) positions in
          if not (KeyTbl.mem seen key) then begin
            KeyTbl.add seen key ();
            Batch.add out row
          end)
        input;
      let r = record out in
      release common input;
      r
    | Physical.Union (a, b) ->
      let ba = exec common a and bb = exec common b in
      let out = Batch.create (Batch.fields ba) in
      (* same layout: column-wise append instead of re-adding row by row *)
      Batch.append_batch out ba;
      Batch.iter (fun row -> Batch.add out (Batch.project_to bb (Batch.fields ba) row)) bb;
      let r = record out in
      release common ba;
      release common bb;
      r
    | Physical.All_distinct (x, fields) ->
      let input = exec common x in
      let out = Batch.create (Batch.fields input) in
      let positions = List.map (Batch.pos input) fields in
      Batch.iter
        (fun row ->
          tick ();
          let ids = List.concat_map (fun p -> Rval.edge_ids row.(p)) positions in
          let distinct =
            let tbl = Hashtbl.create (List.length ids) in
            List.for_all
              (fun e ->
                if Hashtbl.mem tbl e then false
                else begin
                  Hashtbl.add tbl e ();
                  true
                end)
              ids
          in
          if distinct then Batch.add out row)
        input;
      let r = record out in
      release common input;
      r
    | Physical.With_common { common = c; left; right; combine } ->
      let cb = exec common c in
      let inner = Some cb in
      let lb = exec inner left in
      let rb = exec inner right in
      let combined =
        match combine with
        | Logical.C_union ->
          let out = Batch.create (Batch.fields lb) in
          Batch.append_batch out lb;
          Batch.iter (fun row -> Batch.add out (Batch.project_to rb (Batch.fields lb) row)) rb;
          out
        | Logical.C_join (keys, kind) -> join_batches lb rb keys kind
      in
      let r = record combined in
      release inner lb;
      release inner rb;
      Op_trace.live_sub stats (Batch.n_rows cb);
      r
  and join_batches lb rb keys kind =
    let lkeys = List.map (Batch.pos lb) keys and rkeys = List.map (Batch.pos rb) keys in
    let right_extra = List.filter (fun f -> not (Batch.has_field lb f)) (Batch.fields rb) in
    let out_fields =
      match kind with
      | Logical.Semi | Logical.Anti -> Batch.fields lb
      | Logical.Inner | Logical.Left_outer -> Batch.fields lb @ right_extra
    in
    let out = Batch.create out_fields in
    let table = KeyTbl.create (max 16 (Batch.n_rows rb)) in
    Batch.iter
      (fun row ->
        let key = List.map (fun p -> row.(p)) rkeys in
        let cur = Option.value ~default:[] (KeyTbl.find_opt table key) in
        KeyTbl.replace table key (row :: cur))
      rb;
    let right_extra_pos = List.map (Batch.pos rb) right_extra in
    Batch.iter
      (fun lrow ->
        let key = List.map (fun p -> lrow.(p)) lkeys in
        let matches = Option.value ~default:[] (KeyTbl.find_opt table key) in
        match kind with
        | Logical.Inner ->
          List.iter
            (fun rrow ->
              Batch.add out
                (Array.append lrow
                   (Array.of_list (List.map (fun p -> rrow.(p)) right_extra_pos))))
            matches
        | Logical.Left_outer ->
          if matches = [] then
            Batch.add out
              (Array.append lrow (Array.make (List.length right_extra_pos) Rval.Rnull))
          else
            List.iter
              (fun rrow ->
                Batch.add out
                  (Array.append lrow
                     (Array.of_list (List.map (fun p -> rrow.(p)) right_extra_pos))))
              matches
        | Logical.Semi -> if matches <> [] then Batch.add out lrow
        | Logical.Anti -> if matches = [] then Batch.add out lrow)
      lb;
    out
  in
  let result = exec None plan in
  (result, stats)
