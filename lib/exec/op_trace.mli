(** Per-operator execution traces and the shared execution accounting.

    A trace mirrors the physical plan tree: one node per operator, carrying
    rows-in / rows-out and the operator's {e self} CPU time (time spent in
    nested operators is attributed to those operators, profiler-style). The
    pipelined engine fills one in on every run and hangs it off
    {!stats.op_trace}; {!pp} renders it [EXPLAIN ANALYZE]-style. *)

type t = {
  name : string;  (** Single-line operator description. *)
  mutable rows_in : int;
  mutable rows_out : int;
  mutable rows_selected : int;
      (** Rows that survived this operator's vectorized kernels (0 on
          row-interpreted operators). *)
  mutable kernel_ns : float;
      (** CPU nanoseconds spent inside vectorized kernels — the kernel-level
          share of [time_s]. *)
  mutable time_s : float;  (** Self CPU seconds (exclusive of children). *)
  mutable children : t list;
}

val make : string -> t list -> t

type profile = {
  prof_name : string;
  count_comm : bool;
      (** Count produced intermediate rows as simulated communication. *)
  parallel : bool;
      (** The backend executes plans as a parallel dataflow: rows crossing a
          worker-merge exchange are charged to the communication counters
          (the paper's communication-cost definition applied to the
          morsel-driven engine). Single-machine profiles leave exchange
          crossings out of [comm_rows] (they are still tracked in
          [exchange_rows]). *)
}

val neo4j_profile : profile
val graphscope_profile : profile

type stats = {
  mutable operators : int;  (** Operators executed. *)
  mutable intermediate_rows : int;  (** Total rows produced across operators. *)
  mutable intermediate_cells : int;  (** Rows weighted by width (FieldTrim effect). *)
  mutable comm_rows : int;  (** Simulated shuffled rows (distributed profiles). *)
  mutable comm_cells : int;  (** Shuffled rows weighted by row width. *)
  mutable edges_touched : int;  (** Adjacency entries visited by expansions. *)
  mutable peak_rows : int;
      (** Maximum simultaneously-live materialized rows (breaker state,
          reference batches, accumulated results). Drops on pipelined
          plans relative to the materialized reference path. *)
  mutable live_rows : int;  (** Current live rows (internal counter). *)
  mutable exchange_rows : int;
      (** Rows that crossed a worker-merge exchange (parallel runs only;
          0 on sequential runs). *)
  mutable exchange_cells : int;  (** Exchange rows weighted by row width. *)
  mutable workers_used : int;  (** Worker domains of the run (1 = sequential). *)
  mutable op_trace : t option;  (** Per-operator trace of the last run. *)
}

val fresh_stats : unit -> stats

exception Timeout
(** Raised when a run exceeds its [budget] of CPU seconds — the engine's
    analogue of the paper's one-hour OT cutoff. *)

val live_add : stats -> int -> unit
(** Rows became live; updates [peak_rows]. *)

val live_sub : stats -> int -> unit
(** Rows were released. *)

type clock
(** Self-time attribution clock shared by all operators of one run. *)

val clock : unit -> clock

val timed : clock -> t -> (unit -> 'a) -> 'a
(** [timed clk tr f] runs [f], charging elapsed CPU time to [tr] except for
    slices spent inside nested [timed] frames (exception-safe). *)

val pp : Format.formatter -> t -> unit
(** EXPLAIN ANALYZE-style tree rendering. *)

val to_string : t -> string

val total_time : t -> float
(** Sum of self times over the whole tree. *)

val same_shape : t -> t -> bool
(** Structural equality of operator names and tree shape (row/time payloads
    ignored). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s rows and times into [dst], node by
    node. The trees must have the same shape. *)

val copy : t -> t
(** Deep copy. *)

val rollup : t list -> t list
(** Merge a list of trace trees into one rollup per distinct shape
    (first-seen order). The parallel engine uses this to aggregate the
    per-morsel fragment traces of one worker into that worker's rollup. *)
