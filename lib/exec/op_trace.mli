(** Per-operator execution traces and the shared execution accounting.

    A trace mirrors the physical plan tree: one node per operator, carrying
    rows-in / rows-out and the operator's {e self} CPU time (time spent in
    nested operators is attributed to those operators, profiler-style). The
    pipelined engine fills one in on every run and hangs it off
    {!stats.op_trace}; {!pp} renders it [EXPLAIN ANALYZE]-style. *)

type t = {
  name : string;  (** Single-line operator description. *)
  mutable rows_in : int;
  mutable rows_out : int;
  mutable time_s : float;  (** Self CPU seconds (exclusive of children). *)
  mutable children : t list;
}

val make : string -> t list -> t

type profile = {
  prof_name : string;
  count_comm : bool;
      (** Count produced intermediate rows as simulated communication. *)
}

val neo4j_profile : profile
val graphscope_profile : profile

type stats = {
  mutable operators : int;  (** Operators executed. *)
  mutable intermediate_rows : int;  (** Total rows produced across operators. *)
  mutable intermediate_cells : int;  (** Rows weighted by width (FieldTrim effect). *)
  mutable comm_rows : int;  (** Simulated shuffled rows (distributed profiles). *)
  mutable comm_cells : int;  (** Shuffled rows weighted by row width. *)
  mutable edges_touched : int;  (** Adjacency entries visited by expansions. *)
  mutable peak_rows : int;
      (** Maximum simultaneously-live materialized rows (breaker state,
          reference batches, accumulated results). Drops on pipelined
          plans relative to the materialized reference path. *)
  mutable live_rows : int;  (** Current live rows (internal counter). *)
  mutable op_trace : t option;  (** Per-operator trace of the last run. *)
}

val fresh_stats : unit -> stats

exception Timeout
(** Raised when a run exceeds its [budget] of CPU seconds — the engine's
    analogue of the paper's one-hour OT cutoff. *)

val live_add : stats -> int -> unit
(** Rows became live; updates [peak_rows]. *)

val live_sub : stats -> int -> unit
(** Rows were released. *)

type clock
(** Self-time attribution clock shared by all operators of one run. *)

val clock : unit -> clock

val timed : clock -> t -> (unit -> 'a) -> 'a
(** [timed clk tr f] runs [f], charging elapsed CPU time to [tr] except for
    slices spent inside nested [timed] frames (exception-safe). *)

val pp : Format.formatter -> t -> unit
(** EXPLAIN ANALYZE-style tree rendering. *)

val to_string : t -> string

val total_time : t -> float
(** Sum of self times over the whole tree. *)
