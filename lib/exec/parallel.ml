(* Morsel-driven intra-query parallelism on OCaml 5 domains.

   The plan is decomposed into linear {e streaming fragments} (chains of
   streaming operators over a single leaf) separated by pipeline breakers.
   A fragment's input is partitioned into fixed-size {e morsels} — vertex
   ranges for scans, row ranges for materialized intermediates — and a small
   domain pool pulls morsel indices off an atomic counter, running a private
   clone of the fragment per morsel through the ordinary push engine
   ([Operator.run] with a [Common_ref] leaf fed via [?source]). Pipeline
   breakers become {e merge points} on the coordinating domain: partial
   aggregation states combine via [Agg.merge], sorted runs combine via a
   k-way merge, Dedup re-filters local survivors against a global seen-set,
   and the hash-join build side is materialized once and probed read-only by
   all workers.

   Determinism: morsel partitioning depends only on the plan, the graph and
   [morsel_size] — never on the worker count — and every merge point folds
   per-morsel partials in morsel-index order. Per-morsel work is sequential
   and deterministic, so the full result (including float-summation order,
   COLLECT order, and ORDER BY tie resolution) is byte-identical for every
   [workers] value. Plans whose output order is a set-semantics artifact
   (e.g. GROUP BY without ORDER BY) may order rows differently from the
   sequential engine; differential tests compare those as bags.

   Accounting: rows handed from a morsel task to its merge point count as
   {e exchange} rows ([stats.exchange_rows]); profiles with [parallel =
   true] additionally charge them to the communication counters, applying
   the paper's communication-cost definition to this engine. [peak_rows] is
   an approximation: coordinator-side accumulated rows plus the largest
   single-task peak (concurrent task peaks are not summed). *)

module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Expr = Gopt_pattern.Expr
module Tc = Gopt_pattern.Type_constraint
module Logical = Gopt_gir.Logical
module Physical = Gopt_opt.Physical
module KeyTbl = Agg.KeyTbl
module Vec = Gopt_util.Vec

let default_morsel_size = 1024

(* --- plan decomposition ------------------------------------------------- *)

type input =
  | In_scan of {
      verts : int array;  (** All vertices of one vtype (shared, read-only). *)
      start : int;
      len : int;
      alias : string;
      kernel : Eval.kernel option;
          (** Scan predicate compiled once on the coordinator; kernels are
              pure readers, so one compiled kernel serves every domain. *)
    }
  | In_rows of Batch.t

type morsel = {
  m_input : input;
  m_in_fields : string list;  (** Layout of the batch fed into the fragment. *)
  m_fragment : Physical.t option;
      (** Streaming fragment with a [Common_ref m_in_fields] leaf; [None]
          passes the input rows through unchanged. *)
}

type src = {
  s_fields : string list;  (** Output layout of every morsel's fragment. *)
  s_morsels : morsel list;
  s_traces : Op_trace.t list;  (** Traces of nested upstream merge stages. *)
}

type 'a task_result = {
  r_val : 'a;
  r_xrows : int;  (** Rows this task hands across the exchange. *)
  r_scan_rows : int;  (** Scan rows materialized by the task (post-filter). *)
  r_stats : Op_trace.stats option;  (** Fragment-run stats, if any. *)
  r_trace : Op_trace.t option;
}

let run ?(profile = Op_trace.graphscope_profile) ?budget
    ?(chunk_size = Operator.default_chunk_size)
    ?(morsel_size = default_morsel_size) ?(vectorize = true) ~workers g plan =
  if workers < 1 then invalid_arg "Parallel.run: workers must be >= 1";
  if morsel_size < 1 then invalid_arg "Parallel.run: morsel_size must be >= 1";
  let schema = G.schema g in
  let vuniv = Schema.n_vtypes schema in
  let st = Op_trace.fresh_stats () in
  st.Op_trace.workers_used <- workers;
  let start = Sys.time () in
  (* Workers receive the budget's unspent remainder at task start. Sys.time
     is process-wide CPU, so with w workers the budget is w-fold
     conservative — acceptable for a cutoff. *)
  let remaining_budget () =
    Option.map (fun b -> Float.max 0.0 (b -. (Sys.time () -. start))) budget
  in
  let cancelled = Atomic.make false in
  (* rows produced by a merge point itself, mirroring the sequential
     operator's emitter accounting *)
  let count_rows n width =
    st.Op_trace.intermediate_rows <- st.Op_trace.intermediate_rows + n;
    st.Op_trace.intermediate_cells <- st.Op_trace.intermediate_cells + (n * width);
    if profile.Op_trace.count_comm then begin
      st.Op_trace.comm_rows <- st.Op_trace.comm_rows + n;
      st.Op_trace.comm_cells <- st.Op_trace.comm_cells + (n * width)
    end
  in
  (* [run_morsels ~label ~out_width src post] runs one exchange stage: every
     morsel task on the worker pool, [post] applied to the fragment output
     inside the task (returning the value crossing the exchange and its row
     count). Results come back in morsel order together with the stage's
     trace node. [early_stop] stops issuing new morsels once the contiguous
     prefix of completed tasks has produced that many rows (tasks are
     claimed in index order, so every skipped morsel lies beyond the
     prefix); skipped slots yield [on_skip ()]. *)
  let run_morsels ~label ~out_width ?early_stop ?on_skip (s : src) post =
    let morsels = Array.of_list s.s_morsels in
    let n = Array.length morsels in
    let task i =
      let m = morsels.(i) in
      let source, scan_rows =
        match m.m_input with
        | In_rows b -> (b, 0)
        | In_scan { verts; start; len; alias; kernel } ->
          (* columnar morsel: slice the type index into an id column, then
             narrow it with the precompiled kernel — survivors stay a
             selection-vector view, no row materialization *)
          let b = Batch.of_vertex_ids alias verts ~pos:start ~len in
          let b =
            match kernel with
            | None -> b
            | Some k ->
              let selected = Eval.run_kernel k b (Array.init len Fun.id) in
              if Array.length selected = len then b else Batch.select b selected
          in
          (b, Batch.n_rows b)
      in
      let out, tstats, ttrace =
        match m.m_fragment with
        | None -> (source, None, None)
        | Some frag ->
          if Batch.n_rows source = 0 then (Batch.create (Physical.output_fields frag), None, None)
          else begin
            let out, fs =
              Operator.run ~profile ?budget:(remaining_budget ())
                ~stop_poll:(fun () -> Atomic.get cancelled)
                ~chunk_size ~vectorize ~source g frag
            in
            (out, Some fs, fs.Op_trace.op_trace)
          end
      in
      let v, xrows = post out in
      { r_val = v; r_xrows = xrows; r_scan_rows = scan_rows; r_stats = tstats;
        r_trace = ttrace }
    in
    let results = Array.make n None in
    let errors = Array.make n None in
    let worker_of = Array.make n (-1) in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    (match early_stop with Some t when t <= 0 -> Atomic.set stop true | _ -> ());
    let prefix_mutex = Mutex.create () in
    let done_rows = Array.make n (-1) in
    let frontier = ref 0 in
    let prefix_rows = ref 0 in
    let note_done i rows =
      match early_stop with
      | None -> ()
      | Some target ->
        Mutex.lock prefix_mutex;
        done_rows.(i) <- rows;
        while !frontier < n && done_rows.(!frontier) >= 0 do
          prefix_rows := !prefix_rows + done_rows.(!frontier);
          incr frontier
        done;
        if !prefix_rows >= target then Atomic.set stop true;
        Mutex.unlock prefix_mutex
    in
    let body wid =
      let continue_ = ref true in
      while !continue_ do
        if Atomic.get stop || Atomic.get cancelled then continue_ := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else begin
            worker_of.(i) <- wid;
            match task i with
            | r ->
              results.(i) <- Some r;
              note_done i r.r_xrows
            | exception e ->
              errors.(i) <- Some e;
              Atomic.set cancelled true
          end
        end
      done
    in
    let w = max 1 (min workers n) in
    if w = 1 then body 0
    else begin
      let doms = Array.init (w - 1) (fun k -> Domain.spawn (fun () -> body (k + 1))) in
      body 0;
      Array.iter Domain.join doms
    end;
    (* Re-raise the first genuine error in morsel order; a cancellation-
       induced Timeout only wins when every error is a Timeout. *)
    let first_err p =
      Array.fold_left
        (fun acc e -> match acc, e with None, Some x when p x -> Some x | _ -> acc)
        None errors
    in
    (match first_err (fun e -> e <> Op_trace.Timeout) with
    | Some e -> raise e
    | None -> (match first_err (fun _ -> true) with Some e -> raise e | None -> ()));
    (* fold task stats into the run stats *)
    let xrows_total = ref 0 in
    let max_peak = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some r ->
          xrows_total := !xrows_total + r.r_xrows;
          if r.r_scan_rows > 0 then count_rows r.r_scan_rows 1;
          (match r.r_stats with
          | None -> ()
          | Some ts ->
            st.Op_trace.intermediate_rows <-
              st.Op_trace.intermediate_rows + ts.Op_trace.intermediate_rows;
            st.Op_trace.intermediate_cells <-
              st.Op_trace.intermediate_cells + ts.Op_trace.intermediate_cells;
            st.Op_trace.comm_rows <- st.Op_trace.comm_rows + ts.Op_trace.comm_rows;
            st.Op_trace.comm_cells <- st.Op_trace.comm_cells + ts.Op_trace.comm_cells;
            st.Op_trace.edges_touched <-
              st.Op_trace.edges_touched + ts.Op_trace.edges_touched;
            if ts.Op_trace.peak_rows > !max_peak then max_peak := ts.Op_trace.peak_rows))
      results;
    if st.Op_trace.live_rows + !max_peak > st.Op_trace.peak_rows then
      st.Op_trace.peak_rows <- st.Op_trace.live_rows + !max_peak;
    Op_trace.live_add st !xrows_total;
    st.Op_trace.exchange_rows <- st.Op_trace.exchange_rows + !xrows_total;
    st.Op_trace.exchange_cells <- st.Op_trace.exchange_cells + (!xrows_total * out_width);
    if profile.Op_trace.parallel then begin
      st.Op_trace.comm_rows <- st.Op_trace.comm_rows + !xrows_total;
      st.Op_trace.comm_cells <- st.Op_trace.comm_cells + (!xrows_total * out_width)
    end;
    (* per-worker rollups of the fragment traces *)
    let worker_nodes =
      List.filter_map
        (fun wid ->
          let idxs = ref [] in
          Array.iteri (fun i w' -> if w' = wid then idxs := i :: !idxs) worker_of;
          let idxs = List.rev !idxs in
          if idxs = [] then None
          else begin
            let traces =
              List.filter_map
                (fun i -> Option.bind results.(i) (fun r -> r.r_trace))
                idxs
            in
            let rows =
              List.fold_left
                (fun acc i ->
                  match results.(i) with Some r -> acc + r.r_xrows | None -> acc)
                0 idxs
            in
            let node =
              Op_trace.make
                (Printf.sprintf "worker %d (morsels=%d)" wid (List.length idxs))
                (Op_trace.rollup traces)
            in
            node.Op_trace.rows_out <- rows;
            Some node
          end)
        (List.init w Fun.id)
    in
    let skipped = Array.fold_left (fun acc r -> if r = None then acc + 1 else acc) 0 results in
    let xnode =
      Op_trace.make
        (Printf.sprintf "exchange[%s] (morsels=%d%s, workers=%d)" label n
           (if skipped > 0 then Printf.sprintf ", skipped=%d" skipped else "")
           w)
        (worker_nodes @ s.s_traces)
    in
    xnode.Op_trace.rows_in <- !xrows_total;
    xnode.Op_trace.rows_out <- !xrows_total;
    let values =
      Array.map
        (function
          | Some r -> r.r_val
          | None -> (
            match on_skip with
            | Some f -> f ()
            | None -> invalid_arg "Parallel: morsel skipped without on_skip"))
        results
    in
    (values, xnode)
  in
  (* slice a materialized batch into row-range morsels *)
  let slice_rows (b : Batch.t) =
    let fields = Batch.fields b in
    let nr = Batch.n_rows b in
    let out = ref [] in
    let pos = ref 0 in
    while !pos < nr do
      let len = min morsel_size (nr - !pos) in
      out :=
        { m_input = In_rows (Batch.sub b ~pos:!pos ~len); m_in_fields = fields;
          m_fragment = None }
        :: !out;
      pos := !pos + len
    done;
    List.rev !out
  in
  let leaf_of m =
    match m.m_fragment with Some f -> f | None -> Physical.Common_ref m.m_in_fields
  in
  let mk_node lbl children out =
    let tr = Op_trace.make lbl children in
    tr.Op_trace.rows_out <- Batch.n_rows out;
    (out, tr)
  in
  (* [psource env p] decomposes the streaming region rooted at [p] into
     morsels; breakers below it are executed recursively by [exec] and their
     output sliced. [exec env p] fully evaluates [p] (merge points run
     here on the coordinator). *)
  let rec psource env (p : Physical.t) : src =
    let extend child wrap =
      let s = psource env child in
      {
        s_fields = Physical.output_fields p;
        s_morsels =
          List.map (fun m -> { m with m_fragment = Some (wrap (leaf_of m)) }) s.s_morsels;
        s_traces = s.s_traces;
      }
    in
    match p with
    | Physical.Scan { alias; con; pred } ->
      let kernel = Option.map (fun p -> Eval.compile ~vectorize g ~fields:[ alias ] p) pred in
      let morsels = ref [] in
      List.iter
        (fun t ->
          let verts = G.vertices_of_vtype g t in
          let nv = Array.length verts in
          let pos = ref 0 in
          while !pos < nv do
            let len = min morsel_size (nv - !pos) in
            morsels :=
              { m_input = In_scan { verts; start = !pos; len; alias; kernel };
                m_in_fields = [ alias ]; m_fragment = None }
              :: !morsels;
            pos := !pos + len
          done)
        (Tc.to_list ~universe:vuniv con);
      { s_fields = [ alias ]; s_morsels = List.rev !morsels; s_traces = [] }
    | Physical.Common_ref fields -> begin
      match env with
      | None -> failwith "Parallel: CommonRef outside WithCommon"
      | Some cb -> { s_fields = fields; s_morsels = slice_rows cb; s_traces = [] }
    end
    | Physical.Empty fields -> { s_fields = fields; s_morsels = []; s_traces = [] }
    | Physical.Select (x, pred) -> extend x (fun l -> Physical.Select (l, pred))
    | Physical.Project (x, ps) -> extend x (fun l -> Physical.Project (l, ps))
    | Physical.Expand_all (x, step) -> extend x (fun l -> Physical.Expand_all (l, step))
    | Physical.Expand_into (x, step) -> extend x (fun l -> Physical.Expand_into (l, step))
    | Physical.Expand_intersect (x, steps) ->
      extend x (fun l -> Physical.Expand_intersect (l, steps))
    | Physical.Path_expand (x, step) -> extend x (fun l -> Physical.Path_expand (l, step))
    | Physical.Unfold (x, e, alias) -> extend x (fun l -> Physical.Unfold (l, e, alias))
    | Physical.All_distinct (x, fs) -> extend x (fun l -> Physical.All_distinct (l, fs))
    | Physical.Union (a, b) ->
      let sa = psource env a in
      let sb = psource env b in
      let fields = sa.s_fields in
      let sb_morsels =
        if sb.s_fields = fields then sb.s_morsels
        else
          (* unify the right branch's layout, like the sequential Union's
             forwarding projection *)
          let ps = List.map (fun f -> (Expr.Var f, f)) fields in
          List.map
            (fun m -> { m with m_fragment = Some (Physical.Project (leaf_of m, ps)) })
            sb.s_morsels
      in
      {
        s_fields = fields;
        s_morsels = sa.s_morsels @ sb_morsels;
        s_traces = sa.s_traces @ sb.s_traces;
      }
    | Physical.Group _ | Physical.Order _ | Physical.Limit _ | Physical.Skip _
    | Physical.Dedup _ | Physical.Hash_join _ | Physical.With_common _ ->
      let b, tr = exec env p in
      { s_fields = Batch.fields b; s_morsels = slice_rows b; s_traces = [ tr ] }
  and exec env (p : Physical.t) : Batch.t * Op_trace.t =
    let lbl = Physical.node_label ~schema p in
    (* run a probe-side exchange against a read-only shared hash table *)
    let join_probe env lbl ~left ~right_batch ~keys ~kind extra_traces =
      let s = psource env left in
      let jc =
        Operator.Join_core.create ~left_fields:s.s_fields
          ~right_fields:(Batch.fields right_batch) ~keys ~kind
      in
      Batch.iter (fun row -> Operator.Join_core.build jc row) right_batch;
      Op_trace.live_add st (Batch.n_rows right_batch);
      let out_fields = jc.Operator.Join_core.out_fields in
      let post b =
        let out = Batch.create out_fields in
        Batch.iter (fun lrow -> Operator.Join_core.probe jc lrow (Batch.add out)) b;
        (out, Batch.n_rows out)
      in
      let parts, xnode =
        run_morsels ~label:lbl ~out_width:(List.length out_fields) s post
      in
      Op_trace.live_sub st (Batch.n_rows right_batch);
      let out = Batch.concat out_fields (Array.to_list parts) in
      count_rows (Batch.n_rows out) (List.length out_fields);
      mk_node lbl (xnode :: extra_traces) out
    in
    match p with
    | Physical.Group (x, ks, aggs) ->
      let s = psource env x in
      let child_layout = Batch.create s.s_fields in
      let out_fields = List.map snd ks @ List.map (fun a -> a.Logical.agg_alias) aggs in
      let post b =
        let tbl : Agg.state array KeyTbl.t = KeyTbl.create 64 in
        let order : Rval.t list Vec.t = Vec.create () in
        Batch.iter
          (fun row ->
            let lk = Eval.lookup_of_row child_layout row in
            let key = List.map (fun (e, _) -> Eval.eval_rval g lk e) ks in
            let states =
              match KeyTbl.find_opt tbl key with
              | Some states -> states
              | None ->
                let states = Array.of_list (List.map Agg.init aggs) in
                KeyTbl.add tbl key states;
                Vec.push order key;
                states
            in
            Agg.update_all g lk states aggs)
          b;
        ((tbl, order), Vec.length order)
      in
      let parts, xnode =
        run_morsels ~label:lbl ~out_width:(List.length out_fields) s post
      in
      (* merge partial states in morsel order; key order = first sighting *)
      let tbl : Agg.state array KeyTbl.t = KeyTbl.create 64 in
      let order : Rval.t list Vec.t = Vec.create () in
      Array.iter
        (fun (ptbl, porder) ->
          Vec.iter
            (fun key ->
              let pstates = KeyTbl.find ptbl key in
              match KeyTbl.find_opt tbl key with
              | Some states ->
                List.iteri (fun i a -> Agg.merge states.(i) pstates.(i) a) aggs
              | None ->
                KeyTbl.add tbl key pstates;
                Vec.push order key)
            porder)
        parts;
      let out = Batch.create out_fields in
      if Vec.length order = 0 && ks = [] then
        (* aggregate over an empty input still yields one row *)
        Batch.add out (Array.of_list (List.map (fun a -> Agg.finish (Agg.init a) a) aggs))
      else
        Vec.iter
          (fun key ->
            let states = KeyTbl.find tbl key in
            let agg_vals = List.mapi (fun i a -> Agg.finish states.(i) a) aggs in
            Batch.add out (Array.of_list (key @ agg_vals)))
          order;
      count_rows (Batch.n_rows out) (List.length out_fields);
      mk_node lbl [ xnode ] out
    | Physical.Order (x, ks, lim) ->
      let s = psource env x in
      let layout = Batch.create s.s_fields in
      let width = List.length s.s_fields in
      let cmp (ka, _) (kb, _) = Operator.compare_keys ks ka kb in
      let post b =
        let v : (Value.t list * Rval.t array) Vec.t = Vec.create () in
        Batch.iter
          (fun row ->
            let lk = Eval.lookup_of_row layout row in
            Vec.push v (List.map (fun (e, _) -> Eval.eval g lk e) ks, row))
          b;
        Vec.sort cmp v;
        (* any row beyond the limit within its own run cannot make the
           global top-k *)
        let keep = match lim with Some l -> min l (Vec.length v) | None -> Vec.length v in
        (Array.init keep (Vec.get v), keep)
      in
      let parts, xnode = run_morsels ~label:lbl ~out_width:width s post in
      (* k-way merge of the sorted runs; ties resolve to the lower morsel
         index, making tie order independent of the worker count *)
      let m = Array.length parts in
      let idx = Array.make m 0 in
      let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 parts in
      let keep = match lim with Some l -> min l total | None -> total in
      let out = Batch.create s.s_fields in
      for _ = 1 to keep do
        let best = ref (-1) in
        for i = 0 to m - 1 do
          if idx.(i) < Array.length parts.(i) then
            if !best < 0 then best := i
            else begin
              let ka, _ = parts.(i).(idx.(i)) in
              let kb, _ = parts.(!best).(idx.(!best)) in
              if Operator.compare_keys ks ka kb < 0 then best := i
            end
        done;
        let _, row = parts.(!best).(idx.(!best)) in
        idx.(!best) <- idx.(!best) + 1;
        Batch.add out row
      done;
      count_rows keep width;
      mk_node lbl [ xnode ] out
    | Physical.Dedup (x, tags) ->
      let s = psource env x in
      let layout = Batch.create s.s_fields in
      let width = List.length s.s_fields in
      let positions =
        match tags with
        | [] -> List.init width Fun.id
        | tags -> List.map (Batch.pos layout) tags
      in
      let key_of row = List.map (fun pos -> row.(pos)) positions in
      let post b =
        let local : unit KeyTbl.t = KeyTbl.create 64 in
        let out = Batch.create s.s_fields in
        Batch.iter
          (fun row ->
            let key = key_of row in
            if not (KeyTbl.mem local key) then begin
              KeyTbl.add local key ();
              Batch.add out row
            end)
          b;
        (out, Batch.n_rows out)
      in
      let parts, xnode = run_morsels ~label:lbl ~out_width:width s post in
      let seen : unit KeyTbl.t = KeyTbl.create 64 in
      let out = Batch.create s.s_fields in
      Array.iter
        (fun pb ->
          Batch.iter
            (fun row ->
              let key = key_of row in
              if not (KeyTbl.mem seen key) then begin
                KeyTbl.add seen key ();
                Batch.add out row
              end)
            pb)
        parts;
      count_rows (Batch.n_rows out) width;
      mk_node lbl [ xnode ] out
    | Physical.Hash_join { left; right; keys; kind } ->
      let rb, rtr = exec env right in
      join_probe env lbl ~left ~right_batch:rb ~keys ~kind [ rtr ]
    | Physical.With_common { common = c; left; right; combine } ->
      let cb, ctr = exec env c in
      let env' = Some cb in
      begin
        match combine with
        | Logical.C_union ->
          let fields = Physical.output_fields left in
          let lb, ltr = exec env' left in
          let rb, rtr = exec env' right in
          let r_layout = Batch.create (Batch.fields rb) in
          let out = Batch.create fields in
          if Batch.fields lb = fields then Batch.append_batch out lb
          else Batch.iter (Batch.add out) lb;
          Batch.iter (fun row -> Batch.add out (Batch.project_to r_layout fields row)) rb;
          count_rows (Batch.n_rows out) (List.length fields);
          mk_node lbl [ ctr; ltr; rtr ] out
        | Logical.C_join (keys, kind) ->
          let rb, rtr = exec env' right in
          join_probe env' lbl ~left ~right_batch:rb ~keys ~kind [ ctr; rtr ]
      end
    | Physical.Limit (x, n) ->
      let s = psource env x in
      let width = List.length s.s_fields in
      let post b = (b, Batch.n_rows b) in
      let parts, xnode =
        run_morsels ~label:lbl ~out_width:width ~early_stop:n
          ~on_skip:(fun () -> Batch.create s.s_fields)
          s post
      in
      let out = Batch.create s.s_fields in
      (try
         Array.iter
           (fun pb ->
             Batch.iter
               (fun row -> if Batch.n_rows out < n then Batch.add out row else raise Exit)
               pb)
           parts
       with Exit -> ());
      count_rows (Batch.n_rows out) width;
      mk_node lbl [ xnode ] out
    | Physical.Skip (x, n) ->
      let s = psource env x in
      let width = List.length s.s_fields in
      let post b = (b, Batch.n_rows b) in
      let parts, xnode = run_morsels ~label:lbl ~out_width:width s post in
      let out = Batch.create s.s_fields in
      let seen = ref 0 in
      Array.iter
        (fun pb ->
          Batch.iter
            (fun row ->
              incr seen;
              if !seen > n then Batch.add out row)
            pb)
        parts;
      count_rows (Batch.n_rows out) width;
      mk_node lbl [ xnode ] out
    | Physical.Scan _ | Physical.Select _ | Physical.Project _ | Physical.Expand_all _
    | Physical.Expand_into _ | Physical.Expand_intersect _ | Physical.Path_expand _
    | Physical.Unfold _ | Physical.All_distinct _ | Physical.Union _
    | Physical.Common_ref _ | Physical.Empty _ ->
      (* streaming region at the root: a plain collecting exchange; the
         fragment operators already accounted for their emissions *)
      let s = psource env p in
      let post b = (b, Batch.n_rows b) in
      let parts, xnode =
        run_morsels ~label:lbl ~out_width:(List.length s.s_fields) s post
      in
      let out = Batch.concat s.s_fields (Array.to_list parts) in
      (out, xnode)
  in
  let result, root_tr = exec None plan in
  st.Op_trace.operators <- Physical.operator_count plan;
  st.Op_trace.op_trace <- Some root_tr;
  (result, st)
