type t = {
  name : string;
  mutable rows_in : int;
  mutable rows_out : int;
  mutable rows_selected : int;
  mutable kernel_ns : float;
  mutable time_s : float;
  mutable children : t list;
}

let make name children =
  { name; rows_in = 0; rows_out = 0; rows_selected = 0; kernel_ns = 0.0;
    time_s = 0.0; children }

type profile = { prof_name : string; count_comm : bool; parallel : bool }

let neo4j_profile = { prof_name = "neo4j"; count_comm = false; parallel = false }
let graphscope_profile = { prof_name = "graphscope"; count_comm = true; parallel = true }

type stats = {
  mutable operators : int;
  mutable intermediate_rows : int;
  mutable intermediate_cells : int;
  mutable comm_rows : int;
  mutable comm_cells : int;
  mutable edges_touched : int;
  mutable peak_rows : int;
  mutable live_rows : int;
  mutable exchange_rows : int;
  mutable exchange_cells : int;
  mutable workers_used : int;
  mutable op_trace : t option;
}

let fresh_stats () =
  {
    operators = 0;
    intermediate_rows = 0;
    intermediate_cells = 0;
    comm_rows = 0;
    comm_cells = 0;
    edges_touched = 0;
    peak_rows = 0;
    live_rows = 0;
    exchange_rows = 0;
    exchange_cells = 0;
    workers_used = 1;
    op_trace = None;
  }

exception Timeout

(* --- live-row accounting (peak_rows = max simultaneously-live rows) ------- *)

let live_add st n =
  st.live_rows <- st.live_rows + n;
  if st.live_rows > st.peak_rows then st.peak_rows <- st.live_rows

let live_sub st n = st.live_rows <- st.live_rows - n

(* --- self-time clock ------------------------------------------------------ *)

(* Profiler-style attribution: exactly one trace node owns the clock at any
   moment; entering a nested operator frame charges the elapsed slice to the
   previous owner. Sampling happens once per chunk, not per row, so the
   overhead is negligible at the default chunk size. *)

type clock = { mutable mark : float; mutable owner : t option }

let clock () = { mark = 0.0; owner = None }

let charge clk now =
  match clk.owner with
  | Some tr -> tr.time_s <- tr.time_s +. (now -. clk.mark)
  | None -> ()

let timed clk tr f =
  let now = Sys.time () in
  charge clk now;
  let prev = clk.owner in
  clk.owner <- Some tr;
  clk.mark <- now;
  Fun.protect
    ~finally:(fun () ->
      let now = Sys.time () in
      charge clk now;
      clk.owner <- prev;
      clk.mark <- now)
    f

(* --- rendering ------------------------------------------------------------ *)

let fmt_time s =
  if s >= 1.0 then Printf.sprintf "%.2fs"
      s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let pp ppf tr =
  let rec go indent tr =
    let kernel =
      (* kernel-level counters appear only on operators that actually ran a
         vectorized kernel, keeping row-interpreted nodes unchanged *)
      if tr.rows_selected > 0 || tr.kernel_ns > 0.0 then
        Printf.sprintf ", kernel: selected=%d in %s" tr.rows_selected
          (fmt_time (tr.kernel_ns *. 1e-9))
      else ""
    in
    Format.fprintf ppf "%s%s  (rows in=%d out=%d%s, time=%s)@,"
      (String.make (2 * indent) ' ')
      tr.name tr.rows_in tr.rows_out kernel (fmt_time tr.time_s);
    List.iter (go (indent + 1)) tr.children
  in
  Format.fprintf ppf "@[<v>";
  go 0 tr;
  Format.fprintf ppf "@]"

let to_string tr = Format.asprintf "%a" pp tr

let rec total_time tr =
  tr.time_s +. List.fold_left (fun acc c -> acc +. total_time c) 0.0 tr.children

(* --- structural merging (parallel per-worker rollups) --------------------- *)

let rec same_shape a b =
  a.name = b.name
  && List.length a.children = List.length b.children
  && List.for_all2 same_shape a.children b.children

let rec merge_into dst src =
  dst.rows_in <- dst.rows_in + src.rows_in;
  dst.rows_out <- dst.rows_out + src.rows_out;
  dst.rows_selected <- dst.rows_selected + src.rows_selected;
  dst.kernel_ns <- dst.kernel_ns +. src.kernel_ns;
  dst.time_s <- dst.time_s +. src.time_s;
  List.iter2 merge_into dst.children src.children

let rec copy tr =
  {
    name = tr.name;
    rows_in = tr.rows_in;
    rows_out = tr.rows_out;
    rows_selected = tr.rows_selected;
    kernel_ns = tr.kernel_ns;
    time_s = tr.time_s;
    children = List.map copy tr.children;
  }

(* Fold a list of trace trees into per-shape rollups, preserving first-seen
   order of distinct shapes. Morsel tasks of one exchange stage usually share
   a single fragment shape; a UNION stage contributes one per branch. *)
let rollup traces =
  let merged : t list ref = ref [] in
  List.iter
    (fun tr ->
      match List.find_opt (fun m -> same_shape m tr) !merged with
      | Some m -> merge_into m tr
      | None -> merged := !merged @ [ copy tr ])
    traces;
  !merged
