module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Expr = Gopt_pattern.Expr

let lookup_of_row batch row tag =
  match Batch.pos_opt batch tag with Some i -> Some row.(i) | None -> None

let num_binop op x y =
  match x, y with
  | Value.Int a, Value.Int b -> begin
    match op with
    | Expr.Add -> Value.Int (a + b)
    | Expr.Sub -> Value.Int (a - b)
    | Expr.Mul -> Value.Int (a * b)
    | Expr.Div -> if b = 0 then Value.Null else Value.Int (a / b)
    | Expr.Mod -> if b = 0 then Value.Null else Value.Int (a mod b)
    | _ -> Value.Null
  end
  | _ -> begin
    match Value.as_float x, Value.as_float y with
    | Some a, Some b -> begin
      match op with
      | Expr.Add -> Value.Float (a +. b)
      | Expr.Sub -> Value.Float (a -. b)
      | Expr.Mul -> Value.Float (a *. b)
      | Expr.Div -> if b = 0.0 then Value.Null else Value.Float (a /. b)
      | _ -> Value.Null
    end
    | _ -> Value.Null
  end

(* Allocation-free substring scan: the naive [String.sub]-per-candidate
   version allocated a fresh string at every position (quadratic garbage on
   long haystacks). The empty needle is contained in everything, matching
   the SQL/openCypher convention. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + n <= m do
      let j = ref 0 in
      while !j < n && String.unsafe_get s (!i + !j) = String.unsafe_get sub !j do
        incr j
      done;
      if !j = n then found := true else incr i
    done;
    !found
  end

let string_binop op x y =
  match Value.as_string x, Value.as_string y with
  | Some a, Some b ->
    Value.Bool
      (match op with
      | Expr.Starts_with -> String.starts_with ~prefix:b a
      | Expr.Ends_with -> String.ends_with ~suffix:b a
      | Expr.Contains -> contains ~sub:b a
      | _ -> false)
  | _ -> Value.Null

let logic_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let logic_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let rec eval_rval g lookup e =
  match e with
  | Expr.Var tag -> ( match lookup tag with Some v -> v | None -> Rval.Rnull)
  | _ -> Rval.Rval (eval g lookup e)

and eval g lookup e =
  match e with
  | Expr.Const v -> v
  | Expr.Param name ->
    (* Prepared-statement placeholders are substituted by [Engine.run
       ~params] before any operator evaluates; reaching one here means the
       plan was executed without its bindings. *)
    invalid_arg
      (Printf.sprintf
         "Eval: unresolved query parameter $%s — execute prepared plans with their \
          parameter bindings (Engine.run ~params / Prepared.execute)"
         name)
  | Expr.Var tag -> begin
    match lookup tag with Some v -> Rval.to_value g v | None -> Value.Null
  end
  | Expr.Prop (tag, key) -> begin
    match lookup tag with
    | Some (Rval.Rvertex v) -> G.vprop g v key
    | Some (Rval.Redge e) -> G.eprop g e key
    | _ -> Value.Null
  end
  | Expr.Label tag -> begin
    let schema = G.schema g in
    match lookup tag with
    | Some (Rval.Rvertex v) -> Value.Str (Gopt_graph.Schema.vtype_name schema (G.vtype g v))
    | Some (Rval.Redge e) -> Value.Str (Gopt_graph.Schema.etype_name schema (G.etype g e))
    | _ -> Value.Null
  end
  | Expr.Unop (op, inner) -> begin
    let v = eval g lookup inner in
    match op with
    | Expr.Not -> begin
      match v with Value.Bool b -> Value.Bool (not b) | _ -> Value.Null
    end
    | Expr.Neg -> begin
      match v with
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | _ -> Value.Null
    end
    | Expr.Is_null -> Value.Bool (Value.is_null v)
    | Expr.Is_not_null -> Value.Bool (not (Value.is_null v))
  end
  | Expr.Binop (op, l, r) -> begin
    match op with
    | Expr.And -> logic_and (eval g lookup l) (eval g lookup r)
    | Expr.Or -> logic_or (eval g lookup l) (eval g lookup r)
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod ->
      let x = eval g lookup l and y = eval g lookup r in
      if Value.is_null x || Value.is_null y then Value.Null else num_binop op x y
    | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq ->
      (* graph values compare by identity without scalarization loss *)
      let xv = eval_rval g lookup l and yv = eval_rval g lookup r in
      let x = match xv with Rval.Rval v -> v | other -> Rval.to_value g other in
      let y = match yv with Rval.Rval v -> v | other -> Rval.to_value g other in
      if Value.is_null x || Value.is_null y then Value.Null
      else
        let c = Value.compare x y in
        Value.Bool
          (match op with
          | Expr.Eq -> c = 0
          | Expr.Neq -> c <> 0
          | Expr.Lt -> c < 0
          | Expr.Leq -> c <= 0
          | Expr.Gt -> c > 0
          | Expr.Geq -> c >= 0
          | _ -> false)
    | Expr.Starts_with | Expr.Ends_with | Expr.Contains ->
      let x = eval g lookup l and y = eval g lookup r in
      if Value.is_null x || Value.is_null y then Value.Null else string_binop op x y
  end
  | Expr.In_list (inner, vs) ->
    let v = eval g lookup inner in
    if Value.is_null v then Value.Null else Value.Bool (List.exists (Value.equal v) vs)

let is_true = function Value.Bool true -> true | _ -> false

(* --- vectorized predicate kernels ----------------------------------------- *)

(* A kernel narrows an array of candidate logical row indices to the rows on
   which the expression evaluates to [Bool true] — the selection-vector
   contract of the columnar engine. [compile] specializes the hot shapes
   (top-level AND-chains, [tag.key <op> const] comparisons, null tests,
   IN-lists over properties) into monomorphic loops that read the dense id
   columns directly and hoist the property-column hashtable lookup out of
   the per-row loop; every other shape falls back to the row interpreter
   above, evaluated per candidate row. Kernels are pure readers of the graph
   and the batch, so the parallel engine shares one compiled kernel across
   worker domains. *)

type kernel = { k_run : Batch.t -> int array -> int array; k_vectorized : bool }

let vectorized k = k.k_vectorized
let run_kernel k b cand = k.k_run b cand

(* narrow [cand] with [test : physical_row -> bool] *)
let narrow b cand test =
  let keep = Array.make (Array.length cand) 0 in
  let n = ref 0 in
  let sel = Batch.selection b in
  Array.iter
    (fun i ->
      let p = match sel with Some s -> s.(i) | None -> i in
      if test p then begin
        keep.(!n) <- i;
        incr n
      end)
    cand;
  if !n = Array.length cand then cand else Array.sub keep 0 !n

let fallback g e =
  {
    k_vectorized = false;
    k_run =
      (fun b cand ->
        let keep = Array.make (Array.length cand) 0 in
        let n = ref 0 in
        Array.iter
          (fun i ->
            let lk = Batch.lookup b i in
            if is_true (eval g lk e) then begin
              keep.(!n) <- i;
              incr n
            end)
          cand;
        Array.sub keep 0 !n);
  }

(* the comparison's truth condition as a predicate on [Value.compare] *)
let cmp_test op =
  match op with
  | Expr.Eq -> Some (fun c -> c = 0)
  | Expr.Neq -> Some (fun c -> c <> 0)
  | Expr.Lt -> Some (fun c -> c < 0)
  | Expr.Leq -> Some (fun c -> c <= 0)
  | Expr.Gt -> Some (fun c -> c > 0)
  | Expr.Geq -> Some (fun c -> c >= 0)
  | _ -> None

(* flip the operator for [const <op> prop] rewritten as [prop <op'> const] *)
let flip_op op =
  match op with
  | Expr.Lt -> Expr.Gt
  | Expr.Leq -> Expr.Geq
  | Expr.Gt -> Expr.Lt
  | Expr.Geq -> Expr.Leq
  | other -> other

let compile ?(vectorize = true) g ~fields e =
  let layout = Batch.create fields in
  let none_survives = { k_vectorized = true; k_run = (fun _ _ -> [||]) } in
  (* property-fetch kernel: [on_prop] decides survival from the (non-hoisted
     fallback only when the column holds mixed values) property value *)
  let prop_kernel tag key on_prop =
    (* the property of an unbound tag or a non-graph binding is Null; its
       survival verdict is a per-kernel constant *)
    let on_null = on_prop Value.Null in
    let all_or_nothing cand = if on_null then cand else [||] in
    match Batch.pos_opt layout tag with
    | None ->
      Some { k_vectorized = true; k_run = (fun _ cand -> all_or_nothing cand) }
    | Some j ->
      let run b cand =
        match Batch.col b j with
        | Batch.D_vertex ids -> begin
          match G.vprop_column g key with
          | None -> all_or_nothing cand (* property absent on every vertex *)
          | Some pa -> narrow b cand (fun p -> on_prop pa.(ids.(p)))
        end
        | Batch.D_edge ids -> begin
          match G.eprop_column g key with
          | None -> all_or_nothing cand
          | Some pa -> narrow b cand (fun p -> on_prop pa.(ids.(p)))
        end
        | Batch.D_boxed vals ->
          (* promoted/mixed column: resolve the binding per row *)
          narrow b cand (fun p ->
              match vals.(p) with
              | Rval.Rvertex v -> on_prop (G.vprop g v key)
              | Rval.Redge e -> on_prop (G.eprop g e key)
              | _ -> on_null)
      in
      Some { k_vectorized = true; k_run = run }
  in
  let rec build e =
    match specialize e with Some k -> k | None -> fallback g e
  and specialize e =
    match e with
    | Expr.Binop (Expr.And, a, b) ->
      (* Kleene AND is [Bool true] exactly when both sides are, so a
         conjunction narrows sequentially — the surviving set is identical
         to evaluating the whole conjunction per row. *)
      let ka = build a and kb = build b in
      Some
        {
          k_vectorized = ka.k_vectorized || kb.k_vectorized;
          k_run =
            (fun b cand ->
              let s = ka.k_run b cand in
              if Array.length s = 0 then s else kb.k_run b s);
        }
    | Expr.Binop (op, Expr.Prop (tag, key), Expr.Const c)
    | Expr.Binop (op, Expr.Const c, Expr.Prop (tag, key)) -> begin
      let op =
        match e with Expr.Binop (_, Expr.Const _, _) -> flip_op op | _ -> op
      in
      match cmp_test op with
      | None -> None
      | Some test ->
        if Value.is_null c then Some none_survives
        else
          prop_kernel tag key (fun pv ->
              match pv, c with
              (* monomorphic int loop for the hot case *)
              | Value.Int x, Value.Int y -> test (Int.compare x y)
              | Value.Null, _ -> false
              | _ -> test (Value.compare pv c))
    end
    | Expr.Unop (Expr.Is_not_null, Expr.Prop (tag, key)) ->
      prop_kernel tag key (fun pv -> not (Value.is_null pv))
    | Expr.Unop (Expr.Is_null, Expr.Prop (tag, key)) -> begin
      (* [Is_null] is true for unbound tags too: only specialize when the
         tag is bound in this layout (then the binding is a vertex/edge and
         the row path would fetch the property just the same) *)
      match Batch.pos_opt layout tag with
      | None -> None
      | Some _ -> prop_kernel tag key (fun pv -> Value.is_null pv)
    end
    | Expr.In_list (Expr.Prop (tag, key), vs) ->
      prop_kernel tag key (fun pv ->
          (not (Value.is_null pv)) && List.exists (Value.equal pv) vs)
    | _ -> None
  in
  if vectorize then build e else fallback g e
