module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Expr = Gopt_pattern.Expr

let lookup_of_row batch row tag =
  match Batch.pos_opt batch tag with Some i -> Some row.(i) | None -> None

let num_binop op x y =
  match x, y with
  | Value.Int a, Value.Int b -> begin
    match op with
    | Expr.Add -> Value.Int (a + b)
    | Expr.Sub -> Value.Int (a - b)
    | Expr.Mul -> Value.Int (a * b)
    | Expr.Div -> if b = 0 then Value.Null else Value.Int (a / b)
    | Expr.Mod -> if b = 0 then Value.Null else Value.Int (a mod b)
    | _ -> Value.Null
  end
  | _ -> begin
    match Value.as_float x, Value.as_float y with
    | Some a, Some b -> begin
      match op with
      | Expr.Add -> Value.Float (a +. b)
      | Expr.Sub -> Value.Float (a -. b)
      | Expr.Mul -> Value.Float (a *. b)
      | Expr.Div -> if b = 0.0 then Value.Null else Value.Float (a /. b)
      | _ -> Value.Null
    end
    | _ -> Value.Null
  end

let string_binop op x y =
  match Value.as_string x, Value.as_string y with
  | Some a, Some b ->
    let starts_with ~prefix s =
      String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
    in
    let ends_with ~suffix s =
      String.length s >= String.length suffix
      && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
    in
    let contains ~sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      n = 0 || go 0
    in
    Value.Bool
      (match op with
      | Expr.Starts_with -> starts_with ~prefix:b a
      | Expr.Ends_with -> ends_with ~suffix:b a
      | Expr.Contains -> contains ~sub:b a
      | _ -> false)
  | _ -> Value.Null

let logic_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let logic_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let rec eval_rval g lookup e =
  match e with
  | Expr.Var tag -> ( match lookup tag with Some v -> v | None -> Rval.Rnull)
  | _ -> Rval.Rval (eval g lookup e)

and eval g lookup e =
  match e with
  | Expr.Const v -> v
  | Expr.Param name ->
    (* Prepared-statement placeholders are substituted by [Engine.run
       ~params] before any operator evaluates; reaching one here means the
       plan was executed without its bindings. *)
    invalid_arg
      (Printf.sprintf
         "Eval: unresolved query parameter $%s — execute prepared plans with their \
          parameter bindings (Engine.run ~params / Prepared.execute)"
         name)
  | Expr.Var tag -> begin
    match lookup tag with Some v -> Rval.to_value g v | None -> Value.Null
  end
  | Expr.Prop (tag, key) -> begin
    match lookup tag with
    | Some (Rval.Rvertex v) -> G.vprop g v key
    | Some (Rval.Redge e) -> G.eprop g e key
    | _ -> Value.Null
  end
  | Expr.Label tag -> begin
    let schema = G.schema g in
    match lookup tag with
    | Some (Rval.Rvertex v) -> Value.Str (Gopt_graph.Schema.vtype_name schema (G.vtype g v))
    | Some (Rval.Redge e) -> Value.Str (Gopt_graph.Schema.etype_name schema (G.etype g e))
    | _ -> Value.Null
  end
  | Expr.Unop (op, inner) -> begin
    let v = eval g lookup inner in
    match op with
    | Expr.Not -> begin
      match v with Value.Bool b -> Value.Bool (not b) | _ -> Value.Null
    end
    | Expr.Neg -> begin
      match v with
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | _ -> Value.Null
    end
    | Expr.Is_null -> Value.Bool (Value.is_null v)
    | Expr.Is_not_null -> Value.Bool (not (Value.is_null v))
  end
  | Expr.Binop (op, l, r) -> begin
    match op with
    | Expr.And -> logic_and (eval g lookup l) (eval g lookup r)
    | Expr.Or -> logic_or (eval g lookup l) (eval g lookup r)
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod ->
      let x = eval g lookup l and y = eval g lookup r in
      if Value.is_null x || Value.is_null y then Value.Null else num_binop op x y
    | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq ->
      (* graph values compare by identity without scalarization loss *)
      let xv = eval_rval g lookup l and yv = eval_rval g lookup r in
      let x = match xv with Rval.Rval v -> v | other -> Rval.to_value g other in
      let y = match yv with Rval.Rval v -> v | other -> Rval.to_value g other in
      if Value.is_null x || Value.is_null y then Value.Null
      else
        let c = Value.compare x y in
        Value.Bool
          (match op with
          | Expr.Eq -> c = 0
          | Expr.Neq -> c <> 0
          | Expr.Lt -> c < 0
          | Expr.Leq -> c <= 0
          | Expr.Gt -> c > 0
          | Expr.Geq -> c >= 0
          | _ -> false)
    | Expr.Starts_with | Expr.Ends_with | Expr.Contains ->
      let x = eval g lookup l and y = eval g lookup r in
      if Value.is_null x || Value.is_null y then Value.Null else string_binop op x y
  end
  | Expr.In_list (inner, vs) ->
    let v = eval g lookup inner in
    if Value.is_null v then Value.Null else Value.Bool (List.exists (Value.equal v) vs)

let is_true = function Value.Bool true -> true | _ -> false
