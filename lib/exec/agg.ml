(* Aggregate accumulators and row-key hashing shared by the pipelined engine
   and the materialized reference engine. *)

module Value = Gopt_graph.Value
module Logical = Gopt_gir.Logical

module Key = struct
  type t = Rval.t list

  let equal a b = List.equal Rval.equal a b
  let hash l = List.fold_left (fun acc v -> (acc * 31) + Rval.hash v) 7 l
end

module KeyTbl = Hashtbl.Make (Key)

type state = {
  mutable a_count : int;
  mutable a_sum_i : int;
  mutable a_sum_f : float;
  mutable a_is_float : bool;
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  mutable a_collect : Rval.t list;
  mutable a_distinct : unit KeyTbl.t option;
}

let init (_a : Logical.agg) =
  {
    a_count = 0;
    a_sum_i = 0;
    a_sum_f = 0.0;
    a_is_float = false;
    a_min = Value.Null;
    a_max = Value.Null;
    a_collect = [];
    a_distinct = None;
  }

let update g lk (states : state array) i (a : Logical.agg) =
  let st = states.(i) in
  match a.Logical.agg_fn with
  | Logical.Count -> begin
    match a.Logical.agg_arg with
    | None -> st.a_count <- st.a_count + 1
    | Some e ->
      if not (Value.is_null (Eval.eval g lk e)) then st.a_count <- st.a_count + 1
  end
  | Logical.Count_distinct -> begin
    let v = Eval.eval_rval g lk (Option.get a.Logical.agg_arg) in
    if v <> Rval.Rnull then begin
      let tbl =
        match st.a_distinct with
        | Some t -> t
        | None ->
          let t = KeyTbl.create 16 in
          st.a_distinct <- Some t;
          t
      in
      KeyTbl.replace tbl [ v ] ()
    end
  end
  | Logical.Sum | Logical.Avg -> begin
    match Eval.eval g lk (Option.get a.Logical.agg_arg) with
    | Value.Int n ->
      st.a_count <- st.a_count + 1;
      st.a_sum_i <- st.a_sum_i + n;
      st.a_sum_f <- st.a_sum_f +. float_of_int n
    | Value.Float f ->
      st.a_count <- st.a_count + 1;
      st.a_is_float <- true;
      st.a_sum_f <- st.a_sum_f +. f
    | _ -> ()
  end
  | Logical.Min -> begin
    let v = Eval.eval g lk (Option.get a.Logical.agg_arg) in
    if not (Value.is_null v) then
      if Value.is_null st.a_min || Value.compare v st.a_min < 0 then st.a_min <- v
  end
  | Logical.Max -> begin
    let v = Eval.eval g lk (Option.get a.Logical.agg_arg) in
    if not (Value.is_null v) then
      if Value.is_null st.a_max || Value.compare v st.a_max > 0 then st.a_max <- v
  end
  | Logical.Collect ->
    st.a_collect <- Eval.eval_rval g lk (Option.get a.Logical.agg_arg) :: st.a_collect

(* Feed one row (via its tag resolver) into every accumulator of a group.
   Shared by the pipelined Group operator, the reference engine and the
   parallel engine's per-morsel partials. *)
let update_all g lk (states : state array) (aggs : Logical.agg list) =
  List.iteri (fun i a -> update g lk states i a) aggs

(* [merge a b] folds partial state [b] into [a], as if [b]'s input rows had
   arrived after [a]'s. Used by the parallel engine's breaker merge: each
   morsel accumulates its own partial states, merged in morsel order so the
   result (including float-summation order and COLLECT order) is identical
   for every worker count. *)
let merge (a : state) (b : state) (spec : Logical.agg) =
  match spec.Logical.agg_fn with
  | Logical.Count -> a.a_count <- a.a_count + b.a_count
  | Logical.Count_distinct -> begin
    match b.a_distinct with
    | None -> ()
    | Some tb ->
      let ta =
        match a.a_distinct with
        | Some t -> t
        | None ->
          let t = KeyTbl.create 16 in
          a.a_distinct <- Some t;
          t
      in
      KeyTbl.iter (fun k () -> KeyTbl.replace ta k ()) tb
  end
  | Logical.Sum | Logical.Avg ->
    a.a_count <- a.a_count + b.a_count;
    a.a_sum_i <- a.a_sum_i + b.a_sum_i;
    a.a_sum_f <- a.a_sum_f +. b.a_sum_f;
    a.a_is_float <- a.a_is_float || b.a_is_float
  | Logical.Min ->
    if not (Value.is_null b.a_min) then
      if Value.is_null a.a_min || Value.compare b.a_min a.a_min < 0 then a.a_min <- b.a_min
  | Logical.Max ->
    if not (Value.is_null b.a_max) then
      if Value.is_null a.a_max || Value.compare b.a_max a.a_max > 0 then a.a_max <- b.a_max
  | Logical.Collect ->
    (* both lists are reversed accumulators; [b]'s rows come later *)
    a.a_collect <- b.a_collect @ a.a_collect

let finish (st : state) (a : Logical.agg) =
  match a.Logical.agg_fn with
  | Logical.Count -> Rval.Rval (Value.Int st.a_count)
  | Logical.Count_distinct ->
    Rval.Rval
      (Value.Int (match st.a_distinct with Some t -> KeyTbl.length t | None -> 0))
  | Logical.Sum ->
    if st.a_is_float then Rval.Rval (Value.Float st.a_sum_f)
    else Rval.Rval (Value.Int st.a_sum_i)
  | Logical.Avg ->
    if st.a_count = 0 then Rval.Rnull
    else Rval.Rval (Value.Float (st.a_sum_f /. float_of_int st.a_count))
  | Logical.Min -> Rval.Rval st.a_min
  | Logical.Max -> Rval.Rval st.a_max
  | Logical.Collect -> Rval.Rlist (List.rev st.a_collect)
