(** The execution engine: a physical-plan interpreter over the property
    graph store.

    One engine executes the plans of every backend profile — exactly as the
    paper runs GOpt plans and Neo4j plans on both Neo4j and GraphScope — but
    the {e profile} controls the accounting: the GraphScope profile simulates
    a distributed dataflow by counting every produced intermediate row as
    communication (the paper's communication-cost definition), while the
    Neo4j profile is a single-machine pipeline with no communication.
    Benchmarks combine wall-clock time with the simulated communication
    volume (see EXPERIMENTS.md).

    Execution is push-based and pipelined: each {!Gopt_opt.Physical.t} node
    compiles to an operator with consume/close callbacks and rows flow
    through in fixed-size chunks, materializing only at pipeline breakers
    (see {!Gopt_opt.Physical.pipeline_role}). [LIMIT] propagates a stop
    signal upstream so scans and expansions terminate early, and every run
    records a per-operator {!Op_trace.t} on {!stats.op_trace}. The original
    batch-at-a-time interpreter survives as {!run_materialized}, the
    semantic oracle for differential tests.

    All pattern operators implement homomorphism semantics; Cypher's
    no-repeated-edge semantics is realized by the AllDistinct operator
    (paper Remark 3.1). *)

type profile = Op_trace.profile = {
  prof_name : string;
  count_comm : bool;
      (** Count produced intermediate rows as simulated communication. *)
  parallel : bool;
      (** The backend is a parallel dataflow: rows crossing a worker-merge
          exchange in the morsel-driven engine are charged to the
          communication counters. *)
}

val neo4j_profile : profile
val graphscope_profile : profile

type stats = Op_trace.stats = {
  mutable operators : int;  (** Operators executed. *)
  mutable intermediate_rows : int;  (** Total rows produced across operators. *)
  mutable intermediate_cells : int;  (** Rows weighted by width (FieldTrim effect). *)
  mutable comm_rows : int;  (** Simulated shuffled rows (distributed profiles). *)
  mutable comm_cells : int;
      (** Shuffled rows weighted by row width — the simulated network volume
          (what FieldTrim reduces). *)
  mutable edges_touched : int;  (** Adjacency entries visited by expansions. *)
  mutable peak_rows : int;
      (** Maximum simultaneously-live materialized rows. On pipelined plans
          this reflects breaker state plus accumulated results and drops
          well below the materialized path's peak. *)
  mutable live_rows : int;  (** Current live rows (internal counter). *)
  mutable exchange_rows : int;
      (** Rows that crossed a worker-merge exchange (parallel runs only;
          0 on sequential runs). *)
  mutable exchange_cells : int;  (** Exchange rows weighted by row width. *)
  mutable workers_used : int;  (** Worker domains used by the run (1 = sequential). *)
  mutable op_trace : Op_trace.t option;
      (** Per-operator trace of the last run ({!run} fills it in;
          {!run_materialized} leaves it [None]). *)
}

exception Timeout
(** Raised when the run exceeds its [budget] of CPU seconds — the engine's
    analogue of the paper's one-hour OT cutoff. *)

val run :
  ?profile:profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  ?vectorize:bool ->
  ?params:(string * Gopt_graph.Value.t list) list ->
  Gopt_graph.Property_graph.t ->
  Gopt_opt.Physical.t ->
  Batch.t * stats
(** Execute a plan on the pipelined engine. [profile] defaults to
    {!graphscope_profile}; [chunk_size] is the pipelined batch granularity
    (default 1024).

    [vectorize] (default [true]) compiles scan/filter predicates into
    column-at-a-time kernels over the chunk's typed columns and turns
    all-variable projections into column swaps; [~vectorize:false] forces
    the row-at-a-time interpreter for every expression — results are
    identical either way (the benchmark uses the flag as its baseline).

    [params] binds prepared-statement placeholders ({!Gopt_pattern.Expr.Param})
    before execution; each scalar placeholder must bind exactly one value.
    Raises [Invalid_argument] naming the missing parameter and the supplied
    set when a placeholder is left unbound.

    [workers] switches to the morsel-driven parallel engine: scans are split
    into fixed-size morsels dispatched to [workers] OCaml domains, which run
    clones of the streaming pipeline fragments; pipeline breakers merge the
    per-worker partial states in morsel order. Results are byte-identical
    for every [workers] value (including [1]) because all merge points
    combine partials in morsel order — but plans whose output order is a
    set-semantics artifact (e.g. GROUP BY without ORDER BY) may order rows
    differently from the sequential engine. Omit [workers] for the
    sequential push pipeline. *)

val run_materialized :
  ?profile:profile ->
  ?budget:float ->
  ?params:(string * Gopt_graph.Value.t list) list ->
  Gopt_graph.Property_graph.t ->
  Gopt_opt.Physical.t ->
  Batch.t * stats
(** Execute a plan on the materialized batch-at-a-time reference engine
    (every operator fully materializes its output; no per-operator trace).
    Same results as {!run} on every plan; used as the oracle in
    differential tests. *)
