(** Bounded LRU cache for optimized plans.

    The cache amortizes the optimizer over repeated query templates in an
    online-serving session: keys are {!Fingerprint} digests, values are
    whatever the caller associates with a planned query (typically the
    physical plan plus its planner report). A single mutex guards every
    operation, so one cache can serve concurrent domains; the critical
    sections are O(1) hash-and-splice operations, never planning itself.

    Counters ([hits]/[misses]/[evictions]/[invalidations]) accumulate over
    the cache's lifetime and surface on [Planner.report] and
    [gopt --cache-stats]. *)

type 'v t

type stats = {
  hits : int;
  misses : int;  (** {!find} calls that returned [None]. *)
  evictions : int;  (** Entries dropped by LRU capacity pressure. *)
  invalidations : int;
      (** Entries dropped by explicit {!invalidate_all} (stats-epoch
          bumps), NOT counted as evictions. *)
  entries : int;  (** Current number of cached plans. *)
  capacity : int;
}

val create : ?capacity:int -> unit -> 'v t
(** [capacity] defaults to 128; [capacity <= 0] disables the cache (every
    {!find} misses, {!add} is a no-op). *)

val capacity : 'v t -> int

val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Lookup by fingerprint; a hit promotes the entry to most-recently-used
    and bumps [hits], a miss bumps [misses]. *)

val add : 'v t -> string -> 'v -> unit
(** Insert (or overwrite) the entry as most-recently-used, evicting the
    least-recently-used entry when at capacity. *)

val invalidate_all : 'v t -> int
(** Drop every entry (schema/statistics change); returns the number of
    entries dropped and adds it to [invalidations]. Counters survive. *)

val stats : 'v t -> stats
(** Consistent snapshot of the counters. *)
