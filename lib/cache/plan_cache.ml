(* LRU over a hash table plus an intrusive doubly-linked recency list: find,
   add and evict are all O(1) under a single mutex, so the cache can be
   shared by the morsel-parallel engine's domains without serializing
   anything longer than a pointer splice. *)

type 'v node = {
  key : string;
  value : 'v;
  mutable prev : 'v node option;  (* towards most-recently-used *)
  mutable next : 'v node option;  (* towards least-recently-used *)
}

type 'v t = {
  cap : int;
  tbl : (string, 'v node) Hashtbl.t;
  lock : Mutex.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  capacity : int;
}

let create ?(capacity = 128) () =
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    lock = Mutex.create ();
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* list surgery: callers hold the lock *)

let detach t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        t.hits <- t.hits + 1;
        detach t n;
        push_front t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  if t.cap > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some old ->
          detach t old;
          Hashtbl.remove t.tbl key
        | None -> ());
        if Hashtbl.length t.tbl >= t.cap then begin
          match t.lru with
          | Some victim ->
            detach t victim;
            Hashtbl.remove t.tbl victim.key;
            t.evictions <- t.evictions + 1
          | None -> ()
        end;
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n)

let invalidate_all t =
  locked t (fun () ->
      let dropped = Hashtbl.length t.tbl in
      Hashtbl.reset t.tbl;
      t.mru <- None;
      t.lru <- None;
      t.invalidations <- t.invalidations + dropped;
      dropped)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        entries = Hashtbl.length t.tbl;
        capacity = t.cap;
      })
