(** Canonical cache keys for optimized queries.

    A fingerprint identifies everything that determines the optimizer's
    output for a query: the parsed AST (so formatting and whitespace never
    matter), a signature of the planner configuration (rule set, backend
    spec, CBO options, inference schema), and the session's {e stats epoch}
    — a counter bumped whenever the graph schema or GLogue statistics
    change, so stale plans can never be served after the cost model moved.

    {!auto_parameterize} additionally canonicalizes literals: two queries
    differing only in scalar constants collapse to one cached plan, with the
    constants extracted as parameter bindings and re-bound at execution. *)

val auto_parameterize :
  Gopt_lang.Cypher_ast.query -> Gopt_lang.Cypher_ast.query * (string * Gopt_graph.Value.t list) list
(** Replace scalar literals ([Int]/[Float]/[Str] constants) in the query's
    expressions with fresh [Expr.Param "@p0"], ["@p1"], … placeholders
    (deterministic traversal order), returning the extracted bindings.

    Soundness exclusions — literals that shape the plan itself stay inline:
    [Bool]/[Null] constants, constants compared against [label(x)] (they
    drive type-constraint narrowing during inference), [IN]-list value sets,
    and pattern property maps (lowered into scan/expand constraints). *)

val digest : config:string -> epoch:int -> Gopt_lang.Cypher_ast.query -> string
(** Hex digest over the AST's structure, the planner-configuration
    signature [config], and the stats [epoch]. Equal digests mean the
    optimizer would produce the same plan. *)
