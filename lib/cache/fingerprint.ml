module Value = Gopt_graph.Value
module Expr = Gopt_pattern.Expr
open Gopt_lang.Cypher_ast

(* Literal canonicalization. Fresh parameters are named "@p0", "@p1", … in
   traversal order — user parameters cannot collide with them ('@' is not an
   identifier character in the lexer) and two queries with the same shape
   assign the same names at the same positions, which is what makes their
   fingerprints collide (intentionally). *)

let parameterizable = function
  | Value.Int _ | Value.Float _ | Value.Str _ -> true
  | Value.Bool _ | Value.Null -> false

let auto_parameterize q =
  let counter = ref 0 in
  let bindings = ref [] in
  let fresh v =
    let name = Printf.sprintf "@p%d" !counter in
    incr counter;
    bindings := (name, [ v ]) :: !bindings;
    Expr.Param name
  in
  let rec go e =
    match e with
    | Expr.Const v when parameterizable v -> fresh v
    | Expr.Const _ | Expr.Param _ | Expr.Var _ | Expr.Prop _ | Expr.Label _ -> e
    | Expr.Binop (op, l, r) ->
      (* A constant compared against label(x) narrows the element's type
         constraint during inference — hiding it behind a parameter would
         change the plan, so both operands of a label comparison stay put. *)
      let label_cmp =
        match l, r with Expr.Label _, _ | _, Expr.Label _ -> true | _ -> false
      in
      if label_cmp then e else Expr.Binop (op, go l, go r)
    | Expr.Unop (op, inner) -> Expr.Unop (op, go inner)
    | Expr.In_list (inner, vs) -> Expr.In_list (go inner, vs)
  in
  let proj_item it =
    {
      it with
      item =
        (match it.item with
        | Scalar e -> Scalar (go e)
        | Agg (fn, distinct, arg) -> Agg (fn, distinct, Option.map go arg));
    }
  in
  let projection p =
    {
      p with
      items = List.map proj_item p.items;
      order_by = List.map (fun (e, d) -> (go e, d)) p.order_by;
      where = Option.map go p.where;
    }
  in
  let conjunct = function
    | Wc_expr e -> Wc_expr (go e)
    | Wc_pattern _ as w -> w
  in
  let clause = function
    | C_match { optional; paths; where } ->
      C_match { optional; paths; where = List.map conjunct where }
    | C_unwind (e, alias) -> C_unwind (go e, alias)
    | C_with p -> C_with (projection p)
    | C_return p -> C_return (projection p)
  in
  let parts = List.map (List.map clause) q.parts in
  ({ q with parts }, List.rev !bindings)

(* The AST is pure data (constructors over strings, ints and Value.t), so
   Marshal gives a canonical structural encoding; planner configuration is
   signed by the caller as a string because Planner.config holds cost-model
   closures that must never be serialized. *)
let digest ~config ~epoch q =
  let payload =
    String.concat "\x00" [ Marshal.to_string q []; config; string_of_int epoch ]
  in
  Digest.to_hex (Digest.string payload)
