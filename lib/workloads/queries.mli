(** The benchmark query sets (paper §8.1).

    - {!ic}: analogs of the LDBC Interactive Complex workloads IC1..IC12;
    - {!bi}: analogs of the Business Intelligence workloads BI1..BI14 and
      BI16..BI18 (IC13/14 and BI15/19/20 are excluded, as in the paper);
    - {!qr}: QR1..QR8, one pair per heuristic rule (FilterIntoPattern,
      FieldTrim, JoinToPattern, ComSubPattern), with Gremlin twins;
    - {!qt}: QT1..QT5, patterns without explicit type constraints;
    - {!qc}: QC1..QC4 in (a) BasicType and (b) UnionType variants — a
      triangle, a square, a 5-path, and a 7-vertex/8-edge pattern — with
      Gremlin twins.

    Queries are written against the {!Ldbc} schema; analog means the
    optimization-relevant shape of the original query (pattern topology,
    variable-length paths, filters, aggregation) is preserved while entity
    names map onto our generated data. *)

type query = {
  name : string;
  cypher : string;
  gremlin : string option;
  rule : string option;
      (** For QR queries: the heuristic rule the query exercises. *)
  description : string;
}

val ic : query list
val bi : query list

val comprehensive : query list
(** [ic @ bi] — the 29 queries of the paper's Fig. 9. *)

val qr : query list
val qt : query list
val qc : query list

val vs : query list
(** Scan/filter/projection-dominated queries (no expansions): the working
    set of the [vectorized] execution experiment, where columnar kernels
    carry the whole plan. *)

val find : query list -> string -> query
(** Lookup by name; raises [Not_found]. *)

val pattern_of_cypher :
  Gopt_graph.Schema.t -> string -> Gopt_pattern.Pattern.t
(** Parse a MATCH-only Cypher query and return its pattern graph (used by
    the plan-quality experiments, which compare pattern plans directly). *)
