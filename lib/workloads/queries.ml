type query = {
  name : string;
  cypher : string;
  gremlin : string option;
  rule : string option;
  description : string;
}

let q ?gremlin ?rule name description cypher = { name; cypher; gremlin; rule; description }

(* ------------------------------------------------------------------ IC -- *)

let ic =
  [
    q "IC1" "friends up to 3 hops with a given first name"
      "MATCH (p:Person {id: 10})-[:KNOWS*1..3]-(f:Person) WHERE f.firstName = 'Wei' \
       RETURN f.id AS fid, f.lastName AS lastName ORDER BY fid ASC LIMIT 20";
    q "IC2" "recent messages by friends"
      "MATCH (p:Person {id: 17})-[:KNOWS]-(f:Person)<-[:HAS_CREATOR]-(m:Post|Comment) \
       WHERE m.creationDate < 1500000000 \
       RETURN f.id AS fid, m.id AS mid, m.creationDate AS cd ORDER BY cd DESC LIMIT 20";
    q "IC3" "friends located in a given country"
      "MATCH (p:Person {id: 5})-[:KNOWS*1..2]-(f:Person)-[:IS_LOCATED_IN]->(c:City)-[:IS_PART_OF]->(n:Country) \
       WHERE n.name = 'country_2' \
       RETURN f.id AS fid, count(*) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "IC4" "new topics among friends' posts"
      "MATCH (p:Person {id: 3})-[:KNOWS]-(f:Person)<-[:HAS_CREATOR]-(po:Post)-[:HAS_TAG]->(t:Tag) \
       RETURN t.name AS tname, count(*) AS cnt ORDER BY cnt DESC, tname ASC LIMIT 10";
    q "IC5" "new forums of friends (cyclic membership/authorship)"
      "MATCH (p:Person {id: 8})-[:KNOWS*1..2]-(f:Person)<-[:HAS_MEMBER]-(fo:Forum)-[:CONTAINER_OF]->(po:Post)-[:HAS_CREATOR]->(f) \
       RETURN fo.title AS title, count(*) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "IC6" "co-occurring tags of friends' posts"
      "MATCH (p:Person {id: 4})-[:KNOWS*1..2]-(f:Person)<-[:HAS_CREATOR]-(po:Post)-[:HAS_TAG]->(t:Tag {name: 'tag_3'}), \
       (po)-[:HAS_TAG]->(ot:Tag) WHERE ot.name <> 'tag_3' \
       RETURN ot.name AS oname, count(*) AS cnt ORDER BY cnt DESC LIMIT 10";
    q "IC7" "recent likers of my messages"
      "MATCH (p:Person {id: 12})<-[:HAS_CREATOR]-(m:Post|Comment)<-[:LIKES]-(liker:Person) \
       RETURN liker.id AS lid, max(m.creationDate) AS latest ORDER BY latest DESC LIMIT 20";
    q "IC8" "recent replies to my messages"
      "MATCH (p:Person {id: 9})<-[:HAS_CREATOR]-(m:Post|Comment)<-[:REPLY_OF]-(c:Comment)-[:HAS_CREATOR]->(author:Person) \
       RETURN author.id AS aid, c.id AS cid, c.creationDate AS cd ORDER BY cd DESC LIMIT 20";
    q "IC9" "recent messages by friends-of-friends"
      "MATCH (p:Person {id: 6})-[:KNOWS*1..2]-(f:Person)<-[:HAS_CREATOR]-(m:Post|Comment) \
       WHERE m.creationDate < 1600000000 \
       RETURN f.id AS fid, count(m) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "IC10" "friend recommendation via common interests (with anti-join)"
      "MATCH (p:Person {id: 2})-[:KNOWS]-(f:Person)-[:KNOWS]-(fof:Person)-[:HAS_INTEREST]->(t:Tag)<-[:HAS_INTEREST]-(p) \
       WHERE fof.id <> 2 AND NOT (p)-[:KNOWS]-(fof) \
       RETURN fof.id AS fid, count(*) AS score ORDER BY score DESC LIMIT 10";
    q "IC11" "friends working in a given country"
      "MATCH (p:Person {id: 11})-[:KNOWS*1..2]-(f:Person)-[:WORK_AT]->(co:Company)-[:IS_LOCATED_IN]->(n:Country {name: 'country_1'}) \
       RETURN f.id AS fid, co.name AS cname ORDER BY fid ASC LIMIT 10";
    q "IC12" "expert search down a tag class"
      "MATCH (p:Person {id: 1})-[:KNOWS]-(f:Person)<-[:HAS_CREATOR]-(c:Comment)-[:REPLY_OF]->(po:Post)-[:HAS_TAG]->(t:Tag)-[:HAS_TYPE]->(tc:TagClass {name: 'tagclass_2'}) \
       RETURN f.id AS fid, count(c) AS cnt ORDER BY cnt DESC LIMIT 20";
  ]

(* ------------------------------------------------------------------ BI -- *)

let bi =
  [
    q "BI1" "message summary by kind"
      "MATCH (m:Post|Comment) WHERE m.creationDate < 1550000000 \
       RETURN label(m) AS kind, count(*) AS cnt, avg(m.length) AS avgLen ORDER BY cnt DESC";
    q "BI2" "tag usage in a country"
      "MATCH (t:Tag)<-[:HAS_TAG]-(m:Post|Comment)-[:IS_LOCATED_IN]->(n:Country {name: 'country_0'}) \
       RETURN t.name AS tname, count(m) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "BI3" "forum activity under a tag class"
      "MATCH (tc:TagClass {name: 'tagclass_1'})<-[:HAS_TYPE]-(t:Tag)<-[:HAS_TAG]-(fo:Forum)-[:HAS_MEMBER]->(p:Person) \
       RETURN fo.title AS title, count(p) AS members ORDER BY members DESC LIMIT 20";
    q "BI4" "top posting countries (cyclic locality)"
      "MATCH (p:Person)-[:IS_LOCATED_IN]->(c:City)-[:IS_PART_OF]->(n:Country)<-[:IS_LOCATED_IN]-(m:Post)-[:HAS_CREATOR]->(p) \
       RETURN n.name AS country, count(*) AS cnt ORDER BY cnt DESC LIMIT 10";
    q "BI5" "most active members of a forum"
      "MATCH (fo:Forum {id: 1})-[:HAS_MEMBER]->(p:Person)<-[:HAS_CREATOR]-(m:Post|Comment) \
       RETURN p.id AS pid, count(m) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "BI6" "authoritative users on a tag"
      "MATCH (t:Tag {name: 'tag_25'})<-[:HAS_TAG]-(m1:Post)-[:HAS_CREATOR]->(p:Person), (m1)<-[:LIKES]-(liker:Person) \
       RETURN p.id AS pid, count(liker) AS score ORDER BY score DESC LIMIT 10";
    q "BI7" "related tags through replies"
      "MATCH (t:Tag {name: 'tag_1'})<-[:HAS_TAG]-(m:Post)<-[:REPLY_OF]-(c:Comment)-[:HAS_TAG]->(rt:Tag) \
       WHERE rt.name <> 'tag_1' \
       RETURN rt.name AS rtname, count(c) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "BI8" "central persons of a tag community (cyclic)"
      "MATCH (t:Tag {name: 'tag_2'})<-[:HAS_INTEREST]-(p:Person)-[:KNOWS]-(f:Person)-[:HAS_INTEREST]->(t) \
       RETURN p.id AS pid, count(f) AS cnt ORDER BY cnt DESC LIMIT 10";
    q "BI9" "forum thread volume via bounded reply chains"
      "MATCH (fo:Forum)-[:CONTAINER_OF]->(po:Post)<-[:REPLY_OF*1..2]-(c:Comment) \
       RETURN fo.title AS title, count(c) AS cnt ORDER BY cnt DESC LIMIT 10";
    q "BI10" "experts: interest + authored posts on the same tag"
      "MATCH (p:Person {id: 20})-[:KNOWS*1..2]-(f:Person)-[:HAS_INTEREST]->(t:Tag)-[:HAS_TYPE]->(tc:TagClass {name: 'tagclass_0'}), \
       (f)<-[:HAS_CREATOR]-(m:Post)-[:HAS_TAG]->(t) \
       RETURN f.id AS fid, count(m) AS score ORDER BY score DESC LIMIT 10";
    q "BI11" "replies to strangers (anti-join)"
      "MATCH (c:Comment)-[:REPLY_OF]->(po:Post)-[:HAS_CREATOR]->(p:Person) \
       WHERE NOT (c)-[:HAS_CREATOR]->(p) \
       RETURN p.id AS pid, count(c) AS cnt ORDER BY cnt DESC LIMIT 20";
    q "BI12" "long-message authors"
      "MATCH (m:Post|Comment)-[:HAS_CREATOR]->(p:Person) WHERE m.length > 400 \
       RETURN p.id AS pid, count(m) AS cnt, avg(m.length) AS avgLen ORDER BY cnt DESC LIMIT 10";
    q "BI13" "zombie-like accounts: posters in a country ranked by received likes"
      "MATCH (n:Country {name: 'country_3'})<-[:IS_LOCATED_IN]-(m:Post)-[:HAS_CREATOR]->(z:Person) \
       MATCH (z)<-[:HAS_CREATOR]-(m2:Post)<-[:LIKES]-(liker:Person) \
       RETURN z.id AS zid, count(liker) AS likes ORDER BY likes DESC LIMIT 10";
    q "BI14" "international friendships between two countries"
      "MATCH (p1:Person)-[:IS_LOCATED_IN]->(c1:City)-[:IS_PART_OF]->(n1:Country {name: 'country_0'}), \
       (p2:Person)-[:IS_LOCATED_IN]->(c2:City)-[:IS_PART_OF]->(n2:Country {name: 'country_1'}), \
       (p1)-[:KNOWS]-(p2) \
       RETURN p1.id AS a, p2.id AS b ORDER BY a ASC LIMIT 20";
    q "BI16" "fans of a tag ranked by social degree"
      "MATCH (p:Person)-[:HAS_INTEREST]->(t:Tag {name: 'tag_5'}), (p)-[:KNOWS]-(f:Person) \
       RETURN p.id AS pid, count(f) AS deg ORDER BY deg DESC LIMIT 10";
    q "BI17" "friendship triangles anchored in a city"
      "MATCH (p1:Person)-[:KNOWS]-(p2:Person)-[:KNOWS]-(p3:Person)-[:KNOWS]-(p1), \
       (p1)-[:IS_LOCATED_IN]->(c:City {name: 'city_0'}) \
       RETURN count(*) AS cnt";
    q "BI18" "friends ranked by mutual-friend count (cyclic)"
      "MATCH (p:Person {id: 30})-[:KNOWS]-(f:Person)-[:KNOWS]-(mutual:Person)-[:KNOWS]-(p) \
       RETURN f.id AS fid, count(mutual) AS cnt ORDER BY cnt DESC LIMIT 20";
  ]

let comprehensive = ic @ bi

(* ------------------------------------------------------------------ QR -- *)

let qr =
  [
    q ~rule:"FilterIntoPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('p').out('IS_LOCATED_IN').hasLabel('City').as('c').has('name', 'city_7').count()"
      "QR1" "selective post-filter on the expansion target"
      "MATCH (p:Person)-[:IS_LOCATED_IN]->(c:City) WHERE c.name = 'city_7' RETURN count(*) AS cnt";
    q ~rule:"FilterIntoPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('p').has('browserUsed', 'Firefox').out('KNOWS').hasLabel('Person').as('f').out('IS_LOCATED_IN').hasLabel('City').as('c').has('name', 'city_2').count()"
      "QR2" "filters on both ends of a two-hop pattern"
      "MATCH (p:Person)-[:KNOWS]->(f:Person)-[:IS_LOCATED_IN]->(c:City) \
       WHERE c.name = 'city_2' AND p.browserUsed = 'Firefox' RETURN count(*) AS cnt";
    q ~rule:"FieldTrim"
      ~gremlin:
        "g.V().hasLabel('Person').as('p').out('KNOWS').hasLabel('Person').as('f').out('KNOWS').hasLabel('Person').as('g').out('LIKES').hasLabel('Post').as('m').select('m').dedup().count()"
      "QR3" "wide two-hop match joined on its last vertex, one field used"
      "MATCH (p:Person)-[:KNOWS]->(f:Person)-[:KNOWS]->(g:Person) MATCH (g)-[:LIKES]->(m:Post) \
       RETURN count(DISTINCT m) AS cnt";
    q ~rule:"FieldTrim"
      ~gremlin:
        "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b').out('KNOWS').hasLabel('Person').as('c').out('IS_LOCATED_IN').hasLabel('City').as('ci').select('ci').by('name').dedup().count()"
      "QR4" "wide two-hop match joined and reduced to a distinct narrow column"
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) MATCH (c)-[:IS_LOCATED_IN]->(ci:City) \
       RETURN DISTINCT ci.name AS n ORDER BY n ASC";
    q ~rule:"JoinToPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').out('IS_LOCATED_IN').hasLabel('City').as('c').has('name', 'city_0').select('p1').out('IS_LOCATED_IN').where(eq('c')).count()"
      "QR5" "two MATCHes sharing two vertices (friends in one selective city)"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person) \
       MATCH (p1)-[:IS_LOCATED_IN]->(c:City {name: 'city_0'})<-[:IS_LOCATED_IN]-(p2) RETURN count(*) AS cnt";
    q ~rule:"JoinToPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('p').out('HAS_INTEREST').hasLabel('Tag').as('t').has('name', 'tag_25').select('p').out('KNOWS').hasLabel('Person').as('f').out('HAS_INTEREST').where(eq('t')).count()"
      "QR6" "two MATCHes joined on person and a selective tag"
      "MATCH (p:Person)-[:HAS_INTEREST]->(t:Tag {name: 'tag_25'}) \
       MATCH (p)-[:KNOWS]->(f:Person)-[:HAS_INTEREST]->(t) RETURN count(*) AS cnt";
    q ~rule:"ComSubPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('v1').out('KNOWS').hasLabel('Person').as('v2').out('KNOWS').hasLabel('Person').as('v3').union(__.out('IS_LOCATED_IN').hasLabel('City').has('name', 'city_0'), __.out('IS_LOCATED_IN').hasLabel('City').has('name', 'city_1')).count()"
      "QR7" "union of two patterns sharing an expensive two-hop chain"
      "MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:KNOWS]->(v3:Person)-[:IS_LOCATED_IN]->(c:City {name: 'city_0'}) RETURN v1.id AS a, v3.id AS b \
       UNION MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:KNOWS]->(v3:Person)-[:IS_LOCATED_IN]->(c:City {name: 'city_1'}) RETURN v1.id AS a, v3.id AS b";
    q ~rule:"ComSubPattern"
      ~gremlin:
        "g.V().hasLabel('Person').as('v1').out('KNOWS').hasLabel('Person').as('v2').out('KNOWS').hasLabel('Person').as('v3').out('KNOWS').hasLabel('Person').as('v4').union(__.out('WORK_AT').hasLabel('Company').has('name', 'company_0'), __.out('STUDY_AT').hasLabel('University').has('name', 'university_0')).count()"
      "QR8" "union of two patterns sharing a three-hop chain"
      "MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:KNOWS]->(v3:Person)-[:KNOWS]->(v4:Person)-[:WORK_AT]->(o:Company {name: 'company_0'}) RETURN v1.id AS a, v4.id AS b \
       UNION MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:KNOWS]->(v3:Person)-[:KNOWS]->(v4:Person)-[:STUDY_AT]->(o:University {name: 'university_0'}) RETURN v1.id AS a, v4.id AS b";
  ]

(* ------------------------------------------------------------------ QT -- *)

let qt =
  [
    q "QT1" "untyped source into TagClass (tiny inferred scan set)"
      "MATCH (a)-[]->(b:TagClass) RETURN count(*) AS cnt";
    q "QT2" "two untyped hops into a named country"
      "MATCH (a)-[]->(b)-[:IS_PART_OF]->(c:Country {name: 'country_0'}) RETURN count(*) AS cnt";
    q "QT3" "untyped forum moderators"
      "MATCH (a)-[:HAS_MODERATOR]->(b) RETURN count(*) AS cnt";
    q "QT4" "untyped container/likes wedge"
      "MATCH (f)-[:CONTAINER_OF]->(m)<-[:LIKES]-(p) RETURN count(*) AS cnt";
    q "QT5" "untyped chain into the tag-class hierarchy"
      "MATCH (p)-[:HAS_TYPE]->(x)-[:IS_SUBCLASS_OF]->(tc) RETURN count(*) AS cnt";
  ]

(* ------------------------------------------------------------------ QC -- *)

let qc =
  [
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').select('p1').out('LIKES').hasLabel('Post').as('m').out('HAS_CREATOR').where(eq('p2')).count()"
      "QC1a" "triangle person-knows-person / likes / creator (basic types)"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:LIKES]->(m:Post), (m)-[:HAS_CREATOR]->(p2) \
       RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').select('p1').out('LIKES').hasLabel('Post', 'Comment').as('m').out('HAS_CREATOR').where(eq('p2')).count()"
      "QC1b" "triangle with a UnionType message"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:LIKES]->(m:Post|Comment), (m)-[:HAS_CREATOR]->(p2) \
       RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').select('p1').out('KNOWS').hasLabel('Person').as('p3').out('LIKES').hasLabel('Post').as('m').select('p2').out('LIKES').where(eq('m')).count()"
      "QC2a" "square: two friends liking the same post (basic types)"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:KNOWS]->(p3:Person), \
       (p2)-[:LIKES]->(m:Post), (p3)-[:LIKES]->(m) RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').select('p1').out('KNOWS').hasLabel('Person').as('p3').out('LIKES').hasLabel('Post', 'Comment').as('m').select('p2').out('LIKES').where(eq('m')).count()"
      "QC2b" "square with a UnionType message"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:KNOWS]->(p3:Person), \
       (p2)-[:LIKES]->(m:Post|Comment), (p3)-[:LIKES]->(m) RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').out('KNOWS').hasLabel('Person').as('p3').out('LIKES').hasLabel('Post').as('m').out('HAS_TAG').hasLabel('Tag').as('t').count()"
      "QC3a" "5-path person-person-person-post-tag (basic types)"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person)-[:KNOWS]->(p3:Person)-[:LIKES]->(m:Post)-[:HAS_TAG]->(t:Tag) \
       RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').out('KNOWS').hasLabel('Person').as('p3').out('LIKES').hasLabel('Post', 'Comment').as('m').out('HAS_TAG').hasLabel('Tag').as('t').count()"
      "QC3b" "5-path with a UnionType message"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person)-[:KNOWS]->(p3:Person)-[:LIKES]->(m:Post|Comment)-[:HAS_TAG]->(t:Tag) \
       RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').out('KNOWS').hasLabel('Person').as('p3').select('p1').out('KNOWS').where(eq('p3')).select('p1').out('IS_LOCATED_IN').hasLabel('City').as('c').select('p3').in('HAS_MEMBER').hasLabel('Forum').as('f').out('HAS_TAG').hasLabel('Tag').as('t').in('HAS_TAG').hasLabel('Post').as('m').out('HAS_CREATOR').where(eq('p1')).count()"
      "QC4a" "7-vertex / 8-edge pattern (basic types)"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person)-[:KNOWS]->(p3:Person), (p1)-[:KNOWS]->(p3), \
       (p1)-[:IS_LOCATED_IN]->(c:City), (f:Forum)-[:HAS_MEMBER]->(p3), (f)-[:HAS_TAG]->(t:Tag), \
       (m:Post)-[:HAS_CREATOR]->(p1), (m)-[:HAS_TAG]->(t) RETURN count(*) AS cnt";
    q
      ~gremlin:
        "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').out('KNOWS').hasLabel('Person').as('p3').select('p1').out('KNOWS').where(eq('p3')).select('p1').out('IS_LOCATED_IN').hasLabel('City').as('c').select('p3').in('HAS_MEMBER').hasLabel('Forum').as('f').out('HAS_TAG').hasLabel('Tag').as('t').in('HAS_TAG').hasLabel('Post', 'Comment').as('m').out('HAS_CREATOR').where(eq('p1')).count()"
      "QC4b" "7-vertex / 8-edge pattern with a UnionType message"
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person)-[:KNOWS]->(p3:Person), (p1)-[:KNOWS]->(p3), \
       (p1)-[:IS_LOCATED_IN]->(c:City), (f:Forum)-[:HAS_MEMBER]->(p3), (f)-[:HAS_TAG]->(t:Tag), \
       (m:Post|Comment)-[:HAS_CREATOR]->(p1), (m)-[:HAS_TAG]->(t) RETURN count(*) AS cnt";
  ]

(* ------------------------------------------------------------------ VS -- *)

let vs =
  [
    q "VS1" "length/date band over the message union"
      "MATCH (m:Post|Comment) WHERE m.length > 420 AND m.creationDate < 1450000000 \
       RETURN m.id AS mid, m.length AS len";
    q "VS2" "string-equality and birthday filter, whole-row projection"
      "MATCH (p:Person) WHERE p.browserUsed = 'Firefox' AND p.birthday >= 1980 \
       RETURN p AS person";
    q "VS3" "IN-list over comment lengths"
      "MATCH (c:Comment) WHERE c.length IN [5, 50, 100, 150, 200] RETURN c AS c";
    q "VS4" "null-test conjunction over persons"
      "MATCH (p:Person) WHERE p.firstName IS NOT NULL AND p.birthday < 2000 \
       AND p.gender = 'male' RETURN p AS p";
    q "VS5" "wide date filter, projection-dominated"
      "MATCH (m:Post) WHERE m.creationDate >= 1300000000 RETURN m AS msg";
    q "VS6" "unfiltered scan and projection"
      "MATCH (t:Tag) RETURN t AS t";
  ]

let find queries name = List.find (fun q -> q.name = name) queries

let pattern_of_cypher schema cypher =
  let ast = Gopt_lang.Cypher_parser.parse cypher in
  let plan = Gopt_lang.Lowering.cypher ~edge_distinct:false schema ast in
  let found = ref None in
  Gopt_gir.Logical.fold
    (fun () n ->
      match n with
      | Gopt_gir.Logical.Match p when !found = None -> found := Some p
      | _ -> ())
    () plan;
  match !found with
  | Some p -> p
  | None -> invalid_arg "pattern_of_cypher: no MATCH in query"
