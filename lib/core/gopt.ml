module G = Gopt_graph.Property_graph
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Planner = Gopt_opt.Planner
module Physical = Gopt_opt.Physical
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Logical = Gopt_gir.Logical

module Session = struct
  type t = {
    graph : G.t;
    glogue : Glogue.t;
    gq : Gq.t;
    gq_low : Gq.t;
  }

  let create ?(glogue_k = 3) ?(estimator_mode = Gq.High_order) ?selectivity
      ?(histograms = true) graph =
    let glogue = Glogue.build ~max_k:glogue_k graph in
    let hist = if histograms then Some (Gopt_glogue.Histograms.build graph) else None in
    {
      graph;
      glogue;
      gq = Gq.create ?selectivity ~mode:estimator_mode ?histograms:hist glogue;
      gq_low = Gq.create ?selectivity ~mode:Gq.Low_order glogue;
    }

  let graph t = t.graph
  let schema t = G.schema t.graph
  let glogue t = t.glogue
  let estimator t = t.gq
  let low_order_estimator t = t.gq_low
end

type outcome = {
  result : Batch.t;
  exec_stats : Engine.stats;
  report : Planner.report;
  physical : Physical.t;
}

let profile_for (config : Planner.config) =
  if config.Planner.spec.Gopt_opt.Physical_spec.comm_factor > 0.0 then
    Engine.graphscope_profile
  else Engine.neo4j_profile

let run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers
    (s : Session.t) logical =
  let config = match config with Some c -> c | None -> Planner.default_config () in
  let profile = match profile with Some p -> p | None -> profile_for config in
  let physical, report = Planner.plan config s.Session.gq logical in
  let result, exec_stats =
    Engine.run ~profile ?budget ?chunk_size ?morsel_size ?workers s.Session.graph
      physical
  in
  { result; exec_stats; report; physical }

let cypher_to_gir ?params (s : Session.t) src =
  let ast = Gopt_lang.Cypher_parser.parse ?params src in
  Gopt_lang.Lowering.cypher (Session.schema s) ast

let gremlin_to_gir (s : Session.t) src =
  Gopt_lang.Gremlin_parser.parse (Session.schema s) src

let run_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s
    src =
  run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s
    (cypher_to_gir ?params s src)

let run_gremlin ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s src =
  run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s
    (gremlin_to_gir s src)

let plan_cypher ?params ?config s src =
  let config = match config with Some c -> c | None -> Planner.default_config () in
  Planner.plan config s.Session.gq (cypher_to_gir ?params s src)

(* --- static checking (the --lint front door) ------------------------------- *)

module Diagnostic = Gopt_check.Diagnostic
module Plan_check = Gopt_check.Plan_check

let check_gir (s : Session.t) gir =
  Plan_check.check ~schema:(Session.schema s) gir

let check_of_thunk to_gir s =
  match to_gir () with
  | gir -> check_gir s gir
  | exception Gopt_lang.Cypher_parser.Parse_error m ->
    [ Diagnostic.error ~path:"parse" m ]
  | exception Gopt_lang.Gremlin_parser.Parse_error m ->
    [ Diagnostic.error ~path:"parse" m ]
  | exception Gopt_lang.Lexer.Lex_error (m, pos) ->
    [ Diagnostic.errorf ~path:"parse" "%s (at offset %d)" m pos ]
  | exception Gopt_lang.Lowering.Lowering_error m ->
    [ Diagnostic.error ~path:"lower" m ]

let check_cypher ?params s src = check_of_thunk (fun () -> cypher_to_gir ?params s src) s

let check_gremlin s src = check_of_thunk (fun () -> gremlin_to_gir s src) s

let render_diagnostics = Diagnostic.render

let render_trace (o : outcome) =
  match o.exec_stats.Engine.op_trace with
  | Some tr -> Gopt_exec.Op_trace.to_string tr
  | None -> "(no per-operator trace recorded)"

let explain_analyze_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size
    ?workers s src =
  let o =
    run_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s src
  in
  let txt =
    Format.asprintf "@[<v>== physical ==@,%a@,== execution ==@,%s@,%d rows, %d edges touched, peak %d live rows@]"
      (Physical.pp ~schema:(Session.schema s))
      o.physical (render_trace o)
      (Batch.n_rows o.result)
      o.exec_stats.Engine.edges_touched o.exec_stats.Engine.peak_rows
  in
  let txt =
    if o.exec_stats.Engine.workers_used > 1 || o.exec_stats.Engine.exchange_rows > 0
    then
      txt
      ^ Printf.sprintf "\n%d workers, %d exchange rows (%d cells)"
          o.exec_stats.Engine.workers_used o.exec_stats.Engine.exchange_rows
          o.exec_stats.Engine.exchange_cells
    else txt
  in
  (o, txt)

let explain_cypher ?params ?config s src =
  let physical, report = plan_cypher ?params ?config s src in
  let schema = Session.schema s in
  Format.asprintf
    "@[<v>== logical (input) ==@,%a@,== logical (optimized) ==@,%a@,== rules applied ==@,%s@,== physical ==@,%a@]"
    (Gopt_gir.Plan_printer.pp ~schema)
    report.Planner.logical_input
    (Gopt_gir.Plan_printer.pp ~schema)
    report.Planner.logical_optimized
    (match report.Planner.rules_applied with
    | [] -> "(none)"
    | rules -> String.concat ", " rules)
    (Physical.pp ~schema) physical
