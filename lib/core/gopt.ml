module G = Gopt_graph.Property_graph
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Planner = Gopt_opt.Planner
module Physical = Gopt_opt.Physical
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Logical = Gopt_gir.Logical
module Plan_cache = Gopt_cache.Plan_cache
module Fingerprint = Gopt_cache.Fingerprint

module Session = struct
  type t = {
    graph : G.t;
    glogue : Glogue.t;
    gq : Gq.t;
    gq_low : Gq.t;
    mutable epoch : int;
        (* Stats epoch: part of every plan fingerprint, so bumping it makes
           all cached plans unreachable even before invalidate_all drops
           them. *)
    cache : (Physical.t * Planner.report) Plan_cache.t;
  }

  let create ?(glogue_k = 3) ?(estimator_mode = Gq.High_order) ?selectivity
      ?(histograms = true) ?(plan_cache_capacity = 128) graph =
    let glogue = Glogue.build ~max_k:glogue_k graph in
    let hist = if histograms then Some (Gopt_glogue.Histograms.build graph) else None in
    {
      graph;
      glogue;
      gq = Gq.create ?selectivity ~mode:estimator_mode ?histograms:hist glogue;
      gq_low = Gq.create ?selectivity ~mode:Gq.Low_order glogue;
      epoch = 0;
      cache = Plan_cache.create ~capacity:plan_cache_capacity ();
    }

  let graph t = t.graph
  let schema t = G.schema t.graph
  let glogue t = t.glogue
  let estimator t = t.gq
  let low_order_estimator t = t.gq_low
  let stats_epoch t = t.epoch

  let bump_stats_epoch t =
    t.epoch <- t.epoch + 1;
    ignore (Plan_cache.invalidate_all t.cache)

  let plan_cache_stats t = Plan_cache.stats t.cache
end

type outcome = {
  result : Batch.t;
  exec_stats : Engine.stats;
  report : Planner.report;
  physical : Physical.t;
}

let profile_for (config : Planner.config) =
  if config.Planner.spec.Gopt_opt.Physical_spec.comm_factor > 0.0 then
    Engine.graphscope_profile
  else Engine.neo4j_profile

let run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize
    (s : Session.t) logical =
  let config = match config with Some c -> c | None -> Planner.default_config () in
  let profile = match profile with Some p -> p | None -> profile_for config in
  let physical, report = Planner.plan config s.Session.gq logical in
  let result, exec_stats =
    Engine.run ~profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize
      s.Session.graph physical
  in
  { result; exec_stats; report; physical }

let cypher_to_gir ?params (s : Session.t) src =
  let ast = Gopt_lang.Cypher_parser.parse ?params src in
  Gopt_lang.Lowering.cypher (Session.schema s) ast

let gremlin_to_gir (s : Session.t) src =
  Gopt_lang.Gremlin_parser.parse (Session.schema s) src

(* --- session plan cache ---------------------------------------------------- *)

(* Everything in Planner.config that can change the optimizer's output,
   signed as a string. Planner.config itself is never marshaled: the backend
   spec carries cost-model closures. Cbo.options and Schema.t are pure data. *)
let config_signature (c : Planner.config) =
  let flag b = if b then "1" else "0" in
  String.concat "|"
    [
      c.Planner.spec.Gopt_opt.Physical_spec.name;
      flag c.Planner.enable_rbo;
      String.concat "," (List.map (fun r -> r.Gopt_opt.Rule.name) c.Planner.rules);
      flag c.Planner.enable_field_trim;
      flag c.Planner.enable_type_inference;
      (match c.Planner.inference_schema with
      | None -> "-"
      | Some schema -> Digest.to_hex (Digest.string (Marshal.to_string schema [])));
      flag c.Planner.enable_cbo;
      Digest.to_hex (Digest.string (Marshal.to_string c.Planner.cbo_options []));
      flag c.Planner.check_plans;
    ]

let cache_note ~hit (s : Session.t) =
  let st = Plan_cache.stats s.Session.cache in
  {
    Planner.cache_hit = hit;
    cache_hits = st.Plan_cache.hits;
    cache_misses = st.Plan_cache.misses;
    cache_evictions = st.Plan_cache.evictions;
    cache_invalidations = st.Plan_cache.invalidations;
  }

(* Plan [ast] through the session cache: the fingerprint covers the AST, the
   planner configuration and the current stats epoch, so a hit is guaranteed
   to be the plan this configuration would produce right now. The cached
   report keeps the planning-time statistics; only the cache note is
   refreshed per serve. *)
let plan_ast_cached ?config (s : Session.t) ast =
  let config = match config with Some c -> c | None -> Planner.default_config () in
  let key =
    Fingerprint.digest ~config:(config_signature config) ~epoch:s.Session.epoch ast
  in
  match Plan_cache.find s.Session.cache key with
  | Some (physical, report) ->
    ( config,
      physical,
      { report with Planner.plan_cache = Some (cache_note ~hit:true s) } )
  | None ->
    let logical = Gopt_lang.Lowering.cypher (Session.schema s) ast in
    let physical, report = Planner.plan config s.Session.gq logical in
    Plan_cache.add s.Session.cache key (physical, report);
    ( config,
      physical,
      { report with Planner.plan_cache = Some (cache_note ~hit:false s) } )

let run_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size ?workers
    ?vectorize ?(use_cache = true) s src =
  if not use_cache then
    run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize s
      (cypher_to_gir ?params s src)
  else begin
    let ast = Gopt_lang.Cypher_parser.parse ?params ~defer_params:true src in
    let config, physical, report = plan_ast_cached ?config s ast in
    let profile = match profile with Some p -> p | None -> profile_for config in
    let result, exec_stats =
      (* always run the binding pass: a deferred [$x] with no binding must
         fail with the descriptive undefined-parameter diagnostic, matching
         the parse-time substitution of the uncached path *)
      Engine.run ~profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize
        ~params:(Option.value params ~default:[])
        s.Session.graph physical
    in
    { result; exec_stats; report; physical }
  end

let run_gremlin ?config ?profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize
    s src =
  run_logical ?config ?profile ?budget ?chunk_size ?morsel_size ?workers ?vectorize s
    (gremlin_to_gir s src)

let plan_cypher ?params ?config ?(use_cache = false) s src =
  if not use_cache then
    let config = match config with Some c -> c | None -> Planner.default_config () in
    Planner.plan config s.Session.gq (cypher_to_gir ?params s src)
  else
    let ast = Gopt_lang.Cypher_parser.parse ?params ~defer_params:true src in
    let _, physical, report = plan_ast_cached ?config s ast in
    (physical, report)

(* --- prepared statements --------------------------------------------------- *)

module Prepared = struct
  type t = {
    session : Session.t;
    config : Planner.config;
    config_sig : string;
    ast : Gopt_lang.Cypher_ast.query;
    base_params : (string * Gopt_graph.Value.t list) list;
    param_names : string list;
    source : string;
  }

  (* Parameter placeholders surviving in the statement's expressions, in
     first-occurrence order (auto-extracted "@pN" slots plus user "$x"). *)
  let ast_params (q : Gopt_lang.Cypher_ast.query) =
    let open Gopt_lang.Cypher_ast in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let expr e =
      List.iter
        (fun name ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            acc := name :: !acc
          end)
        (Gopt_pattern.Expr.params e)
    in
    let projection p =
      List.iter
        (fun it ->
          match it.item with
          | Scalar e -> expr e
          | Agg (_, _, arg) -> Option.iter expr arg)
        p.items;
      List.iter (fun (e, _) -> expr e) p.order_by;
      Option.iter expr p.where
    in
    let clause = function
      | C_match { where; _ } ->
        List.iter (function Wc_expr e -> expr e | Wc_pattern _ -> ()) where
      | C_unwind (e, _) -> expr e
      | C_with p | C_return p -> projection p
    in
    List.iter (List.iter clause) q.parts;
    List.rev !acc

  let params t = t.param_names
  let source t = t.source

  let execute ?params ?profile ?budget ?chunk_size ?morsel_size ?workers t =
    let s = t.session in
    let key =
      Fingerprint.digest ~config:t.config_sig ~epoch:s.Session.epoch t.ast
    in
    let physical, report =
      match Plan_cache.find s.Session.cache key with
      | Some (physical, report) ->
        (physical, { report with Planner.plan_cache = Some (cache_note ~hit:true s) })
      | None ->
        let logical = Gopt_lang.Lowering.cypher (Session.schema s) t.ast in
        let physical, report = Planner.plan t.config s.Session.gq logical in
        Plan_cache.add s.Session.cache key (physical, report);
        (physical, { report with Planner.plan_cache = Some (cache_note ~hit:false s) })
    in
    let supplied = Option.value params ~default:[] in
    let bindings =
      supplied
      @ List.filter
          (fun (name, _) -> not (List.mem_assoc name supplied))
          t.base_params
    in
    let profile = match profile with Some p -> p | None -> profile_for t.config in
    let result, exec_stats =
      Engine.run ~profile ?budget ?chunk_size ?morsel_size ?workers ~params:bindings
        s.Session.graph physical
    in
    { result; exec_stats; report; physical }
end

let prepare_cypher ?params ?config ?(auto_params = false) (s : Session.t) src =
  let config = match config with Some c -> c | None -> Planner.default_config () in
  let ast = Gopt_lang.Cypher_parser.parse ?params ~defer_params:true src in
  let ast, base_params =
    if auto_params then Fingerprint.auto_parameterize ast else (ast, [])
  in
  {
    Prepared.session = s;
    config;
    config_sig = config_signature config;
    ast;
    base_params;
    param_names = Prepared.ast_params ast;
    source = src;
  }

(* --- static checking (the --lint front door) ------------------------------- *)

module Diagnostic = Gopt_check.Diagnostic
module Plan_check = Gopt_check.Plan_check

let check_gir (s : Session.t) gir =
  Plan_check.check ~schema:(Session.schema s) gir

let check_of_thunk to_gir s =
  match to_gir () with
  | gir -> check_gir s gir
  | exception Gopt_lang.Cypher_parser.Parse_error m ->
    [ Diagnostic.error ~path:"parse" m ]
  | exception Gopt_lang.Gremlin_parser.Parse_error m ->
    [ Diagnostic.error ~path:"parse" m ]
  | exception Gopt_lang.Lexer.Lex_error (m, pos) ->
    [ Diagnostic.errorf ~path:"parse" "%s (at offset %d)" m pos ]
  | exception Gopt_lang.Lowering.Lowering_error m ->
    [ Diagnostic.error ~path:"lower" m ]

let check_cypher ?params s src = check_of_thunk (fun () -> cypher_to_gir ?params s src) s

let check_gremlin s src = check_of_thunk (fun () -> gremlin_to_gir s src) s

let render_diagnostics = Diagnostic.render

let render_trace (o : outcome) =
  match o.exec_stats.Engine.op_trace with
  | Some tr -> Gopt_exec.Op_trace.to_string tr
  | None -> "(no per-operator trace recorded)"

let explain_analyze_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size
    ?workers s src =
  let o =
    run_cypher ?params ?config ?profile ?budget ?chunk_size ?morsel_size ?workers s src
  in
  let txt =
    Format.asprintf "@[<v>== physical ==@,%a@,== execution ==@,%s@,%d rows, %d edges touched, peak %d live rows@]"
      (Physical.pp ~schema:(Session.schema s))
      o.physical (render_trace o)
      (Batch.n_rows o.result)
      o.exec_stats.Engine.edges_touched o.exec_stats.Engine.peak_rows
  in
  let txt =
    if o.exec_stats.Engine.workers_used > 1 || o.exec_stats.Engine.exchange_rows > 0
    then
      txt
      ^ Printf.sprintf "\n%d workers, %d exchange rows (%d cells)"
          o.exec_stats.Engine.workers_used o.exec_stats.Engine.exchange_rows
          o.exec_stats.Engine.exchange_cells
    else txt
  in
  (o, txt)

let explain_cypher ?params ?config s src =
  let physical, report = plan_cypher ?params ?config s src in
  let schema = Session.schema s in
  Format.asprintf
    "@[<v>== logical (input) ==@,%a@,== logical (optimized) ==@,%a@,== rules applied ==@,%s@,== physical ==@,%a@]"
    (Gopt_gir.Plan_printer.pp ~schema)
    report.Planner.logical_input
    (Gopt_gir.Plan_printer.pp ~schema)
    report.Planner.logical_optimized
    (match report.Planner.rules_applied with
    | [] -> "(none)"
    | rules -> String.concat ", " rules)
    (Physical.pp ~schema) physical
