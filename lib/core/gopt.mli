(** GOpt — a modular, graph-native query optimization framework for complex
    graph patterns (CGPs), reproducing Lyu et al., SIGMOD 2025.

    This is the user-facing façade: create a {!Session} over a property
    graph (which builds the GLogue statistics), then run Cypher or Gremlin
    queries through the full pipeline — parse, lower to the unified GIR,
    RBO, type inference, CBO against a backend {!Gopt_opt.Physical_spec},
    and execution on the in-repo engine.

    The underlying layers are exposed as libraries of their own
    ([gopt_graph], [gopt_pattern], [gopt_gir], [gopt_lang], [gopt_glogue],
    [gopt_typeinf], [gopt_opt], [gopt_exec]) for programmatic use; see
    [examples/] for end-to-end walkthroughs. *)

module Session : sig
  type t

  val create :
    ?glogue_k:int ->
    ?estimator_mode:Gopt_glogue.Glogue_query.mode ->
    ?selectivity:float ->
    ?histograms:bool ->
    Gopt_graph.Property_graph.t ->
    t
  (** Build a session: precomputes GLogue motif statistics up to [glogue_k]
      (default 3) vertices, property histograms for selectivity estimation
      ([histograms], default true), and sets up the cardinality
      estimator. *)

  val graph : t -> Gopt_graph.Property_graph.t
  val schema : t -> Gopt_graph.Schema.t
  val glogue : t -> Gopt_glogue.Glogue.t
  val estimator : t -> Gopt_glogue.Glogue_query.t

  val low_order_estimator : t -> Gopt_glogue.Glogue_query.t
  (** A low-order-statistics view over the same store (baseline planners). *)
end

type outcome = {
  result : Gopt_exec.Batch.t;
  exec_stats : Gopt_exec.Engine.stats;
  report : Gopt_opt.Planner.report;
  physical : Gopt_opt.Physical.t;
}

val run_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  Session.t ->
  string ->
  outcome
(** Parse, optimize and execute a Cypher query. [config] defaults to the
    full GOpt pipeline on the GraphScope spec; [profile] defaults to the
    matching engine profile; [budget] (CPU seconds) bounds execution;
    [chunk_size] sets the engine's pipelined batch granularity. [workers]
    executes on the morsel-driven parallel engine with that many OCaml
    domains ([morsel_size] rows per work unit); see
    {!Gopt_exec.Engine.run}. *)

val run_gremlin :
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  Session.t ->
  string ->
  outcome

val plan_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  Session.t ->
  string ->
  Gopt_opt.Physical.t * Gopt_opt.Planner.report
(** Optimize without executing. *)

val explain_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  Session.t ->
  string ->
  string
(** Human-readable report: input logical plan, optimized logical plan,
    applied rules, and the physical plan. *)

val render_trace : outcome -> string
(** EXPLAIN ANALYZE-style rendering of the outcome's per-operator trace
    (rows in/out and self time per operator). *)

val explain_analyze_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  Session.t ->
  string ->
  outcome * string
(** Optimize {e and} execute, returning the outcome together with a report
    combining the physical plan with the measured per-operator trace. On
    parallel runs the trace contains exchange nodes with per-worker
    rollups, and a summary line reports worker and exchange-row counts. *)

val cypher_to_gir :
  ?params:(string * Gopt_graph.Value.t list) list ->
  Session.t ->
  string ->
  Gopt_gir.Logical.t
(** Frontend only: parse + lower (useful for cross-language tests). *)

val gremlin_to_gir : Session.t -> string -> Gopt_gir.Logical.t

val check_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  Session.t ->
  string ->
  Gopt_check.Diagnostic.t list
(** Statically check a query without planning or executing it: parse and
    lexer failures surface as a single error at path ["parse"], unknown
    labels/properties raised during lowering at path ["lower"], and the
    lowered plan runs through {!Gopt_check.Plan_check} against the session
    schema — undefined variables, type-mismatched expressions, malformed
    operators, and unused-binding warnings, each anchored at its operator
    path. An empty list means the query is clean. *)

val check_gremlin : Session.t -> string -> Gopt_check.Diagnostic.t list

val check_gir : Session.t -> Gopt_gir.Logical.t -> Gopt_check.Diagnostic.t list
(** {!Gopt_check.Plan_check.check} against the session schema. *)

val render_diagnostics : Gopt_check.Diagnostic.t list -> string
(** One ["severity: path: message"] line per diagnostic;
    ["(no diagnostics)"] when the list is empty. *)
