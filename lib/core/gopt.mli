(** GOpt — a modular, graph-native query optimization framework for complex
    graph patterns (CGPs), reproducing Lyu et al., SIGMOD 2025.

    This is the user-facing façade: create a {!Session} over a property
    graph (which builds the GLogue statistics), then run Cypher or Gremlin
    queries through the full pipeline — parse, lower to the unified GIR,
    RBO, type inference, CBO against a backend {!Gopt_opt.Physical_spec},
    and execution on the in-repo engine.

    The underlying layers are exposed as libraries of their own
    ([gopt_graph], [gopt_pattern], [gopt_gir], [gopt_lang], [gopt_glogue],
    [gopt_typeinf], [gopt_opt], [gopt_exec]) for programmatic use; see
    [examples/] for end-to-end walkthroughs. *)

module Session : sig
  type t

  val create :
    ?glogue_k:int ->
    ?estimator_mode:Gopt_glogue.Glogue_query.mode ->
    ?selectivity:float ->
    ?histograms:bool ->
    ?plan_cache_capacity:int ->
    Gopt_graph.Property_graph.t ->
    t
  (** Build a session: precomputes GLogue motif statistics up to [glogue_k]
      (default 3) vertices, property histograms for selectivity estimation
      ([histograms], default true), and sets up the cardinality
      estimator. [plan_cache_capacity] bounds the session's LRU plan cache
      (default 128; [0] disables caching entirely). *)

  val graph : t -> Gopt_graph.Property_graph.t
  val schema : t -> Gopt_graph.Schema.t
  val glogue : t -> Gopt_glogue.Glogue.t
  val estimator : t -> Gopt_glogue.Glogue_query.t

  val low_order_estimator : t -> Gopt_glogue.Glogue_query.t
  (** A low-order-statistics view over the same store (baseline planners). *)

  val stats_epoch : t -> int
  (** The session's statistics epoch. Every plan fingerprint includes it, so
      cached plans from older epochs can never be served. *)

  val bump_stats_epoch : t -> unit
  (** Declare the graph schema or GLogue statistics changed: advances the
      epoch and drops every cached plan (counted as invalidations, not
      evictions). Subsequent executions re-optimize. *)

  val plan_cache_stats : t -> Gopt_cache.Plan_cache.stats
  (** Hit/miss/eviction/invalidation counters of the session plan cache. *)
end

type outcome = {
  result : Gopt_exec.Batch.t;
  exec_stats : Gopt_exec.Engine.stats;
  report : Gopt_opt.Planner.report;
  physical : Gopt_opt.Physical.t;
}

val run_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  ?vectorize:bool ->
  ?use_cache:bool ->
  Session.t ->
  string ->
  outcome
(** Parse, optimize and execute a Cypher query. [config] defaults to the
    full GOpt pipeline on the GraphScope spec; [profile] defaults to the
    matching engine profile; [budget] (CPU seconds) bounds execution;
    [chunk_size] sets the engine's pipelined batch granularity. [workers]
    executes on the morsel-driven parallel engine with that many OCaml
    domains ([morsel_size] rows per work unit); [vectorize] (default true)
    controls the engine's columnar expression kernels; see
    {!Gopt_exec.Engine.run}.

    With [use_cache] (the default), the optimized plan is consulted from and
    stored into the session plan cache keyed by {!Gopt_cache.Fingerprint}:
    repeated templates skip RBO/inference/CBO entirely, and scalar [$name]
    parameters stay symbolic in the cached plan (bound per execution), so
    runs differing only in scalar parameter values share one plan.
    [report.plan_cache] records whether this run hit. [~use_cache:false]
    restores stateless parse-substitute-optimize-execute (the cold path
    differential tests compare against). *)

val run_gremlin :
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  ?vectorize:bool ->
  Session.t ->
  string ->
  outcome

val plan_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?use_cache:bool ->
  Session.t ->
  string ->
  Gopt_opt.Physical.t * Gopt_opt.Planner.report
(** Optimize without executing. [use_cache] defaults to [false] here —
    planning APIs are used to {e observe} the optimizer; pass [true] to go
    through the session cache like {!run_cypher} does. *)

(** Prepared statements: parse and fingerprint once, optimize on first
    execution, then re-execute with fresh parameter bindings at plan-lookup
    cost. The prepared handle stores the deferred AST, not a plan — every
    {!Prepared.execute} re-keys against the session's {e current} stats
    epoch, so a {!Session.bump_stats_epoch} transparently forces one
    re-optimization and never serves a stale plan. *)
module Prepared : sig
  type t

  val params : t -> string list
  (** Placeholder names the statement expects at execution, in
      first-occurrence order — user-written [$x] plus auto-extracted
      [@p0], [@p1], … slots (see [prepare_cypher ~auto_params]). *)

  val source : t -> string
  (** The original query text. *)

  val execute :
    ?params:(string * Gopt_graph.Value.t list) list ->
    ?profile:Gopt_exec.Engine.profile ->
    ?budget:float ->
    ?chunk_size:int ->
    ?morsel_size:int ->
    ?workers:int ->
    t ->
    outcome
  (** Execute with the given bindings (each scalar placeholder binds exactly
      one value; supplied bindings override prepare-time ones). Raises
      [Invalid_argument] naming the missing parameter and the supplied set
      when a placeholder is left unbound. *)
end

val prepare_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?auto_params:bool ->
  Session.t ->
  string ->
  Prepared.t
(** Parse [src] with deferred scalar parameters (see
    {!Gopt_lang.Cypher_parser.parse}). [params] supplies [IN]-list and
    property-map parameters, which must bind at prepare time. With
    [auto_params], scalar literals are additionally lifted into placeholder
    slots ({!Gopt_cache.Fingerprint.auto_parameterize}), so statements
    differing only in literals share one cache entry; the extracted values
    become default bindings. *)

val explain_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  Session.t ->
  string ->
  string
(** Human-readable report: input logical plan, optimized logical plan,
    applied rules, and the physical plan. *)

val render_trace : outcome -> string
(** EXPLAIN ANALYZE-style rendering of the outcome's per-operator trace:
    rows in/out and self time per operator, plus — on operators that ran a
    vectorized kernel — the kernel's selected-row count and kernel time. *)

val explain_analyze_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  ?config:Gopt_opt.Planner.config ->
  ?profile:Gopt_exec.Engine.profile ->
  ?budget:float ->
  ?chunk_size:int ->
  ?morsel_size:int ->
  ?workers:int ->
  Session.t ->
  string ->
  outcome * string
(** Optimize {e and} execute, returning the outcome together with a report
    combining the physical plan with the measured per-operator trace. On
    parallel runs the trace contains exchange nodes with per-worker
    rollups, and a summary line reports worker and exchange-row counts. *)

val cypher_to_gir :
  ?params:(string * Gopt_graph.Value.t list) list ->
  Session.t ->
  string ->
  Gopt_gir.Logical.t
(** Frontend only: parse + lower (useful for cross-language tests). *)

val gremlin_to_gir : Session.t -> string -> Gopt_gir.Logical.t

val check_cypher :
  ?params:(string * Gopt_graph.Value.t list) list ->
  Session.t ->
  string ->
  Gopt_check.Diagnostic.t list
(** Statically check a query without planning or executing it: parse and
    lexer failures surface as a single error at path ["parse"], unknown
    labels/properties raised during lowering at path ["lower"], and the
    lowered plan runs through {!Gopt_check.Plan_check} against the session
    schema — undefined variables, type-mismatched expressions, malformed
    operators, and unused-binding warnings, each anchored at its operator
    path. An empty list means the query is clean. *)

val check_gremlin : Session.t -> string -> Gopt_check.Diagnostic.t list

val check_gir : Session.t -> Gopt_gir.Logical.t -> Gopt_check.Diagnostic.t list
(** {!Gopt_check.Plan_check.check} against the session schema. *)

val render_diagnostics : Gopt_check.Diagnostic.t list -> string
(** One ["severity: path: message"] line per diagnostic;
    ["(no diagnostics)"] when the list is empty. *)
