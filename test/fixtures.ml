(* Shared tiny fixtures for unit tests: a miniature social-network schema and
   a hand-built graph with counts small enough to verify by hand. *)

module Schema = Gopt_graph.Schema
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value

let schema =
  Schema.create
    ~vtypes:
      [
        ("Person", [ ("name", Schema.P_string); ("age", Schema.P_int) ]);
        ("City", [ ("name", Schema.P_string) ]);
        ("Product", [ ("name", Schema.P_string) ]);
      ]
    ~etypes:
      [
        ("KNOWS", [ ("since", Schema.P_int) ]);
        ("LIVES_IN", []);
        ("PRODUCED_IN", []);
        ("PURCHASED", []);
      ]
    ~triples:
      [
        ("Person", "KNOWS", "Person");
        ("Person", "LIVES_IN", "City");
        ("Product", "PRODUCED_IN", "City");
        ("Person", "PURCHASED", "Product");
      ]

let person = Schema.vtype_id schema "Person"
let city = Schema.vtype_id schema "City"
let product = Schema.vtype_id schema "Product"
let knows = Schema.etype_id schema "KNOWS"
let lives_in = Schema.etype_id schema "LIVES_IN"
let produced_in = Schema.etype_id schema "PRODUCED_IN"
let purchased = Schema.etype_id schema "PURCHASED"

(* Graph:
     persons p0..p3, cities c0..c1, products g0..g1
     KNOWS: p0->p1, p0->p2, p1->p2, p2->p3, p3->p0
     LIVES_IN: p0->c0, p1->c0, p2->c1, p3->c1
     PRODUCED_IN: g0->c0, g1->c1
     PURCHASED: p0->g0, p1->g0, p2->g1 *)
let graph =
  let b = G.Builder.create schema in
  let p = Array.init 4 (fun i ->
      G.Builder.add_vertex b ~vtype:person
        [ ("name", Value.Str (Printf.sprintf "p%d" i)); ("age", Value.Int (20 + i)) ])
  in
  let c = Array.init 2 (fun i ->
      G.Builder.add_vertex b ~vtype:city [ ("name", Value.Str (Printf.sprintf "c%d" i)) ])
  in
  let g = Array.init 2 (fun i ->
      G.Builder.add_vertex b ~vtype:product [ ("name", Value.Str (Printf.sprintf "g%d" i)) ])
  in
  let e s d t = ignore (G.Builder.add_edge b ~src:s ~dst:d ~etype:t []) in
  e p.(0) p.(1) knows;
  e p.(0) p.(2) knows;
  e p.(1) p.(2) knows;
  e p.(2) p.(3) knows;
  e p.(3) p.(0) knows;
  e p.(0) c.(0) lives_in;
  e p.(1) c.(0) lives_in;
  e p.(2) c.(1) lives_in;
  e p.(3) c.(1) lives_in;
  e g.(0) c.(0) produced_in;
  e g.(1) c.(1) produced_in;
  e p.(0) g.(0) purchased;
  e p.(1) g.(0) purchased;
  e p.(2) g.(1) purchased;
  G.Builder.freeze b

(* Pattern helpers *)
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint

let pv ?pred alias con = Pattern.mk_vertex ?pred ~alias con

let pe ?directed ?hops alias src dst con = Pattern.mk_edge ?directed ?hops ~alias ~src ~dst con

(* (a:Person)-[k:KNOWS]->(b:Person) *)
let p_knows =
  Pattern.create
    [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
    [| pe "k" 0 1 (Tc.Basic knows) |]

(* triangle a-KNOWS->b-KNOWS->c, a-KNOWS->c *)
let p_triangle =
  Pattern.create
    [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
    [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows); pe "e3" 0 2 (Tc.Basic knows) |]

(* (a:ANY)-[:ANY]->(b:City) *)
let p_to_city =
  Pattern.create
    [| pv "a" Tc.All; pv "b" (Tc.Basic city) |]
    [| pe "e" 0 1 Tc.All |]

(* Does the plan cut its row set at a boundary where ties may sit
   (LIMIT/SKIP, or ORDER BY with a fused top-k)? Any engine, chunk size or
   worker count may legitimately keep a different subset of tied rows, so
   differential tests fall back to cardinality comparison for such plans. *)
let rec plan_has_tie_cut (p : Gopt_opt.Physical.t) =
  let module P = Gopt_opt.Physical in
  match p with
  | P.Limit _ | P.Skip _ -> true
  | P.Order (x, _, lim) -> lim <> None || plan_has_tie_cut x
  | P.Scan _ | P.Common_ref _ | P.Empty _ -> false
  | P.Expand_all (x, _)
  | P.Expand_into (x, _)
  | P.Expand_intersect (x, _)
  | P.Path_expand (x, _)
  | P.Select (x, _)
  | P.Project (x, _)
  | P.Group (x, _, _)
  | P.Unfold (x, _, _)
  | P.Dedup (x, _)
  | P.All_distinct (x, _) -> plan_has_tie_cut x
  | P.Hash_join { left; right; _ } -> plan_has_tie_cut left || plan_has_tie_cut right
  | P.Union (a, b) -> plan_has_tie_cut a || plan_has_tie_cut b
  | P.With_common { common; left; right; _ } ->
    plan_has_tie_cut common || plan_has_tie_cut left || plan_has_tie_cut right
