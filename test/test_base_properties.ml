(* Property-based tests for the foundation layers: type-constraint algebra,
   expression rewrites, canonical codes, and container/RNG invariants. *)

module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Pattern = Gopt_pattern.Pattern
module Canonical = Gopt_pattern.Canonical
module Value = Gopt_graph.Value
module Vec = Gopt_util.Vec
module Prng = Gopt_util.Prng
open Fixtures

let universe = 6

let gen_tc rng =
  match Prng.int rng 4 with
  | 0 -> Tc.All
  | 1 -> Tc.Basic (Prng.int rng universe)
  | _ -> (
    let k = 1 + Prng.int rng 4 in
    match Tc.of_list ~universe (List.init k (fun _ -> Prng.int rng universe)) with
    | Some c -> c
    | None -> Tc.All)

let prop_tc_inter_commutative =
  QCheck.Test.make ~name:"tc: inter commutative" ~count:300 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let a = gen_tc rng and b = gen_tc rng in
      Option.equal Tc.equal (Tc.inter ~universe a b) (Tc.inter ~universe b a))

let prop_tc_inter_is_set_intersection =
  QCheck.Test.make ~name:"tc: inter = set intersection" ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let a = gen_tc rng and b = gen_tc rng in
      let expected t =
        Tc.mem ~universe a t && Tc.mem ~universe b t
      in
      match Tc.inter ~universe a b with
      | Some c -> List.for_all (fun t -> Tc.mem ~universe c t = expected t) (List.init universe Fun.id)
      | None -> List.for_all (fun t -> not (expected t)) (List.init universe Fun.id))

let prop_tc_subset_antisymmetric =
  QCheck.Test.make ~name:"tc: subset antisymmetry" ~count:300 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let a = gen_tc rng and b = gen_tc rng in
      if Tc.subset ~universe a b && Tc.subset ~universe b a then
        List.for_all
          (fun t -> Tc.mem ~universe a t = Tc.mem ~universe b t)
          (List.init universe Fun.id)
      else true)

let prop_tc_normalization =
  QCheck.Test.make ~name:"tc: of_list normalizes" ~count:300 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let k = Prng.int rng 8 in
      let l = List.init k (fun _ -> Prng.int rng universe) in
      match Tc.of_list ~universe l with
      | None -> l = []
      | Some (Tc.Basic t) -> List.sort_uniq Int.compare l = [ t ]
      | Some (Tc.Union ts) ->
        ts = List.sort_uniq Int.compare l && List.length ts >= 2 && List.length ts < universe
      | Some Tc.All -> List.length (List.sort_uniq Int.compare l) = universe)

(* --- expressions --------------------------------------------------------- *)

let gen_expr rng =
  let rec go depth =
    if depth = 0 then
      match Prng.int rng 3 with
      | 0 -> Expr.Const (Value.Int (Prng.int rng 10))
      | 1 -> Expr.Var (Printf.sprintf "v%d" (Prng.int rng 3))
      | _ -> Expr.Prop (Printf.sprintf "v%d" (Prng.int rng 3), "age")
    else
      match Prng.int rng 4 with
      | 0 -> Expr.Binop (Expr.And, go (depth - 1), go (depth - 1))
      | 1 -> Expr.Binop (Expr.Add, go (depth - 1), go (depth - 1))
      | 2 -> Expr.Unop (Expr.Not, go (depth - 1))
      | _ -> Expr.In_list (go (depth - 1), [ Value.Int 1; Value.Int 2 ])
  in
  go (1 + Prng.int rng 3)

let prop_expr_conj_roundtrip =
  QCheck.Test.make ~name:"expr: conj (conjuncts e) = e (semantically)" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let e = gen_expr rng in
      match Expr.conj (Expr.conjuncts e) with
      | Some e' ->
        (* same set of conjuncts after re-splitting *)
        List.sort compare (List.map Expr.to_string (Expr.conjuncts e'))
        = List.sort compare (List.map Expr.to_string (Expr.conjuncts e))
      | None -> false)

let prop_expr_rename_involution =
  QCheck.Test.make ~name:"expr: renaming twice composes" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let e = gen_expr rng in
      let f t = t ^ "!" in
      let g t = "?" ^ t in
      Expr.equal
        (Expr.rename_tags g (Expr.rename_tags f e))
        (Expr.rename_tags (fun t -> g (f t)) e))

let prop_expr_const_fold_idempotent =
  QCheck.Test.make ~name:"expr: const_fold idempotent" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let e = gen_expr rng in
      let once = Expr.const_fold e in
      Expr.equal once (Expr.const_fold once))

let prop_expr_free_tags_stable_under_fold =
  QCheck.Test.make ~name:"expr: const_fold never adds tags" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let e = gen_expr rng in
      let before = Expr.free_tags e and after = Expr.free_tags (Expr.const_fold e) in
      List.for_all (fun t -> List.mem t before) after)

(* --- canonical codes ------------------------------------------------------- *)

let prop_keyed_code_injective_on_structure =
  QCheck.Test.make ~name:"canonical: different types give different keyed codes" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let t1 = Prng.int rng 3 and t2 = Prng.int rng 3 in
      let mk t =
        Pattern.create
          [| pv "a" (Tc.Basic t); pv "b" Tc.All |]
          [| pe "e" 0 1 Tc.All |]
      in
      (Canonical.keyed_code (mk t1) = Canonical.keyed_code (mk t2)) = (t1 = t2))

let prop_iso_code_detects_direction =
  QCheck.Test.make ~name:"canonical: direction changes iso code" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      ignore (Prng.int rng 2);
      let fwd =
        Pattern.create
          [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic city) |]
          [| pe "e" 0 1 (Tc.Basic lives_in) |]
      in
      let bwd =
        Pattern.create
          [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic city) |]
          [| pe "e" 1 0 (Tc.Basic lives_in) |]
      in
      not (Canonical.iso_equal fwd bwd))

(* --- batches and chunking ---------------------------------------------------- *)

module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Physical = Gopt_opt.Physical
module Engine = Gopt_exec.Engine

let rows_of b =
  let rows = ref [] in
  Batch.iter (fun row -> rows := Array.to_list row :: !rows) b;
  List.rev !rows

(* morsel-style splitting: chopping a batch into [sub] slices of any
   granularity and re-[concat]ing them is the identity (the parallel
   engine's partition step relies on exactly this) *)
let prop_batch_sub_concat_identity =
  QCheck.Test.make ~name:"batch: sub/concat roundtrip identity" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let fields = List.init (1 + Prng.int rng 4) (Printf.sprintf "f%d") in
      let b = Batch.create fields in
      let n = Prng.int rng 60 in
      for _ = 1 to n do
        Batch.add b
          (Array.of_list
             (List.map (fun _ -> Rval.Rval (Value.Int (Prng.int rng 100))) fields))
      done;
      let m = 1 + Prng.int rng 8 in
      let rec slices pos acc =
        if pos >= n then List.rev acc
        else
          let len = min m (n - pos) in
          slices (pos + len) (Batch.sub b ~pos ~len :: acc)
      in
      let back = Batch.concat fields (slices 0 []) in
      Batch.fields back = fields && rows_of back = rows_of b)

let prop_batch_pos_agree =
  QCheck.Test.make ~name:"batch: pos and pos_opt agree" ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let fields = List.init (1 + Prng.int rng 5) (Printf.sprintf "f%d") in
      let b = Batch.create fields in
      List.for_all (fun f -> Batch.pos_opt b f = Some (Batch.pos b f)) fields
      && Batch.pos_opt b "absent" = None
      && (not (Batch.has_field b "absent"))
      && (match Batch.pos b "absent" with
         | exception Invalid_argument _ -> true
         | _ -> false))

(* a random mixed-column batch: vertex ids, scalars and nulls interleaved so
   adaptive columns promote from dense int arrays to boxed storage mid-build *)
let gen_mixed_batch rng fields =
  let b = Batch.create fields in
  let n = Prng.int rng 40 in
  for _ = 1 to n do
    Batch.add b
      (Array.of_list
         (List.map
            (fun _ ->
              match Prng.int rng 4 with
              | 0 -> Rval.Rvertex (Prng.int rng 8)
              | 1 -> Rval.Rval (Value.Int (Prng.int rng 100))
              | 2 -> Rval.Rval (Value.Str (Printf.sprintf "s%d" (Prng.int rng 5)))
              | _ -> Rval.Rnull)
            fields))
  done;
  b

(* [select] is a row-order-preserving gather (duplicates allowed), [project]
   a column permutation, and both compose with existing selection vectors;
   views refuse [add] *)
let prop_batch_select_project =
  QCheck.Test.make ~name:"batch: select/project views = row model" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let fields = List.init (1 + Prng.int rng 4) (Printf.sprintf "f%d") in
      let b = gen_mixed_batch rng fields in
      let n = Batch.n_rows b in
      if n = 0 then true
      else begin
        let idxs = Array.init (Prng.int rng (2 * n)) (fun _ -> Prng.int rng n) in
        let sel = Batch.select b idxs in
        let sel_ok =
          rows_of sel = List.map (fun i -> Array.to_list (Batch.row b i)) (Array.to_list idxs)
        in
        (* gather again on the view: selection vectors must compose *)
        let m = Batch.n_rows sel in
        let idxs2 = Array.init (min m 7) (fun k -> (k * 3) mod m) in
        let sel2 = Batch.select sel (Array.copy idxs2) in
        let sel2_ok =
          m = 0
          || rows_of sel2
             = List.map (fun i -> Array.to_list (Batch.row sel i)) (Array.to_list idxs2)
        in
        let perm = List.mapi (fun k f -> (List.length fields - 1 - k, f ^ "'")) fields in
        let proj = Batch.project b perm in
        let proj_ok =
          Batch.fields proj = List.map snd perm
          && rows_of proj
             = List.map
                 (fun row -> List.map (fun (j, _) -> List.nth row j) perm)
                 (rows_of b)
        in
        let view_refuses_add =
          match Batch.add proj (Array.make (List.length fields) Rval.Rnull) with
          | exception Invalid_argument _ -> true
          | () -> false
        in
        sel_ok && sel2_ok && proj_ok && view_refuses_add
      end)

(* vectorized kernels agree with the row interpreter on every predicate
   shape — specialized column loops, AND-composition, and the row fallback
   alike — including on selection-vector views and sparse candidate sets *)
module Eval = Gopt_exec.Eval
module G = Gopt_graph.Property_graph

let gen_pred rng =
  let cmp_ops = [| Expr.Eq; Expr.Neq; Expr.Lt; Expr.Leq; Expr.Gt; Expr.Geq |] in
  let leaf () =
    let tag = if Prng.int rng 5 = 0 then "z" else "a" in
    let key = if Prng.int rng 4 = 0 then "name" else "age" in
    let prop = Expr.Prop (tag, key) in
    match Prng.int rng 7 with
    | 0 -> Expr.Unop (Expr.Is_null, prop)
    | 1 -> Expr.Unop (Expr.Is_not_null, prop)
    | 2 ->
      Expr.In_list (prop, [ Value.Int (20 + Prng.int rng 4); Value.Str "p1" ])
    | 3 ->
      (* const on the left: the kernel must flip the comparison *)
      Expr.Binop
        (cmp_ops.(Prng.int rng 6), Expr.Const (Value.Int (20 + Prng.int rng 5)), prop)
    | 4 -> Expr.Label (if Prng.int rng 2 = 0 then "Person" else "City")
    | _ ->
      let c =
        match Prng.int rng 5 with
        | 0 -> Value.Null
        | 1 -> Value.Str "p2"
        | _ -> Value.Int (20 + Prng.int rng 5)
      in
      Expr.Binop (cmp_ops.(Prng.int rng 6), prop, Expr.Const c)
  in
  let rec go depth =
    if depth = 0 then leaf ()
    else
      match Prng.int rng 4 with
      | 0 | 1 -> Expr.Binop (Expr.And, go (depth - 1), go (depth - 1))
      | 2 -> Expr.Binop (Expr.Or, go (depth - 1), go (depth - 1))
      | _ -> Expr.Unop (Expr.Not, go (depth - 1))
  in
  go (Prng.int rng 3)

let prop_kernel_matches_row_filter =
  QCheck.Test.make ~name:"eval: vectorized kernel = row filter" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let pred = gen_pred rng in
      let nv = G.n_vertices graph in
      let ids = Array.init nv Fun.id in
      let b = Batch.of_vertex_ids "a" ids ~pos:0 ~len:nv in
      (* half the time, filter a view so the kernel sees a selection vector *)
      let b =
        if Prng.int rng 2 = 0 then Batch.sub b ~pos:(Prng.int rng 3) ~len:(nv - 3)
        else b
      in
      let n = Batch.n_rows b in
      let cand =
        Array.of_list
          (List.filter (fun _ -> Prng.int rng 4 > 0) (List.init n Fun.id))
      in
      let kern = Eval.compile graph ~fields:[ "a" ] pred in
      let got = Array.to_list (Eval.run_kernel kern b cand) in
      let layout = Batch.create [ "a" ] in
      let expect =
        List.filter
          (fun i ->
            Eval.is_true
              (Eval.eval graph (Eval.lookup_of_row layout (Batch.row b i)) pred))
          (Array.to_list cand)
      in
      got = expect)

(* chunk flushing at fuzzed granularities: the pipelined engine must emit
   the same rows at any chunk_size, and never push an empty chunk (the
   engine's sink guard raises Invalid_argument if one ever appears) *)
let prop_chunk_size_fuzz =
  QCheck.Test.make ~name:"engine: fuzzed chunk_size is behaviour-neutral" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let cs = 1 + Prng.int rng 9 in
      let scan = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
      (* union doubles the 4 persons; limit forces mid-chunk cut-offs and
         close-time flushes right at chunk boundaries *)
      let k = Prng.int rng 10 in
      let plan = Physical.Limit (Physical.Union (scan, scan), k) in
      let b, _ = Engine.run ~chunk_size:cs graph plan in
      let bp, _ =
        Engine.run ~chunk_size:cs ~workers:2 ~morsel_size:(1 + Prng.int rng 3) graph plan
      in
      Batch.n_rows b = min k 8 && Batch.n_rows bp = min k 8)

(* --- containers and RNG ------------------------------------------------------ *)

let prop_vec_behaves_like_list =
  QCheck.Test.make ~name:"vec: push/pop/get model" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.length v = List.length xs
      && List.for_all2 (fun i x -> Vec.get v i = x) (List.init (List.length xs) Fun.id) xs
      && Vec.to_list v = xs
      &&
      match Vec.pop v with
      | None -> xs = []
      | Some last -> last = List.nth xs (List.length xs - 1))

let prop_vec_sort =
  QCheck.Test.make ~name:"vec: sort agrees with List.sort" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.sort Int.compare v;
      Vec.to_list v = List.sort Int.compare xs)

let prop_prng_sample_distinct =
  QCheck.Test.make ~name:"prng: sample_distinct is distinct and in range" ~count:200
    QCheck.(pair small_int (pair (int_range 1 50) (int_range 0 60)))
    (fun (seed, (n, k)) ->
      let rng = Prng.create seed in
      let s = Prng.sample_distinct rng ~n ~k in
      List.length s = min k n
      && List.length (List.sort_uniq Int.compare s) = List.length s
      && List.for_all (fun x -> x >= 0 && x < n) s)

let prop_prng_shuffle_permutes =
  QCheck.Test.make ~name:"prng: shuffle is a permutation" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let arr = Array.init 20 Fun.id in
      Prng.shuffle rng arr;
      List.sort Int.compare (Array.to_list arr) = List.init 20 Fun.id)

let () =
  Alcotest.run "base_properties"
    [
      ( "type_constraint",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_tc_inter_commutative;
            prop_tc_inter_is_set_intersection;
            prop_tc_subset_antisymmetric;
            prop_tc_normalization;
          ] );
      ( "expr",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_expr_conj_roundtrip;
            prop_expr_rename_involution;
            prop_expr_const_fold_idempotent;
            prop_expr_free_tags_stable_under_fold;
          ] );
      ( "canonical",
        List.map QCheck_alcotest.to_alcotest
          [ prop_keyed_code_injective_on_structure; prop_iso_code_detects_direction ] );
      ( "batch",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_batch_sub_concat_identity;
            prop_batch_pos_agree;
            prop_batch_select_project;
            prop_kernel_matches_row_filter;
            prop_chunk_size_fuzz;
          ] );
      ( "containers",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_vec_behaves_like_list;
            prop_vec_sort;
            prop_prng_sample_distinct;
            prop_prng_shuffle_permutes;
          ] );
    ]
