(* PlanCheck: the static plan-invariant verifier and expression typechecker.
   Three angles: (1) every workload query is check-clean at every optimizer
   stage; (2) hand-built ill-formed plans produce the expected diagnostics;
   (3) an unsound rule is caught and blamed by the checked rewriter. *)

module Diag = Gopt_check.Diagnostic
module Et = Gopt_check.Expr_type
module Pc = Gopt_check.Plan_check
module Physical = Gopt_opt.Physical
module Phc = Gopt_opt.Physical_check
module Rule = Gopt_opt.Rule
module Rp = Gopt_opt.Rules_pattern
module Rr = Gopt_opt.Rules_relational
module Planner = Gopt_opt.Planner
module Logical = Gopt_gir.Logical
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
module Graph_io = Gopt_graph.Graph_io
module Queries = Gopt_workloads.Queries
module Ldbc = Gopt_workloads.Ldbc
open Fixtures

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let has_error ds sub =
  List.exists (fun d -> Diag.is_error d && contains d.Diag.message sub) ds

let has_warning ds sub =
  List.exists (fun d -> (not (Diag.is_error d)) && contains d.Diag.message sub) ds

let check_clean name ds =
  if not (Diag.is_clean ds) then
    Alcotest.failf "%s: expected no errors, got:\n%s" name (Diag.render ds)

let expect_error name sub ds =
  if not (has_error ds sub) then
    Alcotest.failf "%s: expected an error mentioning %S, got:\n%s" name sub
      (Diag.render ds)

(* --- expression typechecker ------------------------------------------------ *)

let lookup_of env x = List.assoc_opt x env

let test_expr_types () =
  let env = [ ("a", Et.Node (Some (Tc.Basic person))); ("n", Et.Int) ] in
  let infer e = Et.infer ~schema ~lookup:(lookup_of env) ~path:"t" e in
  (* a.age + 1 : int, clean *)
  let t, ds =
    infer (Expr.Binop (Expr.Add, Expr.Prop ("a", "age"), Expr.Const (Value.Int 1)))
  in
  check_clean "int arithmetic" ds;
  Alcotest.(check string) "int" "int" (Et.to_string t);
  (* a.name + 1 : string operand in arithmetic *)
  let _, ds =
    infer (Expr.Binop (Expr.Add, Expr.Prop ("a", "name"), Expr.Const (Value.Int 1)))
  in
  expect_error "string arithmetic" "arithmetic" ds;
  (* unbound variable *)
  let _, ds = infer (Expr.Var "ghost") in
  expect_error "unbound" "unbound variable" ds;
  (* undeclared property is a warning, not an error *)
  let _, ds = infer (Expr.Prop ("a", "salary")) in
  check_clean "undeclared prop" ds;
  Alcotest.(check bool) "warned" true (has_warning ds "not declared");
  (* property access on a scalar *)
  let _, ds = infer (Expr.Prop ("n", "age")) in
  expect_error "prop on scalar" "property access" ds;
  (* cross-kind comparison warns *)
  let _, ds =
    infer (Expr.Binop (Expr.Eq, Expr.Prop ("a", "age"), Expr.Const (Value.Str "x")))
  in
  check_clean "cross-kind comparison" ds;
  Alcotest.(check bool) "warned" true (has_warning ds "incompatible")

(* --- well-formed plans are clean ------------------------------------------- *)

let test_clean_plans () =
  let plans =
    [
      ("match", Logical.Match p_knows);
      ( "select",
        Logical.Select
          ( Logical.Match p_knows,
            Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 20)) ) );
      ( "group",
        Logical.Group
          ( Logical.Match p_knows,
            [ (Expr.Var "a", "a") ],
            [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "n" } ] ) );
      ("triangle", Logical.All_distinct (Logical.Match p_triangle, []));
    ]
  in
  List.iter (fun (name, p) -> check_clean name (Pc.check ~schema p)) plans

(* --- ill-formed plans produce the expected diagnostic ---------------------- *)

let test_unbound_variable () =
  let plan =
    Logical.Select
      ( Logical.Match p_knows,
        Expr.Binop (Expr.Eq, Expr.Prop ("z", "name"), Expr.Const (Value.Str "p0")) )
  in
  expect_error "unbound tag" "unbound variable \"z\"" (Pc.check ~schema plan)

let test_bad_join_key () =
  let plan =
    Logical.Join
      {
        left = Logical.Match p_knows;
        right = Logical.Match p_to_city;
        keys = [ "nope" ];
        kind = Logical.Inner;
      }
  in
  let ds = Pc.check ~schema plan in
  expect_error "left" "not a field of the left input" ds;
  expect_error "right" "not a field of the right input" ds

let test_stray_common_ref () =
  let plan = Logical.Select (Logical.Common_ref, Expr.Const (Value.Bool true)) in
  expect_error "stray" "COMMON_REF" (Pc.check plan);
  (* in partial (fragment) mode the orphan reference is fine *)
  check_clean "partial mode" (Pc.check ~partial:true plan)

let test_non_bool_predicate () =
  let plan = Logical.Select (Logical.Match p_knows, Expr.Prop ("a", "age")) in
  expect_error "non-bool" "expected bool" (Pc.check ~schema plan)

let test_order_by_list () =
  let plan =
    Logical.Order
      ( Logical.Group
          ( Logical.Match p_knows,
            [ (Expr.Var "a", "a") ],
            [
              {
                Logical.agg_fn = Logical.Collect;
                agg_arg = Some (Expr.Prop ("b", "name"));
                agg_alias = "names";
              };
            ] ),
        [ (Expr.Var "names", Logical.Asc) ],
        None )
  in
  expect_error "order by list" "ORDER BY" (Pc.check ~schema plan)

let test_all_distinct_non_edge () =
  let plan = Logical.All_distinct (Logical.Match p_knows, [ "a" ]) in
  expect_error "vertex tag" "expected an edge or path field" (Pc.check ~schema plan);
  let plan = Logical.All_distinct (Logical.Match p_knows, [ "zz" ]) in
  expect_error "ghost tag" "not a field" (Pc.check ~schema plan)

let test_duplicate_aliases () =
  let plan =
    Logical.Project
      (Logical.Match p_knows, [ (Expr.Var "a", "x"); (Expr.Var "b", "x") ])
  in
  expect_error "project" "duplicate projection alias" (Pc.check ~schema plan);
  (* an edge alias colliding with a vertex alias (legal per-namespace for
     Pattern.create, ill-formed as a row) *)
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "a" 0 1 (Tc.Basic knows) |]
  in
  expect_error "namespace" "names both a vertex and an edge"
    (Pc.check ~schema (Logical.Match p))

let test_missing_agg_arg () =
  let plan =
    Logical.Group
      ( Logical.Match p_knows,
        [],
        [ { Logical.agg_fn = Logical.Count_distinct; agg_arg = None; agg_alias = "n" } ]
      )
  in
  expect_error "count distinct" "requires an argument" (Pc.check ~schema plan)

let test_connectivity () =
  (* disconnected Match: cartesian product, warning only *)
  let disc =
    Pattern.create [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic city) |] [||]
  in
  let ds = Pc.check ~schema (Logical.Match disc) in
  check_clean "match warning only" ds;
  Alcotest.(check bool) "warned" true (has_warning ds "disconnected");
  (* a continuation sharing no vertex with its input is an error *)
  let cont =
    Logical.Pattern_cont
      ( Logical.Match p_knows,
        Pattern.create
          [| pv "x" (Tc.Basic product); pv "y" (Tc.Basic city) |]
          [| pe "pe1" 0 1 (Tc.Basic produced_in) |] )
  in
  expect_error "continuation" "shares no vertex" (Pc.check ~schema cont)

let test_unused_binding () =
  let plan = Logical.Project (Logical.Match p_knows, [ (Expr.Var "a", "a") ]) in
  let ds = Pc.check ~schema plan in
  check_clean "warnings only" ds;
  Alcotest.(check bool) "b unused" true (has_warning ds "\"b\" is never used");
  (* partial mode skips the lint *)
  Alcotest.(check bool) "partial skips" false
    (has_warning (Pc.check ~schema ~partial:true plan) "never used")

(* --- physical-plan checker ------------------------------------------------- *)

let test_physical_check () =
  let e = Pattern.edge p_knows 0 in
  let step =
    {
      Physical.s_edge = e;
      s_from = "a";
      s_to = "b";
      s_forward = true;
      s_to_con = Tc.Basic person;
      s_to_pred = None;
    }
  in
  let scan_a = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  check_clean "expand ok" (Phc.check ~schema (Physical.Expand_all (scan_a, step)));
  (* expand from an unbound source *)
  let scan_z = Physical.Scan { alias = "z"; con = Tc.Basic person; pred = None } in
  expect_error "unbound source" "not bound"
    (Phc.check ~schema (Physical.Expand_all (scan_z, step)));
  (* ExpandInto needs the target already bound *)
  expect_error "into unbound" "ExpandInto target"
    (Phc.check ~schema (Physical.Expand_into (scan_a, step)));
  (* CommonRef outside WithCommon *)
  expect_error "stray common" "CommonRef"
    (Phc.check ~schema (Physical.Common_ref [ "a" ]))

(* --- every workload query is clean at every stage -------------------------- *)

let session = Gopt.Session.create (Ldbc.generate ~seed:7 ~persons:60 ())

let checked_config = { (Planner.default_config ()) with Planner.check_plans = true }

let test_workloads_clean () =
  List.iter
    (fun (q : Queries.query) ->
      let name = q.Queries.name in
      (* frontend: parse + lower + Plan_check *)
      let front = Gopt.check_cypher session q.Queries.cypher in
      check_clean (name ^ " (frontend)") front;
      (* checked planning: every rule firing verified, every stage re-checked *)
      let _, report = Gopt.plan_cypher ~config:checked_config session q.Queries.cypher in
      Alcotest.(check bool)
        (name ^ ": all four stages checked")
        true
        (List.map fst report.Planner.diagnostics
        = [ "logical"; "rbo"; "optimized"; "physical" ]);
      List.iter
        (fun (stage, ds) -> check_clean (Printf.sprintf "%s (%s)" name stage) ds)
        report.Planner.diagnostics)
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

(* --- an unsound rule is caught and blamed ---------------------------------- *)

let bad_rule =
  Rule.make "BadRule" (fun node ->
      match node with
      | Logical.Select (x, e) when not (Expr.equal e (Expr.Var "ghost")) ->
        Some (Logical.Select (x, Expr.Var "ghost"))
      | _ -> None)

let test_bad_rule_blamed () =
  let plan =
    Logical.Select
      ( Logical.Match p_knows,
        Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 20)) )
  in
  (* unchecked: the broken rewrite sails through *)
  let _, applied = Rule.fixpoint [ bad_rule ] plan in
  Alcotest.(check bool) "fires unchecked" true (List.mem "BadRule" applied);
  (* checked: the firing is caught and attributed *)
  match Rule.fixpoint ~check:true ~schema [ bad_rule ] plan with
  | exception Rule.Check_failed { rule; diag } ->
    Alcotest.(check string) "blamed" "BadRule" rule;
    Alcotest.(check bool) "diagnosis" true
      (contains diag.Diag.message "unbound variable")
  | _ -> Alcotest.fail "expected Check_failed"

let test_sound_rules_pass () =
  (* the shipped rule set never trips the checker on a realistic plan *)
  let plan =
    Logical.Limit
      ( Logical.Select
          ( Logical.Select
              ( Logical.Match p_triangle,
                Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 20)) ),
            Expr.Binop (Expr.Eq, Expr.Prop ("b", "name"), Expr.Const (Value.Str "p1")) ),
        5 )
  in
  let _, applied = Rule.fixpoint ~check:true ~schema (Rp.all @ Rr.all) plan in
  Alcotest.(check bool) "rules fired" true (applied <> [])

(* --- planner front-door rejection ------------------------------------------ *)

let test_planner_rejects_ill_formed () =
  let gq = Gopt.Session.estimator session in
  let bad =
    Logical.Select (Logical.Match p_knows, Expr.Var "ghost")
  in
  match Planner.plan checked_config gq bad with
  | exception Invalid_argument m ->
    Alcotest.(check bool) "names the invariant" true (contains m "unbound variable")
  | _ -> Alcotest.fail "expected Invalid_argument before the CBO"

(* --- graph_io parse failures carry line numbers ---------------------------- *)

let expect_failure_at text sub line =
  match Graph_io.of_string text with
  | exception Failure m ->
    let want = Printf.sprintf "line %d" line in
    if not (contains m want && contains m sub) then
      Alcotest.failf "expected %S at %s, got: %s" sub want m
  | _ -> Alcotest.failf "expected a parse failure for %S" text

let test_graph_io_line_numbers () =
  expect_failure_at "gopt-graph v1\nvtype\tT\tname:strin" "unknown property kind" 2;
  expect_failure_at "gopt-graph v1\nvtype\tT\tname" "malformed property declaration" 2;
  (* entity-line failures report the original line number, not the position
     within the deferred second pass *)
  expect_failure_at "gopt-graph v1\nvtype\tT\tname:string\nv\tT\tname=x:abc"
    "unknown value tag" 3;
  expect_failure_at "gopt-graph v1\nvtype\tT\tname:string\nv\tT\nv\tT\tname=s:ok\nv\tU"
    "unknown vertex type" 5;
  expect_failure_at
    "gopt-graph v1\nvtype\tT\nvtype\tU\netype\tE\ntriple\tT\tE\tU\nv\tT\nv\tU\ne\tx\t1\tE"
    "malformed source id" 8;
  expect_failure_at "gopt-graph v1\nvtype\tT\nv\tT\tname=i:12b" "malformed int" 3

let () =
  Alcotest.run "check"
    [
      ( "expr_type",
        [ Alcotest.test_case "expression typing" `Quick test_expr_types ] );
      ( "plan_check",
        [
          Alcotest.test_case "clean plans stay clean" `Quick test_clean_plans;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          Alcotest.test_case "bad join key" `Quick test_bad_join_key;
          Alcotest.test_case "stray Common_ref" `Quick test_stray_common_ref;
          Alcotest.test_case "non-bool predicate" `Quick test_non_bool_predicate;
          Alcotest.test_case "ORDER BY a list" `Quick test_order_by_list;
          Alcotest.test_case "All_distinct tags" `Quick test_all_distinct_non_edge;
          Alcotest.test_case "duplicate aliases" `Quick test_duplicate_aliases;
          Alcotest.test_case "missing aggregate argument" `Quick test_missing_agg_arg;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "unused bindings" `Quick test_unused_binding;
        ] );
      ( "physical_check",
        [ Alcotest.test_case "physical invariants" `Quick test_physical_check ] );
      ( "stages",
        [
          Alcotest.test_case "all workload queries clean" `Slow test_workloads_clean;
          Alcotest.test_case "planner rejects ill-formed plans" `Quick
            test_planner_rejects_ill_formed;
        ] );
      ( "checked_rewriter",
        [
          Alcotest.test_case "unsound rule blamed by name" `Quick test_bad_rule_blamed;
          Alcotest.test_case "shipped rules pass" `Quick test_sound_rules_pass;
        ] );
      ( "graph_io",
        [ Alcotest.test_case "failures carry line numbers" `Quick test_graph_io_line_numbers ]
      );
    ]
