module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
module Physical = Gopt_opt.Physical
module Spec = Gopt_opt.Physical_spec
module Cbo = Gopt_opt.Cbo
module Planner = Gopt_opt.Planner
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Mc = Gopt_glogue.Motif_counter
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng
open Fixtures

let gq = Gq.create (Glogue.build graph)

let count_rows phys =
  let batch, _ = Engine.run graph phys in
  Batch.n_rows batch

let match_count ?(spec = Spec.graphscope) p =
  let plan, _ = Cbo.optimize gq spec p in
  count_rows (Cbo.to_physical spec plan)

let test_scan () =
  let phys = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  Alcotest.(check int) "persons" 4 (count_rows phys);
  let pred = Expr.Binop (Expr.Eq, Expr.Prop ("a", "name"), Expr.Const (Value.Str "p0")) in
  let phys = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = Some pred } in
  Alcotest.(check int) "filtered scan" 1 (count_rows phys)

let test_pattern_counts_match_oracle () =
  List.iter
    (fun p ->
      let expected = int_of_float (Mc.count_homomorphisms graph p) in
      Alcotest.(check int) (Pattern.to_string p) expected (match_count p);
      Alcotest.(check int) ("neo4j " ^ Pattern.to_string p) expected
        (match_count ~spec:Spec.neo4j p))
    [ p_knows; p_triangle; p_to_city ]

let test_undirected () =
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe ~directed:false "e" 0 1 (Tc.Basic knows) |]
  in
  Alcotest.(check int) "undirected knows" 10 (match_count p)

let test_all_distinct () =
  (* out-fork: 7 homomorphisms, 2 with distinct edges *)
  let fork =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 0 2 (Tc.Basic knows) |]
  in
  let plan, _ = Cbo.optimize gq Spec.graphscope fork in
  let phys = Cbo.to_physical Spec.graphscope plan in
  Alcotest.(check int) "hom count" 7 (count_rows phys);
  Alcotest.(check int) "edge distinct" 2 (count_rows (Physical.All_distinct (phys, [ "e1"; "e2" ])))

let test_path_expand_free () =
  (* 2-hop KNOWS walks from p0: p0->p1->p2 and p0->p2->p3 *)
  let pred = Expr.Binop (Expr.Eq, Expr.Prop ("s", "name"), Expr.Const (Value.Str "p0")) in
  let scan = Physical.Scan { alias = "s"; con = Tc.Basic person; pred = Some pred } in
  let edge = pe ~hops:(2, 2) "p" 0 1 (Tc.Basic knows) in
  let step =
    {
      Physical.s_edge = edge;
      s_from = "s";
      s_to = "t";
      s_forward = true;
      s_to_con = Tc.Basic person;
      s_to_pred = None;
    }
  in
  Alcotest.(check int) "2-hop walks" 2 (count_rows (Physical.Path_expand (scan, step)))

let test_path_expand_bound () =
  (* p0 to p3 in exactly 2 hops: p0->p2->p3 *)
  let preds name v = Expr.Binop (Expr.Eq, Expr.Prop (name, "name"), Expr.Const (Value.Str v)) in
  let scan_s = Physical.Scan { alias = "s"; con = Tc.Basic person; pred = Some (preds "s" "p0") } in
  let scan_t = Physical.Scan { alias = "t"; con = Tc.Basic person; pred = Some (preds "t" "p3") } in
  let cross = Physical.Hash_join { left = scan_s; right = scan_t; keys = []; kind = Logical.Inner } in
  let edge = pe ~hops:(2, 2) "p" 0 1 (Tc.Basic knows) in
  let step =
    {
      Physical.s_edge = edge;
      s_from = "s";
      s_to = "t";
      s_forward = true;
      s_to_con = Tc.Basic person;
      s_to_pred = None;
    }
  in
  Alcotest.(check int) "bound endpoint" 1 (count_rows (Physical.Path_expand (cross, step)))

let test_path_semantics () =
  (* add Simple vs Arbitrary distinction: cycle p0->p1? graph has cycle
     p0->p2->p3->p0: 3-hop arbitrary walk from p0 returns to p0; simple
     excludes it *)
  let pred = Expr.Binop (Expr.Eq, Expr.Prop ("s", "name"), Expr.Const (Value.Str "p0")) in
  let scan = Physical.Scan { alias = "s"; con = Tc.Basic person; pred = Some pred } in
  let mk sem =
    let edge = Pattern.mk_edge ~hops:(3, 3) ~path:sem ~alias:"p" ~src:0 ~dst:1 (Tc.Basic knows) in
    let step =
      {
        Physical.s_edge = edge;
        s_from = "s";
        s_to = "t";
        s_forward = true;
        s_to_con = Tc.Basic person;
        s_to_pred = None;
      }
    in
    count_rows (Physical.Path_expand (scan, step))
  in
  let arb = mk Pattern.Arbitrary and simple = mk Pattern.Simple in
  Alcotest.(check bool) "simple <= arbitrary" true (simple <= arb);
  (* p0->p2->p3->p0 is arbitrary-only (revisits p0) *)
  Alcotest.(check bool) "cycle excluded by simple" true (simple < arb)

let test_hash_join_kinds () =
  let scan_a = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let knows_b =
    Physical.Expand_all
      ( Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None },
        {
          Physical.s_edge = pe "e" 0 1 (Tc.Basic knows);
          s_from = "a";
          s_to = "b";
          s_forward = true;
          s_to_con = Tc.Basic person;
          s_to_pred = None;
        } )
  in
  (* semi: persons with at least one outgoing KNOWS = p0,p1,p2,p3 all have out
     edges? p0:2, p1:1, p2:1, p3:1 -> 4. anti: 0 *)
  let semi =
    Physical.Hash_join { left = scan_a; right = knows_b; keys = [ "a" ]; kind = Logical.Semi }
  in
  let anti =
    Physical.Hash_join { left = scan_a; right = knows_b; keys = [ "a" ]; kind = Logical.Anti }
  in
  Alcotest.(check int) "semi" 4 (count_rows semi);
  Alcotest.(check int) "anti" 0 (count_rows anti);
  (* left outer with an empty right side keeps left rows *)
  let empty = Physical.Empty [ "a"; "x" ] in
  let louter =
    Physical.Hash_join { left = scan_a; right = empty; keys = [ "a" ]; kind = Logical.Left_outer }
  in
  Alcotest.(check int) "left outer" 4 (count_rows louter)

let test_group_order_limit () =
  (* per-person outgoing KNOWS counts, descending *)
  let knows =
    Physical.Expand_all
      ( Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None },
        {
          Physical.s_edge = pe "e" 0 1 (Tc.Basic knows);
          s_from = "a";
          s_to = "b";
          s_forward = true;
          s_to_con = Tc.Basic person;
          s_to_pred = None;
        } )
  in
  let grouped =
    Physical.Group
      ( knows,
        [ (Expr.Var "a", "a") ],
        [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "c" } ] )
  in
  let ordered = Physical.Order (grouped, [ (Expr.Var "c", Logical.Desc) ], Some 1) in
  let batch, _ = Engine.run graph ordered in
  Alcotest.(check int) "top-1" 1 (Batch.n_rows batch);
  let row = Batch.row batch 0 in
  (match row.(Batch.pos batch "c") with
  | Rval.Rval (Value.Int 2) -> ()
  | v -> Alcotest.failf "expected count 2, got %s" (Format.asprintf "%a" (Rval.pp graph) v));
  match row.(Batch.pos batch "a") with
  | Rval.Rvertex 0 -> ()
  | _ -> Alcotest.fail "expected p0 on top"

let test_aggregates () =
  let scan = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let aggs =
    [
      { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "cnt" };
      { Logical.agg_fn = Logical.Sum; agg_arg = Some (Expr.Prop ("a", "age")); agg_alias = "s" };
      { Logical.agg_fn = Logical.Avg; agg_arg = Some (Expr.Prop ("a", "age")); agg_alias = "av" };
      { Logical.agg_fn = Logical.Min; agg_arg = Some (Expr.Prop ("a", "age")); agg_alias = "mn" };
      { Logical.agg_fn = Logical.Max; agg_arg = Some (Expr.Prop ("a", "age")); agg_alias = "mx" };
      { Logical.agg_fn = Logical.Count_distinct; agg_arg = Some (Expr.Prop ("a", "name")); agg_alias = "cd" };
      { Logical.agg_fn = Logical.Collect; agg_arg = Some (Expr.Prop ("a", "age")); agg_alias = "col" };
    ]
  in
  let batch, _ = Engine.run graph (Physical.Group (scan, [], aggs)) in
  Alcotest.(check int) "one row" 1 (Batch.n_rows batch);
  let row = Batch.row batch 0 in
  let get name = row.(Batch.pos batch name) in
  Alcotest.(check bool) "cnt" true (get "cnt" = Rval.Rval (Value.Int 4));
  Alcotest.(check bool) "sum 20+21+22+23" true (get "s" = Rval.Rval (Value.Int 86));
  (match get "av" with
  | Rval.Rval (Value.Float f) -> Alcotest.(check (float 1e-9)) "avg" 21.5 f
  | _ -> Alcotest.fail "avg kind");
  Alcotest.(check bool) "min" true (get "mn" = Rval.Rval (Value.Int 20));
  Alcotest.(check bool) "max" true (get "mx" = Rval.Rval (Value.Int 23));
  Alcotest.(check bool) "count distinct" true (get "cd" = Rval.Rval (Value.Int 4));
  match get "col" with
  | Rval.Rlist l -> Alcotest.(check int) "collect size" 4 (List.length l)
  | _ -> Alcotest.fail "collect kind"

let test_group_empty_input () =
  let empty = Physical.Empty [ "a" ] in
  let aggs = [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "c" } ] in
  let batch, _ = Engine.run graph (Physical.Group (empty, [], aggs)) in
  Alcotest.(check int) "count over empty = one row" 1 (Batch.n_rows batch);
  Alcotest.(check bool) "zero" true ((Batch.row batch 0).(0) = Rval.Rval (Value.Int 0))

let test_union_dedup_project () =
  let scan = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let u = Physical.Union (scan, scan) in
  Alcotest.(check int) "union doubles" 8 (count_rows u);
  Alcotest.(check int) "dedup halves" 4 (count_rows (Physical.Dedup (u, [])));
  let proj = Physical.Project (u, [ (Expr.Prop ("a", "name"), "n") ]) in
  Alcotest.(check int) "project keeps rows" 8 (count_rows proj);
  Alcotest.(check int) "limit" 3 (count_rows (Physical.Limit (u, 3)))

let test_with_common () =
  (* common = KNOWS edge; both branches expand differently *)
  let common = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let expand etype target alias =
    Physical.Expand_all
      ( Physical.Common_ref [ "a" ],
        {
          Physical.s_edge = pe "ee" 0 1 (Tc.Basic etype);
          s_from = "a";
          s_to = alias;
          s_forward = true;
          s_to_con = Tc.Basic target;
          s_to_pred = None;
        } )
  in
  let left = Physical.Project (expand lives_in city "c", [ (Expr.Var "a", "a") ]) in
  let right = Physical.Project (expand purchased product "g", [ (Expr.Var "a", "a") ]) in
  let plan =
    Physical.With_common { common; left; right; combine = Logical.C_union }
  in
  (* LIVES_IN has 4 edges, PURCHASED has 3 *)
  Alcotest.(check int) "factored union" 7 (count_rows plan)

let test_stats_recorded () =
  let phys = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let _, stats = Engine.run ~profile:Engine.graphscope_profile graph phys in
  Alcotest.(check bool) "rows recorded" true (stats.Engine.intermediate_rows = 4);
  Alcotest.(check bool) "comm counted" true (stats.Engine.comm_rows = 4);
  let _, stats2 = Engine.run ~profile:Engine.neo4j_profile graph phys in
  Alcotest.(check int) "no comm on neo4j profile" 0 stats2.Engine.comm_rows

let test_batch_pos_error () =
  let b = Batch.create [ "a"; "b" ] in
  Alcotest.(check (option int)) "pos_opt hit" (Some 1) (Batch.pos_opt b "b");
  Alcotest.(check (option int)) "pos_opt miss" None (Batch.pos_opt b "zz");
  match Batch.pos b "zz" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the field" true
      (String.length msg > 0
      && (let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          contains "zz" msg && contains "a" msg && contains "b" msg))

(* differential: every workload query through the pipelined engine and the
   materialized reference path must produce the same rows, and the pipelined
   run must never hold more rows live *)

module Queries = Gopt_workloads.Queries

let canon_rows b =
  let rows = ref [] in
  Batch.iter (fun row -> rows := Array.to_list row :: !rows) b;
  List.sort (List.compare Rval.compare) !rows

let ordered_rows b =
  let rows = ref [] in
  Batch.iter (fun row -> rows := Array.to_list row :: !rows) b;
  List.rev !rows

let test_differential_workloads () =
  let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
  let session = Gopt.Session.create g in
  List.iter
    (fun (q : Queries.query) ->
      let physical, _ = Gopt.plan_cypher session q.Queries.cypher in
      let b_pipe, s_pipe = Engine.run g physical in
      let b_mat, s_mat = Engine.run_materialized g physical in
      (* the columnar kernels are an implementation detail: forcing the
         row-interpreter fallback must reproduce the exact same rows in the
         exact same order *)
      let b_rowpath, _ = Engine.run ~vectorize:false g physical in
      Alcotest.(check bool)
        (q.Queries.name ^ ": vectorize off is byte-identical")
        true
        (List.equal (List.equal Rval.equal) (ordered_rows b_pipe) (ordered_rows b_rowpath));
      Alcotest.(check (list string))
        (q.Queries.name ^ ": fields")
        (Batch.fields b_mat) (Batch.fields b_pipe);
      Alcotest.(check bool)
        (q.Queries.name ^ ": same rows")
        true
        (List.equal (List.equal Rval.equal) (canon_rows b_pipe) (canon_rows b_mat));
      Alcotest.(check bool)
        (Printf.sprintf "%s: pipelined peak %d <= materialized peak %d" q.Queries.name
           s_pipe.Engine.peak_rows s_mat.Engine.peak_rows)
        true
        (s_pipe.Engine.peak_rows <= s_mat.Engine.peak_rows);
      Alcotest.(check bool)
        (q.Queries.name ^ ": trace present")
        true (s_pipe.Engine.op_trace <> None);
      Alcotest.(check bool)
        (q.Queries.name ^ ": reference has no trace")
        true (s_mat.Engine.op_trace = None))
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

(* chunk_size is behaviour-neutral: the full workload suite at pathological
   batch granularities (1 and 7) must return exactly the default's rows.
   Plans that cut on possibly-tied boundaries (LIMIT / top-k) may keep a
   different-but-equally-valid subset of tied rows, so those compare by
   cardinality. *)
let test_chunk_size_neutral () =
  let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
  let session = Gopt.Session.create g in
  List.iter
    (fun (q : Queries.query) ->
      let physical, _ = Gopt.plan_cypher session q.Queries.cypher in
      let b_ref, _ = Engine.run g physical in
      List.iter
        (fun cs ->
          let b, _ = Engine.run ~chunk_size:cs g physical in
          let name = Printf.sprintf "%s @ chunk_size=%d" q.Queries.name cs in
          Alcotest.(check (list string))
            (name ^ ": fields") (Batch.fields b_ref) (Batch.fields b);
          if plan_has_tie_cut physical then
            Alcotest.(check int) (name ^ ": rows") (Batch.n_rows b_ref) (Batch.n_rows b)
          else
            Alcotest.(check bool)
              (name ^ ": same rows")
              true
              (List.equal (List.equal Rval.equal) (canon_rows b_ref) (canon_rows b)))
        [ 1; 7; 1024 ])
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

let test_limit_short_circuit () =
  (* big enough that the full expansion dwarfs one 1024-row chunk — the
     stop signal's granularity *)
  let g = Gopt_workloads.Ldbc.generate ~persons:2000 () in
  let schema = Gopt_graph.Property_graph.schema g in
  let person_t = Gopt_graph.Schema.vtype_id schema "Person" in
  let knows_t = Gopt_graph.Schema.etype_id schema "KNOWS" in
  let expand =
    Physical.Expand_all
      ( Physical.Scan { alias = "a"; con = Tc.Basic person_t; pred = None },
        {
          Physical.s_edge = pe "e" 0 1 (Tc.Basic knows_t);
          s_from = "a";
          s_to = "b";
          s_forward = true;
          s_to_con = Tc.Basic person_t;
          s_to_pred = None;
        } )
  in
  let limited = Physical.Limit (expand, 5) in
  let b_pipe, s_pipe = Engine.run g limited in
  let b_mat, s_mat = Engine.run_materialized g limited in
  Alcotest.(check int) "both return 5 rows" (Batch.n_rows b_mat) (Batch.n_rows b_pipe);
  Alcotest.(check int) "5 rows" 5 (Batch.n_rows b_pipe);
  (* the stop signal reaches the expansion: far fewer adjacency entries are
     visited than the materialized path's full expansion *)
  Alcotest.(check bool)
    (Printf.sprintf "edges touched: pipelined %d << materialized %d" s_pipe.Engine.edges_touched
       s_mat.Engine.edges_touched)
    true
    (s_pipe.Engine.edges_touched * 4 < s_mat.Engine.edges_touched);
  Alcotest.(check bool)
    (Printf.sprintf "intermediate rows: pipelined %d << materialized %d"
       s_pipe.Engine.intermediate_rows s_mat.Engine.intermediate_rows)
    true
    (s_pipe.Engine.intermediate_rows * 4 < s_mat.Engine.intermediate_rows)

let test_pipeline_classification () =
  let scan = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  Alcotest.(check bool) "scan streams" true (Physical.pipeline_role scan = Physical.Streaming);
  Alcotest.(check bool) "dedup is stateful" true
    (Physical.pipeline_role (Physical.Dedup (scan, [])) = Physical.Stateful);
  let order = Physical.Order (scan, [], None) in
  Alcotest.(check bool) "order breaks" true (Physical.is_pipeline_breaker order);
  let aggs = [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "c" } ] in
  let grouped = Physical.Group (order, [], aggs) in
  Alcotest.(check int) "two breakers" 2 (Physical.breaker_count grouped);
  Alcotest.(check int) "limit adds none" 2
    (Physical.breaker_count (Physical.Limit (grouped, 1)))

let test_trace_totals () =
  (* the root trace's totals are consistent with the engine stats *)
  let scan = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = None } in
  let proj = Physical.Project (scan, [ (Expr.Prop ("a", "name"), "n") ]) in
  let _, st = Engine.run graph proj in
  match st.Engine.op_trace with
  | None -> Alcotest.fail "pipelined run must record a trace"
  | Some tr ->
    Alcotest.(check string) "root is the plan root" (Physical.node_label proj) tr.Gopt_exec.Op_trace.name;
    Alcotest.(check int) "root rows out" 4 tr.Gopt_exec.Op_trace.rows_out;
    let rec sum tr =
      tr.Gopt_exec.Op_trace.rows_out
      + List.fold_left (fun acc c -> acc + sum c) 0 tr.Gopt_exec.Op_trace.children
    in
    Alcotest.(check int) "sum of rows_out = intermediate_rows" st.Engine.intermediate_rows
      (sum tr)

(* the allocation-free CONTAINS scan, including the cases the naive
   quadratic version got right only by accident *)
let test_contains () =
  let module Eval = Gopt_exec.Eval in
  Alcotest.(check bool) "empty needle in empty" true (Eval.contains ~sub:"" "");
  Alcotest.(check bool) "empty needle" true (Eval.contains ~sub:"" "abc");
  Alcotest.(check bool) "needle longer than haystack" false (Eval.contains ~sub:"abc" "ab");
  Alcotest.(check bool) "overlapping needle" true (Eval.contains ~sub:"aa" "aaa");
  Alcotest.(check bool) "overlap across near-miss" true (Eval.contains ~sub:"aab" "aaab");
  Alcotest.(check bool) "at the start" true (Eval.contains ~sub:"ab" "abc");
  Alcotest.(check bool) "at the end" true (Eval.contains ~sub:"bc" "abc");
  Alcotest.(check bool) "absent" false (Eval.contains ~sub:"ac" "abc");
  (* differential vs. the obvious spec on random short strings *)
  let spec ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let rng = Prng.create 7 in
  for _ = 1 to 2000 do
    let mk len = String.init (Prng.int rng len) (fun _ -> Char.chr (97 + Prng.int rng 3)) in
    let s = mk 9 and sub = mk 5 in
    Alcotest.(check bool)
      (Printf.sprintf "contains %S %S" sub s)
      (spec ~sub s) (Eval.contains ~sub s)
  done

(* Int and integral Float hash identically (they compare equal), without
   the old tuple round-trip *)
let test_value_hash_agreement () =
  let check_agree a b =
    Alcotest.(check bool)
      (Printf.sprintf "hash %s = hash %s" (Value.to_string a) (Value.to_string b))
      true
      (Value.hash a = Value.hash b)
  in
  check_agree (Value.Int 5) (Value.Float 5.);
  check_agree (Value.Int 0) (Value.Float 0.);
  check_agree (Value.Int 0) (Value.Float (-0.));
  check_agree (Value.Int (-3)) (Value.Float (-3.));
  check_agree (Value.Int max_int) (Value.Float (float_of_int max_int));
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let n = Prng.int rng 1000000 - 500000 in
    check_agree (Value.Int n) (Value.Float (float_of_int n))
  done;
  (* sanity: hashing still distinguishes enough values to be useful *)
  Alcotest.(check bool) "0 <> 1" true (Value.hash (Value.Int 0) <> Value.hash (Value.Int 1))

(* kernel-level trace counters: a vectorized scan predicate reports the
   rows its kernel selected; the row-interpreter path reports none *)
let test_kernel_trace_counters () =
  let pred = Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 20)) in
  let phys = Physical.Scan { alias = "a"; con = Tc.Basic person; pred = Some pred } in
  let find_scan tr =
    let rec go tr =
      if tr.Gopt_exec.Op_trace.children = [] then Some tr
      else List.find_map go tr.Gopt_exec.Op_trace.children
    in
    go tr
  in
  let _, st = Engine.run graph phys in
  (match Option.bind st.Engine.op_trace find_scan with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
    Alcotest.(check int) "rows_selected = surviving rows" 3
      tr.Gopt_exec.Op_trace.rows_selected);
  let _, st = Engine.run ~vectorize:false graph phys in
  match Option.bind st.Engine.op_trace find_scan with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
    Alcotest.(check int) "row path reports no kernel rows" 0
      tr.Gopt_exec.Op_trace.rows_selected

(* property: all planners agree with the brute-force oracle on random
   connected patterns *)
let prop_planners_agree =
  QCheck.Test.make ~name:"all plans agree with oracle" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let nv = 2 + Prng.int rng 3 in
      let vs =
        Array.init nv (fun i ->
            pv (Printf.sprintf "v%d" i) (if Prng.bool rng then Tc.Basic person else Tc.All))
      in
      let es = ref [] in
      for i = 1 to nv - 1 do
        let j = Prng.int rng i in
        let src, dst = if Prng.bool rng then (i, j) else (j, i) in
        es :=
          pe ~directed:(Prng.bool rng) (Printf.sprintf "e%d" i) src dst
            (if Prng.bool rng then Tc.Basic knows else Tc.All)
          :: !es
      done;
      (* sometimes add a closing edge *)
      if nv >= 3 && Prng.bool rng then
        es := pe "extra" 0 (nv - 1) Tc.All :: !es;
      let p = Pattern.create vs (Array.of_list !es) in
      let expected = int_of_float (Mc.count_homomorphisms graph p) in
      let via_cbo spec =
        let plan, _ = Cbo.optimize gq spec p in
        count_rows (Cbo.to_physical spec plan)
      in
      let via_user spec = count_rows (Planner.compile_user_order spec p) in
      via_cbo Spec.graphscope = expected
      && via_cbo Spec.neo4j = expected
      && via_user Spec.graphscope = expected
      && via_user Spec.neo4j = expected)

let () =
  Alcotest.run "exec"
    [
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "pattern counts vs oracle" `Quick test_pattern_counts_match_oracle;
          Alcotest.test_case "undirected" `Quick test_undirected;
          Alcotest.test_case "all distinct" `Quick test_all_distinct;
          Alcotest.test_case "path expand free" `Quick test_path_expand_free;
          Alcotest.test_case "path expand bound" `Quick test_path_expand_bound;
          Alcotest.test_case "path semantics" `Quick test_path_semantics;
          Alcotest.test_case "hash join kinds" `Quick test_hash_join_kinds;
          Alcotest.test_case "group order limit" `Quick test_group_order_limit;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "group over empty" `Quick test_group_empty_input;
          Alcotest.test_case "union dedup project" `Quick test_union_dedup_project;
          Alcotest.test_case "with common" `Quick test_with_common;
          Alcotest.test_case "stats" `Quick test_stats_recorded;
          Alcotest.test_case "batch pos error" `Quick test_batch_pos_error;
          Alcotest.test_case "pipeline classification" `Quick test_pipeline_classification;
          Alcotest.test_case "trace totals" `Quick test_trace_totals;
          Alcotest.test_case "contains scan" `Quick test_contains;
          Alcotest.test_case "value hash int/float" `Quick test_value_hash_agreement;
          Alcotest.test_case "kernel trace counters" `Quick test_kernel_trace_counters;
        ] );
      ( "pipelined-vs-materialized",
        [
          Alcotest.test_case "workload differential" `Quick test_differential_workloads;
          Alcotest.test_case "chunk-size neutrality" `Quick test_chunk_size_neutral;
          Alcotest.test_case "limit short-circuit" `Quick test_limit_short_circuit;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_planners_agree ]);
    ]
