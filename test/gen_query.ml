(* Seeded random Cypher generator over the Fixtures schema, for the
   differential tests in [test_parallel]. Every query this module emits is
   syntactically valid, schema-clean (labels, edge triples and properties
   all exist), and deterministic in the seed: equal seeds produce equal
   query strings.

   Shape: a connected linear MATCH pattern of 1–3 edges following the
   schema's triples in either direction (occasionally with a variable-length
   KNOWS segment), an optional WHERE over the bound variables, and a RETURN
   that is either a plain (optionally DISTINCT) projection or an implicit
   group-by with aggregates — optionally followed by ORDER BY / SKIP /
   LIMIT, and occasionally wrapped into a UNION of two compatible halves. *)

module Prng = Gopt_util.Prng

type vlabel = Person | City | Product

let vname = function Person -> "Person" | City -> "City" | Product -> "Product"

(* schema triples: (src label, edge type, dst label) *)
let triples =
  [|
    (Person, "KNOWS", Person);
    (Person, "LIVES_IN", City);
    (Product, "PRODUCED_IN", City);
    (Person, "PURCHASED", Product);
  |]

(* properties per label, with the generators used to build comparison
   constants (Fixtures-style names: p0.., c0.., g0..) *)
let props = function
  | Person -> [| ("name", `Str 'p'); ("age", `Age) |]
  | City -> [| ("name", `Str 'c') |]
  | Product -> [| ("name", `Str 'g') |]

let const rng = function
  | `Str prefix -> Printf.sprintf "'%c%d'" prefix (Prng.int rng 8)
  | `Age -> string_of_int (Prng.int_in rng 18 60)

type node = { var : string; label : vlabel }

(* a connected chain v0 -e0- v1 -e1- ... rendered as one MATCH path *)
let gen_pattern rng =
  let n_edges = Prng.int_in rng 1 3 in
  let start = [| Person; City; Product |].(Prng.int rng 3) in
  let nodes = ref [ { var = "v0"; label = start } ] in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "(v0:%s)" (vname start));
  for i = 1 to n_edges do
    let cur = (List.hd !nodes).label in
    let candidates =
      Array.to_list triples
      |> List.concat_map (fun (s, e, d) ->
             (if s = cur then [ (e, d, true) ] else [])
             @ if d = cur then [ (e, s, false) ] else [])
    in
    (* every label has at least one incident triple, so this is non-empty *)
    let e, next_label, forward = List.nth candidates (Prng.int rng (List.length candidates)) in
    let var = Printf.sprintf "v%d" i in
    let hops =
      if e = "KNOWS" && Prng.int rng 10 = 0 then
        Printf.sprintf "*1..%d" (Prng.int_in rng 1 2)
      else ""
    in
    Buffer.add_string buf
      (if forward then Printf.sprintf "-[:%s%s]->(%s:%s)" e hops var (vname next_label)
       else Printf.sprintf "<-[:%s%s]-(%s:%s)" e hops var (vname next_label));
    nodes := { var; label = next_label } :: !nodes
  done;
  (Buffer.contents buf, List.rev !nodes)

let gen_pred rng (nodes : node list) =
  let node = List.nth nodes (Prng.int rng (List.length nodes)) in
  let prop, kind = Prng.choice rng (props node.label) in
  let op =
    match kind with
    | `Age -> [| ">"; "<"; ">="; "<="; "="; "<>" |].(Prng.int rng 6)
    | `Str _ -> [| "="; "<>" |].(Prng.int rng 2)
  in
  Printf.sprintf "%s.%s %s %s" node.var prop op (const rng kind)

let gen_where rng nodes =
  match Prng.int rng 10 with
  | 0 | 1 | 2 | 3 -> ""
  | 4 | 5 | 6 -> Printf.sprintf " WHERE %s" (gen_pred rng nodes)
  | _ ->
    let conn = if Prng.bool rng then "AND" else "OR" in
    Printf.sprintf " WHERE %s %s %s" (gen_pred rng nodes) conn (gen_pred rng nodes)

(* a projection item: var.prop (vertex-valued items are deliberately left
   out so results render as scalars in every engine) *)
let gen_item rng nodes =
  let node = List.nth nodes (Prng.int rng (List.length nodes)) in
  let prop, _ = Prng.choice rng (props node.label) in
  Printf.sprintf "%s.%s" node.var prop

(* an aggregate item; [sortable = false] for list-valued aggregates, which
   must not appear under ORDER BY *)
let gen_agg rng nodes alias =
  match Prng.int rng 7 with
  | 0 -> (Printf.sprintf "count(*) AS %s" alias, true)
  | 1 -> (Printf.sprintf "count(DISTINCT %s) AS %s" (gen_item rng nodes) alias, true)
  | 2 ->
    let persons = List.filter (fun n -> n.label = Person) nodes in
    if persons = [] then (Printf.sprintf "count(*) AS %s" alias, true)
    else
      (* ages are ints, so partial-sum merge order cannot perturb the float
         result — keeps the oracle comparison exact *)
      ( Printf.sprintf "%s(%s.age) AS %s"
          [| "sum"; "avg" |].(Prng.int rng 2)
          (List.nth persons (Prng.int rng (List.length persons))).var alias,
        true )
  | 3 -> (Printf.sprintf "min(%s) AS %s" (gen_item rng nodes) alias, true)
  | 4 -> (Printf.sprintf "max(%s) AS %s" (gen_item rng nodes) alias, true)
  | 5 -> (Printf.sprintf "collect(%s) AS %s" (gen_item rng nodes) alias, false)
  | _ -> (Printf.sprintf "count(*) AS %s" alias, true)

(* RETURN clause; returns (clause body, output aliases usable in ORDER BY) *)
let gen_return rng nodes =
  if Prng.int rng 5 < 2 then begin
    (* implicit group-by: 0–1 keys plus 1–2 aggregates *)
    let keys =
      if Prng.bool rng then [ Printf.sprintf "%s AS k0" (gen_item rng nodes) ] else []
    in
    let n_aggs = Prng.int_in rng 1 2 in
    let aggs = List.init n_aggs (fun i -> gen_agg rng nodes (Printf.sprintf "a%d" i)) in
    let aliases =
      List.mapi (fun i _ -> Printf.sprintf "k%d" i) keys
      @ List.concat
          (List.mapi
             (fun i (_, sortable) -> if sortable then [ Printf.sprintf "a%d" i ] else [])
             aggs)
    in
    (String.concat ", " (keys @ List.map fst aggs), aliases)
  end
  else begin
    let n = Prng.int_in rng 1 3 in
    let items =
      List.init n (fun i -> Printf.sprintf "%s AS o%d" (gen_item rng nodes) i)
    in
    let distinct = if Prng.int rng 5 = 0 then "DISTINCT " else "" in
    (distinct ^ String.concat ", " items, List.init n (Printf.sprintf "o%d"))
  end

let gen_tail rng aliases =
  let order =
    if Prng.bool rng && aliases <> [] then begin
      let ks =
        Gopt_util.Prng.sample_distinct rng ~n:(List.length aliases)
          ~k:(Prng.int_in rng 1 2)
        |> List.map (fun i ->
               Printf.sprintf "%s %s" (List.nth aliases i)
                 (if Prng.bool rng then "ASC" else "DESC"))
      in
      Printf.sprintf " ORDER BY %s" (String.concat ", " ks)
    end
    else ""
  in
  let skip = if Prng.int rng 5 = 0 then Printf.sprintf " SKIP %d" (Prng.int rng 6) else "" in
  let limit =
    if Prng.int rng 5 < 2 then Printf.sprintf " LIMIT %d" (Prng.int_in rng 1 10) else ""
  in
  order ^ skip ^ limit

let gen_single rng =
  let pattern, nodes = gen_pattern rng in
  let where = gen_where rng nodes in
  let ret, aliases = gen_return rng nodes in
  let tail = gen_tail rng aliases in
  Printf.sprintf "MATCH %s%s RETURN %s%s" pattern where ret tail

(* a UNION-compatible half: single-label scan projecting one alias *)
let gen_union_half rng =
  let label = [| Person; City; Product |].(Prng.int rng 3) in
  let node = { var = "v0"; label } in
  let where = gen_where rng [ node ] in
  Printf.sprintf "MATCH (v0:%s)%s RETURN v0.name AS n" (vname label) where

let generate seed =
  let rng = Prng.create seed in
  if Prng.int rng 10 = 0 then
    let all = if Prng.bool rng then " ALL" else "" in
    Printf.sprintf "%s UNION%s %s" (gen_union_half rng) all (gen_union_half rng)
  else gen_single rng
