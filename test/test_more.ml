(* Additional edge-case coverage: expression semantics, parser corners,
   engine operator corners, and rule interactions. *)

module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
module Cp = Gopt_lang.Cypher_parser
module Gp = Gopt_lang.Gremlin_parser
module Lowering = Gopt_lang.Lowering
module Physical = Gopt_opt.Physical
module Spec = Gopt_opt.Physical_spec
module Rp = Gopt_opt.Rules_pattern
module Rr = Gopt_opt.Rules_relational
module Rule = Gopt_opt.Rule
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Eval = Gopt_exec.Eval
module Value = Gopt_graph.Value
module G = Gopt_graph.Property_graph
open Fixtures

let session = Gopt.Session.create graph

let count q =
  let out = Gopt.run_cypher session q in
  match (Batch.row out.Gopt.result 0).(0) with
  | Rval.Rval (Value.Int n) -> n
  | _ -> Alcotest.fail "expected a count"

(* --- expression semantics ------------------------------------------------- *)

let eval_str src =
  let e = Cp.parse_expression src in
  Eval.eval graph (fun _ -> None) e

let test_expression_semantics () =
  let check src expected =
    Alcotest.(check string) src expected (Value.to_string (eval_str src))
  in
  check "1 + 2 * 3" "7";
  check "(1 + 2) * 3" "9";
  check "10 / 4" "2";
  check "10.0 / 4" "2.5";
  check "7 % 3" "1";
  check "1 < 2 AND 2 < 3" "true";
  check "1 > 2 OR 2 < 3" "true";
  check "NOT 1 = 2" "true";
  check "'abc' STARTS WITH 'ab'" "true";
  check "'abc' ENDS WITH 'bc'" "true";
  check "'abc' CONTAINS 'b'" "true";
  check "'abc' CONTAINS 'x'" "false";
  check "3 IN [1, 2, 3]" "true";
  check "null IS NULL" "true";
  check "1 IS NOT NULL" "true";
  (* three-valued logic *)
  check "null = 1" "null";
  check "null AND false" "false";
  check "null OR true" "true";
  check "null AND true" "null";
  check "1 / 0" "null"

let test_label_function () =
  let out = Gopt.run_cypher session "MATCH (a:Person) RETURN DISTINCT label(a) AS l" in
  Alcotest.(check int) "one label" 1 (Batch.n_rows out.Gopt.result);
  match (Batch.row out.Gopt.result 0).(0) with
  | Rval.Rval (Value.Str "Person") -> ()
  | _ -> Alcotest.fail "expected Person"

(* --- parser corners --------------------------------------------------------- *)

let test_union_all_vs_union () =
  let q base = Printf.sprintf "%s UNION %s" base base in
  let qa base = Printf.sprintf "%s UNION ALL %s" base base in
  let base = "MATCH (a:Person) RETURN a.name AS n" in
  let dedup = Gopt.run_cypher session (q base) in
  let all = Gopt.run_cypher session (qa base) in
  Alcotest.(check int) "union dedups" 4 (Batch.n_rows dedup.Gopt.result);
  Alcotest.(check int) "union all keeps" 8 (Batch.n_rows all.Gopt.result)

let test_rel_property_map () =
  (* KNOWS edges carry no 'since' in the fixture, so the map filters all *)
  Alcotest.(check int) "edge prop map" 0
    (count "MATCH (a:Person)-[k:KNOWS {since: 1999}]->(b:Person) RETURN count(*) AS c")

let test_case_insensitive_keywords () =
  Alcotest.(check int) "keywords any case" 5
    (count "match (a:Person)-[:KNOWS]->(b:Person) return count(*) as c")

let test_comparison_chains_rejected () =
  (* 'a < b < c' should parse as (a < b) < c and not crash evaluation *)
  let out = Gopt.run_cypher session "MATCH (a:Person) RETURN count(*) AS c LIMIT 1" in
  Alcotest.(check int) "sanity" 1 (Batch.n_rows out.Gopt.result)

let test_with_pipeline () =
  (* WITH introduces a new scope; filters on aggregates *)
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WITH a, count(b) AS friends WHERE friends >= 2 \
       RETURN a.name AS n"
  in
  Alcotest.(check int) "only p0 has 2 friends" 1 (Batch.n_rows out.Gopt.result)

let test_where_between_matches () =
  (* p0 and p1 live in c0; their outgoing KNOWS: p0 has 2, p1 has 1 *)
  Alcotest.(check int) "where between matches" 3
    (count
       "MATCH (a:Person)-[:LIVES_IN]->(c:City) WHERE c.name = 'c0' \
        MATCH (a)-[:KNOWS]->(b:Person) RETURN count(*) AS c")

(* --- engine corners --------------------------------------------------------- *)

let test_parallel_edges () =
  (* duplicate edges multiply homomorphisms *)
  let module Schema = Gopt_graph.Schema in
  let b = G.Builder.create schema in
  let p0 = G.Builder.add_vertex b ~vtype:person [] in
  let p1 = G.Builder.add_vertex b ~vtype:person [] in
  ignore (G.Builder.add_edge b ~src:p0 ~dst:p1 ~etype:knows []);
  ignore (G.Builder.add_edge b ~src:p0 ~dst:p1 ~etype:knows []);
  let g2 = G.Builder.freeze b in
  let s2 = Gopt.Session.create g2 in
  let out = Gopt.run_cypher s2 "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c" in
  (match (Batch.row out.Gopt.result 0).(0) with
  | Rval.Rval (Value.Int 2) -> ()
  | _ -> Alcotest.fail "parallel edges should both match");
  (* and the brute-force oracle agrees *)
  Alcotest.(check (float 1e-9)) "oracle" 2.0
    (Gopt_glogue.Motif_counter.count_homomorphisms g2 p_knows)

let test_hop_range () =
  (* 1..2 hops from p0 following KNOWS *)
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person {name: 'p0'})-[:KNOWS*1..2]->(b:Person) RETURN count(*) AS c"
  in
  (* 1 hop: p1, p2; 2 hops: p0->p1->p2, p0->p2->p3 — total 4 *)
  match (Batch.row out.Gopt.result 0).(0) with
  | Rval.Rval (Value.Int 4) -> ()
  | v -> Alcotest.failf "expected 4, got %s" (Format.asprintf "%a" (Rval.pp graph) v)

let test_dedup_on_tags () =
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:LIVES_IN]->(c:City) RETURN DISTINCT c.name AS n"
  in
  Alcotest.(check int) "distinct cities" 2 (Batch.n_rows out.Gopt.result)

let test_order_multiple_keys () =
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person)-[:LIVES_IN]->(c:City) RETURN c.name AS city, a.name AS person \
       ORDER BY city DESC, person ASC"
  in
  let cell i j =
    match (Batch.row out.Gopt.result i).(j) with
    | Rval.Rval (Value.Str s) -> s
    | _ -> Alcotest.fail "expected string"
  in
  Alcotest.(check string) "first city" "c1" (cell 0 0);
  Alcotest.(check string) "first person in c1" "p2" (cell 0 1);
  Alcotest.(check string) "last city" "c0" (cell 3 0)

let test_engine_timeout () =
  (* an 8-hop unbounded walk explodes; the budget must cut it off *)
  let g = Gopt_workloads.Transfer_graph.generate ~accounts:4000 () in
  let account = Gopt_graph.Schema.vtype_id Gopt_workloads.Transfer_graph.schema "Account" in
  let transfer = Gopt_graph.Schema.etype_id Gopt_workloads.Transfer_graph.schema "TRANSFER" in
  let p =
    Pattern.create
      [| pv "s" (Tc.Basic account); pv "t" (Tc.Basic account) |]
      [| pe ~hops:(8, 8) "p" 0 1 (Tc.Basic transfer) |]
  in
  let phys = Gopt_opt.Planner.compile_user_order Spec.graphscope p in
  match Engine.run ~budget:0.2 g phys with
  | exception Engine.Timeout -> ()
  | _batch, _ -> Alcotest.fail "expected Timeout"

let test_union_column_alignment () =
  (* branches project the same aliases in different order: rows must align *)
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person)-[:LIVES_IN]->(c:City {name: 'c0'}) RETURN a.name AS x, c.name AS y \
       UNION MATCH (a:Person)-[:LIVES_IN]->(c:City {name: 'c1'}) RETURN a.name AS x, c.name AS y"
  in
  Alcotest.(check int) "4 rows" 4 (Batch.n_rows out.Gopt.result);
  Batch.iter
    (fun row ->
      match row.(Batch.pos out.Gopt.result "y") with
      | Rval.Rval (Value.Str ("c0" | "c1")) -> ()
      | v -> Alcotest.failf "y is not a city: %s" (Format.asprintf "%a" (Rval.pp graph) v))
    out.Gopt.result

(* --- rule interactions -------------------------------------------------------- *)

let test_join_to_pattern_respects_all_distinct () =
  (* two MATCH clauses, each with 2 edges: after fusion, two All_distinct
     filters with the original scopes must remain *)
  let plan =
    Lowering.cypher schema
      (Cp.parse
         "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) \
          MATCH (a)-[:LIVES_IN]->(ci:City)<-[:LIVES_IN]-(c) RETURN count(*) AS n")
  in
  let rewritten, applied = Rule.fixpoint ~check:true ~schema (Rp.all @ Rr.all) plan in
  Alcotest.(check bool) "join_to_pattern fired" true (List.mem "JoinToPattern" applied);
  let distinct_scopes =
    Logical.fold
      (fun acc n -> match n with Logical.All_distinct (_, tags) -> tags :: acc | _ -> acc)
      [] rewritten
  in
  Alcotest.(check int) "two distinctness scopes" 2 (List.length distinct_scopes);
  List.iter (fun tags -> Alcotest.(check int) "scope of 2 edges" 2 (List.length tags)) distinct_scopes

let test_constant_fold_eliminates_true () =
  let plan = Logical.Select (Logical.Match p_knows, Expr.Const (Value.Bool true)) in
  match Rr.constant_fold.Rule.apply plan with
  | Some (Logical.Match _) -> ()
  | _ -> Alcotest.fail "SELECT(true) should be dropped"

let test_project_merge_fails_on_computed () =
  (* outer uses prop access on a computed alias: substitution must fail *)
  let inner =
    Logical.Project
      (Logical.Match p_knows, [ (Expr.Binop (Expr.Add, Expr.Prop ("a", "age"), Expr.Const (Value.Int 1)), "x") ])
  in
  let outer = Logical.Project (inner, [ (Expr.Prop ("x", "age"), "y") ]) in
  Alcotest.(check bool) "blocked" true (Rr.project_merge.Rule.apply outer = None)

let test_select_pushdown_keeps_left_outer () =
  (* predicates on the right side of a LEFT OUTER JOIN must not push *)
  let join =
    Logical.Join
      { left = Logical.Match p_knows; right = Logical.Match p_to_city; keys = []; kind = Logical.Left_outer }
  in
  let pred = Expr.Binop (Expr.Eq, Expr.Prop ("e", "x"), Expr.Const (Value.Int 1)) in
  let plan = Logical.Select (join, pred) in
  match Rr.select_pushdown.Rule.apply plan with
  | None -> ()
  | Some (Logical.Select (Logical.Join { right = Logical.Match _; _ }, _)) -> ()
  | Some other ->
    Alcotest.failf "unsound push: %s" (Gopt_gir.Plan_printer.to_string other)

let test_aggregate_pushdown_correct_counts () =
  (* BI13-shaped query: group keys from the left match, counts from the
     right; compare default pipeline vs no-rbo execution *)
  let q =
    "MATCH (z:Person)-[:LIVES_IN]->(ci:City {name: 'c0'}) \
     MATCH (z)-[:KNOWS]->(f:Person) \
     RETURN z.name AS n, count(f) AS c ORDER BY n ASC"
  in
  let full = Gopt.run_cypher session q in
  let naive =
    Gopt.run_cypher
      ~config:
        {
          (Gopt_opt.Planner.default_config ()) with
          Gopt_opt.Planner.enable_rbo = false;
          enable_field_trim = false;
        }
      session q
  in
  Alcotest.(check int) "same rows" (Batch.n_rows naive.Gopt.result) (Batch.n_rows full.Gopt.result);
  for i = 0 to Batch.n_rows full.Gopt.result - 1 do
    Alcotest.(check bool) "same row" true
      (Batch.row full.Gopt.result i = Batch.row naive.Gopt.result i)
  done

let test_empty_graph () =
  let module Schema = Gopt_graph.Schema in
  let empty = G.Builder.freeze (G.Builder.create schema) in
  let s = Gopt.Session.create empty in
  let out = Gopt.run_cypher s "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c" in
  match (Batch.row out.Gopt.result 0).(0) with
  | Rval.Rval (Value.Int 0) -> ()
  | _ -> Alcotest.fail "count over empty graph should be 0"

let test_cartesian_product () =
  (* disconnected pattern: cartesian semantics *)
  Alcotest.(check int) "4 persons x 2 cities" 8
    (count "MATCH (a:Person), (c:City) RETURN count(*) AS c")

let () =
  Alcotest.run "more"
    [
      ( "expressions",
        [
          Alcotest.test_case "semantics" `Quick test_expression_semantics;
          Alcotest.test_case "label()" `Quick test_label_function;
        ] );
      ( "parser",
        [
          Alcotest.test_case "union vs union all" `Quick test_union_all_vs_union;
          Alcotest.test_case "rel property map" `Quick test_rel_property_map;
          Alcotest.test_case "case insensitive" `Quick test_case_insensitive_keywords;
          Alcotest.test_case "comparison chain" `Quick test_comparison_chains_rejected;
          Alcotest.test_case "with pipeline" `Quick test_with_pipeline;
          Alcotest.test_case "where between matches" `Quick test_where_between_matches;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "hop range" `Quick test_hop_range;
          Alcotest.test_case "dedup on tags" `Quick test_dedup_on_tags;
          Alcotest.test_case "order multiple keys" `Quick test_order_multiple_keys;
          Alcotest.test_case "timeout" `Quick test_engine_timeout;
          Alcotest.test_case "union alignment" `Quick test_union_column_alignment;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
        ] );
      ( "rules",
        [
          Alcotest.test_case "join keeps distinct scopes" `Quick
            test_join_to_pattern_respects_all_distinct;
          Alcotest.test_case "constant fold true" `Quick test_constant_fold_eliminates_true;
          Alcotest.test_case "project merge blocked" `Quick test_project_merge_fails_on_computed;
          Alcotest.test_case "left outer pushdown" `Quick test_select_pushdown_keeps_left_outer;
          Alcotest.test_case "aggregate pushdown counts" `Quick
            test_aggregate_pushdown_correct_counts;
        ] );
    ]
