(* Tests for the prepared-query / plan-cache subsystem (gopt_cache + the
   Gopt façade glue):

   - Plan_cache: LRU behaviour, counters, disabled mode, and a multi-domain
     hammering smoke test for the mutex-guarded critical sections.
   - Fingerprint: whitespace-insensitivity, literal- and epoch-sensitivity,
     and auto-parameterization soundness (label comparisons and IN-lists
     stay inline).
   - Parameter errors: the descriptive undefined-$param message at parse
     time and through the prepared path.
   - Plan_codec: qcheck roundtrip stability over every workload query's
     CBO output, including plans carrying Param placeholders.
   - Differential: cached execution is byte-identical to the cold path on
     the full workload suite and on 50 generated random queries, across
     5 distinct parameter bindings, across workers 1 and 4, and after a
     forced stats-epoch invalidation. *)

module Plan_cache = Gopt_cache.Plan_cache
module Fingerprint = Gopt_cache.Fingerprint
module Cp = Gopt_lang.Cypher_parser
module Expr = Gopt_pattern.Expr
module Expr_type = Gopt_check.Expr_type
module Physical = Gopt_opt.Physical
module Planner = Gopt_opt.Planner
module Plan_codec = Gopt_opt.Plan_codec
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Queries = Gopt_workloads.Queries
module Prng = Gopt_util.Prng

(* --- LRU cache ----------------------------------------------------------- *)

let test_lru_basic () =
  let c = Plan_cache.create ~capacity:3 () in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Plan_cache.add c "c" 3;
  Alcotest.(check int) "3 entries" 3 (Plan_cache.length c);
  Alcotest.(check (option int)) "a hit" (Some 1) (Plan_cache.find c "a");
  (* a was just promoted, so adding d evicts b (the least recently used) *)
  Plan_cache.add c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Plan_cache.find c "a");
  Alcotest.(check (option int)) "c survives" (Some 3) (Plan_cache.find c "c");
  Alcotest.(check (option int)) "d present" (Some 4) (Plan_cache.find c "d");
  let st = Plan_cache.stats c in
  Alcotest.(check int) "hits" 4 st.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 st.Plan_cache.misses;
  Alcotest.(check int) "evictions" 1 st.Plan_cache.evictions;
  Alcotest.(check int) "capacity" 3 st.Plan_cache.capacity

let test_lru_overwrite () =
  let c = Plan_cache.create ~capacity:2 () in
  Plan_cache.add c "k" 1;
  Plan_cache.add c "k" 2;
  Alcotest.(check int) "still one entry" 1 (Plan_cache.length c);
  Alcotest.(check (option int)) "new value" (Some 2) (Plan_cache.find c "k");
  Alcotest.(check int) "no eviction" 0 (Plan_cache.stats c).Plan_cache.evictions

let test_lru_disabled () =
  let c = Plan_cache.create ~capacity:0 () in
  Plan_cache.add c "k" 1;
  Alcotest.(check int) "stores nothing" 0 (Plan_cache.length c);
  Alcotest.(check (option int)) "always misses" None (Plan_cache.find c "k")

let test_lru_invalidate () =
  let c = Plan_cache.create ~capacity:8 () in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Alcotest.(check int) "2 dropped" 2 (Plan_cache.invalidate_all c);
  Alcotest.(check int) "empty" 0 (Plan_cache.length c);
  let st = Plan_cache.stats c in
  Alcotest.(check int) "invalidations" 2 st.Plan_cache.invalidations;
  Alcotest.(check int) "not evictions" 0 st.Plan_cache.evictions;
  Alcotest.(check int) "none dropped on empty" 0 (Plan_cache.invalidate_all c)

(* Exhaustive eviction order check: fill, touch in a known order, then
   overflow one by one and verify the LRU victim each time. *)
let test_lru_order () =
  let c = Plan_cache.create ~capacity:3 () in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Plan_cache.add c "c" 3;
  ignore (Plan_cache.find c "b");
  ignore (Plan_cache.find c "a");
  (* recency: a > b > c *)
  Plan_cache.add c "d" 4;
  Alcotest.(check (option int)) "c was LRU" None (Plan_cache.find c "c");
  Plan_cache.add c "e" 5;
  (* after c's eviction and d/e inserts: recency e > d > a > b, b evicted *)
  Alcotest.(check (option int)) "b next" None (Plan_cache.find c "b");
  Alcotest.(check (option int)) "a still in" (Some 1) (Plan_cache.find c "a")

let test_lru_domains () =
  let c = Plan_cache.create ~capacity:16 () in
  let worker id () =
    let rng = Prng.create (1000 + id) in
    for i = 0 to 999 do
      let key = Printf.sprintf "k%d" (Prng.int rng 40) in
      if i mod 3 = 0 then Plan_cache.add c key (id * 10000 + i)
      else ignore (Plan_cache.find c key);
      if i mod 250 = 0 then ignore (Plan_cache.invalidate_all c)
    done
  in
  let domains = List.init 4 (fun id -> Domain.spawn (worker id)) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "within capacity" true (Plan_cache.length c <= 16);
  let st = Plan_cache.stats c in
  Alcotest.(check bool) "counters accumulated" true
    (st.Plan_cache.hits + st.Plan_cache.misses > 0)

(* --- fingerprints -------------------------------------------------------- *)

let digest ?(config = "cfg") ?(epoch = 0) src =
  Fingerprint.digest ~config ~epoch (Cp.parse src)

let test_fp_whitespace () =
  Alcotest.(check string) "formatting does not matter"
    (digest "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > 30 RETURN b.name AS n")
    (digest
       "MATCH   (a:Person)-[:KNOWS]->(b:Person)\n\
       \   WHERE a.age > 30\n\
       \   RETURN b.name AS n")

let test_fp_sensitivity () =
  let base = "MATCH (a:Person) WHERE a.age > 30 RETURN a.name AS n" in
  Alcotest.(check bool) "literal changes the key" true
    (digest base <> digest "MATCH (a:Person) WHERE a.age > 31 RETURN a.name AS n");
  Alcotest.(check bool) "config changes the key" true
    (digest ~config:"A" base <> digest ~config:"B" base);
  Alcotest.(check bool) "epoch changes the key" true
    (digest ~epoch:0 base <> digest ~epoch:1 base);
  Alcotest.(check bool) "query shape changes the key" true
    (digest base <> digest "MATCH (a:Person) WHERE a.age > 30 RETURN a.age AS n")

let test_fp_auto_parameterize () =
  let q v =
    Cp.parse
      (Printf.sprintf
         "MATCH (a:Person) WHERE a.age > %d AND a.name = 'p%d' RETURN a.name AS n" v v)
  in
  let a1, b1 = Fingerprint.auto_parameterize (q 30) in
  let a2, b2 = Fingerprint.auto_parameterize (q 55) in
  Alcotest.(check bool) "literal-free ASTs collide" true (a1 = a2);
  Alcotest.(check string) "collapsed keys equal"
    (Fingerprint.digest ~config:"c" ~epoch:0 a1)
    (Fingerprint.digest ~config:"c" ~epoch:0 a2);
  Alcotest.(check int) "two slots extracted" 2 (List.length b1);
  Alcotest.(check bool) "bindings carry the literals" true
    (b1 = [ ("@p0", [ Value.Int 30 ]); ("@p1", [ Value.Str "p30" ]) ]
    && b2 = [ ("@p0", [ Value.Int 55 ]); ("@p1", [ Value.Str "p55" ]) ])

let test_fp_auto_param_soundness () =
  (* label comparisons drive type narrowing: their constants must stay *)
  let ast, bs =
    Fingerprint.auto_parameterize
      (Cp.parse "MATCH (a:Person) WHERE label(a) = 'Person' RETURN count(*) AS c")
  in
  Alcotest.(check int) "label literal not lifted" 0 (List.length bs);
  Alcotest.(check bool) "AST unchanged" true
    (ast = Cp.parse "MATCH (a:Person) WHERE label(a) = 'Person' RETURN count(*) AS c");
  (* IN-list value sets shape the pattern: not lifted either *)
  let _, bs2 =
    Fingerprint.auto_parameterize
      (Cp.parse "MATCH (a:Person) WHERE a.name IN ['p0', 'p1'] RETURN count(*) AS c")
  in
  Alcotest.(check int) "IN values not lifted" 0 (List.length bs2);
  (* booleans and NULL stay; the scalar operand of IN is still lifted *)
  let _, bs3 =
    Fingerprint.auto_parameterize
      (Cp.parse "MATCH (a:Person) WHERE a.age + 1 IN [19, 20] RETURN count(*) AS c")
  in
  Alcotest.(check bool) "arithmetic literal lifted" true
    (bs3 = [ ("@p0", [ Value.Int 1 ]) ])

(* --- parameter diagnostics ------------------------------------------------ *)

let check_raises_containing name needles f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" name
  | exception (Cp.Parse_error msg | Invalid_argument msg) ->
    List.iter
      (fun needle ->
        let contains =
          let nl = String.length needle and hl = String.length msg in
          let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
          go 0
        in
        if not contains then
          Alcotest.failf "%s: message %S does not mention %S" name msg needle)
      needles

let test_param_parse_errors () =
  check_raises_containing "no params supplied" [ "$x"; "supplied: none" ] (fun () ->
      Cp.parse "MATCH (a:Person) WHERE a.age > $x RETURN a.name AS n");
  check_raises_containing "wrong name supplied" [ "$x"; "$lo"; "$hi" ] (fun () ->
      Cp.parse
        ~params:[ ("lo", [ Value.Int 1 ]); ("hi", [ Value.Int 9 ]) ]
        "MATCH (a:Person) WHERE a.age > $x RETURN a.name AS n");
  (* defer mode: scalars become placeholders, but IN-list params must bind *)
  check_raises_containing "deferred IN param still required" [ "$ids"; "supplied: none" ]
    (fun () -> Cp.parse ~defer_params:true "MATCH (a:Person) WHERE a.age IN $ids RETURN a.name AS n");
  let ast =
    Cp.parse ~defer_params:true "MATCH (a:Person) WHERE a.age > $x RETURN a.name AS n"
  in
  Alcotest.(check bool) "defer mode parses without bindings" true
    (match ast.Gopt_lang.Cypher_ast.parts with _ :: _ -> true | [] -> false)

let fixture_session = lazy (Gopt.Session.create Fixtures.graph)

let test_param_execution_errors () =
  let s = Lazy.force fixture_session in
  let prepared =
    Gopt.prepare_cypher s "MATCH (a:Person) WHERE a.age > $lo RETURN a.name AS n"
  in
  Alcotest.(check (list string)) "declared params" [ "lo" ] (Gopt.Prepared.params prepared);
  check_raises_containing "unbound at execution" [ "$lo"; "supplied: none" ] (fun () ->
      Gopt.Prepared.execute prepared);
  check_raises_containing "wrong binding at execution" [ "$lo"; "$hi" ] (fun () ->
      Gopt.Prepared.execute ~params:[ ("hi", [ Value.Int 3 ]) ] prepared);
  check_raises_containing "multi-value scalar" [ "$lo"; "2 values" ] (fun () ->
      Gopt.Prepared.execute ~params:[ ("lo", [ Value.Int 1; Value.Int 2 ]) ] prepared)

let test_param_typing () =
  let lookup _ = None in
  let ty, ds =
    Expr_type.infer
      ~param_ty:(fun _ -> Some Expr_type.Int)
      ~lookup ~path:"t"
      (Expr.Binop (Expr.Add, Expr.Param "x", Expr.Const (Value.Int 1)))
  in
  Alcotest.(check string) "declared scalar kind flows through" "int"
    (Expr_type.to_string ty);
  Alcotest.(check int) "no diagnostics" 0 (List.length ds);
  let _, ds2 =
    Expr_type.infer
      ~param_ty:(fun _ -> Some Expr_type.Path)
      ~lookup ~path:"t" (Expr.Param "x")
  in
  Alcotest.(check bool) "non-scalar parameter kind rejected" true (List.length ds2 > 0);
  let ty3, ds3 = Expr_type.infer ~lookup ~path:"t" (Expr.Param "x") in
  Alcotest.(check string) "undeclared is any" "any" (Expr_type.to_string ty3);
  Alcotest.(check int) "undeclared is fine" 0 (List.length ds3)

(* --- Plan_codec roundtrip (qcheck) ---------------------------------------- *)

let ldbc_session =
  lazy
    (let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
     Gopt.Session.create g)

let workload_queries =
  Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc

let workload_plans =
  lazy
    (let s = Lazy.force ldbc_session in
     List.map
       (fun (q : Queries.query) ->
         (q.Queries.name, fst (Gopt.plan_cypher ~use_cache:false s q.Queries.cypher)))
       workload_queries)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"plan_codec: decode . encode = id over CBO output"
    ~count:(List.length workload_queries)
    QCheck.(map (fun i -> abs i) small_int)
    (fun i ->
      let plans = Lazy.force workload_plans in
      let name, plan = List.nth plans (i mod List.length plans) in
      let enc = Plan_codec.encode plan in
      let dec = Plan_codec.decode enc in
      if dec <> plan then QCheck.Test.fail_reportf "%s: decode <> original" name;
      if Plan_codec.encode dec <> enc then
        QCheck.Test.fail_reportf "%s: re-encode unstable" name;
      true)

let prop_codec_roundtrip_params =
  QCheck.Test.make ~name:"plan_codec: roundtrip preserves Param placeholders" ~count:20
    QCheck.(map (fun i -> abs i) small_int)
    (fun i ->
      let s = Lazy.force fixture_session in
      let src =
        Printf.sprintf
          "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > $lo AND b.age < $hi%d \
           RETURN a.name AS n"
          (i mod 3)
      in
      let plan, _ = Gopt.plan_cypher ~use_cache:true s src in
      let dec = Plan_codec.decode (Plan_codec.encode plan) in
      if dec <> plan then QCheck.Test.fail_reportf "param plan: decode <> original";
      Physical.params dec = Physical.params plan
      && List.length (Physical.params plan) = 2)

(* --- differential: cached vs cold ----------------------------------------- *)

let render g b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "|" (Batch.fields b));
  Batch.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Array.iter
        (fun v ->
          Buffer.add_string buf (Format.asprintf "%a" (Rval.pp g) v);
          Buffer.add_char buf '|')
        row)
    b;
  Buffer.contents buf

let test_workload_cached_vs_cold () =
  let s = Lazy.force ldbc_session in
  let g = Gopt.Session.graph s in
  List.iter
    (fun (q : Queries.query) ->
      let cold = Gopt.run_cypher ~use_cache:false s q.Queries.cypher in
      let warm1 = Gopt.run_cypher s q.Queries.cypher in
      let warm2 = Gopt.run_cypher s q.Queries.cypher in
      (match warm2.Gopt.report.Planner.plan_cache with
      | Some note ->
        Alcotest.(check bool) (q.Queries.name ^ ": second run hits") true
          note.Planner.cache_hit
      | None -> Alcotest.failf "%s: no cache note on cached run" q.Queries.name);
      Alcotest.(check string)
        (q.Queries.name ^ ": cold = warm")
        (render g cold.Gopt.result) (render g warm1.Gopt.result);
      Alcotest.(check string)
        (q.Queries.name ^ ": warm stable")
        (render g warm1.Gopt.result) (render g warm2.Gopt.result);
      (* the cached plan is worker-count invisible *)
      let b1, _ = Engine.run ~workers:1 ~morsel_size:32 g warm2.Gopt.physical in
      let b4, _ = Engine.run ~workers:4 ~morsel_size:32 g warm2.Gopt.physical in
      Alcotest.(check string)
        (q.Queries.name ^ ": cached plan, workers 1 = 4")
        (render g b1) (render g b4))
    workload_queries

let test_random_cached_vs_cold () =
  let s = Lazy.force ldbc_session in
  ignore s;
  (* Gen_query targets the Fixtures schema, so run these on that session *)
  let s = Lazy.force fixture_session in
  let g = Gopt.Session.graph s in
  for seed = 0 to 49 do
    let q = Gen_query.generate seed in
    match
      let cold = Gopt.run_cypher ~use_cache:false s q in
      let _warm1 = Gopt.run_cypher s q in
      let warm2 = Gopt.run_cypher s q in
      (cold, warm2)
    with
    | cold, warm ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: cold = cached" seed)
        (render g cold.Gopt.result) (render g warm.Gopt.result)
    | exception e ->
      Alcotest.failf "seed %d: %s\nquery:\n  %s" seed (Printexc.to_string e) q
  done

(* 5 distinct bindings through one prepared statement, each checked
   byte-identical against the cold parse-time-substitution path, at both
   worker counts; then a forced stats-epoch invalidation, after which the
   statement replans (miss) and still agrees. *)
let test_prepared_bindings_and_epoch () =
  let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
  let s = Gopt.Session.create g in
  let src =
    "MATCH (p:Person)-[:KNOWS]->(q:Person) WHERE p.birthday > $lo AND q.gender = $g \
     RETURN p.firstName AS a, q.firstName AS b ORDER BY a ASC, b ASC LIMIT 40"
  in
  let prepared = Gopt.prepare_cypher s src in
  let bindings =
    [
      [ ("lo", [ Value.Int 1980 ]); ("g", [ Value.Str "male" ]) ];
      [ ("lo", [ Value.Int 1990 ]); ("g", [ Value.Str "female" ]) ];
      [ ("lo", [ Value.Int 1960 ]); ("g", [ Value.Str "male" ]) ];
      [ ("lo", [ Value.Int 2000 ]); ("g", [ Value.Str "female" ]) ];
      [ ("lo", [ Value.Int 1975 ]); ("g", [ Value.Str "male" ]) ];
    ]
  in
  let check_binding i params =
    let cold = Gopt.run_cypher ~use_cache:false ~params s src in
    let prep = Gopt.Prepared.execute ~params prepared in
    Alcotest.(check string)
      (Printf.sprintf "binding %d: prepared = cold" i)
      (render g cold.Gopt.result) (render g prep.Gopt.result);
    let b1, _ = Engine.run ~workers:1 ~params g prep.Gopt.physical in
    let b4, _ = Engine.run ~workers:4 ~params g prep.Gopt.physical in
    Alcotest.(check string)
      (Printf.sprintf "binding %d: workers 1 = 4" i)
      (render g b1) (render g b4)
  in
  List.iteri check_binding bindings;
  (* after the first execute, the rest were hits *)
  let st = Gopt.Session.plan_cache_stats s in
  Alcotest.(check int) "one optimization for 5 bindings" 1 st.Plan_cache.misses;
  Alcotest.(check int) "four hits" 4 st.Plan_cache.hits;
  (* stats-epoch bump: cache is dropped AND the fingerprint moves *)
  Gopt.Session.bump_stats_epoch s;
  Alcotest.(check int) "epoch advanced" 1 (Gopt.Session.stats_epoch s);
  let st = Gopt.Session.plan_cache_stats s in
  Alcotest.(check bool) "invalidations counted" true (st.Plan_cache.invalidations > 0);
  Alcotest.(check int) "cache emptied" 0 st.Plan_cache.entries;
  let post = Gopt.Prepared.execute ~params:(List.hd bindings) prepared in
  (match post.Gopt.report.Planner.plan_cache with
  | Some note -> Alcotest.(check bool) "post-bump run replans" false note.Planner.cache_hit
  | None -> Alcotest.fail "post-bump run has no cache note");
  let cold = Gopt.run_cypher ~use_cache:false ~params:(List.hd bindings) s src in
  Alcotest.(check string) "post-bump result identical"
    (render g cold.Gopt.result) (render g post.Gopt.result)

let test_auto_params_share_plan () =
  let s = Lazy.force fixture_session in
  let g = Gopt.Session.graph s in
  let src v =
    Printf.sprintf
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.age > %d RETURN a.name AS n, \
       b.name AS m ORDER BY n ASC, m ASC"
      v
  in
  let p1 = Gopt.prepare_cypher ~auto_params:true s (src 20) in
  let p2 = Gopt.prepare_cypher ~auto_params:true s (src 40) in
  Alcotest.(check (list string)) "one slot" [ "@p0" ] (Gopt.Prepared.params p1);
  let st0 = Gopt.Session.plan_cache_stats s in
  let r1 = Gopt.Prepared.execute p1 in
  let r2 = Gopt.Prepared.execute p2 in
  let st1 = Gopt.Session.plan_cache_stats s in
  Alcotest.(check int) "templates share one cache entry" 1
    (st1.Plan_cache.misses - st0.Plan_cache.misses);
  Alcotest.(check int) "second template hits" 1 (st1.Plan_cache.hits - st0.Plan_cache.hits);
  let cold v = Gopt.run_cypher ~use_cache:false s (src v) in
  Alcotest.(check string) "auto-param binding 20 = cold"
    (render g (cold 20).Gopt.result) (render g r1.Gopt.result);
  Alcotest.(check string) "auto-param binding 40 = cold"
    (render g (cold 40).Gopt.result) (render g r2.Gopt.result)

(* session-level LRU pressure: a tiny cache evicts and re-optimizes without
   affecting results *)
let test_session_eviction () =
  let s = Gopt.Session.create ~plan_cache_capacity:2 Fixtures.graph in
  let g = Fixtures.graph in
  let queries =
    [
      "MATCH (a:Person) RETURN a.name AS n ORDER BY n ASC";
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c";
      "MATCH (a:Person)-[:LIVES_IN]->(c:City) RETURN c.name AS n ORDER BY n ASC";
    ]
  in
  let renders = List.map (fun q -> render g (Gopt.run_cypher s q).Gopt.result) queries in
  (* third insert evicted the first entry; running q0 again must miss *)
  let st0 = Gopt.Session.plan_cache_stats s in
  Alcotest.(check int) "capacity respected" 2 st0.Plan_cache.entries;
  Alcotest.(check bool) "eviction happened" true (st0.Plan_cache.evictions >= 1);
  let again = Gopt.run_cypher s (List.hd queries) in
  let st1 = Gopt.Session.plan_cache_stats s in
  Alcotest.(check int) "evicted entry re-misses" (st0.Plan_cache.misses + 1)
    st1.Plan_cache.misses;
  Alcotest.(check string) "evicted re-run identical" (List.hd renders)
    (render g again.Gopt.result)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "basic hit/miss/evict" `Quick test_lru_basic;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite;
          Alcotest.test_case "capacity 0 disables" `Quick test_lru_disabled;
          Alcotest.test_case "invalidate_all" `Quick test_lru_invalidate;
          Alcotest.test_case "eviction order" `Quick test_lru_order;
          Alcotest.test_case "4 domains hammering" `Quick test_lru_domains;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "whitespace-insensitive" `Quick test_fp_whitespace;
          Alcotest.test_case "literal/config/epoch sensitivity" `Quick test_fp_sensitivity;
          Alcotest.test_case "auto-parameterize collapses literals" `Quick
            test_fp_auto_parameterize;
          Alcotest.test_case "auto-parameterize soundness" `Quick
            test_fp_auto_param_soundness;
        ] );
      ( "params",
        [
          Alcotest.test_case "parse-time diagnostics" `Quick test_param_parse_errors;
          Alcotest.test_case "execution-time diagnostics" `Quick
            test_param_execution_errors;
          Alcotest.test_case "static typing of placeholders" `Quick test_param_typing;
        ] );
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [ prop_codec_roundtrip; prop_codec_roundtrip_params ] );
      ( "differential",
        [
          Alcotest.test_case "workload: cached = cold" `Quick test_workload_cached_vs_cold;
          Alcotest.test_case "50 random queries: cached = cold" `Quick
            test_random_cached_vs_cold;
          Alcotest.test_case "prepared bindings + epoch invalidation" `Quick
            test_prepared_bindings_and_epoch;
          Alcotest.test_case "auto-params share one plan" `Quick
            test_auto_params_share_plan;
          Alcotest.test_case "session LRU eviction" `Quick test_session_eviction;
        ] );
    ]
