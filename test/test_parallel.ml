(* Differential and determinism tests for the morsel-driven parallel engine
   (Gopt_exec.Parallel, reached through [Engine.run ~workers]).

   The core claims under test:

   1. Worker-count invisibility — for any plan, [run ~workers:1] and
      [run ~workers:4] produce BYTE-IDENTICAL output (same rows, same
      order, same float bit patterns), because morsel partitioning depends
      only on (plan, graph, morsel_size) and every merge point folds
      partials in morsel-index order.

   2. Agreement with the sequential engines — the parallel result is the
      same bag of rows as [Engine.run_materialized] (and hence the
      pipelined sequential engine, which test_exec already checks against
      it). Plans that cut at possibly-tied boundaries (LIMIT / SKIP /
      fused top-k) may legitimately keep a different subset of tied rows,
      so those queries compare by cardinality instead.

   Claims are exercised on ~220 randomly generated Cypher queries
   (see [Gen_query]; failures print the seed and the query so runs can be
   replayed), on the full LDBC workload suite, and on a repeated-run
   determinism check cycling through worker counts. *)

module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Op_trace = Gopt_exec.Op_trace
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng
open Fixtures

(* A larger instance of the Fixtures schema, sized so that morsel_size 16
   splits every scan into several morsels (90 persons -> 6 morsels).
   Property values reuse the Fixtures naming scheme ('p0'..'p7', ...) so the
   constants produced by [Gen_query] select non-trivial subsets, and the
   mod-8 names create genuine duplicate keys for DISTINCT / group-by. *)
let big_graph =
  let rng = Prng.create 7 in
  let b = G.Builder.create schema in
  let persons =
    Array.init 90 (fun i ->
        G.Builder.add_vertex b ~vtype:person
          [
            ("name", Value.Str (Printf.sprintf "p%d" (i mod 8)));
            ("age", Value.Int (Prng.int_in rng 18 60));
          ])
  in
  let cities =
    Array.init 6 (fun i ->
        G.Builder.add_vertex b ~vtype:city
          [ ("name", Value.Str (Printf.sprintf "c%d" i)) ])
  in
  let products =
    Array.init 12 (fun i ->
        G.Builder.add_vertex b ~vtype:product
          [ ("name", Value.Str (Printf.sprintf "g%d" (i mod 8))) ])
  in
  let pick a = a.(Prng.int rng (Array.length a)) in
  Array.iter
    (fun p ->
      for _ = 1 to Prng.int rng 4 do
        ignore
          (G.Builder.add_edge b ~src:p ~dst:(pick persons) ~etype:knows
             [ ("since", Value.Int (Prng.int_in rng 2000 2024)) ])
      done;
      ignore (G.Builder.add_edge b ~src:p ~dst:(pick cities) ~etype:lives_in []);
      for _ = 1 to Prng.int rng 3 do
        ignore (G.Builder.add_edge b ~src:p ~dst:(pick products) ~etype:purchased [])
      done)
    persons;
  Array.iter
    (fun g ->
      ignore (G.Builder.add_edge b ~src:g ~dst:(pick cities) ~etype:produced_in []))
    products;
  G.Builder.freeze b

let session = lazy (Gopt.Session.create big_graph)

(* Full textual render of a batch — fields, then every row in order. Two
   batches render equal iff they are byte-identical (order included). *)
let render g b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "|" (Batch.fields b));
  Batch.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Array.iter
        (fun v ->
          Buffer.add_string buf (Format.asprintf "%a" (Rval.pp g) v);
          Buffer.add_char buf '|')
        row)
    b;
  Buffer.contents buf

let canon_rows b =
  let rows = ref [] in
  Batch.iter (fun row -> rows := Array.to_list row :: !rows) b;
  List.sort (List.compare Rval.compare) !rows

(* One differential check: workers:1 vs workers:4 byte-identical (at the
   given pipelined chunk granularity), the row-interpreter path
   byte-identical to the kernels, then all against the materialized oracle
   (bag equality, or cardinality when the plan cuts on possibly-tied
   boundaries). *)
let check_one ?chunk_size ~name ~g physical =
  let b1, _ = Engine.run ?chunk_size ~workers:1 ~morsel_size:16 g physical in
  let b4, s4 = Engine.run ?chunk_size ~workers:4 ~morsel_size:16 g physical in
  Alcotest.(check string) (name ^ ": workers 1 = workers 4") (render g b1) (render g b4);
  Alcotest.(check bool) (name ^ ": parallel trace present") true (s4.Engine.op_trace <> None);
  let b_nv, _ =
    Engine.run ?chunk_size ~workers:4 ~morsel_size:16 ~vectorize:false g physical
  in
  Alcotest.(check string) (name ^ ": vectorize off = on") (render g b4) (render g b_nv);
  let b_mat, _ = Engine.run_materialized g physical in
  Alcotest.(check (list string))
    (name ^ ": fields vs oracle") (Batch.fields b_mat) (Batch.fields b4);
  if plan_has_tie_cut physical then
    Alcotest.(check int) (name ^ ": rows vs oracle") (Batch.n_rows b_mat) (Batch.n_rows b4)
  else
    Alcotest.(check bool)
      (name ^ ": same bag as oracle")
      true
      (List.equal (List.equal Rval.equal) (canon_rows b_mat) (canon_rows b4))

(* satellite 1: ~220 random queries through the full pipeline *)
let n_random = 220

let test_random_differential () =
  let s = Lazy.force session in
  (* cycle the pipelined chunk granularity across seeds: every third query
     runs at a pathological chunk size (1 or 7) instead of the default *)
  let chunk_sizes = [| 1; 7; 1024 |] in
  for seed = 0 to n_random - 1 do
    let q = Gen_query.generate seed in
    let chunk_size = chunk_sizes.(seed mod 3) in
    match Gopt.plan_cypher s q with
    | physical, _ -> (
      try
        check_one ~chunk_size
          ~name:(Printf.sprintf "seed %d (chunk=%d)" seed chunk_size)
          ~g:big_graph physical
      with e ->
        (* attach the reproduction recipe: the seed and the exact query *)
        Alcotest.failf "seed %d: %s\nquery:\n  %s" seed (Printexc.to_string e) q)
    | exception e ->
      Alcotest.failf "seed %d failed to plan (%s); query:\n  %s" seed
        (Printexc.to_string e) q
  done

(* satellite 1 (workload half): the full LDBC workload suite at workers=4
   matches workers=1 exactly, and the oracle up to tie cuts *)
module Queries = Gopt_workloads.Queries

let test_workload_differential () =
  let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
  let s = Gopt.Session.create g in
  List.iter
    (fun (q : Queries.query) ->
      let physical, _ = Gopt.plan_cypher s q.Queries.cypher in
      let b_mat, _ = Engine.run_materialized g physical in
      List.iter
        (fun chunk_size ->
          let name = Printf.sprintf "%s (chunk=%d)" q.Queries.name chunk_size in
          let b1, _ = Engine.run ~chunk_size ~workers:1 ~morsel_size:32 g physical in
          let b4, _ = Engine.run ~chunk_size ~workers:4 ~morsel_size:32 g physical in
          Alcotest.(check string)
            (name ^ ": workers 1 = workers 4")
            (render g b1) (render g b4);
          let b_nv, _ =
            Engine.run ~chunk_size ~workers:4 ~morsel_size:32 ~vectorize:false g
              physical
          in
          Alcotest.(check string) (name ^ ": vectorize off = on") (render g b4)
            (render g b_nv);
          Alcotest.(check (list string))
            (name ^ ": fields vs oracle")
            (Batch.fields b_mat) (Batch.fields b4);
          if plan_has_tie_cut physical then
            Alcotest.(check int)
              (name ^ ": rows vs oracle")
              (Batch.n_rows b_mat) (Batch.n_rows b4)
          else
            Alcotest.(check bool)
              (name ^ ": same bag as oracle")
              true
              (List.equal (List.equal Rval.equal) (canon_rows b_mat) (canon_rows b4)))
        [ 1; 7; 1024 ])
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

(* satellite 4: repeated runs with different worker counts are byte-identical —
   including LIMIT + ORDER BY (tie-cutting top-k) and top-level aggregation
   (float-summing merge), the two places nondeterminism would show first *)
let determinism_queries =
  [
    "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN q.name AS n, count(*) AS c \
     ORDER BY c DESC, n ASC LIMIT 8";
    "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN count(*) AS c, sum(p.age) AS s, \
     avg(q.age) AS a";
    "MATCH (p:Person) RETURN p.age AS a, collect(p.name) AS ns ORDER BY a ASC LIMIT 5";
  ]

let test_determinism () =
  let s = Lazy.force session in
  List.iter
    (fun q ->
      let physical, _ = Gopt.plan_cypher s q in
      let reference =
        render big_graph (fst (Engine.run ~workers:1 ~morsel_size:16 big_graph physical))
      in
      List.iteri
        (fun i w ->
          let out =
            render big_graph
              (fst (Engine.run ~workers:w ~morsel_size:16 big_graph physical))
          in
          Alcotest.(check string) (Printf.sprintf "%s: run %d (workers=%d)" q i w)
            reference out)
        [ 1; 2; 3; 4; 8; 2; 4; 8; 3; 1 ])
    determinism_queries

(* exchange accounting: workers_used is recorded, exchange rows are counted,
   and they feed comm_rows only under a parallel profile *)
let test_parallel_accounting () =
  let s = Lazy.force session in
  let physical, _ =
    Gopt.plan_cypher s "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN count(*) AS c"
  in
  let _, gs =
    Engine.run ~profile:Engine.graphscope_profile ~workers:3 ~morsel_size:16 big_graph
      physical
  in
  Alcotest.(check int) "workers_used" 3 gs.Engine.workers_used;
  Alcotest.(check bool) "exchange rows counted" true (gs.Engine.exchange_rows > 0);
  Alcotest.(check bool)
    (Printf.sprintf "exchange (%d rows) charged to comm (%d rows)"
       gs.Engine.exchange_rows gs.Engine.comm_rows)
    true
    (gs.Engine.comm_rows >= gs.Engine.exchange_rows);
  (match gs.Engine.op_trace with
  | None -> Alcotest.fail "no trace on parallel run"
  | Some tr ->
    let txt = Op_trace.to_string tr in
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "trace has exchange node" true (contains "exchange[" txt);
    Alcotest.(check bool) "trace has worker rollups" true (contains "worker " txt));
  let _, n4 =
    Engine.run ~profile:Engine.neo4j_profile ~workers:3 ~morsel_size:16 big_graph
      physical
  in
  Alcotest.(check bool) "neo4j profile still records exchange" true
    (n4.Engine.exchange_rows > 0);
  Alcotest.(check int) "neo4j profile charges no comm" 0 n4.Engine.comm_rows

(* the generator itself: deterministic in the seed, and every query it emits
   is clean under the static checker *)
let test_generator_deterministic () =
  for seed = 0 to 49 do
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (Gen_query.generate seed) (Gen_query.generate seed)
  done

let test_generator_clean () =
  let s = Lazy.force session in
  for seed = 0 to n_random - 1 do
    let q = Gen_query.generate seed in
    (* unused-binding warnings are expected — random projections rarely touch
       every pattern variable — but any static ERROR means the generator
       emitted an ill-formed query *)
    match Gopt_check.Diagnostic.errors (Gopt.check_cypher s q) with
    | [] -> ()
    | errs ->
      Alcotest.failf "seed %d: generator emitted an erroneous query:\n  %s\n%s" seed q
        (Gopt.render_diagnostics errs)
  done

let () =
  Alcotest.run "parallel"
    [
      ( "differential",
        [
          Alcotest.test_case "random queries (220 seeds)" `Quick test_random_differential;
          Alcotest.test_case "workload suite" `Quick test_workload_differential;
        ] );
      ( "determinism",
        [ Alcotest.test_case "10 runs, varying workers" `Quick test_determinism ] );
      ( "accounting",
        [ Alcotest.test_case "exchange stats and trace" `Quick test_parallel_accounting ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "statically clean" `Quick test_generator_clean;
        ] );
    ]
