(* Static validation of the benchmark workloads: every query parses, lowers
   to a well-formed GIR plan, and exercises what it claims to exercise. *)

module Queries = Gopt_workloads.Queries
module Ldbc = Gopt_workloads.Ldbc
module Tg = Gopt_workloads.Transfer_graph
module Ir = Gopt_gir.Ir_builder
module Logical = Gopt_gir.Logical
module Pattern = Gopt_pattern.Pattern
module Rule = Gopt_opt.Rule
module Rp = Gopt_opt.Rules_pattern
module Rr = Gopt_opt.Rules_relational

let schema = Ldbc.schema

let lower (q : Queries.query) =
  Gopt_lang.Lowering.cypher schema (Gopt_lang.Cypher_parser.parse q.Queries.cypher)

let test_counts () =
  Alcotest.(check int) "12 IC queries" 12 (List.length Queries.ic);
  Alcotest.(check int) "17 BI queries" 17 (List.length Queries.bi);
  Alcotest.(check int) "29 comprehensive" 29 (List.length Queries.comprehensive);
  Alcotest.(check int) "8 QR" 8 (List.length Queries.qr);
  Alcotest.(check int) "5 QT" 5 (List.length Queries.qt);
  Alcotest.(check int) "8 QC (a/b)" 8 (List.length Queries.qc)

let test_all_queries_lower_and_check () =
  List.iter
    (fun (q : Queries.query) ->
      match lower q with
      | plan -> begin
        match Ir.check plan with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s: ill-formed plan: %s" q.Queries.name msg
      end
      | exception exn ->
        Alcotest.failf "%s does not lower: %s" q.Queries.name (Printexc.to_string exn))
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

let test_gremlin_twins_lower () =
  List.iter
    (fun (q : Queries.query) ->
      match q.Queries.gremlin with
      | None -> ()
      | Some src -> begin
        match Gopt_lang.Gremlin_parser.parse schema src with
        | plan -> begin
          match Ir.check plan with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s gremlin: ill-formed: %s" q.Queries.name msg
        end
        | exception exn ->
          Alcotest.failf "%s gremlin does not parse: %s" q.Queries.name
            (Printexc.to_string exn)
      end)
    (Queries.qr @ Queries.qc)

let test_qt_queries_are_underspecified () =
  (* every QT query must contain at least one All-typed vertex, otherwise it
     does not test type inference *)
  List.iter
    (fun (q : Queries.query) ->
      let p = Queries.pattern_of_cypher schema q.Queries.cypher in
      let has_all =
        Array.exists
          (fun v -> v.Pattern.v_con = Gopt_pattern.Type_constraint.All)
          (Pattern.vertices p)
      in
      Alcotest.(check bool) (q.Queries.name ^ " has untyped vertex") true has_all)
    Queries.qt

let test_qr_rules_fire () =
  (* the rule each QR query advertises actually fires on it *)
  List.iter
    (fun (q : Queries.query) ->
      let rule = Option.get q.Queries.rule in
      if rule = "FieldTrim" then begin
        (* FieldTrim is a pass, not a named rule: check it changes the plan *)
        let plan = lower q in
        let trimmed = Rp.field_trim plan in
        Alcotest.(check bool) (q.Queries.name ^ ": trim changes plan") false
          (Logical.equal plan trimmed)
      end
      else begin
        let plan = lower q in
        let _, applied = Rule.fixpoint ~check:true ~schema (Rp.all @ Rr.all) plan in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s fires" q.Queries.name rule)
          true (List.mem rule applied)
      end)
    Queries.qr

let test_qc_variants_differ_only_in_types () =
  List.iter
    (fun base ->
      let qa = Queries.find Queries.qc (base ^ "a") in
      let qb = Queries.find Queries.qc (base ^ "b") in
      let pa = Queries.pattern_of_cypher schema qa.Queries.cypher in
      let pb = Queries.pattern_of_cypher schema qb.Queries.cypher in
      Alcotest.(check int) (base ^ " same vertices") (Pattern.n_vertices pa)
        (Pattern.n_vertices pb);
      Alcotest.(check int) (base ^ " same edges") (Pattern.n_edges pa) (Pattern.n_edges pb);
      (* the b variant must contain a UnionType *)
      let has_union p =
        Array.exists
          (fun v ->
            match v.Pattern.v_con with
            | Gopt_pattern.Type_constraint.Union _ -> true
            | _ -> false)
          (Pattern.vertices p)
      in
      Alcotest.(check bool) (base ^ "b has union") true (has_union pb);
      Alcotest.(check bool) (base ^ "a has no union") false (has_union pa))
    [ "QC1"; "QC2"; "QC3"; "QC4" ]

let test_qc_shapes () =
  let shape name nv ne =
    let q = Queries.find Queries.qc name in
    let p = Queries.pattern_of_cypher schema q.Queries.cypher in
    Alcotest.(check int) (name ^ " vertices") nv (Pattern.n_vertices p);
    Alcotest.(check int) (name ^ " edges") ne (Pattern.n_edges p)
  in
  shape "QC1a" 3 3;
  (* triangle *)
  shape "QC2a" 4 4;
  (* square *)
  shape "QC3a" 5 4;
  (* 5-path *)
  shape "QC4a" 7 8 (* the complex pattern of the paper *)

let test_transfer_endpoints_disjoint () =
  let g = Tg.generate ~accounts:500 () in
  let srcs, dsts = Tg.pick_endpoints g ~seed:5 ~n_src:20 ~n_dst:30 in
  Alcotest.(check int) "src count" 20 (List.length srcs);
  Alcotest.(check int) "dst count" 30 (List.length dsts);
  List.iter
    (fun s -> Alcotest.(check bool) "disjoint" false (List.mem s dsts))
    srcs

let test_ladder_monotone () =
  let sizes =
    List.map
      (fun (_, persons) ->
        let g = Ldbc.generate ~persons () in
        Gopt_graph.Property_graph.n_edges g)
      Ldbc.scale_ladder
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "scales increase" true (increasing sizes)

let () =
  Alcotest.run "workloads"
    [
      ( "queries",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "all lower and check" `Quick test_all_queries_lower_and_check;
          Alcotest.test_case "gremlin twins lower" `Quick test_gremlin_twins_lower;
          Alcotest.test_case "qt underspecified" `Quick test_qt_queries_are_underspecified;
          Alcotest.test_case "qr rules fire" `Quick test_qr_rules_fire;
          Alcotest.test_case "qc variants" `Quick test_qc_variants_differ_only_in_types;
          Alcotest.test_case "qc shapes" `Quick test_qc_shapes;
        ] );
      ( "generators",
        [
          Alcotest.test_case "transfer endpoints" `Quick test_transfer_endpoints_disjoint;
          Alcotest.test_case "scale ladder" `Quick test_ladder_monotone;
        ] );
    ]
