module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Rule = Gopt_opt.Rule
module Rp = Gopt_opt.Rules_pattern
module Rr = Gopt_opt.Rules_relational
module Cbo = Gopt_opt.Cbo
module Physical = Gopt_opt.Physical
module Spec = Gopt_opt.Physical_spec
module Planner = Gopt_opt.Planner
module Path_planner = Gopt_opt.Path_planner
module Baselines = Gopt_opt.Baselines
module Value = Gopt_graph.Value
open Fixtures

let gq = Gq.create (Glogue.build graph)

let name_pred tag v = Expr.Binop (Expr.Eq, Expr.Prop (tag, "name"), Expr.Const (Value.Str v))

let test_filter_into_pattern () =
  let plan = Logical.Select (Logical.Match p_knows, name_pred "a" "p0") in
  match Rp.filter_into_pattern.Rule.apply plan with
  | Some (Logical.Match p) ->
    Alcotest.(check bool) "pred pushed" true ((Pattern.vertex p 0).Pattern.v_pred <> None)
  | _ -> Alcotest.fail "rule did not fire as expected"

let test_filter_into_pattern_partial () =
  (* one pushable conjunct + one cross-element conjunct stays *)
  let cross = Expr.Binop (Expr.Lt, Expr.Prop ("a", "age"), Expr.Prop ("b", "age")) in
  let plan =
    Logical.Select (Logical.Match p_knows, Expr.Binop (Expr.And, name_pred "a" "p0", cross))
  in
  match Rp.filter_into_pattern.Rule.apply plan with
  | Some (Logical.Select (Logical.Match p, rest)) ->
    Alcotest.(check bool) "pred pushed" true ((Pattern.vertex p 0).Pattern.v_pred <> None);
    Alcotest.(check bool) "cross stays" true (Expr.equal rest cross)
  | _ -> Alcotest.fail "expected partial push"

let test_join_to_pattern () =
  let p1 =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows) |]
  in
  let p2 =
    Pattern.create
      [| pv "b" (Tc.Basic person); pv "c" (Tc.Basic city) |]
      [| pe "e2" 0 1 (Tc.Basic lives_in) |]
  in
  let plan =
    Logical.Join { left = Logical.Match p1; right = Logical.Match p2; keys = [ "b" ]; kind = Logical.Inner }
  in
  match Rp.join_to_pattern.Rule.apply plan with
  | Some (Logical.Match m) ->
    Alcotest.(check int) "merged vertices" 3 (Pattern.n_vertices m);
    Alcotest.(check int) "merged edges" 2 (Pattern.n_edges m)
  | _ -> Alcotest.fail "join_to_pattern did not fire"

let test_join_to_pattern_blocked () =
  (* join keys not covering all shared aliases: must not fire *)
  let p1 =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows) |]
  in
  let p2 =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "e2" 0 1 (Tc.Basic knows) |]
  in
  let plan =
    Logical.Join { left = Logical.Match p1; right = Logical.Match p2; keys = [ "a" ]; kind = Logical.Inner }
  in
  Alcotest.(check bool) "blocked" true (Rp.join_to_pattern.Rule.apply plan = None)

let test_com_sub_pattern () =
  let p1 =
    Pattern.create
      [| pv "v1" (Tc.Basic person); pv "v2" (Tc.Basic person); pv "@x1" (Tc.Basic city) |]
      [| pe "@e1" 0 1 (Tc.Basic knows); pe "@e2" 1 2 (Tc.Basic lives_in) |]
  in
  let p2 =
    Pattern.create
      [| pv "v1" (Tc.Basic person); pv "v2" (Tc.Basic person); pv "@x2" (Tc.Basic product) |]
      [| pe "@e3" 0 1 (Tc.Basic knows); pe "@e4" 1 2 (Tc.Basic purchased) |]
  in
  let proj m = Logical.Project (m, [ (Expr.Var "v1", "v1"); (Expr.Var "v2", "v2") ]) in
  let plan = Logical.Union (proj (Logical.Match p1), proj (Logical.Match p2)) in
  match Rp.com_sub_pattern.Rule.apply plan with
  | Some (Logical.With_common { common = Logical.Match c; _ }) ->
    Alcotest.(check int) "common is the KNOWS edge" 1 (Pattern.n_edges c)
  | _ -> Alcotest.fail "com_sub_pattern did not fire"

let test_field_trim () =
  let wide =
    Logical.Join
      {
        left = Logical.Match p_knows;
        right = Logical.Match p_to_city;
        keys = [];
        kind = Logical.Inner;
      }
  in
  let plan =
    Logical.Group
      ( wide,
        [],
        [ { Logical.agg_fn = Logical.Count; agg_arg = Some (Expr.Var "b"); agg_alias = "c" } ] )
  in
  let trimmed = Rp.field_trim plan in
  (* a trimming Project must appear below the join on the KNOWS side *)
  let has_trim =
    Logical.fold
      (fun acc n -> acc || match n with Logical.Project (Logical.Match _, _) -> true | _ -> false)
      false trimmed
  in
  Alcotest.(check bool) "trim inserted" true has_trim

let test_select_pushdown_join () =
  let join =
    Logical.Join
      { left = Logical.Match p_knows; right = Logical.Match p_to_city; keys = []; kind = Logical.Inner }
  in
  let plan = Logical.Select (join, name_pred "a" "p0") in
  match Rr.select_pushdown.Rule.apply plan with
  | Some (Logical.Join { left = Logical.Select (Logical.Match _, _); _ }) -> ()
  | _ -> Alcotest.fail "select not pushed to left input"

let test_select_pushdown_project () =
  let proj = Logical.Project (Logical.Match p_knows, [ (Expr.Var "a", "x") ]) in
  let plan = Logical.Select (proj, name_pred "x" "p0") in
  match Rr.select_pushdown.Rule.apply plan with
  | Some (Logical.Project (Logical.Select (_, pred), _)) ->
    Alcotest.(check (list string)) "substituted" [ "a" ] (Expr.free_tags pred)
  | _ -> Alcotest.fail "select not pushed through project"

let test_limit_pushdown () =
  let plan = Logical.Limit (Logical.Order (Logical.Match p_knows, [ (Expr.Var "a", Logical.Asc) ], None), 3) in
  match Rr.limit_pushdown.Rule.apply plan with
  | Some (Logical.Order (_, _, Some 3)) -> ()
  | _ -> Alcotest.fail "limit not fused into order"

let test_aggregate_pushdown () =
  let plan =
    Logical.Group
      ( Logical.Join
          { left = Logical.Match p_knows; right = Logical.Match p_to_city; keys = []; kind = Logical.Inner },
        [ (Expr.Var "a", "a") ],
        [ { Logical.agg_fn = Logical.Count; agg_arg = Some (Expr.Var "b"); agg_alias = "c" } ] )
  in
  (* count arg reads the right side (field "b" of p_to_city)?? "b" is in both;
     use the city-side alias to be unambiguous *)
  let plan =
    match plan with
    | Logical.Group (j, ks, _) ->
      Logical.Group
        (j, ks, [ { Logical.agg_fn = Logical.Count; agg_arg = Some (Expr.Var "e"); agg_alias = "c" } ])
    | _ -> assert false
  in
  match Rr.aggregate_pushdown.Rule.apply plan with
  | Some (Logical.Group (Logical.Join { right = Logical.Group _; _ }, _, final)) ->
    (match final with
    | [ { Logical.agg_fn = Logical.Sum; _ } ] -> ()
    | _ -> Alcotest.fail "final agg should be SUM of partials")
  | _ -> Alcotest.fail "aggregate_pushdown did not fire"

let test_fixpoint_terminates () =
  let plan =
    Logical.Select
      ( Logical.Select (Logical.Match p_knows, name_pred "a" "p0"),
        Expr.Binop (Expr.Gt, Expr.Prop ("b", "age"), Expr.Const (Value.Int 20)) )
  in
  let rewritten, applied = Rule.fixpoint ~check:true ~schema (Rp.all @ Rr.all) plan in
  Alcotest.(check bool) "some rules fired" true (applied <> []);
  match rewritten with
  | Logical.Match p ->
    Alcotest.(check bool) "all preds inside" true
      ((Pattern.vertex p 0).Pattern.v_pred <> None && (Pattern.vertex p 1).Pattern.v_pred <> None)
  | other -> Alcotest.failf "unexpected result:\n%s" (Gopt_gir.Plan_printer.to_string other)

(* --- CBO ---------------------------------------------------------------- *)

let test_cbo_triangle () =
  let plan, stats = Cbo.optimize gq Spec.graphscope p_triangle in
  Alcotest.(check bool) "cost positive" true (plan.Cbo.cost > 0.0);
  Alcotest.(check bool) "searched something" true (stats.Cbo.nodes_searched > 0);
  Alcotest.(check int) "order binds 3 vertices" 3 (List.length (Cbo.plan_order plan));
  let phys = Cbo.to_physical Spec.graphscope plan in
  Alcotest.(check bool) "all aliases bound" true
    (List.for_all
       (fun a -> List.mem a (Physical.output_fields phys))
       [ "a"; "b"; "c"; "e1"; "e2"; "e3" ])

let test_cbo_spec_operator_choice () =
  let plan, _ = Cbo.optimize gq Spec.graphscope p_triangle in
  let phys_gs = Cbo.to_physical Spec.graphscope plan in
  let phys_neo = Cbo.to_physical Spec.neo4j plan in
  Alcotest.(check bool) "graphscope uses intersect" true (Physical.uses_intersect phys_gs);
  Alcotest.(check bool) "neo4j never intersects" false (Physical.uses_intersect phys_neo)

let test_cbo_pruning_preserves_plan () =
  List.iter
    (fun pat ->
      let options = Cbo.default_options in
      let on, _ = Cbo.optimize ~options gq Spec.graphscope pat in
      let off, stats_off =
        Cbo.optimize
          ~options:{ options with Cbo.use_pruning = false; use_greedy_init = false }
          gq Spec.graphscope pat
      in
      Alcotest.(check (float 1e-6)) "same optimal cost" off.Cbo.cost on.Cbo.cost;
      Alcotest.(check int) "no pruning when disabled" 0 stats_off.Cbo.candidates_pruned)
    [ p_triangle; p_knows ]

let test_cbo_greedy_bound () =
  let greedy = Cbo.greedy gq Spec.graphscope p_triangle in
  let opt, _ = Cbo.optimize gq Spec.graphscope p_triangle in
  Alcotest.(check bool) "optimal <= greedy" true (opt.Cbo.cost <= greedy.Cbo.cost +. 1e-9)

let test_random_plan_valid () =
  let rng = Gopt_util.Prng.create 11 in
  for _ = 1 to 5 do
    let phys, order = Baselines.random_plan rng Spec.graphscope p_triangle in
    Alcotest.(check int) "order covers vertices" 3 (List.length order);
    Alcotest.(check bool) "fields bound" true
      (List.for_all (fun a -> List.mem a (Physical.output_fields phys)) [ "a"; "b"; "c" ])
  done

let test_planner_pipeline () =
  let plan =
    Logical.Select (Logical.Match p_to_city, name_pred "b" "c0")
  in
  let config = Planner.default_config () in
  let phys, report = Planner.plan config gq plan in
  Alcotest.(check bool) "rules applied" true (report.Planner.rules_applied <> []);
  Alcotest.(check bool) "physical nonempty" true (Physical.operator_count phys > 0)

let test_planner_invalid_pattern () =
  (* (a:City)-[]->(b): City has no outgoing edges -> Empty after inference *)
  let p =
    Pattern.create [| pv "a" (Tc.Basic city); pv "b" Tc.All |] [| pe "e" 0 1 Tc.All |]
  in
  let config = Planner.default_config () in
  let phys, report = Planner.plan config gq (Logical.Match p) in
  Alcotest.(check int) "one invalid" 1 report.Planner.invalid_patterns;
  match phys with
  | Physical.Empty _ -> ()
  | _ -> Alcotest.fail "expected Empty plan"

let test_path_planner_splits () =
  let p =
    Pattern.create
      [| pv "s" (Tc.Basic person); pv "t" (Tc.Basic person) |]
      [| pe ~hops:(4, 4) "p" 0 1 (Tc.Basic knows) |]
  in
  let result = Path_planner.optimize gq Spec.graphscope p in
  Alcotest.(check int) "alternatives = unsplit + 3 splits" 4 (List.length result.Path_planner.alternatives);
  Alcotest.(check bool) "cost finite" true (Float.is_finite result.Path_planner.cost)

let test_user_order_compile () =
  let phys = Planner.compile_user_order Spec.graphscope p_triangle in
  Alcotest.(check bool) "binds everything" true
    (List.for_all (fun a -> List.mem a (Physical.output_fields phys)) [ "a"; "b"; "c" ])

(* property: CBO plans on random connected patterns always bind all aliases *)
let prop_cbo_complete =
  QCheck.Test.make ~name:"cbo binds all pattern aliases" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Gopt_util.Prng.create seed in
      let nv = 2 + Gopt_util.Prng.int rng 3 in
      let vs =
        Array.init nv (fun i ->
            pv (Printf.sprintf "v%d" i) (if Gopt_util.Prng.bool rng then Tc.Basic person else Tc.All))
      in
      let es = ref [] in
      for i = 1 to nv - 1 do
        let j = Gopt_util.Prng.int rng i in
        es := pe (Printf.sprintf "e%d" i) j i (if Gopt_util.Prng.bool rng then Tc.Basic knows else Tc.All) :: !es
      done;
      let p = Pattern.create vs (Array.of_list !es) in
      let plan, _ = Cbo.optimize gq Spec.graphscope p in
      let phys = Cbo.to_physical Spec.graphscope plan in
      let fields = Physical.output_fields phys in
      Array.for_all (fun v -> List.mem v.Pattern.v_alias fields) (Pattern.vertices p))

let () =
  Alcotest.run "opt"
    [
      ( "rbo",
        [
          Alcotest.test_case "filter into pattern" `Quick test_filter_into_pattern;
          Alcotest.test_case "filter partial push" `Quick test_filter_into_pattern_partial;
          Alcotest.test_case "join to pattern" `Quick test_join_to_pattern;
          Alcotest.test_case "join to pattern blocked" `Quick test_join_to_pattern_blocked;
          Alcotest.test_case "com sub pattern" `Quick test_com_sub_pattern;
          Alcotest.test_case "field trim" `Quick test_field_trim;
          Alcotest.test_case "select pushdown join" `Quick test_select_pushdown_join;
          Alcotest.test_case "select pushdown project" `Quick test_select_pushdown_project;
          Alcotest.test_case "limit pushdown" `Quick test_limit_pushdown;
          Alcotest.test_case "aggregate pushdown" `Quick test_aggregate_pushdown;
          Alcotest.test_case "fixpoint terminates" `Quick test_fixpoint_terminates;
        ] );
      ( "cbo",
        [
          Alcotest.test_case "triangle plan" `Quick test_cbo_triangle;
          Alcotest.test_case "spec operator choice" `Quick test_cbo_spec_operator_choice;
          Alcotest.test_case "pruning preserves optimum" `Quick test_cbo_pruning_preserves_plan;
          Alcotest.test_case "greedy is an upper bound" `Quick test_cbo_greedy_bound;
          Alcotest.test_case "random plans valid" `Quick test_random_plan_valid;
        ] );
      ( "planner",
        [
          Alcotest.test_case "pipeline" `Quick test_planner_pipeline;
          Alcotest.test_case "invalid pattern" `Quick test_planner_invalid_pattern;
          Alcotest.test_case "path planner splits" `Quick test_path_planner_splits;
          Alcotest.test_case "user order compile" `Quick test_user_order_compile;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_cbo_complete ]);
    ]
