# Tier-1 verification gate: everything must build, every test suite must
# pass, the PlanCheck linter must report zero errors over every workload
# query, and the bench harness must execute one LDBC query end-to-end on the
# pipelined engine and print its per-operator trace.
.PHONY: check build test lint trace

build:
	dune build

test:
	dune runtest

# Static analysis: parse, lower and plan every workload query with the plan
# verifier enabled at every optimizer stage; exits non-zero on any error.
lint:
	dune exec bin/gopt_cli.exe -- --lint --persons 200

trace:
	GOPT_BENCH_PERSONS=300 GOPT_BENCH_BUDGET=5 dune exec bench/main.exe -- trace

check: build test lint trace
	@echo "check: OK"
