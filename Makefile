# Tier-1 verification gate: everything must build, every test suite must
# pass, the PlanCheck linter must report zero errors over every workload
# query, the bench harness must execute one LDBC query end-to-end on the
# pipelined engine and print its per-operator trace, and the plan-cache
# experiment must complete on a tiny graph.
.PHONY: check build test lint trace bench-smoke

build:
	dune build

test:
	dune runtest

# Static analysis: parse, lower and plan every workload query with the plan
# verifier enabled at every optimizer stage; exits non-zero on any error.
lint:
	dune exec bin/gopt_cli.exe -- --lint --persons 200

trace:
	GOPT_BENCH_PERSONS=300 GOPT_BENCH_BUDGET=5 dune exec bench/main.exe -- trace

# One repetition of the plan-cache and vectorized-execution experiments on a
# tiny graph: cold vs amortized latency over all 50 workload queries with
# workers-1-vs-4 byte-identity, then columnar kernels vs the row interpreter
# (byte-identity asserted per worker count). Emits BENCH_plan_cache.json and
# BENCH_exec.json.
bench-smoke:
	GOPT_BENCH_PERSONS=60 GOPT_BENCH_BUDGET=2 GOPT_BENCH_CACHE_CONSULTS=50 \
	  dune exec bench/main.exe -- plan_cache
	GOPT_BENCH_PERSONS=300 GOPT_BENCH_BUDGET=5 \
	  dune exec bench/main.exe -- vectorized

check: build test lint trace bench-smoke
	@echo "check: OK"
