# Tier-1 verification gate: everything must build, every test suite must
# pass, and the bench harness must execute one LDBC query end-to-end on the
# pipelined engine and print its per-operator trace.
.PHONY: check build test trace

build:
	dune build

test:
	dune runtest

trace:
	GOPT_BENCH_PERSONS=300 GOPT_BENCH_BUDGET=5 dune exec bench/main.exe -- trace

check: build test trace
	@echo "check: OK"
