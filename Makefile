# Tier-1 verification gate: everything must build, every test suite must
# pass, the PlanCheck linter must report zero errors over every workload
# query, the bench harness must execute one LDBC query end-to-end on the
# pipelined engine and print its per-operator trace, and the plan-cache
# experiment must complete on a tiny graph.
.PHONY: check build test lint trace bench-smoke

build:
	dune build

test:
	dune runtest

# Static analysis: parse, lower and plan every workload query with the plan
# verifier enabled at every optimizer stage; exits non-zero on any error.
lint:
	dune exec bin/gopt_cli.exe -- --lint --persons 200

trace:
	GOPT_BENCH_PERSONS=300 GOPT_BENCH_BUDGET=5 dune exec bench/main.exe -- trace

# One repetition of the plan-cache experiment on a tiny graph: cold vs
# amortized latency over all 50 workload queries, cache hit-rate from the
# real counters, and workers-1-vs-4 byte-identity. Emits BENCH_plan_cache.json.
bench-smoke:
	GOPT_BENCH_PERSONS=60 GOPT_BENCH_BUDGET=2 GOPT_BENCH_CACHE_CONSULTS=50 \
	  dune exec bench/main.exe -- plan_cache

check: build test lint trace bench-smoke
	@echo "check: OK"
