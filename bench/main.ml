(* The experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 8). See DESIGN.md for the experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured outcomes.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig8a fig11  # selected experiments
   Scale knobs: GOPT_BENCH_PERSONS (default 1200), GOPT_BENCH_BUDGET (10s). *)

module H = Harness
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Planner = Gopt_opt.Planner
module Physical = Gopt_opt.Physical
module Spec = Gopt_opt.Physical_spec
module Baselines = Gopt_opt.Baselines
module Cbo = Gopt_opt.Cbo
module Path_planner = Gopt_opt.Path_planner
module Queries = Gopt_workloads.Queries
module Ldbc = Gopt_workloads.Ldbc
module Tg = Gopt_workloads.Transfer_graph
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
module Gq = Gopt_glogue.Glogue_query
module Ti = Gopt_typeinf.Type_inference

(* ------------------------------------------------------------- Table 1 -- *)

let table1 () =
  H.print_table ~title:"Table 1: capabilities of the implemented planners"
    ~header:[ "Planner"; "Lang."; "Opt."; "WcoJoin"; "H.Stats"; "T.Infer" ]
    [
      [ "Neo4j (CypherPlanner baseline)"; "Cypher"; "RBO/CBO"; "no"; "no"; "no" ];
      [ "GraphScope (native RBO baseline)"; "Gremlin"; "RBO"; "yes"; "no"; "no" ];
      [ "GOpt"; "Cypher+Gremlin"; "RBO/CBO"; "yes"; "yes"; "yes" ];
    ];
  print_endline
    "(The rows reproduce the paper's Table 1 for the three planner behaviours\n\
     implemented in this repository; GLogS is subsumed by GOpt's CBO.)"

(* ------------------------------------------------------------- Table 3 -- *)

let table3 () =
  let rows =
    List.map
      (fun (name, persons) ->
        let g = Ldbc.generate ~persons () in
        let v = Gopt_graph.Property_graph.n_vertices g in
        let e = Gopt_graph.Property_graph.n_edges g in
        (* rough in-memory footprint: ids + CSR + property cells *)
        let bytes = (v * 48) + (e * 72) in
        [
          name;
          string_of_int persons;
          string_of_int v;
          string_of_int e;
          Printf.sprintf "%.1f MB" (float_of_int bytes /. 1048576.0);
        ])
      Ldbc.scale_ladder
  in
  H.print_table ~title:"Table 3: the generated dataset ladder (stands in for G30..G1000)"
    ~header:[ "Graph"; "persons"; "|V|"; "|E|"; "approx size" ]
    rows

(* -------------------------------------------------------------- Fig 8a -- *)

(* Heuristic rules on/off. Following the paper, CBO and type inference are
   disabled so only the rule under test varies; queries carry explicit
   types. *)
let fig8a_config ~field_trim ~rules =
  {
    Planner.spec = Spec.graphscope;
    enable_rbo = true;
    rules;
    enable_field_trim = field_trim;
    enable_type_inference = false;
    inference_schema = None;
    enable_cbo = false;
    cbo_options = Cbo.default_options;
    check_plans = false;
  }

let fig8a () =
  let session = H.ldbc_session H.bench_persons in
  let base_rules = Gopt_opt.Rules_relational.all in
  let all_pattern = Gopt_opt.Rules_pattern.all in
  let without name = List.filter (fun r -> r.Gopt_opt.Rule.name <> name) all_pattern in
  let rows =
    List.map
      (fun (q : Queries.query) ->
        let rule = Option.get q.Queries.rule in
        let with_c, without_c =
          if rule = "FieldTrim" then
            ( fig8a_config ~field_trim:true ~rules:(all_pattern @ base_rules),
              fig8a_config ~field_trim:false ~rules:(all_pattern @ base_rules) )
          else
            ( fig8a_config ~field_trim:false ~rules:(all_pattern @ base_rules),
              fig8a_config ~field_trim:false ~rules:(without rule @ base_rules) )
        in
        let on = H.run_cypher session with_c q.Queries.cypher in
        let off = H.run_cypher session without_c q.Queries.cypher in
        ( (off, on),
          [
            q.Queries.name;
            rule;
            H.fmt_time off;
            H.fmt_time on;
            H.fmt_speedup ~base:off ~opt:on;
          ] ))
      Queries.qr
  in
  H.print_table ~title:"Fig 8(a): heuristic rules on/off (GraphScope profile, CBO disabled)"
    ~header:[ "query"; "rule"; "without (s)"; "with (s)"; "speedup" ]
    (List.map snd rows);
  H.summarize_speedups "heuristic rules" (List.map fst rows)

(* -------------------------------------------------------------- Fig 8b -- *)

let fig8b () =
  let session = H.ldbc_session H.bench_persons in
  (* isolate the technique: rule-based execution in the user-given order,
     with and without the type checker (the paper's controlled setup) *)
  let on_c =
    { (Baselines.gopt_config Spec.graphscope) with Planner.enable_cbo = false }
  in
  let off_c = { on_c with Planner.enable_type_inference = false } in
  let rows =
    List.map
      (fun (q : Queries.query) ->
        let on = H.run_cypher session on_c q.Queries.cypher in
        let off = H.run_cypher session off_c q.Queries.cypher in
        ( (off, on),
          [
            q.Queries.name;
            H.fmt_time off;
            H.fmt_time on;
            H.fmt_speedup ~base:off ~opt:on;
            (match off.H.stats, on.H.stats with
            | Some o, Some n ->
              Printf.sprintf "%d -> %d" o.Engine.intermediate_rows n.Engine.intermediate_rows
            | _ -> "-");
          ] ))
      Queries.qt
  in
  H.print_table
    ~title:"Fig 8(b): type inference on/off (queries without explicit types)"
    ~header:[ "query"; "off (s)"; "on (s)"; "speedup"; "intermediate rows" ]
    (List.map snd rows);
  H.summarize_speedups "type inference" (List.map fst rows)

(* -------------------------------------------------------------- Fig 8c -- *)

let qc_pattern session name =
  let q = Queries.find Queries.qc name in
  Queries.pattern_of_cypher (Gopt.Session.schema session) q.Queries.cypher

let count_plan phys =
  Physical.Group
    ( phys,
      [],
      [ { Gopt_gir.Logical.agg_fn = Gopt_gir.Logical.Count; agg_arg = None; agg_alias = "c" } ] )

let fig8c () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let gq = Gopt.Session.estimator session in
  let rows = ref [] in
  let all_pairs = ref [] in
  List.iter
    (fun name ->
      let p = qc_pattern session name in
      let gopt_plan, _ = Cbo.optimize gq Spec.graphscope p in
      let gopt = H.run_phys graph (count_plan (Cbo.to_physical Spec.graphscope gopt_plan)) in
      let neo_cost_spec = Baselines.gopt_neo_cost_config.Planner.spec in
      let neo_plan, _ = Cbo.optimize gq neo_cost_spec p in
      let gopt_neo = H.run_phys graph (count_plan (Cbo.to_physical neo_cost_spec neo_plan)) in
      let rng = Gopt_util.Prng.create 1234 in
      let randoms =
        List.init 10 (fun _ ->
            let phys, _ = Baselines.random_plan rng Spec.graphscope p in
            H.run_phys graph (count_plan phys))
      in
      let finite = List.filter (fun r -> not (H.is_ot r)) randoms in
      let rand_ot = List.length randoms - List.length finite in
      let rand_avg =
        if finite = [] then H.ot
        else
          {
            H.rows = 0;
            cpu =
              List.fold_left (fun a r -> a +. r.H.cpu) 0.0 finite
              /. float_of_int (List.length finite);
            sim =
              List.fold_left (fun a r -> a +. r.H.sim) 0.0 finite
              /. float_of_int (List.length finite);
            stats = None;
          }
      in
      let rand_best =
        List.fold_left
          (fun acc r -> if r.H.sim < acc.H.sim then r else acc)
          (match finite with x :: _ -> x | [] -> H.ot)
          finite
      in
      all_pairs := (gopt_neo, gopt) :: !all_pairs;
      rows :=
        [
          name;
          H.fmt_time gopt;
          H.fmt_time gopt_neo;
          H.fmt_time rand_best;
          H.fmt_time rand_avg;
          string_of_int rand_ot;
          H.fmt_speedup ~base:gopt_neo ~opt:gopt;
          H.fmt_speedup ~base:rand_avg ~opt:gopt;
        ]
        :: !rows)
    [ "QC1a"; "QC1b"; "QC2a"; "QC2b"; "QC3a"; "QC3b"; "QC4a"; "QC4b" ];
  H.print_table
    ~title:"Fig 8(c): CBO plan quality — GOpt vs GOpt-Neo-cost vs 10 random plans"
    ~header:
      [
        "query"; "GOpt (s)"; "GOpt-Neo (s)"; "rand best"; "rand avg"; "rand OT"; "vs Neo-cost";
        "vs rand avg";
      ]
    (List.rev !rows);
  H.summarize_speedups "backend-specific cost model (vs mismatched)" !all_pairs

(* -------------------------------------------------------------- Fig 8d -- *)

let fig8d () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let hi = Gopt.Session.estimator session in
  let lo = Gopt.Session.low_order_estimator session in
  let rows = ref [] and pairs = ref [] in
  List.iter
    (fun name ->
      let p = qc_pattern session name in
      let hi_plan, _ = Cbo.optimize hi Spec.graphscope p in
      let lo_plan, _ = Cbo.optimize lo Spec.graphscope p in
      let hi_run = H.run_phys graph (count_plan (Cbo.to_physical Spec.graphscope hi_plan)) in
      let lo_run = H.run_phys graph (count_plan (Cbo.to_physical Spec.graphscope lo_plan)) in
      let same_order = Cbo.plan_order hi_plan = Cbo.plan_order lo_plan in
      pairs := (lo_run, hi_run) :: !pairs;
      rows :=
        [
          name;
          H.fmt_time lo_run;
          H.fmt_time hi_run;
          H.fmt_speedup ~base:lo_run ~opt:hi_run;
          (if same_order then "same" else "different");
        ]
        :: !rows)
    [ "QC1a"; "QC1b"; "QC2a"; "QC2b"; "QC3a"; "QC3b"; "QC4a"; "QC4b" ];
  H.print_table
    ~title:"Fig 8(d): high-order vs low-order statistics for CBO"
    ~header:[ "query"; "low-order (s)"; "high-order (s)"; "speedup"; "plan order" ]
    (List.rev !rows);
  H.summarize_speedups "high-order statistics" !pairs

(* -------------------------------------------------------------- Fig 8e -- *)

let fig8e () =
  let session = H.ldbc_session H.bench_persons in
  let gs_plan = Baselines.gs_rbo_config in
  let gopt = Baselines.gopt_config Spec.graphscope in
  let queries =
    List.filter (fun (q : Queries.query) -> q.Queries.gremlin <> None) (Queries.qr @ Queries.qc)
  in
  let rows =
    List.map
      (fun (q : Queries.query) ->
        let src = Option.get q.Queries.gremlin in
        let base = H.run_gremlin session gs_plan src in
        let opt = H.run_gremlin session gopt src in
        ( (base, opt),
          [ q.Queries.name; H.fmt_time base; H.fmt_time opt; H.fmt_speedup ~base ~opt ] ))
      queries
  in
  H.print_table
    ~title:"Fig 8(e): Gremlin queries — GS-plan (native RBO) vs GOpt-plan"
    ~header:[ "query"; "GS-plan (s)"; "GOpt-plan (s)"; "speedup" ]
    (List.map snd rows);
  H.summarize_speedups "GOpt over GraphScope's native RBO" (List.map fst rows)

(* ------------------------------------------------------------ Fig 9a/b -- *)

let fig9 ~spec ~profile ~title () =
  let session = H.ldbc_session H.bench_persons in
  (* the CypherPlanner baseline plans with low-order statistics only *)
  let neo_plan_of query =
    Planner.plan Baselines.cypher_planner_config
      (Gopt.Session.low_order_estimator session)
      (Gopt.cypher_to_gir session query)
  in
  (* GOpt registers the executing backend's PhysicalSpec (the plans for the
     two backends differ, paper Section 8.1) *)
  let gopt_config = Baselines.gopt_config spec in
  let graph = Gopt.Session.graph session in
  let rows =
    List.map
      (fun (q : Queries.query) ->
        let neo_phys, _ = neo_plan_of q.Queries.cypher in
        let base = H.run_phys ~profile graph neo_phys in
        let gopt_phys, _ = Gopt.plan_cypher ~config:gopt_config session q.Queries.cypher in
        let opt = H.run_phys ~profile graph gopt_phys in
        ( (base, opt),
          [ q.Queries.name; H.fmt_time base; H.fmt_time opt; H.fmt_speedup ~base ~opt ] ))
      Queries.comprehensive
  in
  H.print_table ~title ~header:[ "query"; "Neo4j-plan (s)"; "GOpt-plan (s)"; "speedup" ]
    (List.map snd rows);
  H.summarize_speedups "GOpt over CypherPlanner" (List.map fst rows)

let fig9a =
  fig9 ~spec:Spec.neo4j ~profile:Engine.neo4j_profile
    ~title:"Fig 9(a): Neo4j-plan vs GOpt-plan, executed on the Neo4j profile"

let fig9b =
  fig9 ~spec:Spec.graphscope ~profile:Engine.graphscope_profile
    ~title:"Fig 9(b): Neo4j-plan vs GOpt-plan, executed on the GraphScope profile"

(* ------------------------------------------------------------- Fig 10 -- *)

let fig10 ~queries ~title () =
  let sessions =
    List.map (fun (name, persons) -> (name, H.ldbc_session persons)) Ldbc.scale_ladder
  in
  let config = Baselines.gopt_config Spec.graphscope in
  let per_query =
    List.map
      (fun (q : Queries.query) ->
        let times = List.map (fun (_, s) -> H.run_cypher s config q.Queries.cypher) sessions in
        (q.Queries.name, times))
      queries
  in
  let header = ("query" :: List.map fst sessions) @ [ "S4/S1" ] in
  let rows =
    List.map
      (fun (name, times) ->
        let first = List.hd times and last = List.nth times (List.length times - 1) in
        let degradation =
          if H.is_ot first || H.is_ot last || first.H.sim <= 0.0 then "-"
          else Printf.sprintf "%.1fx" (last.H.sim /. first.H.sim)
        in
        (name :: List.map H.fmt_time times) @ [ degradation ])
      per_query
  in
  H.print_table ~title ~header rows;
  let degradations =
    List.filter_map
      (fun (_, times) ->
        let first = List.hd times and last = List.nth times (List.length times - 1) in
        if H.is_ot first || H.is_ot last || first.H.sim <= 0.0 then None
        else Some (last.H.sim /. first.H.sim))
      per_query
  in
  if degradations <> [] then
    Printf.printf "average degradation S1 -> S4 (30x data): %.1fx (geo)\n"
      (H.geomean degradations)

let fig10a = fig10 ~queries:Queries.ic ~title:"Fig 10(a): data-scale experiment, IC queries"
let fig10b = fig10 ~queries:Queries.bi ~title:"Fig 10(b): data-scale experiment, BI queries"

(* ------------------------------------------------------------- Fig 11 -- *)

let st_sets = [ ("ST1", 2, 80); ("ST2", 8, 60); ("ST3", 80, 2); ("ST4", 15, 40); ("ST5", 25, 25) ]

let st_pattern schema ~srcs ~dsts ~k =
  let account = Gopt_graph.Schema.vtype_id schema "Account" in
  let transfer = Gopt_graph.Schema.etype_id schema "TRANSFER" in
  let in_list tag ids =
    Expr.In_list (Expr.Prop (tag, "id"), List.map (fun i -> Value.Int i) ids)
  in
  Pattern.create
    [|
      Pattern.mk_vertex ~pred:(in_list "s" srcs) ~alias:"s" (Tc.Basic account);
      Pattern.mk_vertex ~pred:(in_list "t" dsts) ~alias:"t" (Tc.Basic account);
    |]
    [| Pattern.mk_edge ~hops:(k, k) ~alias:"p" ~src:0 ~dst:1 (Tc.Basic transfer) |]

let fig11 () =
  let accounts = H.env_int "GOPT_BENCH_ACCOUNTS" 20000 in
  let k = 6 in
  let session = H.transfer_session accounts in
  let graph = Gopt.Session.graph session in
  let gq = Gopt.Session.estimator session in
  let rows = ref [] and pairs = ref [] in
  List.iter
    (fun (name, n_src, n_dst) ->
      let srcs, dsts = Tg.pick_endpoints graph ~seed:(Hashtbl.hash name) ~n_src ~n_dst in
      let p = st_pattern Tg.schema ~srcs ~dsts ~k in
      let result = Path_planner.optimize gq Spec.graphscope p in
      let split_str = function
        | None -> "1-dir"
        | Some (a, b) -> Printf.sprintf "(%d,%d)" a b
      in
      let gopt = H.run_phys graph (count_plan result.Path_planner.phys) in
      (* two alternative split positions around the chosen one *)
      let alt_positions =
        match result.Path_planner.split with
        | Some (a, _) -> List.filter (fun x -> x >= 1 && x < k && x <> a) [ a - 1; a + 1 ]
        | None -> [ 2; 3 ]
      in
      let alts =
        List.map
          (fun at ->
            let phys, _ = Path_planner.forced_split gq Spec.graphscope p ~at in
            (at, H.run_phys graph (count_plan phys)))
          alt_positions
      in
      (* Neo4j-plan: single-direction expansion from the S1 side *)
      let neo = H.run_phys graph (count_plan (Planner.compile_user_order Spec.graphscope p)) in
      pairs := (neo, gopt) :: !pairs;
      let alt_cells =
        match alts with
        | [ (a1, r1); (a2, r2) ] ->
          [
            Printf.sprintf "(%d,%d): %s" a1 (k - a1) (H.fmt_time r1);
            Printf.sprintf "(%d,%d): %s" a2 (k - a2) (H.fmt_time r2);
          ]
        | [ (a1, r1) ] -> [ Printf.sprintf "(%d,%d): %s" a1 (k - a1) (H.fmt_time r1); "-" ]
        | _ -> [ "-"; "-" ]
      in
      rows :=
        ([
           name;
           Printf.sprintf "%d/%d" n_src n_dst;
           split_str result.Path_planner.split;
           H.fmt_time gopt;
         ]
        @ alt_cells
        @ [ H.fmt_time neo; H.fmt_speedup ~base:neo ~opt:gopt ])
        :: !rows)
    st_sets;
  H.print_table
    ~title:
      (Printf.sprintf "Fig 11: S-T paths (k=%d) — GOpt split vs alternatives vs single-direction"
         k)
    ~header:
      [ "query"; "|S1|/|S2|"; "GOpt split"; "GOpt (s)"; "alt 1"; "alt 2"; "1-dir (s)"; "vs 1-dir" ]
    (List.rev !rows);
  H.summarize_speedups "bidirectional S-T planning" !pairs

(* ----------------------------------------------------------- ablations -- *)

let ablation_cbo () =
  let session = H.ldbc_session H.bench_persons in
  let gq = Gopt.Session.estimator session in
  let rows = ref [] in
  List.iter
    (fun name ->
      let p = qc_pattern session name in
      let run options =
        let t0 = Sys.time () in
        let plan, stats = Cbo.optimize ~options gq Spec.graphscope p in
        (plan, stats, Sys.time () -. t0)
      in
      let full = Cbo.default_options in
      let plan1, s1, t1 = run full in
      let _, s2, t2 = run { full with Cbo.use_pruning = false } in
      let _, s3, t3 = run { full with Cbo.use_greedy_init = false } in
      rows :=
        [
          name;
          Printf.sprintf "%.4f / %d / %d" t1 s1.Cbo.nodes_searched s1.Cbo.candidates_pruned;
          Printf.sprintf "%.4f / %d / %d" t2 s2.Cbo.nodes_searched s2.Cbo.candidates_pruned;
          Printf.sprintf "%.4f / %d / %d" t3 s3.Cbo.nodes_searched s3.Cbo.candidates_pruned;
          Printf.sprintf "%.3e" plan1.Cbo.cost;
        ]
        :: !rows)
    [ "QC2a"; "QC3a"; "QC4a"; "QC4b" ];
  H.print_table
    ~title:
      "Ablation A1/A2: CBO search — full vs no-pruning vs no-greedy-bound (time / nodes / pruned)"
    ~header:[ "pattern"; "full"; "no pruning"; "no greedy init"; "plan cost" ]
    (List.rev !rows)

let ablation_typeinf () =
  let session = H.ldbc_session H.bench_persons in
  let schema = Gopt.Session.schema session in
  let rows =
    List.map
      (fun (q : Queries.query) ->
        let p = Queries.pattern_of_cypher schema q.Queries.cypher in
        let iters prioritized =
          match Ti.infer ~prioritized schema p with
          | Ti.Inferred (_, n) -> string_of_int n
          | Ti.Invalid -> "invalid"
        in
        [ q.Queries.name; iters true; iters false ])
      Queries.qt
  in
  H.print_table
    ~title:"Ablation A3: type-inference worklist iterations — prioritized vs insertion order"
    ~header:[ "query"; "prioritized"; "unordered" ]
    rows

let ablation_intersect () =
  let rows =
    List.map
      (fun (name, persons) ->
        let session = H.ldbc_session persons in
        let graph = Gopt.Session.graph session in
        let gq = Gopt.Session.estimator session in
        let p = qc_pattern session "QC1a" in
        let plan, _ = Cbo.optimize gq Spec.graphscope p in
        let inter = H.run_phys graph (count_plan (Cbo.to_physical Spec.graphscope plan)) in
        let flat = H.run_phys graph (count_plan (Cbo.to_physical Spec.neo4j plan)) in
        [ name; H.fmt_time flat; H.fmt_time inter; H.fmt_speedup ~base:flat ~opt:inter ])
      Ldbc.scale_ladder
  in
  H.print_table
    ~title:
      "Ablation A4: ExpandInto (flatten) vs ExpandIntersect on the QC1a triangle, same join order"
    ~header:[ "scale"; "flatten (s)"; "intersect (s)"; "speedup" ]
    rows

let ablation_selectivity () =
  (* histogram-based selectivity (the paper's Remark 7.1 future work,
     implemented here) vs the constant 0.1 default: the estimators disagree
     most on weakly-selective range filters, which can flip the scan side *)
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let glogue = Gopt.Session.glogue session in
  let with_hist = Gopt.Session.estimator session in
  let without_hist = Gq.create glogue in
  let queries =
    [
      ( "SEL1",
        "MATCH (m:Post)-[:HAS_CREATOR]->(p:Person) WHERE m.length > 50 RETURN count(*) AS c" );
      ( "SEL2",
        "MATCH (m:Comment)-[:REPLY_OF]->(po:Post) WHERE m.length < 15 RETURN count(*) AS c" );
      ( "SEL3",
        "MATCH (p:Person)-[:LIKES]->(m:Post)-[:HAS_TAG]->(t:Tag) WHERE m.length > 480 \
         RETURN count(*) AS c" );
    ]
  in
  let rows =
    List.map
      (fun (name, cypher) ->
        let gir = Gopt.cypher_to_gir session cypher in
        let run gq =
          let phys, _ = Planner.plan (Planner.default_config ()) gq gir in
          H.run_phys graph phys
        in
        let hist = run with_hist and const = run without_hist in
        ( name :: H.fmt_time const :: H.fmt_time hist
          :: [ H.fmt_speedup ~base:const ~opt:hist ] ))
      queries
  in
  H.print_table
    ~title:"Ablation A5: histogram selectivity vs constant default (0.1)"
    ~header:[ "query"; "constant (s)"; "histograms (s)"; "speedup" ]
    rows

(* --------------------------------------------------------------- micro -- *)

let micro () =
  let open Bechamel in
  let session = H.ldbc_session 400 in
  let schema = Gopt.Session.schema session in
  let glogue = Gopt.Session.glogue session in
  let qc4 = qc_pattern session "QC4a" in
  let qt2_pattern =
    Queries.pattern_of_cypher schema (Queries.find Queries.qt "QT2").Queries.cypher
  in
  let ic6 = (Queries.find Queries.ic "IC6").Queries.cypher in
  let ic6_gir = Gopt.cypher_to_gir session ic6 in
  let tests =
    [
      Test.make ~name:"type-inference(QT2)"
        (Staged.stage (fun () -> ignore (Ti.infer schema qt2_pattern)));
      Test.make ~name:"cardinality(QC4a, cold cache)"
        (Staged.stage (fun () -> ignore (Gq.get_freq (Gq.create glogue) qc4)));
      Test.make ~name:"cbo-optimize(QC4a)"
        (Staged.stage (fun () -> ignore (Cbo.optimize (Gq.create glogue) Spec.graphscope qc4)));
      Test.make ~name:"rbo-fixpoint(IC6)"
        (Staged.stage (fun () ->
             ignore
               (Gopt_opt.Rule.fixpoint
                  (Gopt_opt.Rules_pattern.all @ Gopt_opt.Rules_relational.all)
                  ic6_gir)));
      Test.make ~name:"cypher-parse(IC6)"
        (Staged.stage (fun () -> ignore (Gopt_lang.Cypher_parser.parse ic6)));
    ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  Printf.printf "\n## Micro benchmarks (bechamel, monotonic clock)\n";
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    tests

(* --------------------------------------------------------------- trace -- *)

(* Per-operator profiling smoke test: run one LDBC query on the pipelined
   engine and print its EXPLAIN ANALYZE trace, then compare both engines'
   peak live rows. Part of the tier-1 `make check` gate. *)
let trace () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let q = Queries.find Queries.ic "IC6" in
  Printf.printf "\n## Per-operator trace: %s (%s)\n%s\n\n" q.Queries.name
    q.Queries.description q.Queries.cypher;
  let out, report = Gopt.explain_analyze_cypher session q.Queries.cypher in
  print_endline report;
  let _, mat = Engine.run_materialized graph out.Gopt.physical in
  Printf.printf
    "\npipelined peak %d live rows vs materialized peak %d (%.1fx less memory-resident)\n"
    out.Gopt.exec_stats.Engine.peak_rows mat.Engine.peak_rows
    (float_of_int mat.Engine.peak_rows
    /. float_of_int (max 1 out.Gopt.exec_stats.Engine.peak_rows))

(* ------------------------------------------------------------ parallel -- *)

(* Morsel-driven scaling experiment: the same scan-heavy queries at 1/2/4/8
   workers, wall-clock timed (CPU time would sum across domains and hide any
   speedup). Results are checked byte-identical across worker counts while
   we're at it — the determinism contract, at bench scale.

   Speedup is bounded by the cores actually available: on a single-core
   machine every worker count degenerates to ~1.0x (the morsel machinery
   then measures its own overhead), which is the expected reading there. *)
let parallel () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let queries =
    [
      ( "2hop-count",
        "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN count(*) AS c" );
      ( "group-by",
        "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN q.gender AS g, count(*) AS c, \
         avg(p.birthday) AS ab" );
      ( "topk",
        "MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN p.firstName AS n, count(*) AS deg \
         ORDER BY deg DESC, n ASC LIMIT 10" );
    ]
  in
  let worker_counts = [ 1; 2; 4; 8 ] in
  Printf.printf "available cores: %d recommended domains\n"
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun (name, q) ->
        let physical, _ = Gopt.plan_cypher session q in
        let time w =
          let t0 = Unix.gettimeofday () in
          let b, s = Engine.run ~workers:w graph physical in
          (Unix.gettimeofday () -. t0, b, s)
        in
        (* warm-up, then one timed run per worker count *)
        ignore (time 1);
        let t1, b1, _ = time 1 in
        let timed =
          List.map
            (fun w ->
              let t, b, s = time w in
              if Batch.n_rows b <> Batch.n_rows b1 then
                failwith (Printf.sprintf "%s: workers=%d changed the result!" name w);
              (w, t, s))
            worker_counts
        in
        name :: Printf.sprintf "%d" (Batch.n_rows b1)
        :: List.concat_map
             (fun (_, t, (s : Engine.stats)) ->
               [ Printf.sprintf "%.3fs (%.2fx)" t (t1 /. t);
                 string_of_int s.Engine.exchange_rows ])
             timed)
      queries
  in
  H.print_table
    ~title:
      (Printf.sprintf
         "Parallel scaling: morsel-driven engine, wall clock (persons=%d)"
         H.bench_persons)
    ~header:
      ([ "query"; "rows" ]
      @ List.concat_map
          (fun w -> [ Printf.sprintf "w=%d" w; "xch rows" ])
          worker_counts)
    rows

(* ---------------------------------------------------------- plan cache -- *)

(* Online-serving amortization: cold optimize+execute vs repeated executions
   of the same template through the session plan cache. Per workload query:
   one cold plan (no cache), one cold execution, then
   GOPT_BENCH_CACHE_CONSULTS consults through the cache (first misses and
   plans, the rest hit), with the hit rate taken from the cache's own
   counters. The cached plan is also executed at workers 1 and 4 and the
   rendered results compared byte-for-byte. Emits BENCH_plan_cache.json. *)
let plan_cache_bench () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let consults = max 2 (H.env_int "GOPT_BENCH_CACHE_CONSULTS" 10_000) in
  let queries = Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc in
  let render b = Format.asprintf "%a" (Batch.pp graph) b in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (Sys.time () -. t0, r)
  in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.6e" v in
  let rows = ref [] and json = ref [] and hit_rates = ref [] in
  let plan_speedups = ref [] in
  List.iter
    (fun (q : Queries.query) ->
      let src = q.Queries.cypher in
      let t_plan, physical =
        time (fun () -> fst (Gopt.plan_cypher ~use_cache:false session src))
      in
      let exec = H.run_phys graph physical in
      let st0 = Gopt.Session.plan_cache_stats session in
      let t_total, () =
        time (fun () ->
            for _ = 1 to consults do
              ignore (Gopt.plan_cypher ~use_cache:true session src)
            done)
      in
      let st1 = Gopt.Session.plan_cache_stats session in
      let hits = st1.Gopt_cache.Plan_cache.hits - st0.Gopt_cache.Plan_cache.hits in
      let hit_rate = float_of_int hits /. float_of_int consults in
      hit_rates := hit_rate :: !hit_rates;
      let t_consult = t_total /. float_of_int consults in
      if t_consult > 0.0 then plan_speedups := (t_plan /. t_consult) :: !plan_speedups;
      let identical =
        match
          let b1, _ = Engine.run ~budget:H.bench_budget ~workers:1 graph physical in
          let b4, _ = Engine.run ~budget:H.bench_budget ~workers:4 graph physical in
          render b1 = render b4
        with
        | true -> "yes"
        | false -> "NO"
        | exception Engine.Timeout -> "OT"
      in
      let exec_s = if H.is_ot exec then nan else exec.H.cpu in
      (* per-execution latency after n executions of the template *)
      let amort_cold = t_plan +. exec_s in
      let amort_cached n = (t_plan /. float_of_int n) +. t_consult +. exec_s in
      rows :=
        [
          q.Queries.name;
          Printf.sprintf "%.3f" (t_plan *. 1e3);
          Printf.sprintf "%.1f" (t_consult *. 1e6);
          Printf.sprintf "%.2f%%" (hit_rate *. 100.0);
          (if H.is_ot exec then "OT" else Printf.sprintf "%.3f" (exec_s *. 1e3));
          (if H.is_ot exec then "-" else Printf.sprintf "%.3f" (amort_cold *. 1e3));
          (if H.is_ot exec then "-" else Printf.sprintf "%.3f" (amort_cached 100 *. 1e3));
          (if H.is_ot exec then "-" else Printf.sprintf "%.3f" (amort_cached 10_000 *. 1e3));
          identical;
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "    {\"query\": %S, \"plan_cold_s\": %s, \"consult_warm_s\": %s, \
           \"exec_s\": %s, \"hit_rate\": %.6f, \"consults\": %d, \
           \"amortized_s\": {\"n1\": %s, \"n100\": %s, \"n10000\": %s}, \
           \"workers_1_eq_4\": %S}"
          q.Queries.name (fnum t_plan) (fnum t_consult) (fnum exec_s) hit_rate
          consults (fnum amort_cold)
          (fnum (amort_cached 100))
          (fnum (amort_cached 10_000))
          identical
        :: !json)
    queries;
  H.print_table
    ~title:
      (Printf.sprintf
         "Plan cache: cold optimize vs cached consult (%d consults/query); \
          amortized per-execution latency"
         consults)
    ~header:
      [
        "query"; "plan cold (ms)"; "consult (us)"; "hit rate"; "exec (ms)";
        "amort n=1 (ms)"; "n=100"; "n=10k"; "w1=w4";
      ]
    (List.rev !rows);
  let st = Gopt.Session.plan_cache_stats session in
  Printf.printf
    "plan cache totals: %d entries (cap %d), %d hits, %d misses, %d evictions, %d \
     invalidations\n"
    st.Gopt_cache.Plan_cache.entries st.Gopt_cache.Plan_cache.capacity
    st.Gopt_cache.Plan_cache.hits st.Gopt_cache.Plan_cache.misses
    st.Gopt_cache.Plan_cache.evictions st.Gopt_cache.Plan_cache.invalidations;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs)) in
  Printf.printf "mean hit rate at %d consults/query: %.2f%%; plan->consult speedup %.0fx (geo)\n"
    consults
    (mean !hit_rates *. 100.0)
    (H.geomean !plan_speedups);
  let oc = open_out "BENCH_plan_cache.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"plan_cache\",\n  \"persons\": %d,\n  \"consults_per_query\": %d,\n\
    \  \"mean_hit_rate\": %.6f,\n  \"queries\": [\n%s\n  ]\n}\n"
    H.bench_persons consults (mean !hit_rates)
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Printf.printf "wrote BENCH_plan_cache.json\n"

(* ---------------------------------------------------------- vectorized -- *)

(* Columnar vs row-at-a-time execution. Per query the plan is compiled once
   and executed with vectorized kernels on and off (`off` is the row
   interpreter the columnar refactor replaced), sequentially and on 4
   worker domains; rendered results are compared byte-for-byte. The
   throughput numerator — vertices scanned plus intermediate rows
   produced — is identical in both modes, so the reported speedup is a
   pure wall-clock ratio. Plans containing only scans, filters,
   projections and row-number cuts are tagged filter/projection-dominated;
   the acceptance summary is the geomean speedup over that subset (target:
   >= 1.5x). Emits BENCH_exec.json. *)
let vectorized_bench () =
  let session = H.ldbc_session H.bench_persons in
  let graph = Gopt.Session.graph session in
  let vuniv = Gopt_graph.Schema.n_vtypes (Gopt.Session.schema session) in
  let queries =
    Queries.vs
    @ [
        (* expansion/aggregation-heavy contrast rows: kernels only cover the
           scan stage, so the speedup is expected to shrink here *)
        Queries.find Queries.comprehensive "BI1";
        Queries.find Queries.comprehensive "BI12";
      ]
  in
  let rec filter_dominated = function
    | Physical.Scan _ | Physical.Empty _ -> true
    | Physical.Select (x, _)
    | Physical.Project (x, _)
    | Physical.Limit (x, _)
    | Physical.Skip (x, _)
    | Physical.Dedup (x, _) ->
      filter_dominated x
    | Physical.Union (a, b) -> filter_dominated a && filter_dominated b
    | _ -> false
  in
  (* static count of vertices the plan's scans read (the Limit short-circuit
     may stop earlier; the figure is the same for both execution modes) *)
  let rec scanned = function
    | Physical.Scan { con; _ } ->
      List.fold_left
        (fun acc t -> acc + Gopt_graph.Property_graph.count_vtype graph t)
        0
        (Tc.to_list ~universe:vuniv con)
    | Physical.Empty _ | Physical.Common_ref _ -> 0
    | Physical.Select (x, _)
    | Physical.Project (x, _)
    | Physical.Group (x, _, _)
    | Physical.Order (x, _, _)
    | Physical.Limit (x, _)
    | Physical.Skip (x, _)
    | Physical.Unfold (x, _, _)
    | Physical.Dedup (x, _)
    | Physical.All_distinct (x, _)
    | Physical.Expand_all (x, _)
    | Physical.Expand_into (x, _)
    | Physical.Expand_intersect (x, _)
    | Physical.Path_expand (x, _) ->
      scanned x
    | Physical.Union (a, b) -> scanned a + scanned b
    | Physical.Hash_join { left; right; _ } -> scanned left + scanned right
    | Physical.With_common { common; left; right; _ } ->
      scanned common + scanned left + scanned right
  in
  let module Op_trace = Gopt_exec.Op_trace in
  let rec kernel_totals (r, ns) (tr : Op_trace.t) =
    List.fold_left kernel_totals
      (r + tr.Op_trace.rows_selected, ns +. tr.Op_trace.kernel_ns)
      tr.Op_trace.children
  in
  let render b = Format.asprintf "%a" (Batch.pp graph) b in
  let fnum v = if Float.is_nan v then "null" else Printf.sprintf "%.6e" v in
  let rows = ref [] and json = ref [] in
  let sp1s = ref [] and sp4s = ref [] in
  List.iter
    (fun (q : Queries.query) ->
      let physical, _ = Gopt.plan_cypher session q.Queries.cypher in
      let fdom = filter_dominated physical in
      let measure ~vectorize ?workers () =
        let run () =
          Engine.run ~budget:H.bench_budget ~vectorize ?workers graph physical
        in
        let b, st = run () in
        (* warmed up; then average enough repetitions to get off the clock
           granularity *)
        let reps = ref 0 and t = ref 0.0 in
        while !t < 0.2 && !reps < 100 do
          let t0 = Unix.gettimeofday () in
          ignore (run ());
          t := !t +. (Unix.gettimeofday () -. t0);
          incr reps
        done;
        (b, st, !t /. float_of_int !reps)
      in
      let b_on1, st_on1, t_on1 = measure ~vectorize:true () in
      let b_off1, _, t_off1 = measure ~vectorize:false () in
      let b_on4, _, t_on4 = measure ~vectorize:true ~workers:4 () in
      let b_off4, _, t_off4 = measure ~vectorize:false ~workers:4 () in
      (* hard guarantee of this engine: kernels never change the result at
         any worker count. The sequential pipeline and the morsel engine may
         legitimately pick different ties under ORDER BY ... LIMIT (the
         morsel engine is byte-identical across worker counts; recorded, not
         asserted). *)
      if render b_off1 <> render b_on1 then
        failwith (Printf.sprintf "%s: kernels changed the w=1 result!" q.Queries.name);
      if render b_off4 <> render b_on4 then
        failwith (Printf.sprintf "%s: kernels changed the w=4 result!" q.Queries.name);
      let w1_eq_w4 = if render b_on4 = render b_on1 then "yes" else "tie-order" in
      let thr = scanned physical + st_on1.Engine.intermediate_rows in
      let k_rows, k_ns =
        match st_on1.Engine.op_trace with
        | Some tr -> kernel_totals (0, 0.0) tr
        | None -> (0, 0.0)
      in
      let sp1 = t_off1 /. t_on1 and sp4 = t_off4 /. t_on4 in
      if fdom then begin
        sp1s := sp1 :: !sp1s;
        sp4s := sp4 :: !sp4s
      end;
      let mrps t = float_of_int thr /. t /. 1e6 in
      rows :=
        [
          q.Queries.name;
          (if fdom then "yes" else "no");
          string_of_int (Batch.n_rows b_on1);
          Printf.sprintf "%.2f" (mrps t_on1);
          Printf.sprintf "%.2f" (mrps t_off1);
          Printf.sprintf "%.2fx" sp1;
          Printf.sprintf "%.2fx" sp4;
          Printf.sprintf "%.3f" (k_ns /. 1e6);
          string_of_int k_rows;
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "    {\"query\": %S, \"filter_dominated\": %b, \"result_rows\": %d, \
           \"throughput_rows\": %d, \"w1\": {\"vectorized_s\": %s, \"row_s\": %s, \
           \"vectorized_rows_per_s\": %s, \"row_rows_per_s\": %s, \"speedup\": %s}, \
           \"w4\": {\"vectorized_s\": %s, \"row_s\": %s, \"speedup\": %s}, \
           \"kernel\": {\"rows_selected\": %d, \"kernel_s\": %s}, \
           \"vectorize_identical\": \"yes\", \"workers_1_eq_4\": %S}"
          q.Queries.name fdom (Batch.n_rows b_on1) thr (fnum t_on1) (fnum t_off1)
          (fnum (float_of_int thr /. t_on1))
          (fnum (float_of_int thr /. t_off1))
          (fnum sp1) (fnum t_on4) (fnum t_off4) (fnum sp4) k_rows
          (fnum (k_ns /. 1e9))
          w1_eq_w4
        :: !json)
    queries;
  H.print_table
    ~title:
      (Printf.sprintf
         "Vectorized execution: columnar kernels vs row interpreter, wall clock \
          (persons=%d; throughput = scanned + intermediate rows)"
         H.bench_persons)
    ~header:
      [
        "query"; "f/p-dom"; "rows"; "Mrow/s vec w1"; "Mrow/s row w1";
        "speedup w1"; "speedup w4"; "kernel ms"; "kernel sel";
      ]
    (List.rev !rows);
  let geo1 = H.geomean !sp1s and geo4 = H.geomean !sp4s in
  Printf.printf
    "filter/projection-dominated geomean speedup: %.2fx (w=1), %.2fx (w=4)%s\n"
    geo1 geo4
    (if geo1 >= 1.5 then " — meets the 1.5x target"
     else " — below the 1.5x target at this scale");
  let oc = open_out "BENCH_exec.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"vectorized\",\n  \"persons\": %d,\n\
    \  \"filter_dominated_geomean_speedup_w1\": %s,\n\
    \  \"filter_dominated_geomean_speedup_w4\": %s,\n\
    \  \"queries\": [\n%s\n  ]\n}\n"
    H.bench_persons (fnum geo1) (fnum geo4)
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Printf.printf "wrote BENCH_exec.json\n"

(* ---------------------------------------------------------------- main -- *)

let experiments =
  [
    ("table1", table1);
    ("table3", table3);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig8c", fig8c);
    ("fig8d", fig8d);
    ("fig8e", fig8e);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig11", fig11);
    ("ablation_cbo", ablation_cbo);
    ("ablation_typeinf", ablation_typeinf);
    ("ablation_intersect", ablation_intersect);
    ("ablation_selectivity", ablation_selectivity);
    ("trace", trace);
    ("parallel", parallel);
    ("plan_cache", plan_cache_bench);
    ("vectorized", vectorized_bench);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments else args in
  Printf.printf "GOpt experiment harness — scale: %d persons, OT budget: %.0fs CPU per run\n%!"
    H.bench_persons H.bench_budget;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Printf.printf "\n%s\n%s\n%!" (String.make 72 '=') name;
        let t0 = Sys.time () in
        f ();
        Printf.printf "[%s done in %.1fs cpu]\n%!" name (Sys.time () -. t0)
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    selected
