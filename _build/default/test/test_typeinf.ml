module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Ti = Gopt_typeinf.Type_inference
module Prng = Gopt_util.Prng
open Fixtures

(* Paper Fig. 5: (v1:ANY)-[]->(v2:ANY)-[]->(v3:City standing for Place) infers
   v2 in {Person, Product} and v1 = Person. *)
let test_paper_example () =
  let p =
    Pattern.create
      [| pv "v1" Tc.All; pv "v2" Tc.All; pv "v3" (Tc.Basic city) |]
      [| pe "e1" 0 1 Tc.All; pe "e2" 1 2 Tc.All |]
  in
  match Ti.infer schema p with
  | Ti.Invalid -> Alcotest.fail "expected valid inference"
  | Ti.Inferred (p', _) ->
    let v1 = (Pattern.vertex p' 0).Pattern.v_con in
    let v2 = (Pattern.vertex p' 1).Pattern.v_con in
    Alcotest.(check bool) "v1 = Person" true (v1 = Tc.Basic person);
    Alcotest.(check bool) "v2 = Person|Product" true
      (v2 = Tc.Union (List.sort Int.compare [ person; product ]));
    (* e2 narrowed to LIVES_IN | PRODUCED_IN *)
    let e2 = (Pattern.edge p' 1).Pattern.e_con in
    Alcotest.(check bool) "e2 narrowed" true
      (e2 = Tc.Union (List.sort Int.compare [ lives_in; produced_in ]));
    (* e1 narrowed to KNOWS | PURCHASED *)
    let e1 = (Pattern.edge p' 0).Pattern.e_con in
    Alcotest.(check bool) "e1 narrowed" true
      (e1 = Tc.Union (List.sort Int.compare [ knows; purchased ]))

let test_invalid_pattern () =
  (* City has no outgoing edges in the schema *)
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic city); pv "b" Tc.All |]
      [| pe "e" 0 1 Tc.All |]
  in
  Alcotest.(check bool) "invalid" true (Ti.infer schema p = Ti.Invalid)

let test_already_typed_unchanged () =
  match Ti.infer schema p_knows with
  | Ti.Invalid -> Alcotest.fail "valid pattern flagged invalid"
  | Ti.Inferred (p', _) ->
    Alcotest.(check bool) "a unchanged" true
      ((Pattern.vertex p' 0).Pattern.v_con = Tc.Basic person);
    Alcotest.(check bool) "edge unchanged" true
      ((Pattern.edge p' 0).Pattern.e_con = Tc.Basic knows)

let test_undirected_edge () =
  (* (a:City)-[ANY]-(b:ANY) undirected: City side can only be the target, so
     b is whatever can reach City: Person or Product *)
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic city); pv "b" Tc.All |]
      [| pe ~directed:false "e" 0 1 Tc.All |]
  in
  match Ti.infer schema p with
  | Ti.Invalid -> Alcotest.fail "undirected should be satisfiable"
  | Ti.Inferred (p', _) ->
    let b = (Pattern.vertex p' 1).Pattern.v_con in
    Alcotest.(check bool) "b = Person|Product" true
      (b = Tc.Union (List.sort Int.compare [ person; product ]))

let test_unordered_same_result () =
  let p =
    Pattern.create
      [| pv "v1" Tc.All; pv "v2" Tc.All; pv "v3" (Tc.Basic city) |]
      [| pe "e1" 0 1 Tc.All; pe "e2" 1 2 Tc.All |]
  in
  match Ti.infer ~prioritized:true schema p, Ti.infer ~prioritized:false schema p with
  | Ti.Inferred (a, _), Ti.Inferred (b, _) ->
    Alcotest.(check string) "same result"
      (Gopt_pattern.Canonical.keyed_code a)
      (Gopt_pattern.Canonical.keyed_code b)
  | _ -> Alcotest.fail "both orders should infer"

let test_var_length_untouched () =
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" Tc.All |]
      [| pe ~hops:(3, 3) "e" 0 1 (Tc.Basic knows) |]
  in
  match Ti.infer schema p with
  | Ti.Invalid -> Alcotest.fail "var length should not invalidate"
  | Ti.Inferred (p', _) ->
    Alcotest.(check bool) "b untouched" true ((Pattern.vertex p' 1).Pattern.v_con = Tc.All)

(* Soundness property: inference never removes a type assignment that is
   satisfiable against the schema. *)
let prop_soundness =
  QCheck.Test.make ~name:"inference soundness" ~count:200 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let n_v = Gopt_graph.Schema.n_vtypes schema in
      let rand_con () =
        match Prng.int rng 3 with
        | 0 -> Tc.All
        | 1 -> Tc.Basic (Prng.int rng n_v)
        | _ -> (
          match Tc.of_list ~universe:n_v [ Prng.int rng n_v; Prng.int rng n_v ] with
          | Some c -> c
          | None -> Tc.All)
      in
      let nv = 2 + Prng.int rng 3 in
      let vs = Array.init nv (fun i -> pv (Printf.sprintf "v%d" i) (rand_con ())) in
      let es = ref [] in
      for i = 1 to nv - 1 do
        let j = Prng.int rng i in
        let src, dst = if Prng.bool rng then (i, j) else (j, i) in
        es := pe (Printf.sprintf "e%d" i) src dst Tc.All :: !es
      done;
      let p = Pattern.create vs (Array.of_list !es) in
      (* enumerate all concrete vertex-type assignments of the original *)
      let rec assignments i acc =
        if i = nv then [ Array.of_list (List.rev acc) ]
        else
          List.concat_map
            (fun t -> assignments (i + 1) (t :: acc))
            (Tc.to_list ~universe:n_v (Pattern.vertex p i).Pattern.v_con)
      in
      let sat = List.filter (Ti.assignment_satisfiable schema p) (assignments 0 []) in
      match Ti.infer schema p with
      | Ti.Invalid -> sat = []
      | Ti.Inferred (p', _) ->
        (* every satisfiable assignment survives in the narrowed constraints *)
        List.for_all
          (fun asg ->
            Array.for_all Fun.id
              (Array.mapi
                 (fun i t -> Tc.mem ~universe:n_v (Pattern.vertex p' i).Pattern.v_con t)
                 asg))
          sat)

let () =
  Alcotest.run "typeinf"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "paper example (fig 5)" `Quick test_paper_example;
          Alcotest.test_case "invalid pattern" `Quick test_invalid_pattern;
          Alcotest.test_case "already typed" `Quick test_already_typed_unchanged;
          Alcotest.test_case "undirected" `Quick test_undirected_edge;
          Alcotest.test_case "ordering irrelevant" `Quick test_unordered_same_result;
          Alcotest.test_case "var length untouched" `Quick test_var_length_untouched;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_soundness ]);
    ]
