(* Tests for the extension substrates: graph serialization, schema
   discovery, property histograms, plan serialization, and the SKIP
   operator. *)

module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Graph_io = Gopt_graph.Graph_io
module Schema_discovery = Gopt_graph.Schema_discovery
module Value = Gopt_graph.Value
module Hist = Gopt_glogue.Histograms
module Codec = Gopt_opt.Plan_codec
module Physical = Gopt_opt.Physical
module Cbo = Gopt_opt.Cbo
module Spec = Gopt_opt.Physical_spec
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Expr = Gopt_pattern.Expr
module Tc = Gopt_pattern.Type_constraint
module Pattern = Gopt_pattern.Pattern
open Fixtures

(* --- Graph_io -------------------------------------------------------------- *)

let graphs_equal a b =
  G.n_vertices a = G.n_vertices b
  && G.n_edges a = G.n_edges b
  && List.for_all
       (fun v -> G.vtype a v = G.vtype b v)
       (List.init (G.n_vertices a) Fun.id)
  && List.for_all
       (fun e ->
         G.esrc a e = G.esrc b e && G.edst a e = G.edst b e && G.etype a e = G.etype b e)
       (List.init (G.n_edges a) Fun.id)

let test_graph_io_roundtrip () =
  let text = Graph_io.to_string graph in
  let back = Graph_io.of_string text in
  Alcotest.(check bool) "same structure" true (graphs_equal graph back);
  (* properties survive *)
  Alcotest.(check bool) "props survive" true
    (Value.equal (G.vprop back 0 "name") (G.vprop graph 0 "name"));
  (* and it round-trips a second time to the identical text *)
  Alcotest.(check string) "stable" text (Graph_io.to_string back)

let test_graph_io_escaping () =
  let schema =
    Schema.create
      ~vtypes:[ ("T", [ ("s", Schema.P_string) ]) ]
      ~etypes:[ ("E", []) ]
      ~triples:[ ("T", "E", "T") ]
  in
  let b = G.Builder.create schema in
  let tricky = "tab\there|and\nnewline\\backslash" in
  let v0 = G.Builder.add_vertex b ~vtype:0 [ ("s", Value.Str tricky) ] in
  let v1 = G.Builder.add_vertex b ~vtype:0 [] in
  ignore (G.Builder.add_edge b ~src:v0 ~dst:v1 ~etype:0 []);
  let g = G.Builder.freeze b in
  let back = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check bool) "tricky string survives" true
    (Value.equal (G.vprop back 0 "s") (Value.Str tricky))

let test_graph_io_ldbc_roundtrip () =
  let g = Gopt_workloads.Ldbc.generate ~persons:60 () in
  let back = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check bool) "ldbc roundtrip" true (graphs_equal g back)

let test_graph_io_file () =
  let path = Filename.temp_file "gopt" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save graph path;
      let back = Graph_io.load path in
      Alcotest.(check bool) "file roundtrip" true (graphs_equal graph back))

let test_graph_io_malformed () =
  List.iter
    (fun text ->
      match Graph_io.of_string text with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "expected failure for %S" text)
    [ "nonsense line"; "gopt-graph v1\nv\tNoSuchType"; "gopt-graph v1\nvtype\tT\tbad" ]

(* --- Schema discovery ------------------------------------------------------ *)

let int_triple : (int * int * int) Alcotest.testable =
  Alcotest.testable
    (fun ppf (x, y, z) -> Format.fprintf ppf "(%d,%d,%d)" x y z)
    (fun (x1, y1, z1) (x2, y2, z2) -> x1 = x2 && y1 = y2 && z1 = z2)

let test_schema_discovery () =
  (* the fixture graph realizes all four declared triples *)
  let obs = Schema_discovery.observed graph in
  Alcotest.(check int) "all triples live" 4 (Array.length (Schema.triples obs));
  Alcotest.(check (list int_triple)) "no missing" []
    (Schema_discovery.missing_triples graph);
  (* a graph using only KNOWS: observed schema shrinks *)
  let b = G.Builder.create schema in
  let p0 = G.Builder.add_vertex b ~vtype:person [] in
  let p1 = G.Builder.add_vertex b ~vtype:person [] in
  ignore (G.Builder.add_edge b ~src:p0 ~dst:p1 ~etype:knows []);
  let g = G.Builder.freeze b in
  let obs = Schema_discovery.observed g in
  Alcotest.(check int) "one live triple" 1 (Array.length (Schema.triples obs));
  Alcotest.(check int) "three missing" 3 (List.length (Schema_discovery.missing_triples g));
  (* type ids preserved *)
  Alcotest.(check int) "person id stable" person (Schema.vtype_id obs "Person")

let test_observed_schema_tightens_inference () =
  (* nobody purchased anything in this graph, so (a)-[:PURCHASED]->(b)
     is invalid under the observed schema but valid under the declared one *)
  let b = G.Builder.create schema in
  let p0 = G.Builder.add_vertex b ~vtype:person [] in
  let p1 = G.Builder.add_vertex b ~vtype:person [] in
  ignore (G.Builder.add_edge b ~src:p0 ~dst:p1 ~etype:knows []);
  let g = G.Builder.freeze b in
  let p =
    Pattern.create
      [| pv "a" Tc.All; pv "b" Tc.All |]
      [| pe "e" 0 1 (Tc.Basic purchased) |]
  in
  let module Ti = Gopt_typeinf.Type_inference in
  (match Ti.infer schema p with
  | Ti.Inferred _ -> ()
  | Ti.Invalid -> Alcotest.fail "declared schema should admit the pattern");
  match Ti.infer (Schema_discovery.observed g) p with
  | Ti.Invalid -> ()
  | Ti.Inferred _ -> Alcotest.fail "observed schema should reject the pattern"

(* --- Histograms ------------------------------------------------------------- *)

let hist = Hist.build graph

let test_histogram_equality () =
  (* 4 persons with distinct names: Eq selectivity = 1/4 *)
  match
    Hist.selectivity hist ~elem:Hist.Vertex ~type_ids:[ person ] ~prop:"name"
      (`Eq (Value.Str "p0"))
  with
  | Some s -> Alcotest.(check (float 1e-9)) "1/4" 0.25 s
  | None -> Alcotest.fail "expected statistics"

let test_histogram_range () =
  (* ages 20,21,22,23: age > 21 keeps half *)
  match
    Hist.selectivity hist ~elem:Hist.Vertex ~type_ids:[ person ] ~prop:"age"
      (`Range (`Gt, Value.Int 21))
  with
  | Some s -> Alcotest.(check bool) "about half" true (s > 0.3 && s < 0.7)
  | None -> Alcotest.fail "expected statistics"

let test_histogram_in_list () =
  match
    Hist.selectivity hist ~elem:Hist.Vertex ~type_ids:[ person ] ~prop:"name"
      (`In [ Value.Str "p0"; Value.Str "p1"; Value.Str "nope" ])
  with
  | Some s -> Alcotest.(check (float 1e-9)) "3/4" 0.75 s
  | None -> Alcotest.fail "expected statistics"

let test_histogram_unknown_prop () =
  Alcotest.(check bool) "unknown prop" true
    (Hist.selectivity hist ~elem:Hist.Vertex ~type_ids:[ person ] ~prop:"nope"
       (`Eq (Value.Int 0))
    = None)

let test_histogram_feeds_estimator () =
  let gq_h = Gq.create ~histograms:hist (Glogue.build graph) in
  let gq_plain = Gq.create (Glogue.build graph) in
  let pred = Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 21)) in
  let p =
    Pattern.create [| pv ~pred "a" (Tc.Basic person) |] [||]
  in
  (* histogram: ~half of 4 = ~2; constant fallback: 0.4 *)
  Alcotest.(check bool) "histogram estimate" true (Gq.get_freq gq_h p > 1.0);
  Alcotest.(check (float 1e-6)) "constant fallback" 0.4 (Gq.get_freq gq_plain p)

(* --- Plan codec -------------------------------------------------------------- *)

let test_sexp_roundtrip () =
  let open Codec.Sexp in
  let s = List [ Atom "a b"; Atom "plain"; List [ Atom "\"quoted\""; Atom "" ] ] in
  Alcotest.(check bool) "sexp roundtrip" true (of_string (to_string s) = s);
  List.iter
    (fun bad ->
      match of_string bad with
      | exception Codec.Decode_error _ -> ()
      | _ -> Alcotest.failf "expected decode error for %S" bad)
    [ "("; "(a))"; "\"unterminated"; "a b" ]

let gq = Gq.create (Glogue.build graph)

let test_plan_codec_roundtrip () =
  let plan, _ = Cbo.optimize gq Spec.graphscope p_triangle in
  let phys = Cbo.to_physical Spec.graphscope plan in
  let phys =
    Physical.Order
      ( Physical.Group
          ( Physical.Select
              (phys, Expr.Binop (Expr.Gt, Expr.Prop ("a", "age"), Expr.Const (Value.Int 1))),
            [ (Expr.Var "a", "a") ],
            [ { Gopt_gir.Logical.agg_fn = Gopt_gir.Logical.Count; agg_arg = None; agg_alias = "c" } ] ),
        [ (Expr.Var "c", Gopt_gir.Logical.Desc) ],
        Some 5 )
  in
  let encoded = Codec.encode phys in
  let decoded = Codec.decode encoded in
  Alcotest.(check string) "identical plan text"
    (Physical.to_string phys) (Physical.to_string decoded);
  (* and the decoded plan executes identically *)
  let r1, _ = Engine.run graph phys in
  let r2, _ = Engine.run graph decoded in
  Alcotest.(check int) "same results" (Batch.n_rows r1) (Batch.n_rows r2)

let test_plan_codec_version_check () =
  match Codec.decode "(gopt-plan v99 (empty ()))" with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected version error"

let test_plan_codec_executes_after_transfer () =
  (* simulate the optimizer/backend process split: plan a query, encode,
     decode in a "different process", execute *)
  let session = Gopt.Session.create graph in
  let phys, _ =
    Gopt.plan_cypher session
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:LIVES_IN]->(c:City) RETURN count(*) AS n"
  in
  let transferred = Codec.decode (Codec.encode phys) in
  let r, _ = Engine.run graph transferred in
  Alcotest.(check int) "one row" 1 (Batch.n_rows r)

(* --- SKIP -------------------------------------------------------------------- *)

let test_skip_operator () =
  let session = Gopt.Session.create graph in
  let all =
    Gopt.run_cypher session "MATCH (a:Person) RETURN a.name AS n ORDER BY n ASC"
  in
  let skipped =
    Gopt.run_cypher session "MATCH (a:Person) RETURN a.name AS n ORDER BY n ASC SKIP 2"
  in
  let page =
    Gopt.run_cypher session
      "MATCH (a:Person) RETURN a.name AS n ORDER BY n ASC SKIP 1 LIMIT 2"
  in
  Alcotest.(check int) "all" 4 (Batch.n_rows all.Gopt.result);
  Alcotest.(check int) "skip 2" 2 (Batch.n_rows skipped.Gopt.result);
  Alcotest.(check int) "page" 2 (Batch.n_rows page.Gopt.result);
  (* the page is rows 1..2 of the ordered output *)
  let name batch i =
    match (Batch.row batch i).(0) with
    | Gopt_exec.Rval.Rval (Value.Str s) -> s
    | _ -> Alcotest.fail "expected string"
  in
  Alcotest.(check string) "offset correct" (name all.Gopt.result 1) (name page.Gopt.result 0)

let test_unwind () =
  let session = Gopt.Session.create graph in
  let out =
    Gopt.run_cypher session
      "MATCH (a:Person) WITH collect(a.name) AS names UNWIND names AS n RETURN n ORDER BY n ASC"
  in
  Alcotest.(check int) "collect/unwind roundtrip" 4 (Batch.n_rows out.Gopt.result);
  (match (Batch.row out.Gopt.result 0).(0) with
  | Gopt_exec.Rval.Rval (Value.Str "p0") -> ()
  | _ -> Alcotest.fail "expected p0 first");
  (* unwinding a path yields its vertices *)
  let out2 =
    Gopt.run_cypher session
      "MATCH (a:Person {name: 'p0'})-[p:KNOWS*2..2]->(b:Person) UNWIND p AS step RETURN count(step) AS c"
  in
  match (Batch.row out2.Gopt.result 0).(0) with
  | Gopt_exec.Rval.Rval (Value.Int 6) -> () (* 2 paths x 3 vertices *)
  | v ->
    Alcotest.failf "expected 6 path vertices, got %s"
      (Format.asprintf "%a" (Gopt_exec.Rval.pp graph) v)

let test_glogue_sparsify () =
  let g = Gopt_workloads.Ldbc.generate ~persons:400 () in
  let exact = Glogue.build g in
  let sampled = Glogue.build ~sparsify:0.5 g in
  (* vertex counts stay exact *)
  Alcotest.(check (float 1e-9)) "vertex exact"
    (Glogue.vertex_freq exact 0) (Glogue.vertex_freq sampled 0);
  (* a large wedge motif is estimated within a factor of 2 *)
  let knows = Gopt_graph.Schema.etype_id (Gopt_graph.Property_graph.schema g) "KNOWS" in
  let person = Gopt_graph.Schema.vtype_id (Gopt_graph.Property_graph.schema g) "Person" in
  let wedge =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows) |]
  in
  match Glogue.find exact wedge, Glogue.find sampled wedge with
  | Some ex, Some sp ->
    Alcotest.(check bool) "estimate in range" true (sp > ex /. 2.0 && sp < ex *. 2.0)
  | _ -> Alcotest.fail "wedge missing from a store"

let test_skip_fusion_rule () =
  let module Logical = Gopt_gir.Logical in
  let plan =
    Logical.Limit
      (Logical.Skip (Logical.Order (Logical.Match p_knows, [ (Expr.Var "a", Logical.Asc) ], None), 3), 2)
  in
  match Gopt_opt.Rules_relational.limit_pushdown.Gopt_opt.Rule.apply plan with
  | Some (Logical.Skip (Logical.Order (_, _, Some 5), 3)) -> ()
  | _ -> Alcotest.fail "expected order/skip/limit fusion"

(* property: random plan encode/decode is the identity on plan text *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip on random plans" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Gopt_util.Prng.create seed in
      let phys, _ = Gopt_opt.Baselines.random_plan rng Spec.graphscope p_triangle in
      let phys = if Gopt_util.Prng.bool rng then Physical.Dedup (phys, [ "a" ]) else phys in
      Physical.to_string (Codec.decode (Codec.encode phys)) = Physical.to_string phys)

let () =
  Alcotest.run "extensions"
    [
      ( "graph_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_graph_io_roundtrip;
          Alcotest.test_case "escaping" `Quick test_graph_io_escaping;
          Alcotest.test_case "ldbc roundtrip" `Quick test_graph_io_ldbc_roundtrip;
          Alcotest.test_case "file io" `Quick test_graph_io_file;
          Alcotest.test_case "malformed input" `Quick test_graph_io_malformed;
        ] );
      ( "schema_discovery",
        [
          Alcotest.test_case "observed schema" `Quick test_schema_discovery;
          Alcotest.test_case "tightens inference" `Quick test_observed_schema_tightens_inference;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "equality" `Quick test_histogram_equality;
          Alcotest.test_case "range" `Quick test_histogram_range;
          Alcotest.test_case "in list" `Quick test_histogram_in_list;
          Alcotest.test_case "unknown prop" `Quick test_histogram_unknown_prop;
          Alcotest.test_case "feeds estimator" `Quick test_histogram_feeds_estimator;
        ] );
      ( "plan_codec",
        [
          Alcotest.test_case "sexp roundtrip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "plan roundtrip" `Quick test_plan_codec_roundtrip;
          Alcotest.test_case "version check" `Quick test_plan_codec_version_check;
          Alcotest.test_case "transfer + execute" `Quick test_plan_codec_executes_after_transfer;
        ] );
      ( "skip",
        [
          Alcotest.test_case "operator" `Quick test_skip_operator;
          Alcotest.test_case "fusion rule" `Quick test_skip_fusion_rule;
          Alcotest.test_case "unwind" `Quick test_unwind;
        ] );
      ( "sparsification",
        [ Alcotest.test_case "sampled counts" `Quick test_glogue_sparsify ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_codec_roundtrip ]);
    ]
