module Session = Gopt.Session
module Planner = Gopt_opt.Planner
module Baselines = Gopt_opt.Baselines
module Spec = Gopt_opt.Physical_spec
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Queries = Gopt_workloads.Queries
module Ldbc = Gopt_workloads.Ldbc
module Value = Gopt_graph.Value

let fixture_session = Session.create Fixtures.graph

(* a tiny LDBC graph shared by the workload tests *)
let ldbc_graph = Ldbc.generate ~seed:1 ~persons:120 ()
let ldbc_session = Session.create ldbc_graph

(* canonical, order-insensitive view of a result batch *)
let row_set batch =
  let g = Fixtures.graph in
  ignore g;
  let rows = ref [] in
  Batch.iter
    (fun row ->
      rows :=
        String.concat "|"
          (List.sort String.compare
             (List.map2
                (fun f v -> f ^ "=" ^ Format.asprintf "%a" (Rval.pp ldbc_graph) v)
                (Batch.fields batch) (Array.to_list row)))
        :: !rows)
    batch;
  List.sort String.compare !rows

let single_int batch =
  match Batch.n_rows batch with
  | 1 -> begin
    match (Batch.row batch 0).(0) with
    | Rval.Rval (Value.Int n) -> n
    | v -> Alcotest.failf "expected int, got %s" (Format.asprintf "%a" (Rval.pp ldbc_graph) v)
  end
  | n -> Alcotest.failf "expected one row, got %d" n

let test_quickstart () =
  let out = Gopt.run_cypher fixture_session "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c" in
  Alcotest.(check int) "knows count" 5 (single_int out.Gopt.result)

let test_cross_language () =
  let c =
    Gopt.run_cypher fixture_session
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:LIVES_IN]->(c:City) RETURN count(*) AS c"
  in
  let g =
    Gopt.run_gremlin fixture_session
      "g.V().hasLabel('Person').out('KNOWS').hasLabel('Person').out('LIVES_IN').hasLabel('City').count()"
  in
  Alcotest.(check int) "same count" (single_int c.Gopt.result) (single_int g.Gopt.result)

let test_explain () =
  let s =
    Gopt.explain_cypher fixture_session
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE b.name = 'p2' RETURN a.name AS n"
  in
  Alcotest.(check bool) "mentions physical" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    contains "physical" && contains "MATCH_PATTERN")

(* The central correctness property of the whole system: every optimizer
   configuration yields identical results. *)
let configs =
  [
    ("gopt-gs", Baselines.gopt_config Spec.graphscope);
    ("gopt-neo", Baselines.gopt_config Spec.neo4j);
    ("cypher-planner", Baselines.cypher_planner_config);
    ("gs-rbo", Baselines.gs_rbo_config);
    ("no-rbo", { (Planner.default_config ()) with Planner.enable_rbo = false; enable_field_trim = false });
    ("no-inference", { (Planner.default_config ()) with Planner.enable_type_inference = false });
    ("no-cbo", { (Planner.default_config ()) with Planner.enable_cbo = false });
  ]

let check_all_configs_agree session query =
  let reference = ref None in
  List.iter
    (fun (name, config) ->
      let out = Gopt.run_cypher ~config ~budget:30.0 session query in
      let rows = row_set out.Gopt.result in
      match !reference with
      | None -> reference := Some rows
      | Some expected ->
        Alcotest.(check (list string)) (Printf.sprintf "%s on %s" name query) expected rows)
    configs

let test_config_equivalence_fixture () =
  List.iter (check_all_configs_agree fixture_session)
    [
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c";
      "MATCH (a:Person)-[k:KNOWS]->(b:Person)-[:LIVES_IN]->(c:City) WHERE c.name = 'c0' RETURN a.name AS n, b.name AS m";
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person), (a)-[:KNOWS]->(c) RETURN count(*) AS c";
      "MATCH (a)-[]->(b:City) RETURN count(*) AS c";
      "MATCH (a:Person)-[:KNOWS*1..2]-(b:Person) RETURN count(*) AS c";
      "MATCH (a:Person) OPTIONAL MATCH (a)-[:PURCHASED]->(g:Product) RETURN a.name AS n, count(g) AS c";
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE NOT (b)-[:KNOWS]->(a) RETURN count(*) AS c";
      "MATCH (a:Person)-[:LIVES_IN]->(c:City) RETURN c.name AS n, count(a) AS cnt ORDER BY cnt DESC, n ASC";
      "MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:LIVES_IN]->(c:City) RETURN v1.name AS a, v2.name AS b \
       UNION MATCH (v1:Person)-[:KNOWS]->(v2:Person)-[:PURCHASED]->(g:Product) RETURN v1.name AS a, v2.name AS b";
    ]

let test_config_equivalence_ldbc () =
  List.iter (check_all_configs_agree ldbc_session)
    [
      "MATCH (p:Person {id: 10})-[:KNOWS]-(f:Person) RETURN f.id AS fid ORDER BY fid ASC";
      "MATCH (p:Person)-[:IS_LOCATED_IN]->(c:City) WHERE c.name = 'city_3' RETURN count(*) AS c";
      "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:LIKES]->(m:Post), (m)-[:HAS_CREATOR]->(p2) RETURN count(*) AS c";
      "MATCH (a)-[]->(b)-[:IS_PART_OF]->(c:Country {name: 'country_0'}) RETURN count(*) AS c";
    ]

let test_all_workload_queries_run () =
  (* every IC/BI/QR/QT/QC query parses, plans and executes under the default
     pipeline on the tiny graph *)
  List.iter
    (fun (q : Queries.query) ->
      match Gopt.run_cypher ~budget:60.0 ldbc_session q.Queries.cypher with
      | out ->
        Alcotest.(check bool)
          (q.Queries.name ^ " produced a result")
          true
          (Batch.n_rows out.Gopt.result >= 0)
      | exception exn ->
        Alcotest.failf "%s failed: %s" q.Queries.name (Printexc.to_string exn))
    (Queries.comprehensive @ Queries.qr @ Queries.qt @ Queries.qc)

let test_gremlin_twins_agree () =
  List.iter
    (fun (q : Queries.query) ->
      match q.Queries.gremlin with
      | None -> ()
      | Some gsrc ->
        (* compare total match counts: all twins end in count() *)
        let cy = Gopt.run_cypher ~budget:60.0 ldbc_session q.Queries.cypher in
        let gr = Gopt.run_gremlin ~budget:60.0 ldbc_session gsrc in
        let count_of out =
          if Batch.n_rows out.Gopt.result = 1 && Batch.n_fields out.Gopt.result = 1 then
            match (Batch.row out.Gopt.result 0).(0) with
            | Rval.Rval (Value.Int n) -> Some n
            | _ -> None
          else None
        in
        (match count_of cy, count_of gr with
        | Some a, Some b ->
          (* Cypher MATCH uses no-repeated-edge semantics, Gremlin is
             homomorphic: Gremlin count can only be larger *)
          Alcotest.(check bool) (q.Queries.name ^ " gremlin >= cypher") true (b >= a)
        | _ -> ()))
    Queries.qc

let test_qt_inference_equivalence () =
  List.iter
    (fun (q : Queries.query) ->
      let on = Gopt.run_cypher ~budget:60.0 ldbc_session q.Queries.cypher in
      let config = { (Planner.default_config ()) with Planner.enable_type_inference = false } in
      let off = Gopt.run_cypher ~config ~budget:60.0 ldbc_session q.Queries.cypher in
      Alcotest.(check (list string)) (q.Queries.name ^ " same results") (row_set off.Gopt.result)
        (row_set on.Gopt.result);
      (* and inference must not be slower in terms of rows materialized *)
      Alcotest.(check bool)
        (q.Queries.name ^ " fewer-or-equal intermediates")
        true
        (on.Gopt.exec_stats.Engine.intermediate_rows
        <= off.Gopt.exec_stats.Engine.intermediate_rows))
    Queries.qt

let test_dataset_shape () =
  let open Gopt_graph.Property_graph in
  Alcotest.(check bool) "vertices scale" true (n_vertices ldbc_graph > 800);
  Alcotest.(check bool) "edges scale" true (n_edges ldbc_graph > 4000);
  (* determinism *)
  let again = Ldbc.generate ~seed:1 ~persons:120 () in
  Alcotest.(check int) "deterministic vertices" (n_vertices ldbc_graph) (n_vertices again);
  Alcotest.(check int) "deterministic edges" (n_edges ldbc_graph) (n_edges again)

let test_transfer_graph_st () =
  let module Tg = Gopt_workloads.Transfer_graph in
  let module Pattern = Gopt_pattern.Pattern in
  let module Tc = Gopt_pattern.Type_constraint in
  let module Expr = Gopt_pattern.Expr in
  let module Pp = Gopt_opt.Path_planner in
  let g = Tg.generate ~accounts:800 () in
  let session = Session.create g in
  let gq = Session.estimator session in
  let srcs, dsts = Tg.pick_endpoints g ~seed:3 ~n_src:2 ~n_dst:40 in
  let account = Gopt_graph.Schema.vtype_id Tg.schema "Account" in
  let transfer = Gopt_graph.Schema.etype_id Tg.schema "TRANSFER" in
  let in_list tag ids = Expr.In_list (Expr.Prop (tag, "id"), List.map (fun i -> Value.Int i) ids) in
  let p =
    Pattern.create
      [|
        Pattern.mk_vertex ~pred:(in_list "s" srcs) ~alias:"s" (Tc.Basic account);
        Pattern.mk_vertex ~pred:(in_list "t" dsts) ~alias:"t" (Tc.Basic account);
      |]
      [| Pattern.mk_edge ~hops:(4, 4) ~alias:"p" ~src:0 ~dst:1 (Tc.Basic transfer) |]
  in
  let result = Pp.optimize gq Spec.graphscope p in
  Alcotest.(check int) "4 alternatives" 4 (List.length result.Pp.alternatives);
  (* all split positions produce the same number of s-t walks *)
  let count phys =
    let batch, _ = Engine.run ~budget:60.0 g phys in
    Batch.n_rows batch
  in
  let unsplit, _ = Pp.forced_split gq Spec.graphscope p ~at:0 in
  let expected = count unsplit in
  List.iter
    (fun at ->
      let phys, _ = Pp.forced_split gq Spec.graphscope p ~at in
      Alcotest.(check int) (Printf.sprintf "split at %d" at) expected (count phys))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "core"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "quickstart" `Quick test_quickstart;
          Alcotest.test_case "cross language" `Quick test_cross_language;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "configs agree (fixture)" `Quick test_config_equivalence_fixture;
          Alcotest.test_case "configs agree (ldbc)" `Quick test_config_equivalence_ldbc;
          Alcotest.test_case "qt inference equivalence" `Quick test_qt_inference_equivalence;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all queries run" `Slow test_all_workload_queries_run;
          Alcotest.test_case "gremlin twins" `Slow test_gremlin_twins_agree;
          Alcotest.test_case "dataset shape" `Quick test_dataset_shape;
          Alcotest.test_case "transfer graph s-t" `Quick test_transfer_graph_st;
        ] );
    ]
