(* Unit tests for the GIR layer: the GraphIrBuilder pattern API, logical-plan
   utilities and the plan printer. *)

module Ir = Gopt_gir.Ir_builder
module Logical = Gopt_gir.Logical
module Printer = Gopt_gir.Plan_printer
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
open Fixtures

let b = Ir.create schema

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- pattern building API --------------------------------------------------- *)

let test_builder_cycle_closure () =
  (* triangle via get_v_from unifying back to v1 *)
  let ctx = Ir.pattern_start b in
  let ctx, v1 = Ir.get_v ctx ~alias:"t1" ~types:[ "Person" ] () in
  let ctx, _ = Ir.expand_e ctx ~from:v1 ~alias:"te1" ~types:[ "KNOWS" ] ~dir:Ir.Out () in
  let ctx, v2 = Ir.get_v_from ctx ~edge:"te1" ~alias:"t2" () in
  let ctx, _ = Ir.expand_e ctx ~from:v2 ~alias:"te2" ~types:[ "KNOWS" ] ~dir:Ir.Out () in
  let ctx, _ = Ir.get_v_from ctx ~edge:"te2" ~alias:"t3" () in
  let ctx, _ = Ir.expand_e ctx ~from:"t3" ~alias:"te3" ~types:[ "KNOWS" ] ~dir:Ir.Out () in
  let ctx, closed = Ir.get_v_from ctx ~edge:"te3" ~alias:"t1" () in
  Alcotest.(check string) "closure returns existing alias" "t1" closed;
  let p = Ir.pattern_end ctx in
  Alcotest.(check int) "3 vertices" 3 (Pattern.n_vertices p);
  Alcotest.(check int) "3 edges" 3 (Pattern.n_edges p)

let test_builder_pending_edge_error () =
  let ctx = Ir.pattern_start b in
  let ctx, v1 = Ir.get_v ctx ~alias:"x" () in
  let ctx, _ = Ir.expand_e ctx ~from:v1 ~alias:"dangling" ~dir:Ir.Out () in
  match Ir.pattern_end ctx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pending endpoint must be rejected"

let test_builder_direction_in () =
  let ctx = Ir.pattern_start b in
  let ctx, v1 = Ir.get_v ctx ~alias:"a" ~types:[ "City" ] () in
  let ctx, _ = Ir.expand_e ctx ~from:v1 ~alias:"e" ~types:[ "LIVES_IN" ] ~dir:Ir.In () in
  let ctx, _ = Ir.get_v_from ctx ~edge:"e" ~alias:"p" ~types:[ "Person" ] () in
  let p = Ir.pattern_end ctx in
  let e = Pattern.edge p 0 in
  (* In: the new endpoint is the source *)
  Alcotest.(check string) "src is the person" "p"
    (Pattern.vertex p e.Pattern.e_src).Pattern.v_alias;
  Alcotest.(check string) "dst is the city" "a"
    (Pattern.vertex p e.Pattern.e_dst).Pattern.v_alias

let test_builder_expand_path () =
  let ctx = Ir.pattern_start b in
  let ctx, v1 = Ir.get_v ctx ~alias:"s" ~types:[ "Person" ] () in
  let ctx, _ =
    Ir.expand_path ctx ~from:v1 ~alias:"pp" ~types:[ "KNOWS" ] ~hops:(2, 4)
      ~path_sem:Pattern.Simple ~dir:Ir.Out ()
  in
  let ctx, _ = Ir.get_v_from ctx ~edge:"pp" ~alias:"t" () in
  let p = Ir.pattern_end ctx in
  let e = Pattern.edge p 0 in
  Alcotest.(check bool) "hops" true (e.Pattern.e_hops = Some (2, 4));
  Alcotest.(check bool) "simple" true (e.Pattern.e_path = Pattern.Simple)

let test_builder_unknown_type () =
  let ctx = Ir.pattern_start b in
  match Ir.get_v ctx ~alias:"z" ~types:[ "Dragon" ] () with
  | exception Not_found -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown type must be rejected"

(* --- logical utilities -------------------------------------------------------- *)

let sample_plan =
  Ir.match_pattern p_knows
  |> (fun m -> Ir.select m (Expr.Binop (Expr.Gt, Expr.Prop ("b", "age"), Expr.Const (Value.Int 20))))
  |> Ir.group ~keys:[ (Expr.Var "a", "a") ] ~aggs:[ Ir.agg ~alias:"c" Logical.Count ]
  |> Ir.order ~keys:[ (Expr.Var "c", Logical.Desc) ] ~limit:3

let test_output_fields () =
  Alcotest.(check (list string)) "match fields" [ "a"; "b"; "k" ]
    (Logical.output_fields (Ir.match_pattern p_knows));
  Alcotest.(check (list string)) "group fields" [ "a"; "c" ] (Logical.output_fields sample_plan);
  let joined =
    Ir.join ~keys:[ "a" ] (Ir.match_pattern p_knows) (Ir.match_pattern p_to_city)
  in
  Alcotest.(check (list string)) "join dedups shared" [ "a"; "b"; "k"; "e" ]
    (Logical.output_fields joined);
  let semi = Ir.join ~kind:Logical.Semi ~keys:[ "a" ] (Ir.match_pattern p_knows) (Ir.match_pattern p_to_city) in
  Alcotest.(check (list string)) "semi keeps left" [ "a"; "b"; "k" ]
    (Logical.output_fields semi)

let test_size_and_equal () =
  (* Match, Select, Group, Order *)
  Alcotest.(check int) "size" 4 (Logical.size sample_plan);
  Alcotest.(check bool) "equal self" true (Logical.equal sample_plan sample_plan);
  Alcotest.(check bool) "not equal" false
    (Logical.equal sample_plan (Ir.match_pattern p_knows))

let test_check_rejects_unbound () =
  let bad = Ir.select (Ir.match_pattern p_knows) (Expr.Var "nope") in
  match Ir.check bad with
  | Error msg -> Alcotest.(check bool) "mentions tag" true (contains msg "nope")
  | Ok () -> Alcotest.fail "unbound tag accepted"

let test_check_rejects_mismatched_union () =
  let left = Ir.project (Ir.match_pattern p_knows) [ (Expr.Var "a", "x") ] in
  let right = Ir.project (Ir.match_pattern p_knows) [ (Expr.Var "a", "y") ] in
  match Ir.check (Ir.union left right) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "union with different fields accepted"

let test_check_rejects_missing_join_key () =
  let plan = Ir.join ~keys:[ "zz" ] (Ir.match_pattern p_knows) (Ir.match_pattern p_to_city) in
  match Ir.check plan with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing join key accepted"

(* --- printer ------------------------------------------------------------------ *)

let test_printer_mentions_operators () =
  let s = Printer.to_string ~schema sample_plan in
  List.iter
    (fun op -> Alcotest.(check bool) op true (contains s op))
    [ "MATCH_PATTERN"; "SELECT"; "GROUP"; "ORDER"; "KNOWS"; "Person" ]

let test_printer_skip_unwind () =
  let plan = Ir.unwind (Ir.skip sample_plan 2) (Expr.Var "a") ~alias:"u" in
  let s = Printer.to_string plan in
  Alcotest.(check bool) "skip" true (contains s "SKIP 2");
  Alcotest.(check bool) "unwind" true (contains s "UNWIND a AS u")

let () =
  Alcotest.run "gir"
    [
      ( "ir_builder",
        [
          Alcotest.test_case "cycle closure" `Quick test_builder_cycle_closure;
          Alcotest.test_case "pending edge" `Quick test_builder_pending_edge_error;
          Alcotest.test_case "direction in" `Quick test_builder_direction_in;
          Alcotest.test_case "expand path" `Quick test_builder_expand_path;
          Alcotest.test_case "unknown type" `Quick test_builder_unknown_type;
        ] );
      ( "logical",
        [
          Alcotest.test_case "output fields" `Quick test_output_fields;
          Alcotest.test_case "size and equal" `Quick test_size_and_equal;
          Alcotest.test_case "check unbound" `Quick test_check_rejects_unbound;
          Alcotest.test_case "check union fields" `Quick test_check_rejects_mismatched_union;
          Alcotest.test_case "check join key" `Quick test_check_rejects_missing_join_key;
        ] );
      ( "printer",
        [
          Alcotest.test_case "operators present" `Quick test_printer_mentions_operators;
          Alcotest.test_case "skip and unwind" `Quick test_printer_skip_unwind;
        ] );
    ]
