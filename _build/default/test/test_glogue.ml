module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Mc = Gopt_glogue.Motif_counter
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Prng = Gopt_util.Prng
open Fixtures

let glogue = Glogue.build graph
let gq = Gq.create glogue

let check_f = Alcotest.(check (float 1e-6))

let test_hom_counts () =
  check_f "knows edges" 5.0 (Mc.count_homomorphisms graph p_knows);
  check_f "triangle" 1.0 (Mc.count_homomorphisms graph p_triangle);
  check_f "to city" 6.0 (Mc.count_homomorphisms graph p_to_city);
  (* out-fork via KNOWS: sum of squared out-degrees = 4+1+1+1 *)
  let fork =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 0 2 (Tc.Basic knows) |]
  in
  check_f "fork" 7.0 (Mc.count_homomorphisms graph fork);
  (* path a->b->c via KNOWS: sum over b of in*out = p1:1*1 + p2:2*1 + p3:1*1 + p0:1*2 *)
  let path =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows) |]
  in
  check_f "path" 6.0 (Mc.count_homomorphisms graph path)

let test_hom_undirected () =
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe ~directed:false "e" 0 1 (Tc.Basic knows) |]
  in
  (* each directed KNOWS edge matches twice (once per orientation of the
     binding), so 2 * 5 *)
  check_f "undirected knows" 10.0 (Mc.count_homomorphisms graph p)

let test_glogue_lookup () =
  check_f "person count" 4.0 (Glogue.vertex_freq glogue person);
  check_f "knows triple" 5.0 (Glogue.triple_freq glogue ~src:person ~etype:knows ~dst:person);
  (match Glogue.find glogue p_knows with
  | Some f -> check_f "stored single edge" 5.0 f
  | None -> Alcotest.fail "single edge motif missing");
  match Glogue.find glogue p_triangle with
  | Some f -> check_f "stored triangle" 1.0 f
  | None -> Alcotest.fail "triangle motif missing"

(* All stored <=3-vertex motifs agree with the brute-force counter. *)
let test_glogue_matches_brute_force () =
  (* sample: check the wedge motifs from the schema around Person *)
  let combos =
    [
      (pe "e1" 0 1 (Tc.Basic knows), pe "e2" 0 2 (Tc.Basic knows), person, person, person);
      (pe "e1" 0 1 (Tc.Basic knows), pe "e2" 2 0 (Tc.Basic knows), person, person, person);
      (pe "e1" 1 0 (Tc.Basic knows), pe "e2" 2 0 (Tc.Basic knows), person, person, person);
      (pe "e1" 0 1 (Tc.Basic lives_in), pe "e2" 0 2 (Tc.Basic knows), person, city, person);
      (pe "e1" 1 0 (Tc.Basic lives_in), pe "e2" 2 0 (Tc.Basic produced_in), city, person, product);
    ]
  in
  List.iter
    (fun (e1, e2, t0, t1, t2) ->
      let p =
        Pattern.create [| pv "x" (Tc.Basic t0); pv "y" (Tc.Basic t1); pv "z" (Tc.Basic t2) |] [| e1; e2 |]
      in
      let brute = Mc.count_homomorphisms graph p in
      match Glogue.find glogue p with
      | Some f -> check_f (Pattern.to_string p) brute f
      | None -> Alcotest.failf "motif missing: %s" (Pattern.to_string p))
    combos

let test_query_exact_on_stored () =
  check_f "single vertex" 4.0 (Gq.get_freq gq (Pattern.single_vertex p_knows 0));
  check_f "single edge" 5.0 (Gq.get_freq gq p_knows);
  check_f "triangle exact" 1.0 (Gq.get_freq gq p_triangle)

let test_query_union_edge () =
  (* (a:ANY)-[:ANY]->(b:City) = LIVES_IN + PRODUCED_IN = 6, exact via triple sums *)
  check_f "union edge" 6.0 (Gq.get_freq gq p_to_city)

let test_query_estimation_square () =
  (* square (4-cycle) of KNOWS: estimated, must be positive and finite *)
  let square =
    Pattern.create
      (Array.init 4 (fun i -> pv (Printf.sprintf "v%d" i) (Tc.Basic person)))
      [|
        pe "e1" 0 1 (Tc.Basic knows);
        pe "e2" 1 2 (Tc.Basic knows);
        pe "e3" 2 3 (Tc.Basic knows);
        pe "e4" 3 0 (Tc.Basic knows);
      |]
  in
  let est = Gq.get_freq gq square in
  Alcotest.(check bool) "positive" true (est > 0.0);
  Alcotest.(check bool) "finite" true (Float.is_finite est)

let test_query_selectivity () =
  let pred = Gopt_pattern.Expr.(Binop (Eq, Prop ("a", "name"), Const (Gopt_graph.Value.Str "p0"))) in
  let p =
    Pattern.create
      [| pv ~pred "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "k" 0 1 (Tc.Basic knows) |]
  in
  check_f "selectivity applied" 0.5 (Gq.get_freq gq p)

let test_low_order_differs () =
  let lo = Gq.create ~mode:Gq.Low_order glogue in
  (* triangle: high-order exact = 1; low-order decomposes to wedge*sigma *)
  let hi_est = Gq.get_freq gq p_triangle in
  let lo_est = Gq.get_freq lo p_triangle in
  check_f "high exact" 1.0 hi_est;
  Alcotest.(check bool) "low order is an estimate" true (Float.abs (lo_est -. 1.0) > 1e-9)

let test_disconnected_product () =
  let p =
    Pattern.create [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic city) |] [||]
  in
  check_f "cartesian" 8.0 (Gq.get_freq gq p)

let test_var_length_freq () =
  let p =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe ~hops:(2, 2) "e" 0 1 (Tc.Basic knows) |]
  in
  (* 2-hop walk estimate: 4 persons * (5/4)^2 = 6.25 *)
  check_f "2-hop estimate" 6.25 (Gq.get_freq gq p)

(* Eq. 2 worked example (the paper's Fig. 6 analog, on the fixture graph):
   estimating a pattern one edge beyond GLogue's stored motifs composes the
   exact 3-vertex prefix with expand ratios. *)
let test_eq2_worked_example () =
  (* 4-vertex path: (a:Person)-KNOWS->(b:Person)-KNOWS->(c:Person)-LIVES_IN->(d:City).
     Eq. 2 peels the first minimum-degree vertex, which is [a]:
     est = F(KNOWS-LIVES_IN wedge, exact = 5) * sigma(KNOWS into b)
     sigma case 1 (new vertex a) = F(KNOWS) / F(Person) = 5/4 *)
  let path4 =
    Pattern.create
      [|
        pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person);
        pv "d" (Tc.Basic city);
      |]
      [|
        pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows);
        pe "e3" 2 3 (Tc.Basic lives_in);
      |]
  in
  check_f "path4 estimate" (5.0 *. (5.0 /. 4.0)) (Gq.get_freq gq path4);
  (* 4-cycle of KNOWS: est = F(3-path) * sigma_closing
     sigma case 2 (d already bound) = F(KNOWS) / (F(Person) * F(Person)) = 5/16 *)
  let square =
    Pattern.create
      (Array.init 4 (fun i -> pv (Printf.sprintf "v%d" i) (Tc.Basic person)))
      [|
        pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows);
        pe "e3" 2 3 (Tc.Basic knows); pe "e4" 0 3 (Tc.Basic knows);
      |]
  in
  (* peeling v3: base = 2-edge path (exact 6); two incident edges: first
     introduces v3 (sigma = 5/4), second closes onto v0 (sigma = 5/16) *)
  check_f "square estimate" (6.0 *. (5.0 /. 4.0) *. (5.0 /. 16.0)) (Gq.get_freq gq square)

(* property: estimator is exact on every motif that the store contains *)
let prop_estimator_exact_on_motifs =
  QCheck.Test.make ~name:"estimator exact on stored basic motifs" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let triples = Gopt_graph.Schema.triples schema in
      let s, e, d = triples.(Prng.int rng (Array.length triples)) in
      let p =
        Pattern.create
          [| pv "a" (Tc.Basic s); pv "b" (Tc.Basic d) |]
          [| pe "e" 0 1 (Tc.Basic e) |]
      in
      let brute = Mc.count_homomorphisms graph p in
      Float.abs (Gq.get_freq gq p -. brute) < 1e-6)

let () =
  Alcotest.run "glogue"
    [
      ( "motif_counter",
        [
          Alcotest.test_case "hom counts" `Quick test_hom_counts;
          Alcotest.test_case "undirected" `Quick test_hom_undirected;
        ] );
      ( "store",
        [
          Alcotest.test_case "lookups" `Quick test_glogue_lookup;
          Alcotest.test_case "matches brute force" `Quick test_glogue_matches_brute_force;
        ] );
      ( "query",
        [
          Alcotest.test_case "exact on stored" `Quick test_query_exact_on_stored;
          Alcotest.test_case "union edge" `Quick test_query_union_edge;
          Alcotest.test_case "square estimation" `Quick test_query_estimation_square;
          Alcotest.test_case "selectivity" `Quick test_query_selectivity;
          Alcotest.test_case "low vs high order" `Quick test_low_order_differs;
          Alcotest.test_case "disconnected product" `Quick test_disconnected_product;
          Alcotest.test_case "var length" `Quick test_var_length_freq;
          Alcotest.test_case "eq2 worked example (fig 6 analog)" `Quick test_eq2_worked_example;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_estimator_exact_on_motifs ]);
    ]
