(* System-level property tests: invariants that tie the whole stack
   together on randomized inputs. *)

module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical
module Planner = Gopt_opt.Planner
module Physical = Gopt_opt.Physical
module Spec = Gopt_opt.Physical_spec
module Codec = Gopt_opt.Plan_codec
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Rval = Gopt_exec.Rval
module Glogue = Gopt_glogue.Glogue
module Gq = Gopt_glogue.Glogue_query
module Mc = Gopt_glogue.Motif_counter
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng
open Fixtures

let glogue = Glogue.build graph
let gq = Gq.create glogue

let row_set batch =
  let rows = ref [] in
  Batch.iter
    (fun row ->
      rows :=
        String.concat "|"
          (List.sort String.compare
             (List.map2
                (fun f v -> f ^ "=" ^ Format.asprintf "%a" (Rval.pp graph) v)
                (Batch.fields batch) (Array.to_list row)))
        :: !rows)
    batch;
  List.sort String.compare !rows

(* random connected pattern over the fixture schema *)
let random_pattern rng =
  let nv = 2 + Prng.int rng 2 in
  let vs =
    Array.init nv (fun i ->
        pv (Printf.sprintf "v%d" i)
          (match Prng.int rng 3 with
          | 0 -> Tc.All
          | 1 -> Tc.Basic person
          | _ -> (
            match Tc.of_list ~universe:3 [ person; Prng.int rng 3 ] with
            | Some c -> c
            | None -> Tc.All)))
  in
  let es = ref [] in
  for i = 1 to nv - 1 do
    let j = Prng.int rng i in
    let src, dst = if Prng.bool rng then (i, j) else (j, i) in
    es :=
      pe ~directed:(Prng.bool rng) (Printf.sprintf "e%d" i) src dst
        (if Prng.bool rng then Tc.Basic knows else Tc.All)
      :: !es
  done;
  Pattern.create vs (Array.of_list !es)

(* random relational stack over a pattern *)
let random_logical rng =
  let p = random_pattern rng in
  let fields = Logical.output_fields (Logical.Match p) in
  let field () = List.nth fields (Prng.int rng (List.length fields)) in
  let plan = ref (Logical.Match p) in
  for _ = 1 to Prng.int rng 3 do
    match Prng.int rng 6 with
    | 0 ->
      plan :=
        Logical.Select
          ( !plan,
            Expr.Binop
              (Expr.Geq, Expr.Prop (field (), "age"), Expr.Const (Value.Int (18 + Prng.int rng 8)))
          )
    | 1 ->
      let keep = List.filteri (fun i _ -> i <= Prng.int rng (List.length fields)) fields in
      let keep = if keep = [] then [ List.hd fields ] else keep in
      plan := Logical.Project (!plan, List.map (fun f -> (Expr.Var f, f)) keep)
    | 2 -> plan := Logical.Dedup (!plan, [])
    | 3 ->
      plan :=
        Logical.Order
          (!plan, [ (Expr.Var (List.hd (Logical.output_fields !plan)), Logical.Asc) ], None)
    | 4 -> plan := Logical.Limit (!plan, 1 + Prng.int rng 20)
    | _ ->
      plan :=
        Logical.Group
          ( !plan,
            [],
            [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "c" } ] )
  done;
  !plan

let run_with config plan =
  let phys, _ = Planner.plan config gq plan in
  let batch, _ = Engine.run graph phys in
  batch

(* LIMIT/SKIP over unordered (or tie-broken) input keep an arbitrary subset,
   which different plans may legitimately resolve differently — compare row
   multisets only for plans without them. *)
let rec deterministic_result = function
  | Logical.Limit _ | Logical.Skip _ -> false
  | Logical.Unwind (x, _, _) -> deterministic_result x
  | Logical.Match _ | Logical.Common_ref -> true
  | Logical.Pattern_cont (x, _)
  | Logical.Select (x, _)
  | Logical.Project (x, _)
  | Logical.Group (x, _, _)
  | Logical.Order (x, _, _)
  | Logical.Dedup (x, _)
  | Logical.All_distinct (x, _) -> deterministic_result x
  | Logical.With_common { common; left; right; _ } ->
    deterministic_result common && deterministic_result left && deterministic_result right
  | Logical.Join { left; right; _ } | Logical.Union (left, right) ->
    deterministic_result left && deterministic_result right

let prop_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"full pipeline = naive execution" ~count:120 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let plan = random_logical rng in
      QCheck.assume (deterministic_result plan);
      let naive =
        {
          (Planner.default_config ()) with
          Planner.enable_rbo = false;
          enable_field_trim = false;
          enable_type_inference = false;
          enable_cbo = false;
        }
      in
      let full = Planner.default_config () in
      row_set (run_with naive plan) = row_set (run_with full plan))

let prop_codec_preserves_execution =
  QCheck.Test.make ~name:"decode (encode plan) executes identically" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let plan = random_logical rng in
      QCheck.assume (deterministic_result plan);
      let phys, _ = Planner.plan (Planner.default_config ()) gq plan in
      let transferred = Codec.decode (Codec.encode phys) in
      let a, _ = Engine.run graph phys in
      let b, _ = Engine.run graph transferred in
      row_set a = row_set b)

(* Union-typed small patterns are estimated EXACTLY by expanding over basic
   type combinations (the GLogueQuery refinement for arbitrary constraints) *)
let prop_union_estimation_exact =
  QCheck.Test.make ~name:"estimator exact on small union patterns" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let p = random_pattern rng in
      QCheck.assume (Pattern.n_vertices p <= 3);
      let est = Gq.get_freq gq p in
      let brute = Mc.count_homomorphisms graph p in
      Float.abs (est -. brute) < 1e-6)

let prop_all_specs_same_results =
  QCheck.Test.make ~name:"neo4j and graphscope plans agree" ~count:80 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let plan = random_logical rng in
      QCheck.assume (deterministic_result plan);
      let neo = Planner.default_config ~spec:Spec.neo4j () in
      let gs = Planner.default_config ~spec:Spec.graphscope () in
      row_set (run_with neo plan) = row_set (run_with gs plan))

let () =
  Alcotest.run "system"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pipeline_preserves_semantics;
            prop_codec_preserves_execution;
            prop_union_estimation_exact;
            prop_all_specs_same_results;
          ] );
    ]
