module L = Gopt_lang.Lexer
module Cp = Gopt_lang.Cypher_parser
module Gp = Gopt_lang.Gremlin_parser
module Lowering = Gopt_lang.Lowering
module Logical = Gopt_gir.Logical
module Ir = Gopt_gir.Ir_builder
module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
open Fixtures

let lower ?params src = Lowering.cypher schema (Cp.parse ?params src)

let check_ok plan =
  match Ir.check plan with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "plan check failed: %s" msg

let test_lexer () =
  let toks = L.tokenize "MATCH (a:Person)-[r:KNOWS*1..3]->(b) WHERE a.id <> 3 // c" in
  Alcotest.(check bool) "ends with eof" true (toks.(Array.length toks - 1) = L.Eof);
  let toks2 = L.tokenize "g.V().has('name', \"x\\\"y\")" in
  Alcotest.(check bool) "string escape" true
    (Array.exists (function L.Str_lit "x\"y" -> true | _ -> false) toks2);
  (match L.tokenize "1.5 1..3" with
  | [| L.Float_lit 1.5; L.Int_lit 1; L.Dotdot; L.Int_lit 3; L.Eof |] -> ()
  | _ -> Alcotest.fail "float vs range lexing");
  try
    ignore (L.tokenize "a ? b");
    Alcotest.fail "expected lex error"
  with L.Lex_error _ -> ()

let test_parse_simple_match () =
  let plan = lower "MATCH (a:Person)-[k:KNOWS]->(b:Person) RETURN a.name AS n" in
  check_ok plan;
  match plan with
  | Logical.Project (Logical.Match p, [ (Expr.Prop ("a", "name"), "n") ]) ->
    Alcotest.(check int) "nv" 2 (Pattern.n_vertices p);
    Alcotest.(check int) "ne" 1 (Pattern.n_edges p);
    Alcotest.(check bool) "edge alias" true (Pattern.edge_of_alias p "k" = Some 0)
  | _ -> Alcotest.failf "unexpected plan shape:\n%s" (Gopt_gir.Plan_printer.to_string plan)

let test_parse_where_and_props () =
  let plan = lower "MATCH (a:Person {age: 21})-[:KNOWS]->(b) WHERE b.age > 20 RETURN b" in
  check_ok plan;
  (* property map becomes a vertex predicate; WHERE becomes a Select *)
  match plan with
  | Logical.Project (Logical.Select (Logical.Match p, _), _) ->
    let v = Pattern.vertex p 0 in
    Alcotest.(check bool) "prop map pred" true (v.Pattern.v_pred <> None)
  | _ -> Alcotest.failf "unexpected plan:\n%s" (Gopt_gir.Plan_printer.to_string plan)

let test_parse_union_types () =
  let plan = lower "MATCH (a:Person|Product)-[]->(b:City) RETURN count(*) AS c" in
  check_ok plan;
  let p =
    match plan with
    | Logical.Group (Logical.Match p, [], _) -> p
    | _ -> Alcotest.fail "expected group over match"
  in
  match (Pattern.vertex p 0).Pattern.v_con with
  | Gopt_pattern.Type_constraint.Union _ -> ()
  | _ -> Alcotest.fail "expected UnionType"

let test_parse_var_length () =
  let plan = lower "MATCH (a:Person)-[:KNOWS*2..3]-(b:Person) RETURN count(*) AS c" in
  check_ok plan;
  let p =
    match plan with
    | Logical.Group (Logical.Match p, [], _) -> p
    | _ -> Alcotest.fail "expected group over match"
  in
  let e = Pattern.edge p 0 in
  Alcotest.(check bool) "hops" true (e.Pattern.e_hops = Some (2, 3));
  Alcotest.(check bool) "undirected" true (not e.Pattern.e_directed);
  Alcotest.(check bool) "trail semantics" true (e.Pattern.e_path = Pattern.Trail)

let test_parse_multi_match_join () =
  let plan =
    lower "MATCH (a:Person)-[:KNOWS]->(b:Person) MATCH (b)-[:LIVES_IN]->(c:City) RETURN count(*) AS n"
  in
  check_ok plan;
  match plan with
  | Logical.Group (Logical.Join { keys = [ "b" ]; kind = Logical.Inner; _ }, [], _) -> ()
  | _ -> Alcotest.failf "expected join on b:\n%s" (Gopt_gir.Plan_printer.to_string plan)

let test_parse_optional_match () =
  let plan =
    lower "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b"
  in
  check_ok plan;
  match plan with
  | Logical.Project (Logical.Join { kind = Logical.Left_outer; _ }, _) -> ()
  | _ -> Alcotest.fail "expected left outer join"

let test_parse_anti_pattern () =
  let plan =
    lower
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE NOT (b)-[:KNOWS]->(a) RETURN count(*) AS n"
  in
  check_ok plan;
  let has_anti =
    Logical.fold
      (fun acc n ->
        acc || match n with Logical.Join { kind = Logical.Anti; _ } -> true | _ -> false)
      false plan
  in
  Alcotest.(check bool) "anti join present" true has_anti

let test_parse_aggregates () =
  let plan =
    lower
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.name AS n, count(b) AS c, sum(b.age) AS s \
       ORDER BY c DESC LIMIT 5"
  in
  check_ok plan;
  match plan with
  | Logical.Limit (Logical.Order (Logical.Group (_, [ _ ], aggs), _, _), 5) ->
    Alcotest.(check int) "two aggs" 2 (List.length aggs)
  | _ -> Alcotest.failf "unexpected:\n%s" (Gopt_gir.Plan_printer.to_string plan)

let test_parse_union () =
  let plan =
    lower
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.name AS n UNION MATCH (a:Person)-[:PURCHASED]->(g:Product) RETURN a.name AS n"
  in
  check_ok plan;
  match plan with
  | Logical.Dedup (Logical.Union _, []) -> ()
  | _ -> Alcotest.fail "expected dedup over union"

let test_parse_params () =
  let plan =
    lower ~params:[ ("ids", [ Value.Int 1; Value.Int 2 ]) ]
      "MATCH (a:Person) WHERE a.id IN $ids RETURN a"
  in
  check_ok plan;
  let has_inlist =
    Logical.fold
      (fun acc n ->
        acc
        ||
        match n with
        | Logical.Select (_, Expr.In_list (_, [ Value.Int 1; Value.Int 2 ])) -> true
        | _ -> false)
      false plan
  in
  Alcotest.(check bool) "param list inlined" true has_inlist

let test_parse_errors () =
  let bad = [ "MATCH (a RETURN a"; "RETURN"; "MATCH (a:Nope) RETURN a"; "MATCH (a)->(b) RETURN a" ] in
  List.iter
    (fun src ->
      match lower src with
      | exception Cp.Parse_error _ -> ()
      | exception Lowering.Lowering_error _ -> ()
      | exception L.Lex_error _ -> ()
      | _ -> Alcotest.failf "expected failure for %s" src)
    bad

let test_cycle_closure () =
  (* triangle via alias reuse *)
  let plan =
    lower "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)-[:KNOWS]->(a) RETURN count(*) AS n"
  in
  check_ok plan;
  let p =
    match plan with
    | Logical.Group (Logical.All_distinct (Logical.Match p, _), [], _) -> p
    | _ -> Alcotest.failf "unexpected:\n%s" (Gopt_gir.Plan_printer.to_string plan)
  in
  Alcotest.(check int) "3 vertices" 3 (Pattern.n_vertices p);
  Alcotest.(check int) "3 edges" 3 (Pattern.n_edges p)

let test_gremlin_basic () =
  let plan = Gp.parse schema "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b').count()" in
  check_ok plan;
  match plan with
  | Logical.Group (Logical.Match p, [], _) ->
    Alcotest.(check int) "nv" 2 (Pattern.n_vertices p)
  | _ -> Alcotest.fail "unexpected gremlin plan"

let test_gremlin_cycle () =
  let plan =
    Gp.parse schema
      "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b').out('KNOWS').as('c').select('a').out('KNOWS').where(eq('c')).count()"
  in
  check_ok plan;
  let p =
    Logical.fold
      (fun acc n -> match n with Logical.Match p -> Some p | _ -> acc)
      None plan
  in
  match p with
  | Some p ->
    Alcotest.(check int) "3 vertices" 3 (Pattern.n_vertices p);
    Alcotest.(check int) "3 edges" 3 (Pattern.n_edges p)
  | None -> Alcotest.fail "no match node"

let test_gremlin_union () =
  let plan =
    Gp.parse schema
      "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b').union(__.out('LIVES_IN').hasLabel('City'), __.out('PURCHASED').hasLabel('Product')).count()"
  in
  check_ok plan;
  let unions =
    Logical.fold
      (fun acc n -> match n with Logical.Union _ -> acc + 1 | _ -> acc)
      0 plan
  in
  Alcotest.(check int) "one union" 1 unions

let test_gremlin_repeat () =
  let plan =
    Gp.parse schema "g.V().hasLabel('Person').as('a').repeat(__.out('KNOWS')).times(3).hasLabel('Person').count()"
  in
  check_ok plan;
  let p =
    Logical.fold
      (fun acc n -> match n with Logical.Match p -> Some p | _ -> acc)
      None plan
  in
  match p with
  | Some p -> Alcotest.(check bool) "hops 3" true ((Pattern.edge p 0).Pattern.e_hops = Some (3, 3))
  | None -> Alcotest.fail "no match"

let test_gremlin_has_predicates () =
  let plan =
    Gp.parse schema "g.V().hasLabel('Person').has('age', P.gt(25)).has('name', within('p1', 'p2')).count()"
  in
  check_ok plan;
  let p =
    Logical.fold
      (fun acc n -> match n with Logical.Match p -> Some p | _ -> acc)
      None plan
  in
  match p with
  | Some p -> Alcotest.(check bool) "pred attached" true ((Pattern.vertex p 0).Pattern.v_pred <> None)
  | None -> Alcotest.fail "no match"

let test_ir_builder_roundtrip () =
  (* the paper's GraphIrBuilder snippet, adapted to the fixture schema *)
  let b = Ir.create schema in
  let ctx = Ir.pattern_start b in
  let ctx, v1 = Ir.get_v ctx ~alias:"v1" () in
  let ctx, _e1 = Ir.expand_e ctx ~from:v1 ~alias:"e1" ~dir:Ir.Out () in
  let ctx, v2 = Ir.get_v_from ctx ~edge:"e1" ~alias:"v2" () in
  let ctx, _e2 = Ir.expand_e ctx ~from:v2 ~alias:"e2" ~dir:Ir.Out () in
  let ctx, _v3 = Ir.get_v_from ctx ~edge:"e2" ~alias:"v3" ~types:[ "City" ] () in
  let p = Ir.pattern_end ctx in
  Alcotest.(check int) "3 vertices" 3 (Pattern.n_vertices p);
  Alcotest.(check int) "2 edges" 2 (Pattern.n_edges p);
  let plan =
    Ir.match_pattern p
    |> (fun m -> Ir.select m (Expr.Binop (Expr.Eq, Expr.Prop ("v3", "name"), Expr.Const (Value.Str "c0"))))
    |> Ir.group
         ~keys:[ (Expr.Var "v2", "v2") ]
         ~aggs:[ Ir.agg ~alias:"cnt" Logical.Count ]
    |> Ir.order ~keys:[ (Expr.Var "cnt", Logical.Asc) ] ~limit:10
  in
  check_ok plan


let test_gremlin_group () =
  let plan =
    Gp.parse schema
      "g.V().hasLabel('Person').out('LIVES_IN').hasLabel('City').as('c').groupCount().by('name')"
  in
  check_ok plan;
  (match plan with
  | Logical.Group (_, [ (Expr.Prop ("c", "name"), "key") ], [ agg ]) ->
    Alcotest.(check bool) "count agg" true (agg.Logical.agg_fn = Logical.Count)
  | _ -> Alcotest.fail "expected keyed groupCount");
  let plan2 =
    Gp.parse schema
      "g.V().hasLabel('Person').as('p').group().by('name').by(count)"
  in
  check_ok plan2;
  match plan2 with
  | Logical.Group (_, [ (Expr.Prop ("p", "name"), "key") ], [ agg ]) ->
    Alcotest.(check bool) "by(count) rewrites collect" true (agg.Logical.agg_fn = Logical.Count)
  | _ -> Alcotest.fail "expected group().by().by(count)"

let test_skip_parses () =
  let plan = lower "MATCH (a:Person) RETURN a.name AS n ORDER BY n ASC SKIP 2 LIMIT 3" in
  check_ok plan;
  match plan with
  | Logical.Limit (Logical.Skip (Logical.Order _, 2), 3) -> ()
  | _ -> Alcotest.failf "unexpected:\n%s" (Gopt_gir.Plan_printer.to_string plan)

let test_cross_language_same_gir () =
  (* the same logical query in both languages produces the same result shape *)
  let c = lower "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN count(*) AS c" in
  let g = Gp.parse schema "g.V().hasLabel('Person').out('KNOWS').hasLabel('Person').count()" in
  check_ok c;
  check_ok g;
  (* both are a count over a single-edge Person-KNOWS-Person pattern *)
  let pat plan =
    Logical.fold (fun acc n -> match n with Logical.Match p -> Some p | _ -> acc) None plan
  in
  match pat c, pat g with
  | Some pc, Some pg ->
    Alcotest.(check string) "iso patterns"
      (Gopt_pattern.Canonical.iso_code pc)
      (Gopt_pattern.Canonical.iso_code pg)
  | _ -> Alcotest.fail "missing patterns"

let () =
  Alcotest.run "lang"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "cypher",
        [
          Alcotest.test_case "simple match" `Quick test_parse_simple_match;
          Alcotest.test_case "where and props" `Quick test_parse_where_and_props;
          Alcotest.test_case "union types" `Quick test_parse_union_types;
          Alcotest.test_case "var length" `Quick test_parse_var_length;
          Alcotest.test_case "multi match join" `Quick test_parse_multi_match_join;
          Alcotest.test_case "optional match" `Quick test_parse_optional_match;
          Alcotest.test_case "anti pattern" `Quick test_parse_anti_pattern;
          Alcotest.test_case "aggregates" `Quick test_parse_aggregates;
          Alcotest.test_case "union" `Quick test_parse_union;
          Alcotest.test_case "params" `Quick test_parse_params;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "cycle closure" `Quick test_cycle_closure;
        ] );
      ( "gremlin",
        [
          Alcotest.test_case "basic" `Quick test_gremlin_basic;
          Alcotest.test_case "cycle" `Quick test_gremlin_cycle;
          Alcotest.test_case "union" `Quick test_gremlin_union;
          Alcotest.test_case "repeat/times" `Quick test_gremlin_repeat;
          Alcotest.test_case "has predicates" `Quick test_gremlin_has_predicates;
          Alcotest.test_case "group steps" `Quick test_gremlin_group;
          Alcotest.test_case "skip parses" `Quick test_skip_parses;
        ] );
      ( "ir_builder",
        [
          Alcotest.test_case "paper snippet roundtrip" `Quick test_ir_builder_roundtrip;
          Alcotest.test_case "cross language gir" `Quick test_cross_language_same_gir;
        ] );
    ]
