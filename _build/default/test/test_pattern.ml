module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Canonical = Gopt_pattern.Canonical
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng
open Fixtures

let test_type_constraint () =
  Alcotest.(check bool) "of_list empty" true (Tc.of_list ~universe:3 [] = None);
  Alcotest.(check bool) "of_list single" true (Tc.of_list ~universe:3 [ 1 ] = Some (Tc.Basic 1));
  Alcotest.(check bool) "of_list dup collapses" true
    (Tc.of_list ~universe:3 [ 1; 1 ] = Some (Tc.Basic 1));
  Alcotest.(check bool) "of_list full = All" true
    (Tc.of_list ~universe:3 [ 0; 1; 2 ] = Some Tc.All);
  Alcotest.(check bool) "union" true
    (Tc.of_list ~universe:3 [ 2; 0 ] = Some (Tc.Union [ 0; 2 ]));
  Alcotest.(check bool) "inter basic" true
    (Tc.inter ~universe:3 (Tc.Union [ 0; 1 ]) (Tc.Union [ 1; 2 ]) = Some (Tc.Basic 1));
  Alcotest.(check bool) "inter empty" true
    (Tc.inter ~universe:3 (Tc.Basic 0) (Tc.Basic 1) = None);
  Alcotest.(check bool) "inter all" true
    (Tc.inter ~universe:3 Tc.All (Tc.Basic 2) = Some (Tc.Basic 2));
  Alcotest.(check bool) "subset" true
    (Tc.subset ~universe:3 (Tc.Basic 1) (Tc.Union [ 0; 1 ]));
  Alcotest.(check bool) "not subset" false (Tc.subset ~universe:3 Tc.All (Tc.Basic 1))

let test_expr_analysis () =
  let e =
    Expr.(
      Binop
        ( And,
          Binop (Eq, Prop ("a", "name"), Const (Value.Str "x")),
          Binop (Gt, Prop ("b", "age"), Var "limit") ))
  in
  Alcotest.(check (list string)) "free tags" [ "a"; "b"; "limit" ] (Expr.free_tags e);
  Alcotest.(check int) "conjuncts" 2 (List.length (Expr.conjuncts e));
  let rt = Expr.rename_tags (fun t -> t ^ "!") e in
  Alcotest.(check (list string)) "renamed" [ "a!"; "b!"; "limit!" ] (Expr.free_tags rt)

let test_const_fold () =
  let e = Expr.(Binop (Add, Const (Value.Int 1), Const (Value.Int 2))) in
  Alcotest.(check bool) "1+2=3" true (Expr.const_fold e = Expr.Const (Value.Int 3));
  let e2 = Expr.(Binop (And, Const (Value.Bool true), Var "x")) in
  Alcotest.(check bool) "true AND x = x" true (Expr.const_fold e2 = Expr.Var "x");
  let e3 = Expr.(Binop (Lt, Const (Value.Int 1), Const (Value.Int 2))) in
  Alcotest.(check bool) "1<2" true (Expr.const_fold e3 = Expr.Const (Value.Bool true));
  let e4 = Expr.(In_list (Const (Value.Int 3), [ Value.Int 1; Value.Int 3 ])) in
  Alcotest.(check bool) "3 in [1;3]" true (Expr.const_fold e4 = Expr.Const (Value.Bool true))

let test_pattern_basics () =
  Alcotest.(check int) "triangle nv" 3 (Pattern.n_vertices p_triangle);
  Alcotest.(check int) "triangle ne" 3 (Pattern.n_edges p_triangle);
  Alcotest.(check bool) "connected" true (Pattern.is_connected p_triangle);
  Alcotest.(check int) "degree a" 2 (Pattern.degree p_triangle 0);
  Alcotest.(check bool) "alias lookup" true (Pattern.vertex_of_alias p_triangle "b" = Some 1);
  Alcotest.(check int) "incident edges of b" 2 (List.length (Pattern.incident_edges p_triangle 1))

let test_pattern_validation () =
  let v = pv "a" (Tc.Basic person) in
  (try
     ignore (Pattern.create [| v; v |] [||]);
     Alcotest.fail "duplicate alias accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Pattern.create [| v |] [| pe "e" 0 0 (Tc.Basic knows) |]);
     Alcotest.fail "self loop accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Pattern.create
         [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
         [| pe ~hops:(0, 3) "e" 0 1 (Tc.Basic knows) |]);
    Alcotest.fail "bad hops accepted"
  with Invalid_argument _ -> ()

let test_remove_vertex () =
  (* removing any triangle vertex leaves a connected single edge *)
  List.iter
    (fun v ->
      match Pattern.remove_vertex p_triangle v with
      | Some sub ->
        Alcotest.(check int) "sub nv" 2 (Pattern.n_vertices sub);
        Alcotest.(check int) "sub ne" 1 (Pattern.n_edges sub);
        Alcotest.(check bool) "sub connected" true (Pattern.is_connected sub)
      | None -> Alcotest.fail "triangle vertex removal failed")
    [ 0; 1; 2 ];
  (* path a->b->c: removing the middle disconnects -> None *)
  let path =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows) |]
  in
  Alcotest.(check bool) "middle removal invalid" true (Pattern.remove_vertex path 1 = None);
  (match Pattern.remove_vertex path 2 with
  | Some sub -> Alcotest.(check int) "end removal" 2 (Pattern.n_vertices sub)
  | None -> Alcotest.fail "end removal failed");
  (* single edge: removing an endpoint leaves the single-vertex pattern *)
  match Pattern.remove_vertex p_knows 1 with
  | Some sub ->
    Alcotest.(check int) "single vertex" 1 (Pattern.n_vertices sub);
    Alcotest.(check int) "no edges" 0 (Pattern.n_edges sub)
  | None -> Alcotest.fail "endpoint removal failed"

let test_sub_by_edges () =
  let sub, vmap = Pattern.sub_by_edges p_triangle [ 0 ] in
  Alcotest.(check int) "sub nv" 2 (Pattern.n_vertices sub);
  Alcotest.(check int) "vmap len" 2 (Array.length vmap);
  Alcotest.(check string) "alias preserved" "a" (Pattern.vertex sub 0).Pattern.v_alias

let test_merge () =
  (* p1: a->b (knows); p2: b->c (knows). merged: path of 2 edges *)
  let p1 =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows) |]
  in
  let p2 =
    Pattern.create
      [| pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e2" 0 1 (Tc.Basic knows) |]
  in
  Alcotest.(check (list string)) "shared" [ "b" ] (Pattern.shared_aliases p1 p2);
  let m = Pattern.merge p1 p2 in
  Alcotest.(check int) "merged nv" 3 (Pattern.n_vertices m);
  Alcotest.(check int) "merged ne" 2 (Pattern.n_edges m);
  Alcotest.(check bool) "merged connected" true (Pattern.is_connected m)

let test_split_path_edge () =
  let p =
    Pattern.create
      [| pv "s" (Tc.Basic person); pv "t" (Tc.Basic person) |]
      [| pe ~hops:(6, 6) "p" 0 1 (Tc.Basic knows) |]
  in
  let sp = Pattern.split_path_edge p ~eid:0 ~at:2 ~mid_alias:"m" in
  Alcotest.(check int) "split nv" 3 (Pattern.n_vertices sp);
  Alcotest.(check int) "split ne" 2 (Pattern.n_edges sp);
  let e1 = Pattern.edge sp 0 and e2 = Pattern.edge sp 1 in
  Alcotest.(check bool) "hops 2" true (e1.Pattern.e_hops = Some (2, 2));
  Alcotest.(check bool) "hops 4" true (e2.Pattern.e_hops = Some (4, 4))

let test_canonical_triangle_direction () =
  (* cyclic triangle vs acyclic triangle must differ *)
  let cyc =
    Pattern.create
      [| pv "a" (Tc.Basic person); pv "b" (Tc.Basic person); pv "c" (Tc.Basic person) |]
      [| pe "e1" 0 1 (Tc.Basic knows); pe "e2" 1 2 (Tc.Basic knows); pe "e3" 2 0 (Tc.Basic knows) |]
  in
  Alcotest.(check bool) "cyclic <> acyclic" false (Canonical.iso_equal cyc p_triangle);
  Alcotest.(check bool) "self equal" true (Canonical.iso_equal cyc cyc)

(* property: iso_code invariant under vertex relabeling *)
let prop_iso_invariance =
  QCheck.Test.make ~name:"iso_code permutation invariant" ~count:100
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, nv) ->
      let rng = Prng.create seed in
      (* random connected pattern over nv vertices *)
      let vs =
        Array.init nv (fun i ->
            pv (Printf.sprintf "v%d" i) (if Prng.bool rng then Tc.Basic person else Tc.All))
      in
      let edges = ref [] in
      for i = 1 to nv - 1 do
        let j = Prng.int rng i in
        let src, dst = if Prng.bool rng then (i, j) else (j, i) in
        edges :=
          pe
            ~directed:(Prng.bool rng)
            (Printf.sprintf "e%d" i) src dst
            (if Prng.bool rng then Tc.Basic knows else Tc.All)
          :: !edges
      done;
      let p = Pattern.create vs (Array.of_list (List.rev !edges)) in
      (* relabel: rotate vertex indices *)
      let perm i = (i + 1) mod nv in
      let vs' = Array.init nv (fun i -> vs.((i + nv - 1) mod nv)) in
      let es' =
        Array.map
          (fun (e : Pattern.edge) ->
            { e with Pattern.e_src = perm e.Pattern.e_src; e_dst = perm e.Pattern.e_dst })
          (Pattern.edges p)
      in
      let p' = Pattern.create vs' es' in
      Canonical.iso_code p = Canonical.iso_code p')

let prop_keyed_code_identity =
  QCheck.Test.make ~name:"keyed_code equal iff same structure" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let con = if Prng.bool rng then Tc.Basic person else Tc.Union [ person; city ] in
      let p1 =
        Pattern.create
          [| pv "a" con; pv "b" (Tc.Basic person) |]
          [| pe "e" 0 1 (Tc.Basic knows) |]
      in
      let p2 =
        Pattern.create
          [| pv "b" (Tc.Basic person); pv "a" con |]
          [| pe "e" 1 0 (Tc.Basic knows) |]
      in
      Canonical.keyed_code p1 = Canonical.keyed_code p2)

let () =
  Alcotest.run "pattern"
    [
      ( "type_constraint",
        [ Alcotest.test_case "algebra" `Quick test_type_constraint ] );
      ( "expr",
        [
          Alcotest.test_case "analysis" `Quick test_expr_analysis;
          Alcotest.test_case "const fold" `Quick test_const_fold;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "basics" `Quick test_pattern_basics;
          Alcotest.test_case "validation" `Quick test_pattern_validation;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "sub by edges" `Quick test_sub_by_edges;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "split path edge" `Quick test_split_path_edge;
          Alcotest.test_case "canonical direction" `Quick test_canonical_triangle_direction;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_iso_invariance; prop_keyed_code_identity ] );
    ]
