module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng
open Fixtures

let check_int = Alcotest.(check int)

let test_counts () =
  check_int "vertices" 8 (G.n_vertices graph);
  check_int "edges" 14 (G.n_edges graph);
  check_int "persons" 4 (G.count_vtype graph person);
  check_int "cities" 2 (G.count_vtype graph city);
  check_int "knows edges" 5 (G.count_etype graph knows);
  check_int "knows triple" 5 (G.triple_count graph ~src:person ~etype:knows ~dst:person);
  check_int "lives triple" 4 (G.triple_count graph ~src:person ~etype:lives_in ~dst:city)

let test_adjacency () =
  (* p0 = vertex 0: out KNOWS to p1,p2; LIVES_IN c0; PURCHASED g0 *)
  check_int "out degree p0" 4 (G.out_degree graph 0);
  check_int "out knows p0" 2 (G.out_degree_etype graph 0 knows);
  check_int "in knows p0" 1 (G.in_degree_etype graph 0 knows);
  let nbrs = G.out_neighbors_etype graph 0 knows in
  Alcotest.(check (array int)) "knows nbrs sorted" [| 1; 2 |] nbrs;
  Alcotest.(check bool) "has edge p0->p1" true (G.has_out_edge graph ~src:0 ~etype:knows ~dst:1);
  Alcotest.(check bool) "no edge p1->p0" false (G.has_out_edge graph ~src:1 ~etype:knows ~dst:0);
  check_int "parallel count" 1 (List.length (G.find_out_edges graph ~src:0 ~etype:knows ~dst:1))

let test_iteration_consistency () =
  (* every edge appears exactly once in out-iteration and once in
     in-iteration *)
  let seen_out = Array.make (G.n_edges graph) 0 in
  let seen_in = Array.make (G.n_edges graph) 0 in
  for v = 0 to G.n_vertices graph - 1 do
    G.iter_out graph v (fun e ->
        Alcotest.(check int) "src matches" v (G.esrc graph e);
        seen_out.(e) <- seen_out.(e) + 1);
    G.iter_in graph v (fun e ->
        Alcotest.(check int) "dst matches" v (G.edst graph e);
        seen_in.(e) <- seen_in.(e) + 1)
  done;
  Array.iter (fun c -> check_int "out once" 1 c) seen_out;
  Array.iter (fun c -> check_int "in once" 1 c) seen_in

let test_properties () =
  Alcotest.(check string) "p0 name" "\"p0\"" (Value.to_string (G.vprop graph 0 "name"));
  (match G.vprop graph 0 "age" with
  | Value.Int 20 -> ()
  | v -> Alcotest.failf "expected 20, got %s" (Value.to_string v));
  (match G.vprop graph 0 "missing" with
  | Value.Null -> ()
  | v -> Alcotest.failf "expected null, got %s" (Value.to_string v))

let test_schema_violation () =
  let b = G.Builder.create schema in
  let p = G.Builder.add_vertex b ~vtype:person [] in
  let c = G.Builder.add_vertex b ~vtype:city [] in
  Alcotest.check_raises "bad triple"
    (Invalid_argument "Builder.add_edge: triple (City)-[KNOWS]->(Person) not in schema")
    (fun () -> ignore (G.Builder.add_edge b ~src:c ~dst:p ~etype:knows []))

let test_avg_degree () =
  (* 5 KNOWS edges over 4 persons *)
  Alcotest.(check (float 1e-9)) "avg out knows" 1.25
    (G.avg_out_degree graph ~src_vtype:person ~etype:knows);
  Alcotest.(check (float 1e-9)) "avg in lives" 2.0
    (G.avg_in_degree graph ~dst_vtype:city ~etype:lives_in)

(* property: on a random graph, CSR round-trips the inserted edge set *)
let prop_csr_roundtrip =
  QCheck.Test.make ~name:"csr roundtrip" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 0 200))
    (fun (nv, ne) ->
      let rng = Prng.create (nv * 1000 + ne) in
      let b = G.Builder.create schema in
      for _ = 1 to nv do
        ignore (G.Builder.add_vertex b ~vtype:person [])
      done;
      let inserted = Hashtbl.create 16 in
      let attempts = ref 0 in
      let added = ref 0 in
      while !added < ne && !attempts < ne * 3 do
        incr attempts;
        let s = Prng.int rng nv and d = Prng.int rng nv in
        ignore (G.Builder.add_edge b ~src:s ~dst:d ~etype:knows []);
        Hashtbl.replace inserted (s, d)
          (1 + Option.value ~default:0 (Hashtbl.find_opt inserted (s, d)));
        incr added
      done;
      let g = G.Builder.freeze b in
      Hashtbl.fold
        (fun (s, d) c ok ->
          ok
          && List.length (G.find_out_edges g ~src:s ~etype:knows ~dst:d) = c
          && G.has_out_edge g ~src:s ~etype:knows ~dst:d)
        inserted true
      && G.n_edges g = !added)

let prop_prng_deterministic =
  QCheck.Test.make ~name:"prng deterministic" ~count:20 QCheck.small_int (fun seed ->
      let a = Prng.create seed and b = Prng.create seed in
      List.init 100 (fun _ -> Prng.int a 1000) = List.init 100 (fun _ -> Prng.int b 1000))

let prop_zipf_range =
  QCheck.Test.make ~name:"zipf in range" ~count:100
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      List.init 50 (fun _ -> Prng.zipf rng ~n ~s:1.1)
      |> List.for_all (fun r -> r >= 0 && r < n))

let prop_value_compare_total =
  let gen_value =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun n -> Value.Int n) small_signed_int;
          map (fun f -> Value.Float (Float.of_int f /. 4.)) small_signed_int;
          map (fun s -> Value.Str s) (string_size (return 3));
        ])
  in
  let arb = QCheck.make gen_value in
  QCheck.Test.make ~name:"value compare antisymmetric+hash" ~count:200 (QCheck.pair arb arb)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = -c2 || (c1 = 0 && c2 = 0))
      && (c1 <> 0 || Value.hash a = Value.hash b)
      && Value.equal a b = (c1 = 0))

let () =
  Alcotest.run "graph"
    [
      ( "store",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "iteration consistency" `Quick test_iteration_consistency;
          Alcotest.test_case "properties" `Quick test_properties;
          Alcotest.test_case "schema violation" `Quick test_schema_violation;
          Alcotest.test_case "avg degree" `Quick test_avg_degree;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_csr_roundtrip; prop_prng_deterministic; prop_zipf_range; prop_value_compare_total ] );
    ]
