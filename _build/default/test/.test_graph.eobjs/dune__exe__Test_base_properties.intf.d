test/test_base_properties.mli:
