test/test_glogue.mli:
