test/test_pattern.ml: Alcotest Array Fixtures Gopt_graph Gopt_pattern Gopt_util List Printf QCheck QCheck_alcotest
