test/test_gir.mli:
