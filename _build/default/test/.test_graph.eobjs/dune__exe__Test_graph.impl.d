test/test_graph.ml: Alcotest Array Fixtures Float Gopt_graph Gopt_util Hashtbl List Option QCheck QCheck_alcotest
