test/test_core.ml: Alcotest Array Fixtures Format Gopt Gopt_exec Gopt_graph Gopt_opt Gopt_pattern Gopt_workloads List Printexc Printf String
