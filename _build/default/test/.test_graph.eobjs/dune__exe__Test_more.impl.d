test/test_more.ml: Alcotest Array Fixtures Format Gopt Gopt_exec Gopt_gir Gopt_glogue Gopt_graph Gopt_lang Gopt_opt Gopt_pattern Gopt_workloads List Printf
