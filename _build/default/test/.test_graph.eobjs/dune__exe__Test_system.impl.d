test/test_system.ml: Alcotest Array Fixtures Float Format Gopt_exec Gopt_gir Gopt_glogue Gopt_graph Gopt_opt Gopt_pattern Gopt_util List Printf QCheck QCheck_alcotest String
