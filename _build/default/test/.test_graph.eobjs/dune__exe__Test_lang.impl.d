test/test_lang.ml: Alcotest Array Fixtures Gopt_gir Gopt_graph Gopt_lang Gopt_pattern List
