test/fixtures.ml: Array Gopt_graph Gopt_pattern Printf
