test/test_exec.ml: Alcotest Array Fixtures Format Gopt_exec Gopt_gir Gopt_glogue Gopt_graph Gopt_opt Gopt_pattern Gopt_util List Printf QCheck QCheck_alcotest
