test/test_typeinf.ml: Alcotest Array Fixtures Fun Gopt_graph Gopt_pattern Gopt_typeinf Gopt_util Int List Printf QCheck QCheck_alcotest
