test/test_opt.ml: Alcotest Array Fixtures Float Gopt_gir Gopt_glogue Gopt_graph Gopt_opt Gopt_pattern Gopt_util List Printf QCheck QCheck_alcotest
