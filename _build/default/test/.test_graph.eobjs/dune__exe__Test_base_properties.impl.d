test/test_base_properties.ml: Alcotest Array Fixtures Fun Gopt_graph Gopt_pattern Gopt_util Int List Option Printf QCheck QCheck_alcotest
