test/test_workloads.ml: Alcotest Array Gopt_gir Gopt_graph Gopt_lang Gopt_opt Gopt_pattern Gopt_workloads List Option Printexc Printf
