test/test_typeinf.mli:
