test/test_gir.ml: Alcotest Fixtures Gopt_gir Gopt_graph Gopt_pattern List String
