test/test_glogue.ml: Alcotest Array Fixtures Float Gopt_glogue Gopt_graph Gopt_pattern Gopt_util List Printf QCheck QCheck_alcotest
