(* Multiple query languages, one optimizer: the same CGP written in Cypher
   and in Gremlin lowers to the same unified GIR, gets the same optimization,
   and returns the same answer — GOpt's modularity claim (paper §5).

   Run with: dune exec examples/multi_language.exe *)

module Ldbc = Gopt_workloads.Ldbc
module Batch = Gopt_exec.Batch
module Logical = Gopt_gir.Logical

let cypher_query =
  "MATCH (p1:Person)-[:KNOWS]->(p2:Person), (p1)-[:LIKES]->(m:Post), (m)-[:HAS_CREATOR]->(p2) \
   RETURN count(*) AS c"

let gremlin_query =
  "g.V().hasLabel('Person').as('p1').out('KNOWS').hasLabel('Person').as('p2').select('p1').out('LIKES').hasLabel('Post').as('m').out('HAS_CREATOR').where(eq('p2')).count()"

let () =
  let graph = Ldbc.generate ~persons:600 () in
  let session = Gopt.Session.create graph in
  let schema = Gopt.Session.schema session in

  Printf.printf "Cypher:\n  %s\n\nGremlin:\n  %s\n\n" cypher_query gremlin_query;

  (* the two frontends produce the same language-independent GIR pattern
     (Cypher additionally requests no-repeated-edge semantics) *)
  let gir_c = Gopt.cypher_to_gir session cypher_query in
  let gir_g = Gopt.gremlin_to_gir session gremlin_query in
  Format.printf "== GIR from Cypher ==@.%a@." (Gopt_gir.Plan_printer.pp ~schema) gir_c;
  Format.printf "== GIR from Gremlin ==@.%a@." (Gopt_gir.Plan_printer.pp ~schema) gir_g;

  (* both run through the same optimizer and engine *)
  let out_c = Gopt.run_cypher session cypher_query in
  let out_g = Gopt.run_gremlin session gremlin_query in
  Format.printf "Cypher result:  %a@." (Batch.pp graph) out_c.Gopt.result;
  Format.printf "Gremlin result: %a@." (Batch.pp graph) out_g.Gopt.result;
  Format.printf
    "@.(Cypher MATCH uses no-repeated-edge semantics — Remark 3.1 — while Gremlin \
     traversals are homomorphic, so the Gremlin count can be slightly larger.)@."
