examples/plan_shipping.ml: Filename Format Fun Gopt Gopt_exec Gopt_graph Gopt_opt Gopt_workloads Printf String Sys
