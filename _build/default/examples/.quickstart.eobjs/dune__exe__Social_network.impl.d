examples/social_network.ml: Format Gopt Gopt_exec Gopt_graph Gopt_opt Gopt_workloads List Printf Sys
