examples/quickstart.ml: Format Gopt Gopt_exec Gopt_graph List
