examples/plan_shipping.mli:
