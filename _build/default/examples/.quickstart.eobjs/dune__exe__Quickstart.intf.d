examples/quickstart.mli:
