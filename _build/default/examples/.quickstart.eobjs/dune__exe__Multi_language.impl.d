examples/multi_language.ml: Format Gopt Gopt_exec Gopt_gir Gopt_workloads Printf
