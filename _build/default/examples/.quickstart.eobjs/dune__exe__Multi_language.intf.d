examples/multi_language.mli:
