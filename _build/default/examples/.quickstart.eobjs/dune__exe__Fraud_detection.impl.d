examples/fraud_detection.ml: Format Gopt Gopt_exec Gopt_graph Gopt_opt Gopt_pattern Gopt_workloads List Printf Sys
