(* Quickstart: build a graph, create a GOpt session, run Cypher.

   Run with: dune exec examples/quickstart.exe *)

module Schema = Gopt_graph.Schema
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value

let () =
  (* 1. declare a schema: vertex/edge types and their connectivity *)
  let schema =
    Schema.create
      ~vtypes:
        [
          ("Person", [ ("name", Schema.P_string); ("age", Schema.P_int) ]);
          ("City", [ ("name", Schema.P_string) ]);
        ]
      ~etypes:[ ("KNOWS", []); ("LIVES_IN", []) ]
      ~triples:[ ("Person", "KNOWS", "Person"); ("Person", "LIVES_IN", "City") ]
  in

  (* 2. load data through the schema-checked builder *)
  let b = G.Builder.create schema in
  let person = Schema.vtype_id schema "Person" and city = Schema.vtype_id schema "City" in
  let knows = Schema.etype_id schema "KNOWS" and lives_in = Schema.etype_id schema "LIVES_IN" in
  let add_person name age =
    G.Builder.add_vertex b ~vtype:person [ ("name", Value.Str name); ("age", Value.Int age) ]
  in
  let alice = add_person "Alice" 34
  and bob = add_person "Bob" 29
  and carol = add_person "Carol" 41 in
  let shanghai = G.Builder.add_vertex b ~vtype:city [ ("name", Value.Str "Shanghai") ] in
  let hangzhou = G.Builder.add_vertex b ~vtype:city [ ("name", Value.Str "Hangzhou") ] in
  List.iter
    (fun (s, d, t) -> ignore (G.Builder.add_edge b ~src:s ~dst:d ~etype:t []))
    [
      (alice, bob, knows);
      (bob, carol, knows);
      (alice, carol, knows);
      (alice, shanghai, lives_in);
      (bob, shanghai, lives_in);
      (carol, hangzhou, lives_in);
    ];
  let graph = G.Builder.freeze b in

  (* 3. create a session: this precomputes the GLogue statistics *)
  let session = Gopt.Session.create graph in

  (* 4. run a CGP: pattern matching + relational operations *)
  let query =
    "MATCH (a:Person)-[:KNOWS]->(c:Person), (a)-[:LIVES_IN]->(ci:City) \
     WHERE ci.name = 'Shanghai' \
     RETURN a.name AS who, count(c) AS friends ORDER BY friends DESC"
  in
  let out = Gopt.run_cypher session query in
  Format.printf "== results ==@.%a@." (Gopt_exec.Batch.pp graph) out.Gopt.result;

  (* 5. inspect what the optimizer did *)
  print_endline (Gopt.explain_cypher session query);

  (* 6. the same data answers Gremlin traversals through the same GIR *)
  let gout =
    Gopt.run_gremlin session
      "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('c').count()"
  in
  Format.printf "@.gremlin count: %a@." (Gopt_exec.Batch.pp graph) gout.Gopt.result
