(* Fraud detection: s-t paths in a money-transfer graph (the paper's §8.5
   case study). Fraudsters move funds through up to k intermediaries; we
   look for k-hop transfer paths from a set of suspect sources S1 to a set
   of suspect sinks S2. GOpt's cost-based planner chooses where to split
   the path for a bidirectional search — and the best join position is not
   always the middle.

   Run with: dune exec examples/fraud_detection.exe *)

module Tg = Gopt_workloads.Transfer_graph
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Value = Gopt_graph.Value
module Pp = Gopt_opt.Path_planner
module Spec = Gopt_opt.Physical_spec
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch

let st_pattern ~srcs ~dsts ~k =
  let account = Gopt_graph.Schema.vtype_id Tg.schema "Account" in
  let transfer = Gopt_graph.Schema.etype_id Tg.schema "TRANSFER" in
  let in_list tag ids =
    Expr.In_list (Expr.Prop (tag, "id"), List.map (fun i -> Value.Int i) ids)
  in
  Pattern.create
    [|
      Pattern.mk_vertex ~pred:(in_list "s" srcs) ~alias:"s" (Tc.Basic account);
      Pattern.mk_vertex ~pred:(in_list "t" dsts) ~alias:"t" (Tc.Basic account);
    |]
    [| Pattern.mk_edge ~hops:(k, k) ~alias:"p" ~src:0 ~dst:1 (Tc.Basic transfer) |]

let () =
  let accounts = 8000 and k = 6 in
  Printf.printf "generating transfer graph (%d accounts)...\n%!" accounts;
  let graph = Tg.generate ~accounts () in
  Format.printf "%a@." Gopt_graph.Property_graph.pp_stats graph;
  let session = Gopt.Session.create graph in
  let gq = Gopt.Session.estimator session in
  (* asymmetric endpoint sets: a handful of suspect sources, many candidate
     sinks — expanding from either side alone explodes *)
  let srcs, dsts = Tg.pick_endpoints graph ~seed:12 ~n_src:8 ~n_dst:60 in
  Printf.printf "\n|S1| = %d suspects, |S2| = %d sinks, k = %d hops\n%!"
    (List.length srcs) (List.length dsts) k;
  let p = st_pattern ~srcs ~dsts ~k in
  let result = Pp.optimize gq Spec.graphscope p in
  Printf.printf "\nplanner alternatives (estimated cost):\n";
  List.iter
    (fun (split, cost) ->
      let label =
        match split with
        | None -> "single-direction"
        | Some (a, b) -> Printf.sprintf "split (%d, %d)" a b
      in
      Printf.printf "  %-18s %.3e\n" label cost)
    result.Pp.alternatives;
  (match result.Pp.split with
  | Some (a, b) -> Printf.printf "\nchosen: bidirectional join at (%d, %d)\n%!" a b
  | None -> Printf.printf "\nchosen: single-direction expansion\n%!");
  let t0 = Sys.time () in
  let batch, stats = Engine.run ~budget:60.0 graph result.Pp.phys in
  Printf.printf "found %d suspicious %d-hop transfer paths in %.3fs (%d intermediate rows)\n%!"
    (Batch.n_rows batch) k (Sys.time () -. t0) stats.Engine.intermediate_rows;
  (* compare against the naive single-direction plan *)
  let naive, _ = Pp.forced_split gq Spec.graphscope p ~at:0 in
  let t1 = Sys.time () in
  (match Engine.run ~budget:60.0 graph naive with
  | naive_batch, naive_stats ->
    Printf.printf "single-direction plan: %d rows in %.3fs (%d intermediate rows)\n%!"
      (Batch.n_rows naive_batch) (Sys.time () -. t1)
      naive_stats.Engine.intermediate_rows
  | exception Engine.Timeout ->
    Printf.printf "single-direction plan: OT (exceeded 60s CPU budget)\n%!")
