(* Social-network analytics on the LDBC-like dataset: runs a selection of
   the IC/BI workload analogs and shows how GOpt's plan differs from the
   baseline CypherPlanner-style plan.

   Run with: dune exec examples/social_network.exe *)

module Queries = Gopt_workloads.Queries
module Ldbc = Gopt_workloads.Ldbc
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Baselines = Gopt_opt.Baselines
module Spec = Gopt_opt.Physical_spec

let () =
  let persons = 800 in
  Printf.printf "generating LDBC-like graph (%d persons)...\n%!" persons;
  let graph = Ldbc.generate ~persons () in
  Format.printf "%a@." Gopt_graph.Property_graph.pp_stats graph;
  Printf.printf "building GLogue statistics...\n%!";
  let session = Gopt.Session.create graph in
  let run name =
    let query = Queries.find Queries.comprehensive name in
    Printf.printf "\n=== %s: %s ===\n%!" name query.Queries.description;
    let t0 = Sys.time () in
    let gopt = Gopt.run_cypher ~budget:30.0 session query.Queries.cypher in
    let t1 = Sys.time () in
    Printf.printf "GOpt plan: %d rows in %.3fs (%d intermediate rows)\n%!"
      (Batch.n_rows gopt.Gopt.result) (t1 -. t0)
      gopt.Gopt.exec_stats.Engine.intermediate_rows;
    let t2 = Sys.time () in
    let base =
      Gopt.run_cypher ~config:Baselines.cypher_planner_config ~budget:30.0 session
        query.Queries.cypher
    in
    let t3 = Sys.time () in
    Printf.printf "CypherPlanner-style plan: %d rows in %.3fs (%d intermediate rows)\n%!"
      (Batch.n_rows base.Gopt.result) (t3 -. t2)
      base.Gopt.exec_stats.Engine.intermediate_rows;
    Format.printf "sample results:@.%a@." (Batch.pp graph) gopt.Gopt.result
  in
  List.iter run [ "IC2"; "IC5"; "IC6"; "BI2"; "BI8" ];
  (* show the backend-specific operator choice on a cyclic pattern *)
  let q = Queries.find Queries.qc "QC1a" in
  Printf.printf "\n=== operator registration (PhysicalSpec) on %s ===\n" q.Queries.name;
  let phys_gs, _ = Gopt.plan_cypher ~config:(Baselines.gopt_config Spec.graphscope) session q.Queries.cypher in
  let phys_neo, _ = Gopt.plan_cypher ~config:(Baselines.gopt_config Spec.neo4j) session q.Queries.cypher in
  let schema = Gopt.Session.schema session in
  Format.printf "GraphScope backend:@.%a@." (Gopt_opt.Physical.pp ~schema) phys_gs;
  Format.printf "Neo4j backend:@.%a@." (Gopt_opt.Physical.pp ~schema) phys_neo
