(* Backend decoupling: the optimizer and the execution backend can live in
   different processes. GOpt serializes the optimized physical plan (the
   paper ships protobuf to GraphScope/Neo4j; we ship the textual plan
   encoding) and the dataset travels via the graph serialization format, so
   the "backend" below never sees the query text or the optimizer.

   Run with: dune exec examples/plan_shipping.exe *)

module Codec = Gopt_opt.Plan_codec
module Graph_io = Gopt_graph.Graph_io
module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch

let optimizer_process graph_file query =
  (* the "optimizer side": load data, build statistics, plan — no execution *)
  let graph = Graph_io.load graph_file in
  let session = Gopt.Session.create graph in
  let physical, report = Gopt.plan_cypher session query in
  Printf.printf "[optimizer] rules applied: %s\n"
    (String.concat ", " report.Gopt_opt.Planner.rules_applied);
  let encoded = Codec.encode physical in
  Printf.printf "[optimizer] shipped plan: %d bytes\n%!" (String.length encoded);
  encoded

let backend_process graph_file encoded_plan =
  (* the "backend side": it only understands graphs and physical plans *)
  let graph = Graph_io.load graph_file in
  let plan = Codec.decode encoded_plan in
  let schema = Gopt_graph.Property_graph.schema graph in
  Format.printf "[backend] received plan:@.%a@." (Gopt_opt.Physical.pp ~schema) plan;
  let result, stats = Engine.run graph plan in
  Printf.printf "[backend] executed: %d rows, %d intermediate rows\n%!"
    (Batch.n_rows result) stats.Engine.intermediate_rows;
  Format.printf "%a@." (Batch.pp graph) result

let () =
  let graph_file = Filename.temp_file "gopt_ship" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove graph_file)
    (fun () ->
      (* producer: generate and persist a dataset *)
      let graph = Gopt_workloads.Ldbc.generate ~persons:300 () in
      Graph_io.save graph graph_file;
      Printf.printf "[producer] dataset saved to %s (%d vertices, %d edges)\n%!" graph_file
        (Gopt_graph.Property_graph.n_vertices graph)
        (Gopt_graph.Property_graph.n_edges graph);
      let query =
        "MATCH (p:Person)-[:KNOWS]->(f:Person)-[:IS_LOCATED_IN]->(c:City) \
         WHERE c.name = 'city_1' \
         RETURN f.id AS fid, count(p) AS admirers ORDER BY admirers DESC LIMIT 5"
      in
      let shipped = optimizer_process graph_file query in
      backend_process graph_file shipped)
