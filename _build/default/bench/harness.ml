(* Shared machinery for the experiment harness: budgeted runs, simulated
   distributed time, and plain-text table rendering. *)

module Engine = Gopt_exec.Engine
module Batch = Gopt_exec.Batch
module Planner = Gopt_opt.Planner
module Physical = Gopt_opt.Physical

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

(* Scale and one-hour-analog OT cutoff, overridable for quick runs:
     GOPT_BENCH_PERSONS=400 GOPT_BENCH_BUDGET=2 dune exec bench/main.exe *)
let bench_persons = env_int "GOPT_BENCH_PERSONS" 1200
let bench_budget = env_float "GOPT_BENCH_BUDGET" 10.0

(* The GraphScope profile simulates a distributed dataflow: every
   materialized intermediate row is shuffled once; its cost is proportional
   to the row width (cells). One shuffled cell costs this many seconds of
   simulated network time. *)
let comm_seconds_per_cell = 5e-8

type runres = {
  rows : int;
  cpu : float;  (** measured CPU seconds *)
  sim : float;  (** cpu + simulated communication *)
  stats : Engine.stats option;
}

let ot = { rows = -1; cpu = infinity; sim = infinity; stats = None }

let is_ot r = r.rows < 0

let run_phys ?(profile = Engine.graphscope_profile) ?(budget = bench_budget) graph phys =
  let t0 = Sys.time () in
  match Engine.run ~profile ~budget graph phys with
  | batch, stats ->
    let cpu = Sys.time () -. t0 in
    {
      rows = Batch.n_rows batch;
      cpu;
      sim = cpu +. (float_of_int stats.Engine.comm_cells *. comm_seconds_per_cell);
      stats = Some stats;
    }
  | exception Engine.Timeout -> ot

let run_cypher ?profile ?budget session config query =
  let physical, _report = Gopt.plan_cypher ~config session query in
  run_phys ?profile ?budget (Gopt.Session.graph session) physical

let run_gremlin ?profile ?budget session config query =
  let config' = config in
  let gir = Gopt.gremlin_to_gir session query in
  let physical, _ = Planner.plan config' (Gopt.Session.estimator session) gir in
  run_phys ?profile ?budget (Gopt.Session.graph session) physical

let fmt_time r = if is_ot r then "OT" else Printf.sprintf "%.4f" r.sim

let fmt_speedup ~base ~opt =
  if is_ot base && is_ot opt then "-"
  else if is_ot base then ">"
  else if is_ot opt then "<1"
  else if opt.sim <= 0.0 then "inf"
  else Printf.sprintf "%.1fx" (base.sim /. opt.sim)

let speedup_value ~base ~opt =
  if is_ot opt then None
  else if is_ot base then None (* unbounded; reported separately *)
  else if opt.sim <= 0.0 then None
  else Some (base.sim /. opt.sim)

(* --- tables ---------------------------------------------------------------- *)

let print_table ~title ~header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let line char =
    print_string "+";
    Array.iter (fun w -> print_string (String.make (w + 2) char); print_string "+") widths;
    print_newline ()
  in
  let render row =
    print_string "|";
    List.iteri (fun i cell -> Printf.printf " %-*s |" widths.(i) cell) row;
    print_newline ()
  in
  Printf.printf "\n## %s\n" title;
  line '-';
  render header;
  line '=';
  List.iter render rows;
  line '-'

let geomean = function
  | [] -> nan
  | xs -> exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

let summarize_speedups label pairs =
  let sps = List.filter_map (fun (base, opt) -> speedup_value ~base ~opt) pairs in
  let wins = List.length (List.filter (fun s -> s > 1.05) sps) in
  let ots_beaten = List.length (List.filter (fun (b, o) -> is_ot b && not (is_ot o)) pairs) in
  if sps = [] then Printf.printf "%s: no comparable runs\n" label
  else
    Printf.printf
      "%s: faster on %d/%d comparable queries (+%d where the baseline is OT); average (geo) speedup %.1fx, max %.1fx\n"
      label wins (List.length sps) ots_beaten (geomean sps)
      (List.fold_left Float.max 0.0 sps)

(* memoized sessions so experiments can share graphs *)
let session_cache : (string, Gopt.Session.t) Hashtbl.t = Hashtbl.create 8

let ldbc_session persons =
  let key = Printf.sprintf "ldbc-%d" persons in
  match Hashtbl.find_opt session_cache key with
  | Some s -> s
  | None ->
    Printf.printf "[setup] generating LDBC-like graph (%d persons) + GLogue...\n%!" persons;
    let t0 = Sys.time () in
    let g = Gopt_workloads.Ldbc.generate ~persons () in
    let s = Gopt.Session.create g in
    Printf.printf "[setup] |V|=%d |E|=%d glogue_entries=%d (%.1fs)\n%!"
      (Gopt_graph.Property_graph.n_vertices g)
      (Gopt_graph.Property_graph.n_edges g)
      (Gopt_glogue.Glogue.n_entries (Gopt.Session.glogue s))
      (Sys.time () -. t0);
    Hashtbl.add session_cache key s;
    s

let transfer_session accounts =
  let key = Printf.sprintf "transfer-%d" accounts in
  match Hashtbl.find_opt session_cache key with
  | Some s -> s
  | None ->
    Printf.printf "[setup] generating transfer graph (%d accounts) + GLogue...\n%!" accounts;
    let g = Gopt_workloads.Transfer_graph.generate ~accounts () in
    let s = Gopt.Session.create g in
    Hashtbl.add session_cache key s;
    s
