bench/harness.ml: Array Float Gopt Gopt_exec Gopt_glogue Gopt_graph Gopt_opt Gopt_workloads Hashtbl List Printf String Sys
