bench/main.mli:
