(** LDBC SNB-like social network: schema and deterministic generator.

    Stands in for the paper's LDBC datasets G30..G1000 (Table 3): the same
    entity/relationship structure (Person/City/Country/University/Company/
    Forum/Post/Comment/Tag/TagClass with KNOWS, IS_LOCATED_IN, HAS_CREATOR,
    REPLY_OF, LIKES, HAS_TAG, ...) with Zipf-skewed degrees, at laptop
    scale. Generation is fully deterministic from the seed.

    Every vertex carries an integer [id] unique within its type; Persons
    carry [firstName]/[lastName]/[gender]/[birthday]/[creationDate]/
    [browserUsed]; messages carry [creationDate]/[length]/[content]; places
    and tags carry [name]. *)

val schema : Gopt_graph.Schema.t

val generate : ?seed:int -> persons:int -> unit -> Gopt_graph.Property_graph.t
(** Roughly [8 x persons] vertices and [55 x persons] edges. *)

val scale_ladder : (string * int) list
(** The four scale factors of the data-scale experiments (paper Fig. 10),
    standing in for G30, G100, G300, G1000. *)

val default_persons : int
(** The mid-size scale used by the micro and comprehensive experiments. *)
