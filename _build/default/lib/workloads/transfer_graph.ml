module Schema = Gopt_graph.Schema
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng

let schema =
  Schema.create
    ~vtypes:[ ("Account", [ ("id", Schema.P_int); ("balance", Schema.P_int) ]) ]
    ~etypes:[ ("TRANSFER", [ ("amount", Schema.P_int); ("ts", Schema.P_int) ]) ]
    ~triples:[ ("Account", "TRANSFER", "Account") ]

let generate ?(seed = 7) ~accounts () =
  let rng = Prng.create seed in
  let b = G.Builder.create schema in
  let account = Schema.vtype_id schema "Account" in
  let transfer = Schema.etype_id schema "TRANSFER" in
  let ids =
    Array.init accounts (fun i ->
        G.Builder.add_vertex b ~vtype:account
          [ ("id", Value.Int i); ("balance", Value.Int (Prng.int rng 100000)) ])
  in
  Array.iteri
    (fun i v ->
      let degree = 1 + Prng.zipf rng ~n:30 ~s:1.25 in
      for _ = 1 to degree do
        let target =
          if Prng.int rng 10 < 6 then begin
            (* transfers cluster around nearby accounts *)
            let offset = 1 + Prng.int rng 40 in
            ids.((i + offset) mod accounts)
          end
          else ids.(Prng.zipf rng ~n:accounts ~s:1.1)
        in
        if target <> v then
          ignore
            (G.Builder.add_edge b ~src:v ~dst:target ~etype:transfer
               [ ("amount", Value.Int (1 + Prng.int rng 10000)); ("ts", Value.Int (Prng.int rng 1000000)) ])
      done)
    ids;
  G.Builder.freeze b

let pick_endpoints g ~seed ~n_src ~n_dst =
  let rng = Prng.create seed in
  let n = G.n_vertices g in
  let all = Prng.sample_distinct rng ~n ~k:(n_src + n_dst) in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> split (k - 1) (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  split n_src [] all
