lib/workloads/transfer_graph.mli: Gopt_graph
