lib/workloads/ldbc.mli: Gopt_graph
