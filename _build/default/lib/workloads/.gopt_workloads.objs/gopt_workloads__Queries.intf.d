lib/workloads/queries.mli: Gopt_graph Gopt_pattern
