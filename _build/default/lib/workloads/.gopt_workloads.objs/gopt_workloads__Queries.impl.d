lib/workloads/queries.ml: Gopt_gir Gopt_lang List
