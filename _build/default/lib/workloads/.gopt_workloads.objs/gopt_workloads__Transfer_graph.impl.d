lib/workloads/transfer_graph.ml: Array Gopt_graph Gopt_util List
