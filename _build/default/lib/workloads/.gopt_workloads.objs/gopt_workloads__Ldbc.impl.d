lib/workloads/ldbc.ml: Array Gopt_graph Gopt_util Printf
