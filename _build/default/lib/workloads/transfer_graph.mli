(** Synthetic money-transfer graph for the S-T path case study
    (paper §8.5).

    Stands in for the production graph at Alibaba (3.6 B vertices): Account
    vertices connected by TRANSFER edges with heavy-tailed out-degrees, so
    that k-hop expansions explode exactly the way the case study needs.
    Deterministic from the seed. *)

val schema : Gopt_graph.Schema.t

val generate : ?seed:int -> accounts:int -> unit -> Gopt_graph.Property_graph.t
(** Average out-degree ~6, Zipf-skewed targets. Accounts carry an integer
    [id] equal to their vertex id. *)

val pick_endpoints :
  Gopt_graph.Property_graph.t -> seed:int -> n_src:int -> n_dst:int ->
  int list * int list
(** Sample disjoint source/sink id sets (the paper's [(S1, S2)] pairs). *)
