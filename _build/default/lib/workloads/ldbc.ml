module Schema = Gopt_graph.Schema
module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value
module Prng = Gopt_util.Prng

let schema =
  Schema.create
    ~vtypes:
      [
        ( "Person",
          [
            ("id", Schema.P_int);
            ("firstName", Schema.P_string);
            ("lastName", Schema.P_string);
            ("gender", Schema.P_string);
            ("birthday", Schema.P_int);
            ("creationDate", Schema.P_int);
            ("browserUsed", Schema.P_string);
          ] );
        ("City", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
        ("Country", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
        ("University", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
        ("Company", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
        ( "Forum",
          [ ("id", Schema.P_int); ("title", Schema.P_string); ("creationDate", Schema.P_int) ] );
        ( "Post",
          [
            ("id", Schema.P_int);
            ("creationDate", Schema.P_int);
            ("length", Schema.P_int);
            ("language", Schema.P_string);
            ("content", Schema.P_string);
          ] );
        ( "Comment",
          [
            ("id", Schema.P_int);
            ("creationDate", Schema.P_int);
            ("length", Schema.P_int);
            ("content", Schema.P_string);
            ("browserUsed", Schema.P_string);
          ] );
        ("Tag", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
        ("TagClass", [ ("id", Schema.P_int); ("name", Schema.P_string) ]);
      ]
    ~etypes:
      [
        ("KNOWS", [ ("creationDate", Schema.P_int) ]);
        ("IS_LOCATED_IN", []);
        ("IS_PART_OF", []);
        ("STUDY_AT", [ ("classYear", Schema.P_int) ]);
        ("WORK_AT", [ ("workFrom", Schema.P_int) ]);
        ("HAS_MODERATOR", []);
        ("HAS_MEMBER", [ ("joinDate", Schema.P_int) ]);
        ("CONTAINER_OF", []);
        ("HAS_CREATOR", []);
        ("REPLY_OF", []);
        ("LIKES", [ ("creationDate", Schema.P_int) ]);
        ("HAS_TAG", []);
        ("HAS_TYPE", []);
        ("IS_SUBCLASS_OF", []);
        ("HAS_INTEREST", []);
      ]
    ~triples:
      [
        ("Person", "KNOWS", "Person");
        ("Person", "IS_LOCATED_IN", "City");
        ("University", "IS_LOCATED_IN", "City");
        ("Company", "IS_LOCATED_IN", "Country");
        ("Post", "IS_LOCATED_IN", "Country");
        ("Comment", "IS_LOCATED_IN", "Country");
        ("City", "IS_PART_OF", "Country");
        ("Person", "STUDY_AT", "University");
        ("Person", "WORK_AT", "Company");
        ("Forum", "HAS_MODERATOR", "Person");
        ("Forum", "HAS_MEMBER", "Person");
        ("Forum", "CONTAINER_OF", "Post");
        ("Post", "HAS_CREATOR", "Person");
        ("Comment", "HAS_CREATOR", "Person");
        ("Comment", "REPLY_OF", "Post");
        ("Comment", "REPLY_OF", "Comment");
        ("Person", "LIKES", "Post");
        ("Person", "LIKES", "Comment");
        ("Post", "HAS_TAG", "Tag");
        ("Comment", "HAS_TAG", "Tag");
        ("Forum", "HAS_TAG", "Tag");
        ("Tag", "HAS_TYPE", "TagClass");
        ("TagClass", "IS_SUBCLASS_OF", "TagClass");
        ("Person", "HAS_INTEREST", "Tag");
      ]

let first_names = [| "Jan"; "Wei"; "Maria"; "Ahmed"; "Olga"; "Chen"; "Lena"; "Raj"; "Ana"; "Omar" |]
let last_names = [| "Smith"; "Li"; "Garcia"; "Khan"; "Ivanova"; "Wang"; "Muller"; "Patel"; "Silva"; "Hassan" |]
let browsers = [| "Firefox"; "Chrome"; "Safari"; "InternetExplorer" |]
let languages = [| "en"; "zh"; "es"; "de"; "ru" |]

let default_persons = 1500

let scale_ladder = [ ("S1", 200); ("S2", 600); ("S3", 2000); ("S4", 6000) ]

let generate ?(seed = 42) ~persons () =
  let rng = Prng.create seed in
  let b = G.Builder.create schema in
  let vt name = Schema.vtype_id schema name in
  let et name = Schema.etype_id schema name in
  let n_cities = 40 and n_countries = 15 and n_universities = 30 and n_companies = 40 in
  let n_tags = 90 and n_tagclasses = 15 in
  let n_forums = max 1 (persons / 5) in
  let n_posts = persons * 2 and n_comments = persons * 4 in
  let day = 86400 in
  let date () = 1262304000 + (Prng.int rng 3650 * day) in

  (* --- places --- *)
  let countries =
    Array.init n_countries (fun i ->
        G.Builder.add_vertex b ~vtype:(vt "Country")
          [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "country_%d" i)) ])
  in
  let cities =
    Array.init n_cities (fun i ->
        G.Builder.add_vertex b ~vtype:(vt "City")
          [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "city_%d" i)) ])
  in
  Array.iteri
    (fun i c ->
      ignore (G.Builder.add_edge b ~src:c ~dst:countries.(i mod n_countries) ~etype:(et "IS_PART_OF") []))
    cities;
  let universities =
    Array.init n_universities (fun i ->
        let u =
          G.Builder.add_vertex b ~vtype:(vt "University")
            [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "university_%d" i)) ]
        in
        ignore
          (G.Builder.add_edge b ~src:u ~dst:cities.(Prng.int rng n_cities)
             ~etype:(et "IS_LOCATED_IN") []);
        u)
  in
  let companies =
    Array.init n_companies (fun i ->
        let c =
          G.Builder.add_vertex b ~vtype:(vt "Company")
            [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "company_%d" i)) ]
        in
        ignore
          (G.Builder.add_edge b ~src:c ~dst:countries.(Prng.int rng n_countries)
             ~etype:(et "IS_LOCATED_IN") []);
        c)
  in

  (* --- tags --- *)
  let tagclasses =
    Array.init n_tagclasses (fun i ->
        G.Builder.add_vertex b ~vtype:(vt "TagClass")
          [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "tagclass_%d" i)) ])
  in
  Array.iteri
    (fun i tc ->
      if i > 0 then
        ignore
          (G.Builder.add_edge b ~src:tc ~dst:tagclasses.(Prng.int rng i)
             ~etype:(et "IS_SUBCLASS_OF") []))
    tagclasses;
  let tags =
    Array.init n_tags (fun i ->
        let t =
          G.Builder.add_vertex b ~vtype:(vt "Tag")
            [ ("id", Value.Int i); ("name", Value.Str (Printf.sprintf "tag_%d" i)) ]
        in
        ignore
          (G.Builder.add_edge b ~src:t
             ~dst:tagclasses.(Prng.zipf rng ~n:n_tagclasses ~s:1.2)
             ~etype:(et "HAS_TYPE") []);
        t)
  in
  let zipf_tag () = tags.(Prng.zipf rng ~n:n_tags ~s:1.1) in

  (* --- persons --- *)
  let people =
    Array.init persons (fun i ->
        G.Builder.add_vertex b ~vtype:(vt "Person")
          [
            ("id", Value.Int i);
            ("firstName", Value.Str first_names.(Prng.zipf rng ~n:(Array.length first_names) ~s:1.0));
            ("lastName", Value.Str last_names.(Prng.zipf rng ~n:(Array.length last_names) ~s:1.0));
            ("gender", Value.Str (if Prng.bool rng then "male" else "female"));
            ("birthday", Value.Int (Prng.int_in rng 1950 2005));
            ("creationDate", Value.Int (date ()));
            ("browserUsed", Value.Str (Prng.choice rng browsers));
          ])
  in
  let zipf_person () = people.(Prng.zipf rng ~n:persons ~s:1.05) in
  Array.iteri
    (fun i p ->
      ignore
        (G.Builder.add_edge b ~src:p ~dst:cities.(Prng.zipf rng ~n:n_cities ~s:1.1)
           ~etype:(et "IS_LOCATED_IN") []);
      if Prng.int rng 10 < 7 then
        ignore
          (G.Builder.add_edge b ~src:p ~dst:universities.(Prng.int rng n_universities)
             ~etype:(et "STUDY_AT")
             [ ("classYear", Value.Int (Prng.int_in rng 1970 2024)) ]);
      if Prng.int rng 10 < 8 then
        ignore
          (G.Builder.add_edge b ~src:p ~dst:companies.(Prng.int rng n_companies)
             ~etype:(et "WORK_AT")
             [ ("workFrom", Value.Int (Prng.int_in rng 1990 2024)) ]);
      (* KNOWS: skewed out-degree, mixing local and global targets *)
      let degree = 2 + Prng.zipf rng ~n:24 ~s:1.3 in
      for _ = 1 to degree do
        let target =
          if Prng.int rng 10 < 7 then begin
            let offset = 1 + Prng.int rng 60 in
            let j = (i + if Prng.bool rng then offset else persons - offset) mod persons in
            people.(j)
          end
          else zipf_person ()
        in
        if target <> p then
          ignore
            (G.Builder.add_edge b ~src:p ~dst:target ~etype:(et "KNOWS")
               [ ("creationDate", Value.Int (date ())) ])
      done;
      let interests = 3 + Prng.int rng 4 in
      for _ = 1 to interests do
        ignore (G.Builder.add_edge b ~src:p ~dst:(zipf_tag ()) ~etype:(et "HAS_INTEREST") [])
      done)
    people;

  (* --- forums --- *)
  let forums =
    Array.init n_forums (fun i ->
        let f =
          G.Builder.add_vertex b ~vtype:(vt "Forum")
            [
              ("id", Value.Int i);
              ("title", Value.Str (Printf.sprintf "forum_%d" i));
              ("creationDate", Value.Int (date ()));
            ]
        in
        ignore (G.Builder.add_edge b ~src:f ~dst:(zipf_person ()) ~etype:(et "HAS_MODERATOR") []);
        let members = 5 + Prng.zipf rng ~n:40 ~s:1.2 in
        for _ = 1 to members do
          ignore
            (G.Builder.add_edge b ~src:f ~dst:(zipf_person ()) ~etype:(et "HAS_MEMBER")
               [ ("joinDate", Value.Int (date ())) ])
        done;
        for _ = 1 to 1 + Prng.int rng 2 do
          ignore (G.Builder.add_edge b ~src:f ~dst:(zipf_tag ()) ~etype:(et "HAS_TAG") [])
        done;
        f)
  in

  (* --- posts --- *)
  let posts =
    Array.init n_posts (fun i ->
        let p =
          G.Builder.add_vertex b ~vtype:(vt "Post")
            [
              ("id", Value.Int i);
              ("creationDate", Value.Int (date ()));
              ("length", Value.Int (10 + Prng.int rng 500));
              ("language", Value.Str (Prng.choice rng languages));
              ("content", Value.Str (Printf.sprintf "post content %d" i));
            ]
        in
        ignore
          (G.Builder.add_edge b
             ~src:forums.(Prng.zipf rng ~n:n_forums ~s:1.1)
             ~dst:p ~etype:(et "CONTAINER_OF") []);
        ignore (G.Builder.add_edge b ~src:p ~dst:(zipf_person ()) ~etype:(et "HAS_CREATOR") []);
        ignore
          (G.Builder.add_edge b ~src:p ~dst:countries.(Prng.zipf rng ~n:n_countries ~s:1.1)
             ~etype:(et "IS_LOCATED_IN") []);
        for _ = 1 to 1 + Prng.int rng 3 do
          ignore (G.Builder.add_edge b ~src:p ~dst:(zipf_tag ()) ~etype:(et "HAS_TAG") [])
        done;
        p)
  in

  (* --- comments --- *)
  let comments = Array.make n_comments (-1) in
  for i = 0 to n_comments - 1 do
    let c =
      G.Builder.add_vertex b ~vtype:(vt "Comment")
        [
          ("id", Value.Int i);
          ("creationDate", Value.Int (date ()));
          ("length", Value.Int (5 + Prng.int rng 200));
          ("content", Value.Str (Printf.sprintf "comment %d" i));
          ("browserUsed", Value.Str (Prng.choice rng browsers));
        ]
    in
    comments.(i) <- c;
    ignore (G.Builder.add_edge b ~src:c ~dst:(zipf_person ()) ~etype:(et "HAS_CREATOR") []);
    let parent =
      if i = 0 || Prng.int rng 10 < 6 then posts.(Prng.zipf rng ~n:n_posts ~s:1.1)
      else comments.(Prng.int rng i)
    in
    ignore (G.Builder.add_edge b ~src:c ~dst:parent ~etype:(et "REPLY_OF") []);
    ignore
      (G.Builder.add_edge b ~src:c ~dst:countries.(Prng.zipf rng ~n:n_countries ~s:1.1)
         ~etype:(et "IS_LOCATED_IN") []);
    for _ = 1 to Prng.int rng 3 do
      ignore (G.Builder.add_edge b ~src:c ~dst:(zipf_tag ()) ~etype:(et "HAS_TAG") [])
    done
  done;

  (* --- likes --- *)
  Array.iter
    (fun p ->
      let likes = 3 + Prng.zipf rng ~n:20 ~s:1.2 in
      for _ = 1 to likes do
        let target =
          if Prng.bool rng then posts.(Prng.zipf rng ~n:n_posts ~s:1.1)
          else comments.(Prng.zipf rng ~n:n_comments ~s:1.1)
        in
        ignore
          (G.Builder.add_edge b ~src:p ~dst:target ~etype:(et "LIKES")
             [ ("creationDate", Value.Int (date ())) ])
      done)
    people;

  G.Builder.freeze b
