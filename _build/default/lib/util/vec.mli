(** Growable arrays.

    OCaml 5.1 predates [Dynarray] in the standard library; this is the small
    subset we need for graph construction and batched query execution. *)

type 'a t
(** A growable array of ['a]. *)

val create : unit -> 'a t
(** Fresh empty vector. *)

val with_capacity : int -> 'a t
(** Fresh empty vector with pre-reserved capacity. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element; raises [Invalid_argument] out of range. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing store as needed. *)

val pop : 'a t -> 'a option
(** Remove and return the last element, if any. *)

val clear : 'a t -> unit
(** Remove all elements (does not shrink the backing store). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Copy out the contents. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
