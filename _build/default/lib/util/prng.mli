(** Deterministic pseudo-random number generator (splitmix64).

    All synthetic data in this repository is generated from explicit seeds so
    that every experiment is exactly reproducible. We do not use [Random] from
    the standard library: its state is global and its stream is not guaranteed
    stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a seed. Equal seeds produce
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of splitmix64. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution with
    exponent [s], by inversion on the (approximated) harmonic CDF. Used to give
    generated graphs the heavy-tailed degree skew of real social networks. *)

val sample_distinct : t -> n:int -> k:int -> int list
(** [sample_distinct t ~n ~k] draws [min k n] distinct values from
    [\[0, n)], in no particular order. *)
