type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea, Flood — "Fast splittable pseudorandom number
   generators" (OOPSLA'14). Chosen for its tiny state, full 64-bit output and
   well-studied statistical quality. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits so the result is a non-negative OCaml int *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, matching double precision *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf by inversion on the continuous approximation of the harmonic CDF:
   P(rank <= x) ~ H(x)/H(n) with H(x) = (x^(1-s) - 1)/(1-s) for s <> 1 and
   ln x for s = 1. Accurate enough for workload skew; exactness is not
   required. *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else
    let u = Stdlib.max 1e-12 (float t 1.0) in
    let x =
      if Float.abs (s -. 1.0) < 1e-9 then Float.exp (u *. Float.log (float_of_int n))
      else
        let h n = ((float_of_int n ** (1.0 -. s)) -. 1.0) /. (1.0 -. s) in
        let target = u *. h n in
        ((target *. (1.0 -. s)) +. 1.0) ** (1.0 /. (1.0 -. s))
    in
    let r = int_of_float x - 1 in
    Stdlib.max 0 (Stdlib.min (n - 1) r)

let sample_distinct t ~n ~k =
  let k = Stdlib.min k n in
  if k <= 0 then []
  else if k * 3 >= n then begin
    (* dense case: shuffle a prefix *)
    let arr = Array.init n (fun i -> i) in
    shuffle t arr;
    Array.to_list (Array.sub arr 0 k)
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let v = int t n in
        if Hashtbl.mem seen v then draw acc remaining
        else begin
          Hashtbl.add seen v ();
          draw (v :: acc) (remaining - 1)
        end
    in
    draw [] k
  end
