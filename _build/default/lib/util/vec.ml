type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

(* The capacity hint is advisory: we cannot pre-allocate without a witness
   value, so reservation happens lazily on the first push. *)
let with_capacity (_ : int) = create ()

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let append dst src = iter (push dst) src

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
