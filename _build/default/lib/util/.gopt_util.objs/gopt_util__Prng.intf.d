lib/util/prng.mli:
