lib/util/vec.mli:
