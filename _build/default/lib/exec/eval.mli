(** Expression evaluation over rows.

    Comparison and arithmetic follow SQL-ish null semantics: any comparison
    or arithmetic involving Null yields Null; AND/OR use Kleene logic; a
    SELECT keeps a row only when its predicate evaluates to [Bool true]
    ({!is_true}). *)

val eval :
  Gopt_graph.Property_graph.t ->
  (string -> Rval.t option) ->
  Gopt_pattern.Expr.t ->
  Gopt_graph.Value.t
(** [eval g lookup e] evaluates [e]; [lookup] resolves tags to row values
    (unknown tags evaluate to Null, matching optional-field semantics). *)

val eval_rval :
  Gopt_graph.Property_graph.t ->
  (string -> Rval.t option) ->
  Gopt_pattern.Expr.t ->
  Rval.t
(** Like {!eval} but preserves graph-typed values: [Var tag] returns the
    tag's raw runtime value (so projecting a vertex keeps it a vertex). *)

val is_true : Gopt_graph.Value.t -> bool

val lookup_of_row : Batch.t -> Rval.t array -> string -> Rval.t option
(** Standard row-based tag resolver. *)
