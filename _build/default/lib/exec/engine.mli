(** The execution engine: a physical-plan interpreter over the property
    graph store.

    One interpreter executes the plans of every backend profile — exactly as
    the paper runs GOpt plans and Neo4j plans on both Neo4j and GraphScope —
    but the {e profile} controls the accounting: the GraphScope profile
    simulates a distributed dataflow by counting every materialized
    intermediate row as communication (the paper's communication-cost
    definition), while the Neo4j profile is a single-machine pipeline with no
    communication. Benchmarks combine wall-clock time with the simulated
    communication volume (see EXPERIMENTS.md).

    Execution is batch-at-a-time: each operator materializes its output.
    All pattern operators implement homomorphism semantics; Cypher's
    no-repeated-edge semantics is realized by the AllDistinct operator
    (paper Remark 3.1). *)

type profile = {
  prof_name : string;
  count_comm : bool;
      (** Count materialized intermediate rows as simulated communication. *)
}

val neo4j_profile : profile
val graphscope_profile : profile

type stats = {
  mutable operators : int;  (** Operators executed. *)
  mutable intermediate_rows : int;  (** Total rows materialized across operators. *)
  mutable intermediate_cells : int;  (** Rows weighted by width (FieldTrim effect). *)
  mutable comm_rows : int;  (** Simulated shuffled rows (distributed profiles). *)
  mutable comm_cells : int;
      (** Shuffled rows weighted by row width — the simulated network volume
          (what FieldTrim reduces). *)
  mutable edges_touched : int;  (** Adjacency entries visited by expansions. *)
  mutable peak_rows : int;  (** Largest single materialized batch. *)
}

exception Timeout
(** Raised when the run exceeds its [budget] of CPU seconds — the engine's
    analogue of the paper's one-hour OT cutoff. *)

val run :
  ?profile:profile ->
  ?budget:float ->
  Gopt_graph.Property_graph.t ->
  Gopt_opt.Physical.t ->
  Batch.t * stats
(** Execute a plan. [profile] defaults to {!graphscope_profile}. *)
