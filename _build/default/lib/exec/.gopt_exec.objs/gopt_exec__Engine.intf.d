lib/exec/engine.mli: Batch Gopt_graph Gopt_opt
