lib/exec/batch.ml: Array Format Gopt_util Hashtbl List Printf Rval String
