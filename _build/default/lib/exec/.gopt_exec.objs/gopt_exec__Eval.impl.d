lib/exec/eval.ml: Array Batch Gopt_graph Gopt_pattern List Rval String
