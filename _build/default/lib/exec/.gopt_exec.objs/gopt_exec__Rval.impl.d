lib/exec/rval.ml: Format Gopt_graph Hashtbl Int List String
