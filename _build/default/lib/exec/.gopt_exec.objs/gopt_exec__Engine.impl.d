lib/exec/engine.ml: Array Batch Eval Fun Gopt_gir Gopt_graph Gopt_opt Gopt_pattern Gopt_util Hashtbl Int List Option Rval Sys
