lib/exec/eval.mli: Batch Gopt_graph Gopt_pattern Rval
