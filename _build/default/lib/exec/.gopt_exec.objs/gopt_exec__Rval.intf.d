lib/exec/rval.mli: Format Gopt_graph
