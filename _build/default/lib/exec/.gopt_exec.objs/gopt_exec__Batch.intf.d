lib/exec/batch.mli: Format Gopt_graph Rval
