(** Runtime values flowing between physical operators.

    The GIR data model (paper §5.1) distinguishes graph-specific datatypes —
    Vertex, Edge, Path — from general scalars and collections; rows in the
    engine are arrays of these. *)

type t =
  | Rnull
  | Rvertex of int
  | Redge of int
  | Rpath of { edges : int list; verts : int list }
      (** [verts] has one more element than [edges]; both in traversal
          order. *)
  | Rval of Gopt_graph.Value.t
  | Rlist of t list  (** Result of COLLECT. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_value : Gopt_graph.Property_graph.t -> t -> Gopt_graph.Value.t
(** Scalar view used by comparisons, grouping and ordering: vertices and
    edges map to their ids, paths to their hop count, lists to their
    length. *)

val edge_ids : t -> int list
(** Edge ids contained in the value ([Redge], [Rpath]); empty otherwise.
    Used by the AllDistinct no-repeated-edge filter. *)

val pp : Gopt_graph.Property_graph.t -> Format.formatter -> t -> unit
(** Render with vertex/edge type names for result display. *)
