module G = Gopt_graph.Property_graph
module Value = Gopt_graph.Value

type t =
  | Rnull
  | Rvertex of int
  | Redge of int
  | Rpath of { edges : int list; verts : int list }
  | Rval of Value.t
  | Rlist of t list

let rank = function
  | Rnull -> 0
  | Rval _ -> 1
  | Rvertex _ -> 2
  | Redge _ -> 3
  | Rpath _ -> 4
  | Rlist _ -> 5

let rec compare a b =
  match a, b with
  | Rnull, Rnull -> 0
  | Rvertex x, Rvertex y | Redge x, Redge y -> Int.compare x y
  | Rpath p, Rpath q ->
    let c = List.compare Int.compare p.edges q.edges in
    if c <> 0 then c else List.compare Int.compare p.verts q.verts
  | Rval x, Rval y -> Value.compare x y
  | Rlist x, Rlist y -> List.compare compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec hash = function
  | Rnull -> 11
  | Rvertex v -> Hashtbl.hash (1, v)
  | Redge e -> Hashtbl.hash (2, e)
  | Rpath { edges; verts } -> Hashtbl.hash (3, edges, verts)
  | Rval v -> Hashtbl.hash (4, Value.hash v)
  | Rlist l -> List.fold_left (fun acc x -> (acc * 31) + hash x) 5 l

let to_value _g = function
  | Rnull -> Value.Null
  | Rvertex v -> Value.Int v
  | Redge e -> Value.Int e
  | Rpath { edges; _ } -> Value.Int (List.length edges)
  | Rval v -> v
  | Rlist l -> Value.Int (List.length l)

let edge_ids = function
  | Redge e -> [ e ]
  | Rpath { edges; _ } -> edges
  | Rnull | Rvertex _ | Rval _ | Rlist _ -> []

let rec pp g ppf v =
  let schema = G.schema g in
  match v with
  | Rnull -> Format.pp_print_string ppf "null"
  | Rvertex x ->
    Format.fprintf ppf "(%s#%d)" (Gopt_graph.Schema.vtype_name schema (G.vtype g x)) x
  | Redge e ->
    Format.fprintf ppf "-[%s#%d]-" (Gopt_graph.Schema.etype_name schema (G.etype g e)) e
  | Rpath { verts; _ } ->
    Format.fprintf ppf "path(%s)" (String.concat "->" (List.map string_of_int verts))
  | Rval x -> Value.pp ppf x
  | Rlist l ->
    Format.fprintf ppf "[%s]"
      (String.concat "; " (List.map (fun x -> Format.asprintf "%a" (pp g) x) l))
