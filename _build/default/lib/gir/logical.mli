(** The unified Graph Intermediate Representation — logical plans (paper §5.1).

    A CGP is a DAG of operators over tagged tuples. Graph operators
    (MATCH_PATTERN, and pattern continuation for factored common
    subpatterns) retrieve graph data; relational operators (SELECT, PROJECT,
    JOIN, GROUP, ORDER, LIMIT, DEDUP, UNION) transform it. Every
    intermediate field has a name (its tag); {!output_fields} computes the
    visible tags of a plan.

    The logical plan is language-independent: both the Cypher and the Gremlin
    frontends lower to this type, and all optimization (RBO, type inference,
    CBO) happens on it. *)

type agg_fn = Count | Count_distinct | Sum | Avg | Min | Max | Collect

type sort_dir = Asc | Desc

type join_kind = Inner | Left_outer | Semi | Anti

type agg = {
  agg_fn : agg_fn;
  agg_arg : Gopt_pattern.Expr.t option;  (** [None] only for [Count], meaning count-star. *)
  agg_alias : string;
}

type t =
  | Match of Gopt_pattern.Pattern.t
      (** MATCH_PATTERN: emit one row per homomorphism, one field per
          pattern-element alias. *)
  | Pattern_cont of t * Gopt_pattern.Pattern.t
      (** [Pattern_cont (input, p)]: input rows bind a subset of [p]'s vertex
          aliases; extend each binding to full matches of [p]. Produced by the
          ComSubPattern rewrite and by bidirectional path plans. *)
  | Common_ref
      (** Placeholder leaf inside {!With_common} branches: the rows of the
          shared common subplan. *)
  | With_common of { common : t; left : t; right : t; combine : combine }
      (** Evaluate [common] once; evaluate both branches (which may use
          {!Common_ref}); combine. *)
  | Select of t * Gopt_pattern.Expr.t
  | Project of t * (Gopt_pattern.Expr.t * string) list
  | Join of { left : t; right : t; keys : string list; kind : join_kind }
      (** Equi-join on shared tags. For [Semi]/[Anti] only [left]'s fields
          survive. *)
  | Group of t * (Gopt_pattern.Expr.t * string) list * agg list
  | Order of t * (Gopt_pattern.Expr.t * sort_dir) list * int option
      (** Optional fused top-k limit. *)
  | Limit of t * int
  | Skip of t * int  (** Drop the first n rows (Cypher SKIP). *)
  | Unwind of t * Gopt_pattern.Expr.t * string
      (** Evaluate the expression per row and emit one output row per element
          of the resulting collection, bound under the new tag (Cypher
          UNWIND; the Unfold operator of the paper's Fig. 3(e)). *)
  | Dedup of t * string list  (** Distinct on tags; [[]] = whole row. *)
  | Union of t * t
  | All_distinct of t * string list
      (** Pairwise-distinct filter over edge-valued fields: converts
          homomorphism semantics to Cypher's no-repeated-edge semantics
          (paper Remark 3.1). The list names the edge fields to compare;
          [[]] means every edge field below. The list stays explicit so that
          per-MATCH scoping survives pattern fusion (JoinToPattern). *)

and combine = C_union | C_join of string list * join_kind

val map_children : (t -> t) -> t -> t
(** Rebuild a node with all direct children transformed. *)

val fold : ('acc -> t -> 'acc) -> 'acc -> t -> 'acc
(** Pre-order fold over all nodes. *)

val output_fields : t -> string list
(** Tags visible in the operator's output, in a stable order. *)

val equal : t -> t -> bool
(** Structural equality (used by the fixpoint rewriter's convergence test). *)

val size : t -> int
(** Number of operator nodes. *)
