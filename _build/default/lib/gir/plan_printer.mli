(** Pretty-printing of GIR logical plans.

    Operators print in the paper's ALL_UPPERCASE convention
    (MATCH_PATTERN, SELECT, PROJECT, ...), one per line, children indented —
    the format used by EXPLAIN output, golden tests and the examples. *)

val pp : ?schema:Gopt_graph.Schema.t -> Format.formatter -> Logical.t -> unit

val to_string : ?schema:Gopt_graph.Schema.t -> Logical.t -> string
