module Schema = Gopt_graph.Schema
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr

type t = { sch : Schema.t; counter : int ref }

type dir = Out | In | Both

(* Edges under construction reference vertices by alias so that contexts are
   cheap persistent values. *)
type pedge = {
  pe_alias : string;
  pe_src : string;
  pe_dst : string option; (* None while the far endpoint is pending *)
  pe_con : Tc.t;
  pe_pred : Expr.t option;
  pe_directed : bool;
  pe_flipped : bool; (* [In]: the new endpoint is the source *)
  pe_hops : (int * int) option;
  pe_path : Pattern.path_sem;
}

type pctx = {
  b : t;
  pvs : (string * Tc.t * Expr.t option) list; (* reversed *)
  pes : pedge list; (* reversed *)
}

let create sch = { sch; counter = ref 0 }

let schema b = b.sch

let fresh b prefix =
  incr b.counter;
  Printf.sprintf "@%s%d" prefix !(b.counter)

let resolve_vtypes b = function
  | None -> Tc.All
  | Some names ->
    let ids = List.map (Schema.vtype_id b.sch) names in
    (match Tc.of_list ~universe:(Schema.n_vtypes b.sch) ids with
    | Some c -> c
    | None -> invalid_arg "Ir_builder: empty vertex type list")

let resolve_etypes b = function
  | None -> Tc.All
  | Some names ->
    let ids = List.map (Schema.etype_id b.sch) names in
    (match Tc.of_list ~universe:(Schema.n_etypes b.sch) ids with
    | Some c -> c
    | None -> invalid_arg "Ir_builder: empty edge type list")

let pattern_start b = { b; pvs = []; pes = [] }

let has_vertex ctx alias = List.exists (fun (a, _, _) -> a = alias) ctx.pvs

let get_v ctx ?alias ?types ?pred () =
  let alias = match alias with Some a -> a | None -> fresh ctx.b "v" in
  if has_vertex ctx alias then
    invalid_arg (Printf.sprintf "Ir_builder.get_v: vertex alias %S already used" alias);
  let con = resolve_vtypes ctx.b types in
  ({ ctx with pvs = (alias, con, pred) :: ctx.pvs }, alias)

let add_edge_generic ctx ~from ?alias ?types ?pred ?hops ?(path_sem = Pattern.Arbitrary)
    ~dir () =
  if not (has_vertex ctx from) then
    invalid_arg (Printf.sprintf "Ir_builder.expand_e: unknown vertex tag %S" from);
  let alias = match alias with Some a -> a | None -> fresh ctx.b "e" in
  if List.exists (fun e -> e.pe_alias = alias) ctx.pes then
    invalid_arg (Printf.sprintf "Ir_builder.expand_e: edge alias %S already used" alias);
  let con = resolve_etypes ctx.b types in
  let directed, flipped =
    match dir with Out -> (true, false) | In -> (true, true) | Both -> (false, false)
  in
  let e =
    {
      pe_alias = alias;
      pe_src = from;
      pe_dst = None;
      pe_con = con;
      pe_pred = pred;
      pe_directed = directed;
      pe_flipped = flipped;
      pe_hops = hops;
      pe_path = path_sem;
    }
  in
  ({ ctx with pes = e :: ctx.pes }, alias)

let expand_e ctx ~from ?alias ?types ?pred ~dir () =
  add_edge_generic ctx ~from ?alias ?types ?pred ~dir ()

let expand_path ctx ~from ?alias ?types ~hops ?path_sem ~dir () =
  add_edge_generic ctx ~from ?alias ?types ~hops ?path_sem ~dir ()

let get_v_from ctx ~edge ?alias ?types ?pred () =
  let rec bind acc = function
    | [] -> invalid_arg (Printf.sprintf "Ir_builder.get_v_from: unknown edge tag %S" edge)
    | e :: rest when e.pe_alias = edge ->
      if e.pe_dst <> None then
        invalid_arg (Printf.sprintf "Ir_builder.get_v_from: edge %S already complete" edge);
      let alias = match alias with Some a -> a | None -> fresh ctx.b "v" in
      let ctx' =
        if has_vertex ctx alias then begin
          (* cycle closure: intersect constraint / conjoin predicate *)
          let universe = Schema.n_vtypes ctx.b.sch in
          let con = resolve_vtypes ctx.b types in
          let pvs =
            List.map
              (fun (a, c, p) ->
                if a <> alias then (a, c, p)
                else
                  let c' =
                    match Tc.inter ~universe c con with
                    | Some c' -> c'
                    | None ->
                      invalid_arg
                        (Printf.sprintf
                           "Ir_builder.get_v_from: incompatible types on %S" alias)
                  in
                  let p' =
                    match p, pred with
                    | None, q | q, None -> q
                    | Some p, Some q -> Some (Expr.Binop (Expr.And, p, q))
                  in
                  (a, c', p'))
              ctx.pvs
          in
          { ctx with pvs }
        end
        else
          let con = resolve_vtypes ctx.b types in
          { ctx with pvs = (alias, con, pred) :: ctx.pvs }
      in
      let e' = { e with pe_dst = Some alias } in
      ({ ctx' with pes = List.rev_append acc (e' :: rest) }, alias)
    | e :: rest -> bind (e :: acc) rest
  in
  bind [] ctx.pes

let pattern_end ctx =
  if ctx.pvs = [] then invalid_arg "Ir_builder.pattern_end: empty pattern";
  let pvs = List.rev ctx.pvs in
  let index = Hashtbl.create 16 in
  List.iteri (fun i (a, _, _) -> Hashtbl.add index a i) pvs;
  let vs =
    Array.of_list
      (List.map (fun (a, c, p) -> Pattern.mk_vertex ?pred:p ~alias:a c) pvs)
  in
  let es =
    Array.of_list
      (List.rev_map
         (fun e ->
           let dst =
             match e.pe_dst with
             | Some d -> d
             | None ->
               invalid_arg
                 (Printf.sprintf "Ir_builder.pattern_end: edge %S has a pending endpoint"
                    e.pe_alias)
           in
           let s = Hashtbl.find index e.pe_src and d = Hashtbl.find index dst in
           let s, d = if e.pe_flipped then (d, s) else (s, d) in
           Pattern.mk_edge ?pred:e.pe_pred ~directed:e.pe_directed ?hops:e.pe_hops
             ~path:e.pe_path ~alias:e.pe_alias ~src:s ~dst:d e.pe_con)
         ctx.pes)
  in
  Pattern.create vs es

let match_pattern p = Logical.Match p
let select x e = Logical.Select (x, e)
let project x ps = Logical.Project (x, ps)
let join ?(kind = Logical.Inner) ~keys left right = Logical.Join { left; right; keys; kind }
let group ~keys ~aggs x = Logical.Group (x, keys, aggs)

let agg ?arg ~alias fn =
  (match fn, arg with
  | Logical.Count, _ -> ()
  | _, Some _ -> ()
  | _, None -> invalid_arg "Ir_builder.agg: this aggregate requires an argument");
  { Logical.agg_fn = fn; agg_arg = arg; agg_alias = alias }

let order ~keys ?limit x = Logical.Order (x, keys, limit)
let limit x n = Logical.Limit (x, n)
let skip x n = Logical.Skip (x, n)
let unwind x e ~alias = Logical.Unwind (x, e, alias)
let dedup ?(tags = []) x = Logical.Dedup (x, tags)
let union a b = Logical.Union (a, b)
let all_distinct ?(tags = []) x = Logical.All_distinct (x, tags)

(* Static validation: walk the plan bottom-up, checking tag visibility. *)
let check plan =
  let open Logical in
  let exception Bad of string in
  let need fields e =
    List.iter
      (fun tag ->
        if not (List.mem tag fields) then
          raise (Bad (Printf.sprintf "unbound tag %S in expression %s" tag (Expr.to_string e))))
      (Expr.free_tags e)
  in
  (* [common] is the field list provided by an enclosing With_common for
     Common_ref leaves. *)
  let rec go common plan =
    match plan with
    | Match p ->
      ignore (p : Pattern.t);
      output_fields plan
    | Common_ref -> begin
      match common with
      | Some fields -> fields
      | None -> raise (Bad "Common_ref outside With_common")
    end
    | Pattern_cont (x, p) ->
      let fields = go common x in
      let pat_vfields =
        Array.to_list (Pattern.vertices p) |> List.map (fun v -> v.Pattern.v_alias)
      in
      if not (List.exists (fun f -> List.mem f pat_vfields) fields) then
        raise (Bad "Pattern_cont: input shares no vertex alias with the pattern");
      dedup_fields (fields @ output_fields (Match p))
    | With_common { common = c; left; right; combine } ->
      let cf = go common c in
      let lf = go (Some cf) left in
      let rf = go (Some cf) right in
      (match combine with
      | C_union ->
        if List.sort String.compare lf <> List.sort String.compare rf then
          raise (Bad "With_common union branches have different fields");
        lf
      | C_join (keys, kind) ->
        List.iter
          (fun k ->
            if not (List.mem k lf && List.mem k rf) then
              raise (Bad (Printf.sprintf "With_common join key %S missing" k)))
          keys;
        (match kind with
        | Semi | Anti -> lf
        | Inner | Left_outer -> dedup_fields (lf @ rf)))
    | Select (x, e) ->
      let fields = go common x in
      need fields e;
      fields
    | Project (x, ps) ->
      let fields = go common x in
      List.iter (fun (e, _) -> need fields e) ps;
      List.map snd ps
    | Join { left; right; keys; kind } ->
      let lf = go common left and rf = go common right in
      List.iter
        (fun k ->
          if not (List.mem k lf && List.mem k rf) then
            raise (Bad (Printf.sprintf "join key %S missing from an input" k)))
        keys;
      (match kind with Semi | Anti -> lf | Inner | Left_outer -> dedup_fields (lf @ rf))
    | Group (x, ks, aggs) ->
      let fields = go common x in
      List.iter (fun (e, _) -> need fields e) ks;
      List.iter
        (fun a -> match a.agg_arg with Some e -> need fields e | None -> ())
        aggs;
      List.map snd ks @ List.map (fun a -> a.agg_alias) aggs
    | Order (x, ks, _) ->
      let fields = go common x in
      List.iter (fun (e, _) -> need fields e) ks;
      fields
    | Limit (x, _) | Skip (x, _) -> go common x
    | Unwind (x, e, alias) ->
      let fields = go common x in
      need fields e;
      dedup_fields (fields @ [ alias ])
    | Dedup (x, tags) ->
      let fields = go common x in
      List.iter
        (fun tag ->
          if not (List.mem tag fields) then
            raise (Bad (Printf.sprintf "dedup tag %S unbound" tag)))
        tags;
      fields
    | Union (a, b) ->
      let fa = go common a and fb = go common b in
      if List.sort String.compare fa <> List.sort String.compare fb then
        raise (Bad "union branches have different fields");
      fa
    | All_distinct (x, tags) ->
      let fields = go common x in
      List.iter
        (fun tag ->
          if not (List.mem tag fields) then
            raise (Bad (Printf.sprintf "all_distinct tag %S unbound" tag)))
        tags;
      fields
  and dedup_fields l =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      l
  in
  match go None plan with
  | (_ : string list) -> Ok ()
  | exception Bad msg -> Error msg
