module Pattern = Gopt_pattern.Pattern
module Expr = Gopt_pattern.Expr

type agg_fn = Count | Count_distinct | Sum | Avg | Min | Max | Collect

type sort_dir = Asc | Desc

type join_kind = Inner | Left_outer | Semi | Anti

type agg = {
  agg_fn : agg_fn;
  agg_arg : Expr.t option;
  agg_alias : string;
}

type t =
  | Match of Pattern.t
  | Pattern_cont of t * Pattern.t
  | Common_ref
  | With_common of { common : t; left : t; right : t; combine : combine }
  | Select of t * Expr.t
  | Project of t * (Expr.t * string) list
  | Join of { left : t; right : t; keys : string list; kind : join_kind }
  | Group of t * (Expr.t * string) list * agg list
  | Order of t * (Expr.t * sort_dir) list * int option
  | Limit of t * int
  | Skip of t * int
  | Unwind of t * Expr.t * string
  | Dedup of t * string list
  | Union of t * t
  | All_distinct of t * string list

and combine = C_union | C_join of string list * join_kind

let map_children f = function
  | (Match _ | Common_ref) as leaf -> leaf
  | Pattern_cont (x, p) -> Pattern_cont (f x, p)
  | With_common { common; left; right; combine } ->
    With_common { common = f common; left = f left; right = f right; combine }
  | Select (x, e) -> Select (f x, e)
  | Project (x, ps) -> Project (f x, ps)
  | Join { left; right; keys; kind } -> Join { left = f left; right = f right; keys; kind }
  | Group (x, ks, aggs) -> Group (f x, ks, aggs)
  | Order (x, ks, lim) -> Order (f x, ks, lim)
  | Limit (x, n) -> Limit (f x, n)
  | Skip (x, n) -> Skip (f x, n)
  | Unwind (x, e, a) -> Unwind (f x, e, a)
  | Dedup (x, tags) -> Dedup (f x, tags)
  | Union (a, b) -> Union (f a, f b)
  | All_distinct (x, tags) -> All_distinct (f x, tags)

let children = function
  | Match _ | Common_ref -> []
  | Pattern_cont (x, _)
  | Select (x, _)
  | Project (x, _)
  | Group (x, _, _)
  | Order (x, _, _)
  | Limit (x, _)
  | Skip (x, _)
  | Unwind (x, _, _)
  | Dedup (x, _)
  | All_distinct (x, _) -> [ x ]
  | With_common { common; left; right; _ } -> [ common; left; right ]
  | Join { left; right; _ } | Union (left, right) -> [ left; right ]

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

let pattern_fields p =
  let vs = Array.to_list (Pattern.vertices p) in
  let es = Array.to_list (Pattern.edges p) in
  List.map (fun v -> v.Pattern.v_alias) vs @ List.map (fun e -> e.Pattern.e_alias) es

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let rec output_fields = function
  | Match p -> pattern_fields p
  | Pattern_cont (x, p) -> dedup_keep_order (output_fields x @ pattern_fields p)
  | Common_ref -> []
  | With_common { left; right; combine; _ } -> begin
    match combine with
    | C_union -> output_fields left
    | C_join (_, (Semi | Anti)) -> output_fields left
    | C_join (_, _) -> dedup_keep_order (output_fields left @ output_fields right)
  end
  | Select (x, _) -> output_fields x
  | Project (_, ps) -> List.map snd ps
  | Join { left; right; kind; _ } -> begin
    match kind with
    | Semi | Anti -> output_fields left
    | Inner | Left_outer -> dedup_keep_order (output_fields left @ output_fields right)
  end
  | Group (_, ks, aggs) -> List.map snd ks @ List.map (fun a -> a.agg_alias) aggs
  | Order (x, _, _) | Limit (x, _) | Skip (x, _) | Dedup (x, _) | All_distinct (x, _) ->
    output_fields x
  | Unwind (x, _, alias) -> dedup_keep_order (output_fields x @ [ alias ])
  | Union (a, _) -> output_fields a

let rec equal a b =
  match a, b with
  | Match p, Match q -> Gopt_pattern.Canonical.keyed_code p = Gopt_pattern.Canonical.keyed_code q
  | Pattern_cont (x, p), Pattern_cont (y, q) ->
    equal x y && Gopt_pattern.Canonical.keyed_code p = Gopt_pattern.Canonical.keyed_code q
  | Common_ref, Common_ref -> true
  | With_common a', With_common b' ->
    equal a'.common b'.common && equal a'.left b'.left && equal a'.right b'.right
    && a'.combine = b'.combine
  | Select (x, e), Select (y, f) -> equal x y && Expr.equal e f
  | Project (x, ps), Project (y, qs) ->
    equal x y
    && List.length ps = List.length qs
    && List.for_all2 (fun (e, n) (f, m) -> Expr.equal e f && n = m) ps qs
  | Join a', Join b' ->
    equal a'.left b'.left && equal a'.right b'.right && a'.keys = b'.keys && a'.kind = b'.kind
  | Group (x, ks, ags), Group (y, ls, bgs) ->
    equal x y
    && List.length ks = List.length ls
    && List.for_all2 (fun (e, n) (f, m) -> Expr.equal e f && n = m) ks ls
    && List.length ags = List.length bgs
    && List.for_all2
         (fun a b ->
           a.agg_fn = b.agg_fn && a.agg_alias = b.agg_alias
           && Option.equal Expr.equal a.agg_arg b.agg_arg)
         ags bgs
  | Order (x, ks, l1), Order (y, ls, l2) ->
    equal x y && l1 = l2
    && List.length ks = List.length ls
    && List.for_all2 (fun (e, d1) (f, d2) -> Expr.equal e f && d1 = d2) ks ls
  | Limit (x, n), Limit (y, m) -> equal x y && n = m
  | Skip (x, n), Skip (y, m) -> equal x y && n = m
  | Unwind (x, e, a), Unwind (y, f, b) -> equal x y && Expr.equal e f && a = b
  | Dedup (x, ts), Dedup (y, us) -> equal x y && ts = us
  | Union (a1, a2), Union (b1, b2) -> equal a1 b1 && equal a2 b2
  | All_distinct (x, ts), All_distinct (y, us) -> equal x y && ts = us
  | ( ( Match _ | Pattern_cont _ | Common_ref | With_common _ | Select _ | Project _
      | Join _ | Group _ | Order _ | Limit _ | Skip _ | Unwind _ | Dedup _ | Union _
      | All_distinct _ ),
      _ ) -> false

let size t = fold (fun n _ -> n + 1) 0 t
