module Expr = Gopt_pattern.Expr
module Pattern = Gopt_pattern.Pattern

let agg_name = function
  | Logical.Count -> "COUNT"
  | Logical.Count_distinct -> "COUNT_DISTINCT"
  | Logical.Sum -> "SUM"
  | Logical.Avg -> "AVG"
  | Logical.Min -> "MIN"
  | Logical.Max -> "MAX"
  | Logical.Collect -> "COLLECT"

let kind_name = function
  | Logical.Inner -> "INNER"
  | Logical.Left_outer -> "LEFT_OUTER"
  | Logical.Semi -> "SEMI"
  | Logical.Anti -> "ANTI"

let pattern_inline ?schema p =
  Pattern.to_string ?schema p
  |> String.split_on_char '\n'
  |> List.filter (fun s -> String.trim s <> "")
  |> String.concat ", "

let pp ?schema ppf plan =
  let rec go indent plan =
    let pad = String.make (2 * indent) ' ' in
    let line fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@,") pad in
    match plan with
    | Logical.Match p -> line "MATCH_PATTERN %s" (pattern_inline ?schema p)
    | Logical.Pattern_cont (x, p) ->
      line "PATTERN_CONT %s" (pattern_inline ?schema p);
      go (indent + 1) x
    | Logical.Common_ref -> line "COMMON_REF"
    | Logical.With_common { common; left; right; combine } ->
      let comb =
        match combine with
        | Logical.C_union -> "UNION"
        | Logical.C_join (keys, kind) ->
          Printf.sprintf "JOIN[%s] ON %s" (kind_name kind) (String.concat ", " keys)
      in
      line "WITH_COMMON combine=%s" comb;
      go (indent + 1) common;
      go (indent + 1) left;
      go (indent + 1) right
    | Logical.Select (x, e) ->
      line "SELECT %s" (Expr.to_string e);
      go (indent + 1) x
    | Logical.Project (x, ps) ->
      line "PROJECT %s"
        (String.concat ", "
           (List.map (fun (e, a) -> Printf.sprintf "%s AS %s" (Expr.to_string e) a) ps));
      go (indent + 1) x
    | Logical.Join { left; right; keys; kind } ->
      line "JOIN[%s] ON %s" (kind_name kind) (String.concat ", " keys);
      go (indent + 1) left;
      go (indent + 1) right
    | Logical.Group (x, ks, aggs) ->
      line "GROUP keys=[%s] aggs=[%s]"
        (String.concat ", "
           (List.map (fun (e, a) -> Printf.sprintf "%s AS %s" (Expr.to_string e) a) ks))
        (String.concat ", "
           (List.map
              (fun a ->
                Printf.sprintf "%s(%s) AS %s" (agg_name a.Logical.agg_fn)
                  (match a.Logical.agg_arg with Some e -> Expr.to_string e | None -> "*")
                  a.Logical.agg_alias)
              aggs));
      go (indent + 1) x
    | Logical.Order (x, ks, lim) ->
      line "ORDER [%s]%s"
        (String.concat ", "
           (List.map
              (fun (e, d) ->
                Printf.sprintf "%s %s" (Expr.to_string e)
                  (match d with Logical.Asc -> "ASC" | Logical.Desc -> "DESC"))
              ks))
        (match lim with None -> "" | Some n -> Printf.sprintf " LIMIT %d" n);
      go (indent + 1) x
    | Logical.Limit (x, n) ->
      line "LIMIT %d" n;
      go (indent + 1) x
    | Logical.Skip (x, n) ->
      line "SKIP %d" n;
      go (indent + 1) x
    | Logical.Unwind (x, e, a) ->
      line "UNWIND %s AS %s" (Expr.to_string e) a;
      go (indent + 1) x
    | Logical.Dedup (x, tags) ->
      line "DEDUP [%s]" (String.concat ", " tags);
      go (indent + 1) x
    | Logical.Union (a, b) ->
      line "UNION";
      go (indent + 1) a;
      go (indent + 1) b
    | Logical.All_distinct (x, tags) ->
      line "ALL_DISTINCT [%s]" (String.concat ", " tags);
      go (indent + 1) x
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"

let to_string ?schema plan = Format.asprintf "%a" (pp ?schema) plan
