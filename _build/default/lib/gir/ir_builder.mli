(** GraphIrBuilder — the high-level interface for constructing GIR plans
    (paper §5.2).

    Frontends (and users embedding GOpt) build patterns step by step —
    [pattern_start .. get_v / expand_e / get_v_from / expand_path ..
    pattern_end] — and then compose relational operators over them. Aliases
    name results for later reference (the paper's [Alias()] / [Tag()]
    mechanism); anonymous elements get fresh ["@v3"] / ["@e2"] aliases.

    Type constraints are given as lists of type {e names}, resolved against
    the schema; [None] means AllType, a singleton means BasicType, several
    names a UnionType. *)

type t
(** A builder bound to a schema (used to resolve type names and to invent
    fresh aliases). *)

type dir = Out | In | Both

type pctx
(** A pattern under construction. Values of this type are immutable; each
    step returns an extended context, so contexts can be reused to build
    pattern variants. *)

val create : Gopt_graph.Schema.t -> t

val schema : t -> Gopt_graph.Schema.t

(** {1 Pattern construction} *)

val pattern_start : t -> pctx

val get_v :
  pctx -> ?alias:string -> ?types:string list -> ?pred:Gopt_pattern.Expr.t -> unit ->
  pctx * string
(** Introduce a standalone pattern vertex (a scan source). Returns the
    extended context and the vertex alias. Raises [Invalid_argument] on
    unknown type names or duplicate alias. *)

val expand_e :
  pctx -> from:string -> ?alias:string -> ?types:string list ->
  ?pred:Gopt_pattern.Expr.t -> dir:dir -> unit -> pctx * string
(** Expand an edge from the tagged vertex, leaving its far endpoint pending
    until the next {!get_v_from}. Returns the edge alias. *)

val expand_path :
  pctx -> from:string -> ?alias:string -> ?types:string list ->
  hops:int * int -> ?path_sem:Gopt_pattern.Pattern.path_sem -> dir:dir -> unit ->
  pctx * string
(** Like {!expand_e} for a variable-length path of [hops] edges
    (EXPAND_PATH). *)

val get_v_from :
  pctx -> edge:string -> ?alias:string -> ?types:string list ->
  ?pred:Gopt_pattern.Expr.t -> unit -> pctx * string
(** Bind the pending endpoint of edge [edge]. If [alias] names a vertex
    already in the pattern, the endpoint unifies with it (closing a cycle)
    and the given types/pred are intersected/conjoined onto it. *)

val pattern_end : pctx -> Gopt_pattern.Pattern.t
(** Finish the pattern. Raises [Invalid_argument] if an edge endpoint is
    still pending or the pattern is empty. *)

(** {1 Relational composition} *)

val match_pattern : Gopt_pattern.Pattern.t -> Logical.t

val select : Logical.t -> Gopt_pattern.Expr.t -> Logical.t

val project : Logical.t -> (Gopt_pattern.Expr.t * string) list -> Logical.t

val join :
  ?kind:Logical.join_kind -> keys:string list -> Logical.t -> Logical.t -> Logical.t

val group :
  keys:(Gopt_pattern.Expr.t * string) list -> aggs:Logical.agg list -> Logical.t ->
  Logical.t

val agg : ?arg:Gopt_pattern.Expr.t -> alias:string -> Logical.agg_fn -> Logical.agg

val order :
  keys:(Gopt_pattern.Expr.t * Logical.sort_dir) list -> ?limit:int -> Logical.t ->
  Logical.t

val limit : Logical.t -> int -> Logical.t

val skip : Logical.t -> int -> Logical.t

val unwind : Logical.t -> Gopt_pattern.Expr.t -> alias:string -> Logical.t

val dedup : ?tags:string list -> Logical.t -> Logical.t

val union : Logical.t -> Logical.t -> Logical.t

val all_distinct : ?tags:string list -> Logical.t -> Logical.t
(** Append the no-repeated-edge filter (Cypher match semantics,
    Remark 3.1) over the given edge fields ([[]] = all edges below). *)

(** {1 Validation} *)

val check : Logical.t -> (unit, string) result
(** Static sanity check: every expression's free tags are visible in its
    input, join keys exist on both sides, group/order references resolve.
    Frontends run this after lowering. *)
