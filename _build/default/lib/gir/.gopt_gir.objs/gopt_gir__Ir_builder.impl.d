lib/gir/ir_builder.ml: Array Gopt_graph Gopt_pattern Hashtbl List Logical Printf String
