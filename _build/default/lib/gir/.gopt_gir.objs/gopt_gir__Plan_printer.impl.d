lib/gir/plan_printer.ml: Format Gopt_pattern List Logical Printf String
