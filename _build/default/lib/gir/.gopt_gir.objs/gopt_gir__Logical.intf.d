lib/gir/logical.mli: Gopt_pattern
