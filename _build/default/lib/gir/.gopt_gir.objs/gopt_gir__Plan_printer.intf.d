lib/gir/plan_printer.mli: Format Gopt_graph Logical
