lib/gir/logical.ml: Array Gopt_pattern Hashtbl List Option
