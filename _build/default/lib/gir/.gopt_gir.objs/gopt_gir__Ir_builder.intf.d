lib/gir/ir_builder.mli: Gopt_graph Gopt_pattern Logical
