let partition_triples g =
  let schema = Property_graph.schema g in
  Array.to_list (Schema.triples schema)
  |> List.partition (fun (s, e, d) -> Property_graph.triple_count g ~src:s ~etype:e ~dst:d > 0)

let observed g =
  let schema = Property_graph.schema g in
  let live, _ = partition_triples g in
  let name (s, e, d) =
    (Schema.vtype_name schema s, Schema.etype_name schema e, Schema.vtype_name schema d)
  in
  Schema.create
    ~vtypes:
      (List.map
         (fun vt -> (Schema.vtype_name schema vt, Schema.vprops schema vt))
         (Schema.all_vtypes schema))
    ~etypes:
      (List.map
         (fun et -> (Schema.etype_name schema et, Schema.eprops schema et))
         (Schema.all_etypes schema))
    ~triples:(List.map name live)

let missing_triples g = snd (partition_triples g)
