lib/graph/property_graph.mli: Format Schema Value
