lib/graph/property_graph.ml: Array Format Gopt_util Hashtbl Int List Option Printf Schema Value
