lib/graph/schema_discovery.mli: Property_graph Schema
