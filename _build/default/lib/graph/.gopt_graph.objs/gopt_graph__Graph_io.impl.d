lib/graph/graph_io.ml: Array Buffer Fun List Printf Property_graph Schema String Value
