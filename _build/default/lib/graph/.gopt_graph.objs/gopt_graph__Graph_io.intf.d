lib/graph/graph_io.mli: Property_graph
