lib/graph/schema.ml: Array Format Fun Hashtbl List Printf String
