lib/graph/schema_discovery.ml: Array List Property_graph Schema
