lib/graph/value.ml: Bool Float Format Hashtbl Int String
