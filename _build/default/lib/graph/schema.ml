type prop_kind = P_bool | P_int | P_float | P_string

type t = {
  vtype_names : string array;
  etype_names : string array;
  vtype_ids : (string, int) Hashtbl.t;
  etype_ids : (string, int) Hashtbl.t;
  vprop_decls : (string * prop_kind) list array;
  eprop_decls : (string * prop_kind) list array;
  triples : (int * int * int) array;
  triple_set : (int * int * int, unit) Hashtbl.t;
  out_adj : (int * int) list array; (* vtype -> (etype, dst vtype) *)
  in_adj : (int * int) list array; (* vtype -> (etype, src vtype) *)
  etype_ends : (int * int) list array; (* etype -> (src vtype, dst vtype) *)
}

let index_names kind names =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i name ->
      if Hashtbl.mem tbl name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate %s type %S" kind name);
      Hashtbl.add tbl name i)
    names;
  tbl

let create ~vtypes ~etypes ~triples =
  let vtype_names = Array.of_list (List.map fst vtypes) in
  let etype_names = Array.of_list (List.map fst etypes) in
  let vtype_ids = index_names "vertex" (Array.to_list vtype_names) in
  let etype_ids = index_names "edge" (Array.to_list etype_names) in
  let lookup tbl kind name =
    match Hashtbl.find_opt tbl name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Schema.create: unknown %s type %S" kind name)
  in
  let triples =
    Array.of_list
      (List.map
         (fun (s, e, d) ->
           (lookup vtype_ids "vertex" s, lookup etype_ids "edge" e, lookup vtype_ids "vertex" d))
         triples)
  in
  let nv = Array.length vtype_names and ne = Array.length etype_names in
  let out_adj = Array.make nv [] and in_adj = Array.make nv [] in
  let etype_ends = Array.make ne [] in
  let triple_set = Hashtbl.create (Array.length triples * 2) in
  Array.iter
    (fun (s, e, d) ->
      if not (Hashtbl.mem triple_set (s, e, d)) then begin
        Hashtbl.add triple_set (s, e, d) ();
        out_adj.(s) <- (e, d) :: out_adj.(s);
        in_adj.(d) <- (e, s) :: in_adj.(d);
        etype_ends.(e) <- (s, d) :: etype_ends.(e)
      end)
    triples;
  {
    vtype_names;
    etype_names;
    vtype_ids;
    etype_ids;
    vprop_decls = Array.of_list (List.map snd vtypes);
    eprop_decls = Array.of_list (List.map snd etypes);
    triples;
    triple_set;
    out_adj;
    in_adj;
    etype_ends;
  }

let n_vtypes t = Array.length t.vtype_names
let n_etypes t = Array.length t.etype_names
let vtype_id t name = match Hashtbl.find_opt t.vtype_ids name with
  | Some i -> i
  | None -> raise Not_found
let etype_id t name = match Hashtbl.find_opt t.etype_ids name with
  | Some i -> i
  | None -> raise Not_found
let find_vtype t name = Hashtbl.find_opt t.vtype_ids name
let find_etype t name = Hashtbl.find_opt t.etype_ids name
let vtype_name t i = t.vtype_names.(i)
let etype_name t i = t.etype_names.(i)
let all_vtypes t = List.init (n_vtypes t) Fun.id
let all_etypes t = List.init (n_etypes t) Fun.id
let triples t = t.triples
let triple_allowed t ~src ~etype ~dst = Hashtbl.mem t.triple_set (src, etype, dst)
let out_schema t vt = t.out_adj.(vt)
let in_schema t vt = t.in_adj.(vt)
let etype_endpoints t et = t.etype_ends.(et)
let vprops t vt = t.vprop_decls.(vt)
let eprops t et = t.eprop_decls.(et)

let pp ppf t =
  Format.fprintf ppf "@[<v>vertex types: %s@,edge types: %s@,triples:@,"
    (String.concat ", " (Array.to_list t.vtype_names))
    (String.concat ", " (Array.to_list t.etype_names));
  Array.iter
    (fun (s, e, d) ->
      Format.fprintf ppf "  (%s)-[%s]->(%s)@," t.vtype_names.(s) t.etype_names.(e)
        t.vtype_names.(d))
    t.triples;
  Format.fprintf ppf "@]"
