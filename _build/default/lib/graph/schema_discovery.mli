(** Schema extraction from data (paper Remark 6.1).

    Schema-loose systems such as Neo4j have no authoritative connectivity
    schema; GOpt's answer is to derive one from the data graph itself and
    keep it updated. This module performs the extraction step: the
    {e observed} schema of a graph contains exactly the vertex/edge types and
    the [(src, etype, dst)] triples that actually occur.

    The observed schema is always a sub-schema of the declared one (same
    type names and ids, possibly fewer triples), so it can be handed to
    {!Gopt_typeinf.Type_inference} for strictly tighter inference: a triple
    that is declared but unpopulated cannot produce matches, and inference
    against the observed schema prunes it. *)

val observed : Property_graph.t -> Schema.t
(** The schema realized by the data: declared types (ids preserved) with
    only the triples that have at least one edge. Property declarations are
    carried over unchanged. *)

val missing_triples : Property_graph.t -> (int * int * int) list
(** Declared [(src, etype, dst)] triples with no realizing edge — the
    pruning opportunity that observed-schema inference exploits. *)
