(** Property values.

    The property-graph model attaches key/value pairs to vertices and edges;
    this is the dynamically-typed value domain shared by the graph store, the
    GIR expression language and the execution engines. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool
(** Structural equality. [Null] equals only [Null] (SQL-style three-valued
    logic is handled one level up, in expression evaluation). *)

val compare : t -> t -> int
(** Total order used by ORDER BY and by grouping keys. [Null] sorts first;
    across constructors the order is Null < Bool < Int/Float < Str, with
    [Int] and [Float] compared numerically against each other. *)

val hash : t -> int
(** Hash compatible with [equal] (in particular [Int n] and [Float n] with
    integral [n] hash alike, since they compare equal). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val as_bool : t -> bool option
(** [as_bool v] is [Some b] for [Bool b], [None] otherwise. *)

val as_int : t -> int option
(** Numeric coercion: succeeds on [Int] and on integral [Float]. *)

val as_float : t -> float option
(** Numeric coercion: succeeds on [Int] and [Float]. *)

val as_string : t -> string option

val is_null : t -> bool
