(** Graph schema: the vertex/edge type universe and their connectivity.

    GOpt's metadata provider (paper §4) exposes the schema to the type
    checker: which vertex types exist, which edge types exist, and which
    [(src_vtype, etype, dst_vtype)] triples the data graph may contain. We
    model the schema-strict context of the paper (§6.2); the schema-loose
    case (Remark 6.1) is handled by {!of_graph_extraction}-style discovery,
    i.e. deriving a schema from observed data. *)

type prop_kind = P_bool | P_int | P_float | P_string
(** Declared property kinds, used for documentation and validation of
    generated data; execution is dynamically typed over {!Value.t}. *)

type t

val create :
  vtypes:(string * (string * prop_kind) list) list ->
  etypes:(string * (string * prop_kind) list) list ->
  triples:(string * string * string) list ->
  t
(** [create ~vtypes ~etypes ~triples] builds a schema. [vtypes] and [etypes]
    list type names with their declared properties; [triples] lists the
    allowed [(src_vtype_name, etype_name, dst_vtype_name)] combinations.
    Raises [Invalid_argument] on duplicate names or unknown names in
    triples. *)

val n_vtypes : t -> int
val n_etypes : t -> int

val vtype_id : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val etype_id : t -> string -> int
val find_vtype : t -> string -> int option
val find_etype : t -> string -> int option
val vtype_name : t -> int -> string
val etype_name : t -> int -> string

val all_vtypes : t -> int list
val all_etypes : t -> int list

val triples : t -> (int * int * int) array
(** All allowed [(src_vtype, etype, dst_vtype)] triples. *)

val triple_allowed : t -> src:int -> etype:int -> dst:int -> bool

val out_schema : t -> int -> (int * int) list
(** [out_schema t vt] lists [(etype, dst_vtype)] pairs reachable by an
    outgoing edge from a vertex of type [vt] — the schema neighbourhood
    N_S(t) / N^E_S(t) of paper Algorithm 1. *)

val in_schema : t -> int -> (int * int) list
(** Mirror of {!out_schema} for incoming edges: [(etype, src_vtype)]. *)

val etype_endpoints : t -> int -> (int * int) list
(** [etype_endpoints t et] lists the [(src_vtype, dst_vtype)] pairs allowed
    for edge type [et]. *)

val vprops : t -> int -> (string * prop_kind) list
(** Declared properties of a vertex type. *)

val eprops : t -> int -> (string * prop_kind) list

val pp : Format.formatter -> t -> unit
(** Human-readable dump: types and connectivity triples. *)
