(** Text serialization of property graphs.

    A self-contained, line-oriented format (one entity per line, sections for
    schema / vertices / edges) so generated datasets can be saved, shared and
    reloaded without re-running the generator. Values are type-tagged;
    strings are escaped. Round-tripping preserves ids, types, adjacency and
    properties exactly. *)

val save : Property_graph.t -> string -> unit
(** [save g path] writes the graph to [path]. Raises [Sys_error] on I/O
    failure. *)

val load : string -> Property_graph.t
(** [load path] reads a graph written by {!save}. Raises [Failure] with a
    line number on malformed input. *)

val to_string : Property_graph.t -> string
(** In-memory serialization (used by tests). *)

val of_string : string -> Property_graph.t
