module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint

(* Number of data edges realizing one pattern edge between two bound data
   vertices, honouring the edge's type constraint and orientation. Parallel
   edges each count once (homomorphism semantics). *)
let edge_multiplicity g euniv (e : Pattern.edge) u_data v_data =
  let count_dir src dst =
    List.fold_left
      (fun acc et -> acc + List.length (G.find_out_edges g ~src ~etype:et ~dst))
      0
      (Tc.to_list ~universe:euniv e.Pattern.e_con)
  in
  if e.Pattern.e_directed then count_dir u_data v_data
  else count_dir u_data v_data + count_dir v_data u_data

(* Search order: BFS across the pattern, starting new components as needed.
   Returns the vertex order and, for each position, the edges from that
   vertex to earlier-ordered vertices. *)
let search_order p =
  let n = Pattern.n_vertices p in
  let placed = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let place v =
    placed.(v) <- true;
    order := v :: !order;
    incr count
  in
  while !count < n do
    (* prefer a vertex adjacent to an already placed one *)
    let next = ref (-1) in
    for v = n - 1 downto 0 do
      if (not placed.(v))
         && List.exists (fun (_, u) -> placed.(u)) (Pattern.neighbors p v)
      then next := v
    done;
    if !next < 0 then begin
      (* new component: pick the lowest unplaced vertex *)
      let v = ref 0 in
      while placed.(!v) do
        incr v
      done;
      next := !v
    end;
    place !next
  done;
  List.rev !order

let count_homomorphisms g p =
  if Pattern.has_var_length p then
    invalid_arg "Motif_counter.count_homomorphisms: variable-length edges unsupported";
  let schema = G.schema g in
  let vuniv = Schema.n_vtypes schema and euniv = Schema.n_etypes schema in
  let order = Array.of_list (search_order p) in
  let bind = Array.make (Pattern.n_vertices p) (-1) in
  let vertex_matches pv data_v =
    Tc.mem ~universe:vuniv (Pattern.vertex p pv).Pattern.v_con (G.vtype g data_v)
  in
  let rec go pos weight =
    if pos = Array.length order then weight
    else begin
      let pv = order.(pos) in
      let bound_edges =
        List.filter
          (fun (ei, u) ->
            ignore (ei : int);
            bind.(u) >= 0)
          (Pattern.neighbors p pv)
      in
      let total = ref 0.0 in
      let try_candidate c extra_weight skipped_edge =
        if vertex_matches pv c then begin
          (* multiply multiplicities of all other edges to bound vertices *)
          let w = ref extra_weight in
          List.iter
            (fun (ei, u) ->
              if !w > 0.0 && Some ei <> skipped_edge then begin
                let e = Pattern.edge p ei in
                let u_data = bind.(u) in
                let src, dst = if e.Pattern.e_src = pv then (c, u_data) else (u_data, c) in
                let m = edge_multiplicity g euniv e src dst in
                w := !w *. float_of_int m
              end)
            bound_edges;
          if !w > 0.0 then begin
            bind.(pv) <- c;
            total := !total +. go (pos + 1) (weight *. !w);
            bind.(pv) <- -1
          end
        end
      in
      (match bound_edges with
      | [] ->
        (* component start: scan vertices by type *)
        List.iter
          (fun t ->
            Array.iter
              (fun c -> try_candidate c 1.0 None)
              (G.vertices_of_vtype g t))
          (Tc.to_list ~universe:vuniv (Pattern.vertex p pv).Pattern.v_con)
      | (anchor_ei, anchor_u) :: _ ->
        let e = Pattern.edge p anchor_ei in
        let u_data = bind.(anchor_u) in
        let expand_dir out =
          List.iter
            (fun et ->
              let iter = if out then G.iter_out_etype else G.iter_in_etype in
              iter g u_data et (fun eid ->
                  let c = if out then G.edst g eid else G.esrc g eid in
                  try_candidate c 1.0 (Some anchor_ei)))
            (Tc.to_list ~universe:euniv e.Pattern.e_con)
        in
        if e.Pattern.e_directed then
          (* pattern edge direction relative to the anchored endpoint *)
          expand_dir (e.Pattern.e_src = anchor_u)
        else begin
          expand_dir true;
          expand_dir false
        end);
      !total
    end
  in
  go 0 1.0

type entry_key = int * [ `Out | `In ] * int * int

let wedge_counts g callback =
  let acc : (entry_key * entry_key, float) Hashtbl.t = Hashtbl.create 1024 in
  let n = G.n_vertices g in
  for b = 0 to n - 1 do
    let bt = G.vtype g b in
    (* incident-edge classes of b with their degrees *)
    let classes : (entry_key, int) Hashtbl.t = Hashtbl.create 8 in
    let bump key = Hashtbl.replace classes key (1 + Option.value ~default:0 (Hashtbl.find_opt classes key)) in
    G.iter_out g b (fun eid -> bump (bt, `Out, G.etype g eid, G.vtype g (G.edst g eid)));
    G.iter_in g b (fun eid -> bump (bt, `In, G.etype g eid, G.vtype g (G.esrc g eid)));
    let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) classes [] in
    let entries = List.sort compare entries in
    let rec pairs = function
      | [] -> ()
      | (k1, d1) :: rest ->
        let contrib = float_of_int (d1 * d1) in
        let key = (k1, k1) in
        Hashtbl.replace acc key (contrib +. Option.value ~default:0.0 (Hashtbl.find_opt acc key));
        List.iter
          (fun (k2, d2) ->
            let key = (k1, k2) in
            let contrib = float_of_int (d1 * d2) in
            Hashtbl.replace acc key
              (contrib +. Option.value ~default:0.0 (Hashtbl.find_opt acc key)))
          rest;
        pairs rest
    in
    pairs entries
  done;
  Hashtbl.iter (fun key total -> callback key total) acc

(* Two-pointer intersection of sorted neighbour arrays, multiplying run
   lengths (parallel edges), restricted to candidates of type [tc]. *)
let intersect_mult g xs ys tc =
  let nx = Array.length xs and ny = Array.length ys in
  let i = ref 0 and j = ref 0 in
  let total = ref 0.0 in
  while !i < nx && !j < ny do
    let x = xs.(!i) and y = ys.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      let run a k v =
        let r = ref 0 in
        let k = ref k in
        while !k < Array.length a && a.(!k) = v do
          incr r;
          incr k
        done;
        !r
      in
      let rx = run xs !i x and ry = run ys !j x in
      if G.vtype g x = tc then total := !total +. float_of_int (rx * ry);
      i := !i + rx;
      j := !j + ry
    end
  done;
  !total

let triangle_count g ~ab:(et_ab, fwd_ab) ~bc:(et_bc, fwd_bc) ~ac:(et_ac, fwd_ac) ~ta ~tb ~tc =
  let total = ref 0.0 in
  let process a b =
    if G.vtype g b = tb then begin
      let from_a = if fwd_ac then G.out_neighbors_etype g a et_ac else G.in_neighbors_etype g a et_ac in
      let from_b = if fwd_bc then G.out_neighbors_etype g b et_bc else G.in_neighbors_etype g b et_bc in
      total := !total +. intersect_mult g from_a from_b tc
    end
  in
  Array.iter
    (fun a ->
      if fwd_ab then G.iter_out_etype g a et_ab (fun eid -> process a (G.edst g eid))
      else G.iter_in_etype g a et_ab (fun eid -> process a (G.esrc g eid)))
    (G.vertices_of_vtype g ta);
  !total
