module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Canonical = Gopt_pattern.Canonical

type mode = High_order | Low_order

type t = {
  glogue : Glogue.t;
  sel : float;
  mode : mode;
  hist : Histograms.t option;
  cache : (string, float) Hashtbl.t;
}

let create ?(selectivity = 0.1) ?(mode = High_order) ?histograms glogue =
  { glogue; sel = selectivity; mode; hist = histograms; cache = Hashtbl.create 256 }

let glogue t = t.glogue
let schema t = G.schema (Glogue.graph t.glogue)
let mode t = t.mode
let selectivity t = t.sel
let cache_size t = Hashtbl.length t.cache

(* Sum of vertex frequencies over a vertex constraint. *)
let vcon_freq t con =
  let sch = schema t in
  List.fold_left
    (fun acc vt -> acc +. Glogue.vertex_freq t.glogue vt)
    0.0
    (Tc.to_list ~universe:(Schema.n_vtypes sch) con)

(* Sum of edge frequencies over all schema triples compatible with the given
   endpoint and edge constraints, for a directed src->dst reading. *)
let directed_edge_freq t ~src_con ~e_con ~dst_con =
  let sch = schema t in
  let vuniv = Schema.n_vtypes sch and euniv = Schema.n_etypes sch in
  Array.fold_left
    (fun acc (s, e, d) ->
      if
        Tc.mem ~universe:vuniv src_con s
        && Tc.mem ~universe:euniv e_con e
        && Tc.mem ~universe:vuniv dst_con d
      then acc +. Glogue.triple_freq t.glogue ~src:s ~etype:e ~dst:d
      else acc)
    0.0 (Schema.triples sch)

(* Compatible-edge frequency for pattern edge [e] read with endpoint
   constraints [uc] (the endpoint written as e_src) and [wc]. Undirected
   edges admit both orientations. *)
let edge_freq t (e : Pattern.edge) ~src_con ~dst_con =
  let f = directed_edge_freq t ~src_con ~e_con:e.Pattern.e_con ~dst_con in
  if e.Pattern.e_directed then f
  else f +. directed_edge_freq t ~src_con:dst_con ~e_con:e.Pattern.e_con ~dst_con:src_con

(* Edge frequency read from the walking side: [forward] means the walk
   traverses the edge from its stored source. *)
let edge_freq_from t (e : Pattern.edge) ~forward ~cur_con ~far_con =
  if e.Pattern.e_directed then
    if forward then directed_edge_freq t ~src_con:cur_con ~e_con:e.Pattern.e_con ~dst_con:far_con
    else directed_edge_freq t ~src_con:far_con ~e_con:e.Pattern.e_con ~dst_con:cur_con
  else
    directed_edge_freq t ~src_con:cur_con ~e_con:e.Pattern.e_con ~dst_con:far_con
    +. directed_edge_freq t ~src_con:far_con ~e_con:e.Pattern.e_con ~dst_con:cur_con

(* Vertex types reachable in one hop from [cur_con] along the edge's
   constraint, used as the frontier constraint of multi-hop walks. *)
let reachable_con t (e : Pattern.edge) ~forward ~cur_con =
  let sch = schema t in
  let vuniv = Schema.n_vtypes sch and euniv = Schema.n_etypes sch in
  let acc = ref [] in
  Array.iter
    (fun (s, et, d) ->
      if Tc.mem ~universe:euniv e.Pattern.e_con et then begin
        let fwd_ok = Tc.mem ~universe:vuniv cur_con s in
        let bwd_ok = Tc.mem ~universe:vuniv cur_con d in
        if e.Pattern.e_directed then begin
          if forward && fwd_ok then acc := d :: !acc;
          if (not forward) && bwd_ok then acc := s :: !acc
        end
        else begin
          if fwd_ok then acc := d :: !acc;
          if bwd_ok then acc := s :: !acc
        end
      end)
    (Schema.triples sch);
  Tc.of_list ~universe:vuniv !acc

(* Expand ratio for a variable-length edge of [k] hops: walk hop by hop,
   tracking the frontier's possible vertex types so per-hop degree ratios use
   the right base population. *)
let var_length_ratio t (e : Pattern.edge) ~from_con ~to_con ~forward ~k =
  let vuniv = Schema.n_vtypes (schema t) in
  let rec walk cur_con remaining acc =
    if acc = 0.0 then 0.0
    else if remaining = 0 then acc
    else begin
      let far_con_opt =
        match reachable_con t e ~forward ~cur_con with
        | None -> None
        | Some r ->
          (* the final hop must land on the target constraint *)
          if remaining = 1 then Tc.inter ~universe:vuniv r to_con else Some r
      in
      match far_con_opt with
      | None -> 0.0
      | Some far_con ->
        let f = edge_freq_from t e ~forward ~cur_con ~far_con in
        let base = vcon_freq t cur_con in
        if base <= 0.0 then 0.0 else walk far_con (remaining - 1) (acc *. (f /. base))
    end
  in
  if k <= 0 then 1.0 else walk from_con k 1.0

(* sigma for one incident edge of a peeled vertex [v] (Eq. 2).
   [closing] distinguishes case 2 (v already introduced). *)
let sigma t p ~v ~ei ~closing =
  let e = Pattern.edge p ei in
  let u = if e.Pattern.e_src = v then e.Pattern.e_dst else e.Pattern.e_src in
  let ucon = (Pattern.vertex p u).Pattern.v_con in
  let vcon = (Pattern.vertex p v).Pattern.v_con in
  (* orient the constraint pair as stored on the edge *)
  let src_con, dst_con = if e.Pattern.e_src = u then (ucon, vcon) else (vcon, ucon) in
  let num =
    match e.Pattern.e_hops with
    | None ->
      let f = edge_freq t e ~src_con ~dst_con in
      let base = vcon_freq t ucon in
      if base <= 0.0 then 0.0 else f /. base
    | Some (lo, _) ->
      (* read the ratio from u towards v *)
      var_length_ratio t e ~from_con:ucon ~to_con:vcon ~forward:(e.Pattern.e_src = u) ~k:lo
  in
  if not closing then num
  else begin
    let vbase = vcon_freq t vcon in
    if vbase <= 0.0 then 0.0 else num /. vbase
  end

let strip p =
  Pattern.map_vertices (fun _ v -> { v with Pattern.v_pred = None; v_columns = None }) p
  |> Pattern.map_edges (fun _ e -> { e with Pattern.e_pred = None })

(* Predicate selectivity (paper Remark 7.1). When histogram statistics are
   available (the paper's future-work refinement, implemented in
   {!Histograms}) comparisons and IN-lists over properties are estimated
   from the data; otherwise the constant default applies, refined for the
   recognizable unique-key shapes that matter in the workloads — point
   lookups and IN-lists over an "id" property, whose selectivity is the
   lookup-set size over the element population. *)
let rec pred_selectivity t ~elem ~type_ids ~base pred =
  let open Gopt_pattern.Expr in
  let point = 1.0 /. Float.max 1.0 base in
  let from_hist prop shape =
    match t.hist with
    | None -> None
    | Some h -> Histograms.selectivity h ~elem ~type_ids ~prop shape
  in
  let range_of = function
    | Lt -> Some `Lt
    | Leq -> Some `Leq
    | Gt -> Some `Gt
    | Geq -> Some `Geq
    | _ -> None
  in
  let fallback = function
    | In_list (Prop (_, "id"), vs) -> Float.min 1.0 (float_of_int (List.length vs) *. point)
    | Binop (Eq, Prop (_, "id"), Const _) | Binop (Eq, Const _, Prop (_, "id")) -> point
    | _ -> t.sel
  in
  match pred with
  | Binop (And, a, b) ->
    pred_selectivity t ~elem ~type_ids ~base a *. pred_selectivity t ~elem ~type_ids ~base b
  | Binop (Or, a, b) ->
    Float.min 1.0
      (pred_selectivity t ~elem ~type_ids ~base a
      +. pred_selectivity t ~elem ~type_ids ~base b)
  | In_list (Prop (_, key), vs) as p -> begin
    match from_hist key (`In vs) with Some s -> s | None -> fallback p
  end
  | Binop (Eq, Prop (_, key), Const v) | Binop (Eq, Const v, Prop (_, key)) -> begin
    match from_hist key (`Eq v) with
    | Some s -> s
    | None -> fallback (Binop (Eq, Prop ("_", key), Const v))
  end
  | Binop (op, Prop (_, key), Const v) when range_of op <> None -> begin
    match from_hist key (`Range (Option.get (range_of op), v)) with
    | Some s -> s
    | None -> t.sel
  end
  | Binop (op, Const v, Prop (_, key)) when range_of op <> None -> begin
    (* const OP prop: mirror the operator *)
    let mirrored =
      match Option.get (range_of op) with
      | `Lt -> `Gt
      | `Leq -> `Geq
      | `Gt -> `Lt
      | `Geq -> `Leq
    in
    match from_hist key (`Range (mirrored, v)) with Some s -> s | None -> t.sel
  end
  | p -> fallback p

let selectivity_factor t p =
  let sch = schema t in
  let v_factor =
    Array.fold_left
      (fun acc (v : Pattern.vertex) ->
        match v.Pattern.v_pred with
        | None -> acc
        | Some pred ->
          let type_ids = Tc.to_list ~universe:(Schema.n_vtypes sch) v.Pattern.v_con in
          acc
          *. pred_selectivity t ~elem:Histograms.Vertex ~type_ids
               ~base:(vcon_freq t v.Pattern.v_con) pred)
      1.0 (Pattern.vertices p)
  in
  Array.fold_left
    (fun acc (e : Pattern.edge) ->
      match e.Pattern.e_pred with
      | None -> acc
      | Some pred ->
        let type_ids = Tc.to_list ~universe:(Schema.n_etypes sch) e.Pattern.e_con in
        let base = Float.max 1.0 (edge_freq t e ~src_con:Tc.All ~dst_con:Tc.All) in
        acc *. pred_selectivity t ~elem:Histograms.Edge ~type_ids ~base pred)
    v_factor (Pattern.edges p)

let components p =
  let n = Pattern.n_vertices p in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let rec dfs x =
        if comp.(x) < 0 then begin
          comp.(x) <- id;
          List.iter (fun (_, y) -> dfs y) (Pattern.neighbors p x)
        end
      in
      dfs v
    end
  done;
  (comp, !next)

let all_basic p =
  Array.for_all (fun v -> match v.Pattern.v_con with Tc.Basic _ -> true | _ -> false)
    (Pattern.vertices p)
  && Array.for_all
       (fun (e : Pattern.edge) ->
         match e.Pattern.e_con with Tc.Basic _ -> true | Tc.Union _ | Tc.All -> false)
       (Pattern.edges p)

(* Matches of union-typed patterns partition over the basic-type assignments
   of their elements, so a small pattern with UnionTypes is answered exactly
   by summing the motif frequencies of its expansions (how GLogueQuery keeps
   high-order precision for arbitrary type constraints). Bounded by the
   number of combinations; [None] hands over to the sigma-decomposition. *)
let max_union_combos = 2048

let rec freq0 t p =
  (* memoize on the cheap alias-keyed code: iso-canonicalization is factorial
     in pattern size and only needed for the (small) GLogue lookups *)
  let code = Canonical.keyed_code p in
  match Hashtbl.find_opt t.cache code with
  | Some f -> f
  | None ->
    let f = compute t p in
    Hashtbl.replace t.cache code f;
    f

and compute t p =
  let nv = Pattern.n_vertices p and ne = Pattern.n_edges p in
  if nv = 0 then 1.0
  else begin
    let comp, ncomp = components p in
    if ncomp > 1 then begin
      (* Eq. 1 with empty overlap: independent components multiply *)
      let total = ref 1.0 in
      for c = 0 to ncomp - 1 do
        let vs = List.filter (fun v -> comp.(v) = c) (List.init nv Fun.id) in
        let es =
          List.filter
            (fun ei -> comp.((Pattern.edge p ei).Pattern.e_src) = c)
            (List.init ne Fun.id)
        in
        let sub =
          if es = [] then Pattern.single_vertex p (List.hd vs)
          else fst (Pattern.sub_by_edges p es)
        in
        total := !total *. freq0 t sub
      done;
      !total
    end
    else if ne = 0 then vcon_freq t (Pattern.vertex p 0).Pattern.v_con
    else begin
      (* exact store lookup where permitted *)
      let lookup_limit = match t.mode with High_order -> Glogue.max_k t.glogue | Low_order -> 2 in
      let stored =
        if Pattern.has_var_length p || nv > lookup_limit then None
        else
          match if all_basic p then Glogue.find t.glogue p else None with
          | Some f -> Some f
          | None ->
            (* unions and undirected edges both partition the matches over
               expansions (type assignments / orientations) *)
            union_expansion t p
      in
      match stored with
      | Some f -> f
      | None ->
        if ne = 1 && not (Pattern.has_var_length p) then begin
          let e = Pattern.edge p 0 in
          let src_con = (Pattern.vertex p e.Pattern.e_src).Pattern.v_con in
          let dst_con = (Pattern.vertex p e.Pattern.e_dst).Pattern.v_con in
          edge_freq t e ~src_con ~dst_con
        end
        else if ne = 1 then begin
          (* a single variable-length edge: scan one side, expand k hops *)
          let e = Pattern.edge p 0 in
          let from_con = (Pattern.vertex p e.Pattern.e_src).Pattern.v_con in
          let to_con = (Pattern.vertex p e.Pattern.e_dst).Pattern.v_con in
          let k = match e.Pattern.e_hops with Some (lo, _) -> lo | None -> 1 in
          vcon_freq t from_con *. var_length_ratio t e ~from_con ~to_con ~forward:true ~k
        end
        else begin
          (* Eq. 2: peel a minimum-degree non-cut vertex *)
          let candidates =
            List.filter_map
              (fun v ->
                match Pattern.remove_vertex p v with
                | Some sub -> Some (v, sub)
                | None -> None)
              (List.init nv Fun.id)
          in
          match candidates with
          | [] ->
            (* should not happen for connected patterns; fall back to a crude
               product of edge ratios from a single vertex *)
            vcon_freq t (Pattern.vertex p 0).Pattern.v_con
          | _ ->
            let v, sub =
              List.fold_left
                (fun (bv, bs) (v, s) ->
                  if Pattern.degree p v < Pattern.degree p bv then (v, s) else (bv, bs))
                (List.hd candidates) (List.tl candidates)
            in
            let incident = Pattern.incident_edges p v in
            let base = freq0 t sub in
            let _, product =
              List.fold_left
                (fun (first, acc) ei ->
                  let s = sigma t p ~v ~ei ~closing:(not first) in
                  (false, acc *. s))
                (true, 1.0) incident
            in
            base *. product
        end
    end
  end

and union_expansion t p =
  let sch = schema t in
  let vuniv = Schema.n_vtypes sch and euniv = Schema.n_etypes sch in
  let v_lists =
    Array.map (fun (v : Pattern.vertex) -> Tc.to_list ~universe:vuniv v.Pattern.v_con)
      (Pattern.vertices p)
  in
  (* each edge expands over its admitted types and, when undirected, over its
     two orientations (`true` = keep stored direction, `false` = swapped) *)
  let e_lists =
    Array.map
      (fun (e : Pattern.edge) ->
        let types = Tc.to_list ~universe:euniv e.Pattern.e_con in
        let orientations = if e.Pattern.e_directed then [ true ] else [ true; false ] in
        List.concat_map (fun ty -> List.map (fun o -> (ty, o)) orientations) types)
      (Pattern.edges p)
  in
  let combos =
    Array.fold_left
      (fun acc l -> if acc > max_union_combos then acc else acc * List.length l)
      1 v_lists
    |> fun acc ->
    Array.fold_left
      (fun acc l -> if acc > max_union_combos then acc else acc * List.length l)
      acc e_lists
  in
  if combos <= 1 || combos > max_union_combos then None
  else begin
    let total = ref 0.0 in
    let rec over_vertices i v_assign =
      if i = Array.length v_lists then over_edges 0 (List.rev v_assign) []
      else List.iter (fun ty -> over_vertices (i + 1) (ty :: v_assign)) v_lists.(i)
    and over_edges j v_assign e_assign =
      if j = Array.length e_lists then begin
        let v_arr = Array.of_list v_assign and e_arr = Array.of_list (List.rev e_assign) in
        let combo =
          Pattern.map_vertices (fun i v -> { v with Pattern.v_con = Tc.Basic v_arr.(i) }) p
          |> Pattern.map_edges (fun i e ->
                 let ty, keep_dir = e_arr.(i) in
                 let e = { e with Pattern.e_con = Tc.Basic ty; e_directed = true } in
                 if keep_dir then e
                 else { e with Pattern.e_src = e.Pattern.e_dst; e_dst = e.Pattern.e_src })
        in
        total := !total +. freq0 t combo
      end
      else List.iter (fun choice -> over_edges (j + 1) v_assign (choice :: e_assign)) e_lists.(j)
    in
    over_vertices 0 [];
    Some !total
  end

let get_freq t p =
  let base = freq0 t (strip p) in
  base *. selectivity_factor t p
