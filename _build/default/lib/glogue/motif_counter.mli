(** Exact homomorphism counting of small patterns in a data graph.

    Used to (a) populate the GLogue statistics store with motif frequencies
    (paper §4, "Metadata Provider"), and (b) serve as a ground-truth oracle in
    tests for the cardinality estimator.

    Counts follow the paper's homomorphism semantics (Remark 3.1): mappings
    may repeat data vertices and edges. *)

val count_homomorphisms : Gopt_graph.Property_graph.t -> Gopt_pattern.Pattern.t -> float
(** Exact number of homomorphisms of the pattern in the graph, by
    backtracking search with adjacency-guided candidate generation.
    Supports Basic/Union/All constraints and undirected edges. Predicates are
    ignored (frequencies are statistics over types only); raises
    [Invalid_argument] on variable-length path edges. Exponential in pattern
    size — intended for motifs and test fixtures. *)

val wedge_counts :
  Gopt_graph.Property_graph.t ->
  ((int * [ `Out | `In ] * int * int) * (int * [ `Out | `In ] * int * int) -> float -> unit) ->
  unit
(** Closed-form counting of all 2-edge motifs in one pass. The callback
    receives, for every unordered pair of incident-edge classes
    [(center_vtype, dir, etype, far_vtype)] sharing a center vertex, the
    total homomorphism count [sum over centers of deg_a * deg_b]. Both
    entries share the same center vtype. *)

val triangle_count :
  Gopt_graph.Property_graph.t ->
  ab:int * bool ->
  bc:int * bool ->
  ac:int * bool ->
  ta:int -> tb:int -> tc:int ->
  float
(** Exact count of the typed triangle on vertices [a, b, c]: each edge is
    [(etype, forward)] where [forward] means the edge is directed with the
    lexicographically-first vertex as source (e.g. [ab = (et, false)] is
    b -> a). Counted by edge iteration plus sorted-neighbour intersection. *)
