lib/glogue/histograms.ml: Array Float Gopt_graph Hashtbl List Option
