lib/glogue/glogue_query.ml: Array Float Fun Glogue Gopt_graph Gopt_pattern Hashtbl Histograms List Option
