lib/glogue/histograms.mli: Gopt_graph
