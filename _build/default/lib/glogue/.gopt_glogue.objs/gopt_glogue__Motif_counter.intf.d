lib/glogue/motif_counter.mli: Gopt_graph Gopt_pattern
