lib/glogue/glogue.ml: Array Gopt_graph Gopt_pattern Gopt_util Hashtbl List Motif_counter Option
