lib/glogue/glogue_query.mli: Glogue Gopt_graph Gopt_pattern Histograms
