lib/glogue/motif_counter.ml: Array Gopt_graph Gopt_pattern Hashtbl List Option
