lib/glogue/glogue.mli: Gopt_graph Gopt_pattern
