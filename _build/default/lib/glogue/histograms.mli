(** Property-value statistics for selectivity estimation.

    The paper's Remark 7.1 uses a constant default selectivity (0.1) for
    predicates pushed into patterns and names histogram/sampling-based
    estimation as future work; this module implements it. For every
    (vertex-or-edge type, property) pair the build pass collects:

    - numeric properties: an equi-depth histogram (bucket boundaries over
      the sorted values), answering range and equality selectivities;
    - all properties: the distinct-value count and the total population,
      answering equality and IN-list selectivities under a uniform
      assumption over distinct values.

    {!Glogue_query} consults these when available, falling back to the
    constant default. *)

type t

val build : ?buckets:int -> Gopt_graph.Property_graph.t -> t
(** Scan the graph once per property column; [buckets] (default 32) bounds
    the equi-depth histogram resolution. *)

type elem = Vertex | Edge

val selectivity :
  t ->
  elem:elem ->
  type_ids:int list ->
  prop:string ->
  [ `Eq of Gopt_graph.Value.t
  | `Range of [ `Lt | `Leq | `Gt | `Geq ] * Gopt_graph.Value.t
  | `In of Gopt_graph.Value.t list ] ->
  float option
(** Estimated fraction of elements (of any of the given types) satisfying
    the comparison on [prop]; [None] when no statistics were collected for
    the column (e.g. an unknown property). Multiple types are combined by
    population-weighted averaging. *)

val n_columns : t -> int
(** Number of (type, property) columns with statistics. *)
