(** GLogue — the high-order statistics store (paper §4 and §6.3.1, following
    GLogS).

    GLogue precomputes the frequencies of small typed patterns ("motifs") in
    the data graph, up to [max_k] vertices, keyed by isomorphism code:

    - [max_k = 1]: vertex counts per type, edge counts per schema triple —
      the classical {e low-order} statistics;
    - [max_k = 3] (default): additionally all 2-edge motifs (wedges, paths,
      forks — counted in closed form from degree vectors) and all typed
      triangles (counted exactly by edge iteration + neighbour
      intersection) — the {e high-order} statistics that drive precise
      cardinality estimation.

    Only BasicType motifs are stored; UnionType/AllType estimation is the
    job of {!Glogue_query}, which decomposes over this store. *)

type t

val build : ?max_k:int -> ?sparsify:float -> ?seed:int -> Gopt_graph.Property_graph.t -> t
(** Count all schema-consistent motifs of up to [max_k] vertices. [max_k]
    must be 1, 2 or 3.

    [sparsify] enables the graph-sparsification technique of GLogS (cited in
    paper §6.3.1) for large graphs: motifs are counted on a random edge
    sample of rate [p] (each edge kept independently with probability [p])
    and the counts are scaled by [1/p^edges]. Vertex counts stay exact.
    Estimates are unbiased; variance shrinks as the true counts grow, which
    is exactly the regime where exact counting is expensive. [p] must be in
    (0, 1]; 1 (the default) means exact counting. *)

val graph : t -> Gopt_graph.Property_graph.t
(** The graph the statistics were computed over (also serves per-type vertex
    and edge counts). *)

val max_k : t -> int

val n_entries : t -> int
(** Number of stored motif frequencies. *)

val find : t -> Gopt_pattern.Pattern.t -> float option
(** Frequency of a stored motif, up to isomorphism; [None] when the pattern
    is not a stored motif (too large, or carries non-basic constraints that
    were never enumerated). *)

val find_code : t -> string -> float option
(** Lookup by precomputed {!Gopt_pattern.Canonical.iso_code}. *)

val vertex_freq : t -> int -> float
(** Frequency of a vertex type (count of vertices). *)

val triple_freq : t -> src:int -> etype:int -> dst:int -> float
(** Frequency of a schema triple (count of realizing edges). *)
