module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Canonical = Gopt_pattern.Canonical

type t = {
  store : (string, float) Hashtbl.t;
  graph : G.t;
  max_k : int;
}

let v ~alias t = Pattern.mk_vertex ~alias (Tc.Basic t)

let single_vertex_pattern t = Pattern.create [| v ~alias:"a" t |] [||]

let single_edge_pattern ~src ~etype ~dst =
  Pattern.create
    [| v ~alias:"a" src; v ~alias:"b" dst |]
    [| Pattern.mk_edge ~alias:"e" ~src:0 ~dst:1 (Tc.Basic etype) |]

(* 3-vertex pattern: center [bt] with two incident edges described by
   (dir, etype, far vtype) classes. *)
let wedge_pattern bt (d1, et1, ft1) (d2, et2, ft2) =
  let vs = [| v ~alias:"c" bt; v ~alias:"x" ft1; v ~alias:"y" ft2 |] in
  let mk alias far (d, et) =
    match d with
    | `Out -> Pattern.mk_edge ~alias ~src:0 ~dst:far (Tc.Basic et)
    | `In -> Pattern.mk_edge ~alias ~src:far ~dst:0 (Tc.Basic et)
  in
  Pattern.create vs [| mk "e1" 1 (d1, et1); mk "e2" 2 (d2, et2) |]

let triangle_pattern ~ta ~tb ~tc ~ab:(et_ab, fwd_ab) ~bc:(et_bc, fwd_bc) ~ac:(et_ac, fwd_ac) =
  let vs = [| v ~alias:"a" ta; v ~alias:"b" tb; v ~alias:"c" tc |] in
  let mk alias i j (et, fwd) =
    if fwd then Pattern.mk_edge ~alias ~src:i ~dst:j (Tc.Basic et)
    else Pattern.mk_edge ~alias ~src:j ~dst:i (Tc.Basic et)
  in
  Pattern.create vs [| mk "e1" 0 1 (et_ab, fwd_ab); mk "e2" 1 2 (et_bc, fwd_bc); mk "e3" 0 2 (et_ac, fwd_ac) |]

(* Keep each edge independently with probability [rate]: the sampled graph
   used for sparsified motif counting. *)
let sample_edges graph rate seed =
  let schema = G.schema graph in
  let rng = Gopt_util.Prng.create seed in
  let b = G.Builder.create schema in
  for v = 0 to G.n_vertices graph - 1 do
    ignore (G.Builder.add_vertex b ~vtype:(G.vtype graph v) [])
  done;
  for e = 0 to G.n_edges graph - 1 do
    if Gopt_util.Prng.float rng 1.0 < rate then
      ignore
        (G.Builder.add_edge b ~src:(G.esrc graph e) ~dst:(G.edst graph e)
           ~etype:(G.etype graph e) [])
  done;
  G.Builder.freeze b

let build ?(max_k = 3) ?(sparsify = 1.0) ?(seed = 97) graph =
  if max_k < 1 || max_k > 3 then invalid_arg "Glogue.build: max_k must be 1, 2 or 3";
  if sparsify <= 0.0 || sparsify > 1.0 then
    invalid_arg "Glogue.build: sparsify must be in (0, 1]";
  let original = graph in
  let graph = if sparsify < 1.0 then sample_edges graph sparsify seed else graph in
  (* each motif edge was kept with probability [sparsify]: scale by its
     inverse per edge to keep estimates unbiased *)
  let scale n_edges = (1.0 /. sparsify) ** float_of_int n_edges in
  let schema = G.schema graph in
  let store = Hashtbl.create 1024 in
  let put_scaled n_edges p f = Hashtbl.replace store (Canonical.iso_code p) (f *. scale n_edges) in
  (* k = 1: vertex types (exact, from the original graph) and single edges *)
  let put p f = Hashtbl.replace store (Canonical.iso_code p) f in
  List.iter
    (fun t -> put (single_vertex_pattern t) (float_of_int (G.count_vtype original t)))
    (Schema.all_vtypes schema);
  Array.iter
    (fun (s, e, d) ->
      (* single-edge counts are O(|E|) to obtain exactly; no need to sample *)
      put
        (single_edge_pattern ~src:s ~etype:e ~dst:d)
        (float_of_int (G.triple_count original ~src:s ~etype:e ~dst:d)))
    (Schema.triples schema);
  if max_k >= 3 then begin
    (* all schema-consistent 2-edge motifs default to zero, so that absent
       combinations are known-zero rather than unknown *)
    List.iter
      (fun bt ->
        let classes =
          List.map (fun (et, ft) -> (`Out, et, ft)) (Schema.out_schema schema bt)
          @ List.map (fun (et, ft) -> (`In, et, ft)) (Schema.in_schema schema bt)
        in
        List.iteri
          (fun i c1 ->
            List.iteri
              (fun j c2 ->
                if j >= i then begin
                  let p = wedge_pattern bt c1 c2 in
                  let code = Canonical.iso_code p in
                  if not (Hashtbl.mem store code) then Hashtbl.add store code 0.0
                end)
              classes)
          classes)
      (Schema.all_vtypes schema);
    (* observed 2-edge motif counts, in closed form *)
    Motif_counter.wedge_counts graph (fun ((bt, d1, et1, ft1), (_, d2, et2, ft2)) total ->
        put_scaled 2 (wedge_pattern bt (d1, et1, ft1) (d2, et2, ft2)) total);
    (* typed triangles *)
    let allowed = Hashtbl.create 64 in
    Array.iter
      (fun (s, e, d) ->
        let key = (s, d) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt allowed key) in
        Hashtbl.replace allowed key (e :: cur))
      (Schema.triples schema);
    let opts x y =
      List.map (fun e -> (e, true)) (Option.value ~default:[] (Hashtbl.find_opt allowed (x, y)))
      @ List.map (fun e -> (e, false)) (Option.value ~default:[] (Hashtbl.find_opt allowed (y, x)))
    in
    List.iter
      (fun ta ->
        List.iter
          (fun tb ->
            List.iter
              (fun tc ->
                let ab_opts = opts ta tb and bc_opts = opts tb tc and ac_opts = opts ta tc in
                if ab_opts <> [] && bc_opts <> [] && ac_opts <> [] then
                  List.iter
                    (fun ab ->
                      List.iter
                        (fun bc ->
                          List.iter
                            (fun ac ->
                              let p = triangle_pattern ~ta ~tb ~tc ~ab ~bc ~ac in
                              let code = Canonical.iso_code p in
                              if not (Hashtbl.mem store code) then begin
                                let f = Motif_counter.triangle_count graph ~ab ~bc ~ac ~ta ~tb ~tc in
                                Hashtbl.add store code (f *. scale 3)
                              end)
                            ac_opts)
                        bc_opts)
                    ab_opts)
              (Schema.all_vtypes schema))
          (Schema.all_vtypes schema))
      (Schema.all_vtypes schema)
  end;
  { store; graph = original; max_k }

let graph t = t.graph
let max_k t = t.max_k
let n_entries t = Hashtbl.length t.store
let find_code t code = Hashtbl.find_opt t.store code
let find t p = find_code t (Canonical.iso_code p)

let vertex_freq t vt = float_of_int (G.count_vtype t.graph vt)

let triple_freq t ~src ~etype ~dst =
  float_of_int (G.triple_count t.graph ~src ~etype ~dst)
