(** GLogueQuery — cardinality estimation for arbitrary patterns
    (paper §6.3.1).

    Provides the unified [get_freq] interface over a {!Glogue} store:

    - patterns whose motif (up to isomorphism, BasicTypes, within the
      store's [max_k]) is stored are answered exactly;
    - single-edge patterns with arbitrary (Union/All) constraints are
      answered by summing the compatible schema-triple frequencies — the
      UnionType summation of the paper's expand-ratio definition;
    - larger or union-typed patterns are estimated with Eq. 2: repeatedly
      peel a non-cut vertex [v] off the pattern, multiplying the frequency of
      the remainder by expand ratios [sigma] — the first incident edge
      introduces [v] (case 1), subsequent incident edges close cycles onto it
      (case 2);
    - disconnected patterns multiply their components' frequencies (the
      independence assumption of Eq. 1);
    - variable-length path edges contribute a product of per-hop ratios with
      unconstrained intermediate vertices;
    - predicates contribute a constant selectivity factor each
      (paper Remark 7.1; default 0.1).

    Estimates are memoized per isomorphism code. *)

type mode = High_order | Low_order

type t

val create :
  ?selectivity:float -> ?mode:mode -> ?histograms:Histograms.t -> Glogue.t -> t
(** [mode] defaults to [High_order]. [Low_order] restricts store lookups to
    single vertices and edges, estimating everything else — the baseline of
    the Fig. 8(d) experiment. When [histograms] are supplied, predicate
    selectivities come from them instead of the constant default. *)

val get_freq : t -> Gopt_pattern.Pattern.t -> float
(** Estimated (or exact, when stored) pattern frequency. *)

val glogue : t -> Glogue.t
val schema : t -> Gopt_graph.Schema.t
val mode : t -> mode
val selectivity : t -> float

val cache_size : t -> int
(** Number of memoized estimates (observability for benchmarks). *)
