module G = Gopt_graph.Property_graph
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value

type elem = Vertex | Edge

type column = {
  population : int;  (** elements of the type that carry the property *)
  distinct : int;
  boundaries : float array;
      (** equi-depth bucket boundaries (ascending) for numeric columns;
          empty for non-numeric columns *)
  lo : float;
  hi : float;
}

type t = {
  columns : (elem * int * string, column) Hashtbl.t;
  type_counts : (elem * int, int) Hashtbl.t;
}

let numeric v = Value.as_float v

let build_column ?(buckets = 32) values =
  let n = List.length values in
  let distinct =
    let tbl = Hashtbl.create (2 * n) in
    List.iter (fun v -> Hashtbl.replace tbl (Value.to_string v) ()) values;
    Hashtbl.length tbl
  in
  let numerics = List.filter_map numeric values in
  if numerics = [] then
    { population = n; distinct; boundaries = [||]; lo = nan; hi = nan }
  else begin
    let arr = Array.of_list numerics in
    Array.sort Float.compare arr;
    let m = Array.length arr in
    let k = min buckets m in
    let boundaries =
      Array.init (k + 1) (fun i ->
          if i = k then arr.(m - 1) else arr.(i * m / k))
    in
    { population = n; distinct; boundaries; lo = arr.(0); hi = arr.(m - 1) }
  end

let build ?(buckets = 32) g =
  let schema = G.schema g in
  let columns = Hashtbl.create 64 in
  let type_counts = Hashtbl.create 32 in
  (* vertices: group property values per (vtype, key) *)
  let vcells : (int * string, Value.t list ref) Hashtbl.t = Hashtbl.create 64 in
  for v = 0 to G.n_vertices g - 1 do
    let vt = G.vtype g v in
    List.iter
      (fun (key, _) ->
        let value = G.vprop g v key in
        if not (Value.is_null value) then begin
          let cell =
            match Hashtbl.find_opt vcells (vt, key) with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add vcells (vt, key) r;
              r
          in
          cell := value :: !cell
        end)
      (Schema.vprops schema vt)
  done;
  List.iter
    (fun vt -> Hashtbl.replace type_counts (Vertex, vt) (G.count_vtype g vt))
    (Schema.all_vtypes schema);
  Hashtbl.iter
    (fun (vt, key) cell ->
      Hashtbl.replace columns (Vertex, vt, key) (build_column ~buckets !cell))
    vcells;
  (* edges *)
  let ecells : (int * string, Value.t list ref) Hashtbl.t = Hashtbl.create 64 in
  for e = 0 to G.n_edges g - 1 do
    let et = G.etype g e in
    List.iter
      (fun (key, _) ->
        let value = G.eprop g e key in
        if not (Value.is_null value) then begin
          let cell =
            match Hashtbl.find_opt ecells (et, key) with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add ecells (et, key) r;
              r
          in
          cell := value :: !cell
        end)
      (Schema.eprops schema et)
  done;
  List.iter
    (fun et -> Hashtbl.replace type_counts (Edge, et) (G.count_etype g et))
    (Schema.all_etypes schema);
  Hashtbl.iter
    (fun (et, key) cell ->
      Hashtbl.replace columns (Edge, et, key) (build_column ~buckets !cell))
    ecells;
  { columns; type_counts }

(* Fraction of a numeric column strictly below x, from the equi-depth
   boundaries: each bucket holds 1/k of the population. *)
let fraction_below col x =
  let b = col.boundaries in
  let k = Array.length b - 1 in
  if k <= 0 then 0.5
  else if x <= b.(0) then 0.0
  else if x >= b.(k) then 1.0
  else begin
    (* find the bucket containing x *)
    let i = ref 0 in
    while !i < k && b.(!i + 1) < x do
      incr i
    done;
    let blo = b.(!i) and bhi = b.(!i + 1) in
    let within = if bhi > blo then (x -. blo) /. (bhi -. blo) else 0.5 in
    (float_of_int !i +. within) /. float_of_int k
  end

let column_selectivity col pred =
  match pred with
  | `Eq _ -> Some (1.0 /. float_of_int (max 1 col.distinct))
  | `In vs ->
    Some (Float.min 1.0 (float_of_int (List.length vs) /. float_of_int (max 1 col.distinct)))
  | `Range (op, v) -> begin
    match numeric v, col.boundaries with
    | Some x, b when Array.length b >= 2 ->
      let below = fraction_below col x in
      let point = 1.0 /. float_of_int (max 1 col.distinct) in
      Some
        (match op with
        | `Lt -> below
        | `Leq -> Float.min 1.0 (below +. point)
        | `Gt -> Float.max 0.0 (1.0 -. below -. point)
        | `Geq -> 1.0 -. below)
    | _ -> None
  end

let selectivity t ~elem ~type_ids ~prop pred =
  let weighted =
    List.filter_map
      (fun ty ->
        match Hashtbl.find_opt t.columns (elem, ty, prop) with
        | Some col -> begin
          match column_selectivity col pred with
          | Some s ->
            let pop = Option.value ~default:col.population (Hashtbl.find_opt t.type_counts (elem, ty)) in
            (* elements without the property cannot satisfy the predicate *)
            let coverage =
              if pop > 0 then float_of_int col.population /. float_of_int pop else 1.0
            in
            Some (float_of_int pop, s *. coverage)
          | None -> None
        end
        | None ->
          (* the type exists but never carries the property: selectivity 0
             for its population *)
          Option.map
            (fun pop -> (float_of_int pop, 0.0))
            (Hashtbl.find_opt t.type_counts (elem, ty)))
      type_ids
  in
  (* require statistics for at least one listed type *)
  let known =
    List.exists (fun ty -> Hashtbl.mem t.columns (elem, ty, prop)) type_ids
  in
  if (not known) || weighted = [] then None
  else begin
    let total_pop = List.fold_left (fun acc (p, _) -> acc +. p) 0.0 weighted in
    if total_pop <= 0.0 then None
    else
      Some (List.fold_left (fun acc (p, s) -> acc +. (p *. s)) 0.0 weighted /. total_pop)
  end

let n_columns t = Hashtbl.length t.columns
