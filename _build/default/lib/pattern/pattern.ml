type path_sem = Arbitrary | Simple | Trail

type vertex = {
  v_con : Type_constraint.t;
  v_pred : Expr.t option;
  v_alias : string;
  v_columns : string list option;
}

type edge = {
  e_src : int;
  e_dst : int;
  e_con : Type_constraint.t;
  e_pred : Expr.t option;
  e_alias : string;
  e_directed : bool;
  e_hops : (int * int) option;
  e_path : path_sem;
}

type t = {
  vs : vertex array;
  es : edge array;
  valias : (string, int) Hashtbl.t;
  ealias : (string, int) Hashtbl.t;
  incid : int list array; (* vertex -> incident edge ids, ascending *)
}

let mk_vertex ?pred ?columns ~alias con =
  { v_con = con; v_pred = pred; v_alias = alias; v_columns = columns }

let mk_edge ?pred ?(directed = true) ?hops ?(path = Arbitrary) ~alias ~src ~dst con =
  {
    e_src = src;
    e_dst = dst;
    e_con = con;
    e_pred = pred;
    e_alias = alias;
    e_directed = directed;
    e_hops = hops;
    e_path = path;
  }

let create vs es =
  let n = Array.length vs in
  let valias = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem valias v.v_alias then
        invalid_arg (Printf.sprintf "Pattern.create: duplicate vertex alias %S" v.v_alias);
      Hashtbl.add valias v.v_alias i)
    vs;
  let ealias = Hashtbl.create (2 * Array.length es) in
  let incid = Array.make n [] in
  Array.iteri
    (fun i e ->
      if e.e_src < 0 || e.e_src >= n || e.e_dst < 0 || e.e_dst >= n then
        invalid_arg "Pattern.create: edge endpoint out of range";
      if e.e_src = e.e_dst then invalid_arg "Pattern.create: self-loop";
      (match e.e_hops with
      | Some (lo, hi) when lo < 1 || hi < lo -> invalid_arg "Pattern.create: bad hop range"
      | _ -> ());
      if Hashtbl.mem ealias e.e_alias then
        invalid_arg (Printf.sprintf "Pattern.create: duplicate edge alias %S" e.e_alias);
      Hashtbl.add ealias e.e_alias i;
      incid.(e.e_src) <- i :: incid.(e.e_src);
      incid.(e.e_dst) <- i :: incid.(e.e_dst))
    es;
  Array.iteri (fun v l -> incid.(v) <- List.sort Int.compare l) incid;
  { vs; es; valias; ealias; incid }

let n_vertices t = Array.length t.vs
let n_edges t = Array.length t.es
let vertex t i = t.vs.(i)
let edge t i = t.es.(i)
let vertices t = t.vs
let edges t = t.es
let vertex_of_alias t a = Hashtbl.find_opt t.valias a
let edge_of_alias t a = Hashtbl.find_opt t.ealias a
let incident_edges t v = t.incid.(v)

let neighbors t v =
  List.map
    (fun ei ->
      let e = t.es.(ei) in
      (ei, if e.e_src = v then e.e_dst else e.e_src))
    t.incid.(v)

let degree t v = List.length t.incid.(v)

let is_connected t =
  let n = n_vertices t in
  if n = 0 then false
  else begin
    let seen = Array.make n false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter (fun (_, u) -> dfs u) (neighbors t v)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let has_var_length t = Array.exists (fun e -> e.e_hops <> None) t.es

let set_vertex t i v =
  let vs = Array.copy t.vs in
  vs.(i) <- v;
  create vs t.es

let set_edge t i e =
  let es = Array.copy t.es in
  es.(i) <- e;
  create t.vs es

let map_vertices f t = create (Array.mapi f t.vs) t.es
let map_edges f t = create t.vs (Array.mapi f t.es)

let conj_opt old_pred p =
  match old_pred with
  | None -> Some p
  | Some q -> Some (Expr.Binop (Expr.And, q, p))

let add_vertex_pred t i p =
  let v = t.vs.(i) in
  set_vertex t i { v with v_pred = conj_opt v.v_pred p }

let add_edge_pred t i p =
  let e = t.es.(i) in
  set_edge t i { e with e_pred = conj_opt e.e_pred p }

let sub_by_edges t eids =
  let eids = List.sort_uniq Int.compare eids in
  let old_of_new = Gopt_util.Vec.create () in
  let new_of_old = Array.make (n_vertices t) (-1) in
  let touch v =
    if new_of_old.(v) < 0 then begin
      new_of_old.(v) <- Gopt_util.Vec.length old_of_new;
      Gopt_util.Vec.push old_of_new v
    end
  in
  List.iter
    (fun ei ->
      let e = t.es.(ei) in
      touch e.e_src;
      touch e.e_dst)
    eids;
  let vmap = Gopt_util.Vec.to_array old_of_new in
  let vs = Array.map (fun old -> t.vs.(old)) vmap in
  let es =
    Array.of_list
      (List.map
         (fun ei ->
           let e = t.es.(ei) in
           { e with e_src = new_of_old.(e.e_src); e_dst = new_of_old.(e.e_dst) })
         eids)
  in
  (create vs es, vmap)

let single_vertex t i = create [| t.vs.(i) |] [||]

let remove_vertex t v =
  if n_vertices t <= 1 then None
  else begin
    let kept = List.filter (fun ei -> not (List.mem ei t.incid.(v))) (List.init (n_edges t) Fun.id) in
    if kept = [] then
      if n_vertices t = 2 && n_edges t >= 1 then
        (* removing one endpoint of a single-edge pattern leaves one vertex *)
        let other = if v = 0 then 1 else 0 in
        Some (single_vertex t other)
      else None
    else begin
      let sub, _ = sub_by_edges t kept in
      (* valid only if exactly the removed vertex disappeared and the rest is
         connected *)
      if n_vertices sub = n_vertices t - 1 && is_connected sub then Some sub else None
    end
  end

let shared_aliases a b =
  Array.to_list a.vs
  |> List.filter_map (fun v ->
         if Hashtbl.mem b.valias v.v_alias then Some v.v_alias else None)

let merge a b =
  let vs = Gopt_util.Vec.create () in
  Array.iter (fun v -> Gopt_util.Vec.push vs v) a.vs;
  let index_of_alias = Hashtbl.copy a.valias in
  Array.iter
    (fun v ->
      match Hashtbl.find_opt index_of_alias v.v_alias with
      | Some i ->
        (* shared vertex: intersect constraints, conjoin predicates *)
        let existing = Gopt_util.Vec.get vs i in
        let con =
          (* intersection over a nominal universe: use max type id + 1 *)
          let universe = 1024 in
          match Type_constraint.inter ~universe existing.v_con v.v_con with
          | Some c -> c
          | None ->
            invalid_arg
              (Printf.sprintf "Pattern.merge: incompatible constraints on %S" v.v_alias)
        in
        let pred =
          match existing.v_pred, v.v_pred with
          | None, p | p, None -> p
          | Some p, Some q when Expr.equal p q -> Some p
          | Some p, Some q -> Some (Expr.Binop (Expr.And, p, q))
        in
        Gopt_util.Vec.set vs i { existing with v_con = con; v_pred = pred }
      | None ->
        Hashtbl.add index_of_alias v.v_alias (Gopt_util.Vec.length vs);
        Gopt_util.Vec.push vs v)
    b.vs;
  let es = Gopt_util.Vec.create () in
  Array.iter (fun e -> Gopt_util.Vec.push es e) a.es;
  Array.iter
    (fun e ->
      if not (Hashtbl.mem a.ealias e.e_alias) then begin
        let resolve old = Hashtbl.find index_of_alias b.vs.(old).v_alias in
        Gopt_util.Vec.push es { e with e_src = resolve e.e_src; e_dst = resolve e.e_dst }
      end)
    b.es;
  create (Gopt_util.Vec.to_array vs) (Gopt_util.Vec.to_array es)

let split_path_edge t ~eid ~at ~mid_alias =
  let e = t.es.(eid) in
  let k =
    match e.e_hops with
    | Some (lo, hi) when lo = hi -> lo
    | _ -> invalid_arg "Pattern.split_path_edge: not an exact-length path edge"
  in
  if at < 1 || at >= k then invalid_arg "Pattern.split_path_edge: split position out of range";
  let mid = n_vertices t in
  let vs =
    Array.append t.vs
      [| mk_vertex ~alias:mid_alias Type_constraint.All |]
  in
  let hops n = if n = 1 then None else Some (n, n) in
  let e1 =
    { e with e_dst = mid; e_alias = e.e_alias ^ "#1"; e_hops = hops at }
  in
  let e2 =
    { e with e_src = mid; e_alias = e.e_alias ^ "#2"; e_hops = hops (k - at) }
  in
  let es =
    Array.concat
      [ Array.sub t.es 0 eid; [| e1; e2 |]; Array.sub t.es (eid + 1) (n_edges t - eid - 1) ]
  in
  create vs es

let pp ?schema ppf t =
  let vname =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.vtype_name s i
    | None -> string_of_int
  in
  let ename =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.etype_name s i
    | None -> string_of_int
  in
  let pp_v ppf i =
    let v = t.vs.(i) in
    Format.fprintf ppf "(%s:%a%s)" v.v_alias
      (Type_constraint.pp ~names:vname)
      v.v_con
      (match v.v_pred with None -> "" | Some p -> " WHERE " ^ Expr.to_string p)
  in
  Format.fprintf ppf "@[<v>";
  if n_edges t = 0 then
    Array.iteri (fun i _ -> Format.fprintf ppf "%a@," pp_v i) t.vs
  else
    Array.iter
      (fun e ->
        let hops =
          match e.e_hops with
          | None -> ""
          | Some (lo, hi) when lo = hi -> Printf.sprintf "*%d" lo
          | Some (lo, hi) -> Printf.sprintf "*%d..%d" lo hi
        in
        let arrow = if e.e_directed then "->" else "-" in
        Format.fprintf ppf "%a-[%s:%a%s]%s%a@," pp_v e.e_src e.e_alias
          (Type_constraint.pp ~names:ename)
          e.e_con hops arrow pp_v e.e_dst)
      t.es;
  Format.fprintf ppf "@]"

let to_string ?schema t = Format.asprintf "%a" (pp ?schema) t
