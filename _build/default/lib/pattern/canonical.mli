(** Canonical codes for patterns.

    Two codes serve two different lookups in the optimizer:

    - {!keyed_code} identifies a subpattern {e within one planning run}: it
      keeps aliases (which are unique and stable across decompositions of the
      same query pattern), so it is a cheap deterministic serialization. It is
      the key of Algorithm 2's memo table [M].

    - {!iso_code} identifies a pattern {e up to isomorphism}, ignoring
      aliases and predicates: structurally identical patterns with identical
      type constraints get identical codes. It is the key of the GLogue
      statistics store, where motif frequencies must be shared across all
      isomorphic query subpatterns. Computed by minimizing the serialization
      over all vertex permutations; intended for the small (<= 4-vertex)
      patterns GLogue stores, though correct for any size. *)

val keyed_code : Pattern.t -> string

val iso_code : Pattern.t -> string

val iso_equal : Pattern.t -> Pattern.t -> bool
(** [iso_equal a b] — same {!iso_code}. *)
