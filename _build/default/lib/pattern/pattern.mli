(** Pattern graphs (paper §3).

    A pattern is a small connected graph whose vertices and edges carry type
    constraints ({!Type_constraint.t}), optional predicates pushed in by the
    FilterIntoPattern rule, and aliases connecting pattern elements to the
    relational part of the CGP. Pattern edges may be variable-length paths
    (the EXPAND_PATH operator of the GIR) with Arbitrary / Simple / Trail
    semantics.

    Vertices and edges are indexed [0 .. n-1]. Every element has an alias,
    unique within its namespace (the GraphIrBuilder invents ["@v0"]-style
    aliases for anonymous elements). *)

type path_sem = Arbitrary | Simple | Trail

type vertex = {
  v_con : Type_constraint.t;
  v_pred : Expr.t option;
  v_alias : string;
  v_columns : string list option;
      (** FieldTrim annotation: property columns to materialize during
          matching; [None] keeps the full element. *)
}

type edge = {
  e_src : int;
  e_dst : int;
  e_con : Type_constraint.t;
  e_pred : Expr.t option;
  e_alias : string;
  e_directed : bool;  (** [false] matches either orientation. *)
  e_hops : (int * int) option;
      (** [Some (lo, hi)]: a path of [lo..hi] consecutive edges. *)
  e_path : path_sem;
}

type t

val mk_vertex :
  ?pred:Expr.t -> ?columns:string list -> alias:string -> Type_constraint.t -> vertex

val mk_edge :
  ?pred:Expr.t ->
  ?directed:bool ->
  ?hops:int * int ->
  ?path:path_sem ->
  alias:string ->
  src:int ->
  dst:int ->
  Type_constraint.t ->
  edge

val create : vertex array -> edge array -> t
(** Raises [Invalid_argument] on out-of-range endpoints, duplicate aliases,
    self-loops, or invalid hop ranges. Disconnected patterns are allowed at
    construction ({!is_connected} reports); the optimizer requires
    connectivity where the paper does. *)

val n_vertices : t -> int
val n_edges : t -> int
val vertex : t -> int -> vertex
val edge : t -> int -> edge
val vertices : t -> vertex array
(** The internal array — treat as read-only. *)

val edges : t -> edge array

val vertex_of_alias : t -> string -> int option
val edge_of_alias : t -> string -> int option

val incident_edges : t -> int -> int list
(** Edge ids touching a vertex, ascending. *)

val neighbors : t -> int -> (int * int) list
(** [(edge id, other endpoint)] pairs for a vertex. *)

val degree : t -> int -> int

val is_connected : t -> bool

val has_var_length : t -> bool
(** True if any edge is a variable-length path. *)

(** {1 Functional updates} *)

val set_vertex : t -> int -> vertex -> t
val set_edge : t -> int -> edge -> t

val map_vertices : (int -> vertex -> vertex) -> t -> t
val map_edges : (int -> edge -> edge) -> t -> t

val add_vertex_pred : t -> int -> Expr.t -> t
(** Conjoin a predicate onto a vertex (FilterIntoPattern action). *)

val add_edge_pred : t -> int -> Expr.t -> t

(** {1 Decomposition (CBO support)} *)

val sub_by_edges : t -> int list -> t * int array
(** [sub_by_edges p eids] is the subpattern induced by the given edges: its
    vertices are exactly their endpoints. Returns the subpattern and
    [vmap] with [vmap.(new_vertex) = old_vertex]. Aliases are preserved. *)

val single_vertex : t -> int -> t
(** The one-vertex pattern for vertex [i] of [p] (constraint, predicate and
    alias preserved). *)

val remove_vertex : t -> int -> t option
(** [remove_vertex p v] drops [v] and its incident edges. [None] if the rest
    is empty, lost a vertex entirely, or is disconnected — i.e. when
    Expand(Ps -> P) is not a valid transformation. *)

val shared_aliases : t -> t -> string list
(** Vertex aliases present in both patterns — the join key of PatternJoin. *)

val merge : t -> t -> t
(** [merge p1 p2] unions two patterns, identifying vertices by alias
    (JoinToPattern action). Edges of [p2] whose alias already exists in [p1]
    are assumed identical and dropped. Raises [Invalid_argument] if a shared
    vertex alias carries incompatible (disjoint) type constraints. *)

val split_path_edge : t -> eid:int -> at:int -> mid_alias:string -> t
(** [split_path_edge p ~eid ~at ~mid_alias] replaces variable-length edge
    [eid] of exact length [k] with two consecutive path edges of lengths
    [at] and [k - at], joined by a fresh unconstrained vertex. Used by the
    S-T path planner (paper §8.5). Raises [Invalid_argument] if [eid] is not
    an exact-length path edge or [at] is out of range. *)

val pp : ?schema:Gopt_graph.Schema.t -> Format.formatter -> t -> unit
(** Render as ASCII-art, e.g. ["(a:Person)-[e1:KNOWS]->(b:*)"]. *)

val to_string : ?schema:Gopt_graph.Schema.t -> t -> string
