(** Type constraints on pattern vertices and edges (paper §3).

    A constraint is one of:
    - [Basic t] — matches exactly the data type [t];
    - [Union ts] — matches any type in the (non-trivial) set [ts];
    - [All] — matches every type in the data graph.

    Types are integer ids into a {!Gopt_graph.Schema.t}'s vertex-type or
    edge-type universe; the same representation serves both. *)

type t =
  | Basic of int
  | Union of int list  (** sorted, duplicate-free, length >= 2 *)
  | All

val of_list : universe:int -> int list -> t option
(** [of_list ~universe ts] normalizes a list of type ids into a constraint:
    [None] for the empty list (unsatisfiable), [Basic] for singletons,
    [All] if the set covers the whole universe [0..universe-1], [Union]
    otherwise. *)

val to_list : universe:int -> t -> int list
(** Concrete types admitted by the constraint, ascending. *)

val mem : universe:int -> t -> int -> bool

val inter : universe:int -> t -> t -> t option
(** Set intersection; [None] when empty (the INVALID case of Algorithm 1). *)

val subset : universe:int -> t -> t -> bool
(** [subset ~universe a b] — every type admitted by [a] is admitted by [b]. *)

val cardinality : universe:int -> t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val is_all : t -> bool

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-print with type names resolved via [names], e.g.
    [Person], [Post|Comment], [*]. *)

val fingerprint : t -> string
(** Stable string form used in canonical pattern codes. *)
