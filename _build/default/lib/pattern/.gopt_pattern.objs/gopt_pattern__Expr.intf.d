lib/pattern/expr.mli: Format Gopt_graph
