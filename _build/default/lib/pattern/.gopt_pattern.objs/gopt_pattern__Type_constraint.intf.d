lib/pattern/type_constraint.mli: Format
