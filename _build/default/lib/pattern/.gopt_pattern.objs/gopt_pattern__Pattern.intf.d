lib/pattern/pattern.mli: Expr Format Gopt_graph Type_constraint
