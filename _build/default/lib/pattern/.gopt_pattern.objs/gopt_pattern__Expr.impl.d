lib/pattern/expr.ml: Format Gopt_graph Hashtbl List Stdlib String
