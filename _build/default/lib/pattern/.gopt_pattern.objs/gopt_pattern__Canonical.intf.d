lib/pattern/canonical.mli: Pattern
