lib/pattern/type_constraint.ml: Format Fun Int List String
