lib/pattern/pattern.ml: Array Expr Format Fun Gopt_graph Gopt_util Hashtbl Int List Printf Type_constraint
