lib/pattern/canonical.ml: Array Buffer Expr Fun List Pattern Printf String Type_constraint
