let hops_str = function
  | None -> ""
  | Some (lo, hi) -> Printf.sprintf "*%d-%d" lo hi

let path_str = function
  | Pattern.Arbitrary -> ""
  | Pattern.Simple -> "!s"
  | Pattern.Trail -> "!t"

let pred_str = function None -> "" | Some p -> "?" ^ Expr.to_string p

let keyed_code p =
  let buf = Buffer.create 128 in
  let vs =
    Array.to_list (Pattern.vertices p)
    |> List.sort (fun a b -> String.compare a.Pattern.v_alias b.Pattern.v_alias)
  in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "V<%s:%s%s>" v.Pattern.v_alias
           (Type_constraint.fingerprint v.Pattern.v_con)
           (pred_str v.Pattern.v_pred)))
    vs;
  let es =
    Array.to_list (Pattern.edges p)
    |> List.map (fun e ->
           let sa = (Pattern.vertex p e.Pattern.e_src).Pattern.v_alias in
           let da = (Pattern.vertex p e.Pattern.e_dst).Pattern.v_alias in
           Printf.sprintf "E<%s>%s>%s:%s%s%s%s%s" sa da e.Pattern.e_alias
             (Type_constraint.fingerprint e.Pattern.e_con)
             (if e.Pattern.e_directed then "" else "~")
             (hops_str e.Pattern.e_hops) (path_str e.Pattern.e_path)
             (pred_str e.Pattern.e_pred))
    |> List.sort String.compare
  in
  List.iter (Buffer.add_string buf) es;
  Buffer.contents buf

(* Serialize under a given vertex relabeling. *)
let code_under p perm =
  let buf = Buffer.create 64 in
  let vs = Pattern.vertices p in
  let order = Array.make (Array.length perm) 0 in
  Array.iteri (fun old_idx new_idx -> order.(new_idx) <- old_idx) perm;
  Array.iter
    (fun old_idx ->
      Buffer.add_string buf
        (Printf.sprintf "v%s;" (Type_constraint.fingerprint vs.(old_idx).Pattern.v_con)))
    order;
  let es =
    Array.to_list (Pattern.edges p)
    |> List.map (fun e ->
           let s = perm.(e.Pattern.e_src) and d = perm.(e.Pattern.e_dst) in
           let s, d, dirflag =
             if e.Pattern.e_directed then (s, d, ">")
             else if s <= d then (s, d, "~")
             else (d, s, "~")
           in
           Printf.sprintf "e%d,%d%s%s%s%s;" s d dirflag
             (Type_constraint.fingerprint e.Pattern.e_con)
             (hops_str e.Pattern.e_hops) (path_str e.Pattern.e_path))
    |> List.sort String.compare
  in
  List.iter (Buffer.add_string buf) es;
  Buffer.contents buf

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let iso_code p =
  let n = Pattern.n_vertices p in
  let perms = permutations (List.init n Fun.id) in
  let best = ref None in
  List.iter
    (fun perm_list ->
      let perm = Array.of_list perm_list in
      let code = code_under p perm in
      match !best with
      | Some b when String.compare b code <= 0 -> ()
      | _ -> best := Some code)
    perms;
  match !best with Some c -> c | None -> "empty"

let iso_equal a b = String.equal (iso_code a) (iso_code b)
