type t =
  | Basic of int
  | Union of int list
  | All

let of_list ~universe ts =
  let ts = List.sort_uniq Int.compare ts in
  match ts with
  | [] -> None
  | [ t ] -> Some (Basic t)
  | _ when List.length ts >= universe -> Some All
  | _ -> Some (Union ts)

let to_list ~universe = function
  | Basic t -> [ t ]
  | Union ts -> ts
  | All -> List.init universe Fun.id

let mem ~universe c x =
  match c with
  | Basic t -> t = x
  | Union ts -> List.mem x ts
  | All -> x >= 0 && x < universe

let inter ~universe a b =
  match a, b with
  | All, c | c, All -> Some c
  | _ ->
    let la = to_list ~universe a and lb = to_list ~universe b in
    of_list ~universe (List.filter (fun x -> List.mem x lb) la)

let subset ~universe a b =
  List.for_all (fun x -> mem ~universe b x) (to_list ~universe a)

let cardinality ~universe = function
  | Basic _ -> 1
  | Union ts -> List.length ts
  | All -> universe

let equal a b =
  match a, b with
  | Basic x, Basic y -> x = y
  | Union x, Union y -> x = y
  | All, All -> true
  | (Basic _ | Union _ | All), _ -> false

let compare a b =
  let tag = function Basic _ -> 0 | Union _ -> 1 | All -> 2 in
  match a, b with
  | Basic x, Basic y -> Int.compare x y
  | Union x, Union y -> List.compare Int.compare x y
  | All, All -> 0
  | _ -> Int.compare (tag a) (tag b)

let is_all = function All -> true | Basic _ | Union _ -> false

let pp ~names ppf = function
  | Basic t -> Format.pp_print_string ppf (names t)
  | Union ts ->
    Format.pp_print_string ppf (String.concat "|" (List.map names ts))
  | All -> Format.pp_print_char ppf '*'

let fingerprint = function
  | Basic t -> "b" ^ string_of_int t
  | Union ts -> "u" ^ String.concat "," (List.map string_of_int ts)
  | All -> "a"
