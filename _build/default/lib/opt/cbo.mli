(** Cost-based optimization of patterns — the top-down search framework with
    branch-and-bound (paper §6.3.3, Algorithm 2).

    The search space is the set of PatternJoin decompositions of the query
    pattern (paper Eq. 3): a pattern is produced either by {e expanding} a
    new vertex onto a subpattern (one or more edges, compiled to
    ExpandAll/ExpandInto or ExpandIntersect depending on the
    {!Physical_spec.t}) or by {e hash-joining} two edge-disjoint connected
    subpatterns on their shared vertices. Costs combine the
    backend-registered operator costs with GLogueQuery cardinalities,
    accumulating intermediate-result sizes per Algorithm 2 line 11/15.

    A greedy descent provides the initial upper bound (GreedyInitial); the
    exhaustive recursion memoizes optimal subplans per canonical subpattern
    code and prunes candidates whose lower bound exceeds the best known cost.
    Both the greedy initialization and the pruning can be disabled for the
    ablation experiments. *)

type op =
  | Scan  (** The plan's pattern is a single vertex: scan it. *)
  | Expand of {
      sub : plan;
      new_vertex_alias : string;
      edges : Gopt_pattern.Pattern.edge list;
          (** Edges binding the new vertex, endpoints indexed in the plan's
              own pattern, ordered cheapest-first. *)
    }
  | Join of { left : plan; right : plan; keys : string list }

and plan = {
  pattern : Gopt_pattern.Pattern.t;
  op : op;
  cost : float;  (** Accumulated estimated cost (Algorithm 2). *)
  freq : float;  (** Estimated cardinality of the pattern. *)
}

type options = {
  use_greedy_init : bool;  (** Default [true]; [false] for ablation A2. *)
  use_pruning : bool;  (** Default [true]; [false] for ablation A1. *)
  max_join_edges : int;
      (** Join candidates are enumerated only for patterns with at most this
          many edges (the enumeration is exponential); default 10. *)
  greedy_only : bool;
      (** Skip the exhaustive search and return the greedy descent — models
          planners with a bounded search budget (Neo4j's IDP-style
          CypherPlanner baseline). Default [false]. *)
}

val default_options : options

type search_stats = {
  mutable nodes_searched : int;  (** RecursiveSearch invocations that ran. *)
  mutable candidates_considered : int;
  mutable candidates_pruned : int;
  mutable memo_hits : int;
}

val optimize :
  ?options:options ->
  Gopt_glogue.Glogue_query.t ->
  Physical_spec.t ->
  Gopt_pattern.Pattern.t ->
  plan * search_stats
(** Optimal plan for a connected pattern. Raises [Invalid_argument] on an
    empty or disconnected pattern. *)

val greedy : Gopt_glogue.Glogue_query.t -> Physical_spec.t -> Gopt_pattern.Pattern.t -> plan
(** The GreedyInitial descent alone (also used as a standalone baseline
    planner). *)

val to_physical : Physical_spec.t -> plan -> Physical.t
(** Compile the decomposition to backend physical operators: single-edge
    expansions become ExpandAll (or PathExpand), multi-edge expansions become
    ExpandIntersect when the spec supports it and ExpandAll+ExpandInto
    otherwise, joins become HashJoin. *)

val compile_expansion :
  Physical_spec.t ->
  Physical.t ->
  Gopt_pattern.Pattern.t ->
  new_vertex_alias:string ->
  Gopt_pattern.Pattern.edge list ->
  Physical.t
(** Compile one vertex-binding step onto an existing physical input — shared
    with the user-order and continuation planners in {!Planner}. *)

val plan_order : plan -> string list
(** The vertex aliases in binding order (observability: experiments report
    e.g. the S-T join split positions). *)
