lib/opt/rules_relational.ml: Gopt_gir Gopt_graph Gopt_pattern List Option Printf Rule Set String
