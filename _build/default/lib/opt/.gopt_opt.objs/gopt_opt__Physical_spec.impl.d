lib/opt/physical_spec.ml: Array Float Gopt_glogue Gopt_pattern List
