lib/opt/rules_relational.mli: Rule
