lib/opt/path_planner.ml: Array Cbo Gopt_pattern List Physical Printf
