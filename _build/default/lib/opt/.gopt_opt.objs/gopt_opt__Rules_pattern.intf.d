lib/opt/rules_pattern.mli: Gopt_gir Rule
