lib/opt/planner.ml: Array Cbo Float Fun Gopt_gir Gopt_glogue Gopt_graph Gopt_pattern Gopt_typeinf List Physical Physical_spec Rule Rules_pattern Rules_relational Set String
