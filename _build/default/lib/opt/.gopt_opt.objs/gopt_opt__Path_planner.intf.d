lib/opt/path_planner.mli: Cbo Gopt_glogue Gopt_pattern Physical Physical_spec
