lib/opt/rule.mli: Gopt_gir
