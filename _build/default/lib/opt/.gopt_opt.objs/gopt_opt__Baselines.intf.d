lib/opt/baselines.mli: Gopt_pattern Gopt_util Physical Physical_spec Planner
