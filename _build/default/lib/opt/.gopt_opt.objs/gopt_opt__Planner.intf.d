lib/opt/planner.mli: Cbo Gopt_gir Gopt_glogue Gopt_graph Gopt_pattern Physical Physical_spec Rule
