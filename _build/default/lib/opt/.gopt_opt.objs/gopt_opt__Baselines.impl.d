lib/opt/baselines.ml: Array Cbo Fun Gopt_pattern Gopt_util List Physical Physical_spec Planner Rules_pattern Rules_relational
