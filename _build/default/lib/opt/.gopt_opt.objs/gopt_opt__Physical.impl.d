lib/opt/physical.ml: Format Gopt_gir Gopt_graph Gopt_pattern Hashtbl List Printf String
