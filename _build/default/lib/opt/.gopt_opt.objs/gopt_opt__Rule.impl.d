lib/opt/rule.ml: Gopt_gir List Option
