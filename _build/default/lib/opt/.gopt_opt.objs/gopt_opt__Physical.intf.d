lib/opt/physical.mli: Format Gopt_gir Gopt_graph Gopt_pattern
