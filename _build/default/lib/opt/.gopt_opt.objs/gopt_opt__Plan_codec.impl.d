lib/opt/plan_codec.ml: Buffer Gopt_gir Gopt_graph Gopt_pattern List Physical Printf String
