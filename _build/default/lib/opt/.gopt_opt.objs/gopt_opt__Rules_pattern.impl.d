lib/opt/rules_pattern.ml: Array Gopt_gir Gopt_pattern Hashtbl List Option Rule Set String
