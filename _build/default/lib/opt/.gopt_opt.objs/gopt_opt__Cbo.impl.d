lib/opt/cbo.ml: Float Fun Gopt_gir Gopt_glogue Gopt_pattern Hashtbl List Physical Physical_spec String
