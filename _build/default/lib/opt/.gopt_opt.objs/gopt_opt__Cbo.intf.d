lib/opt/cbo.mli: Gopt_glogue Gopt_pattern Physical Physical_spec
