lib/opt/physical_spec.mli: Gopt_glogue Gopt_pattern
