lib/opt/plan_codec.mli: Physical
