(** Relational heuristic rules (the Calcite-inherited side of GOpt's RBO,
    paper §7 / Remark 7.1).

    GOpt incorporates classic relational rewrites alongside the
    pattern-aware rules; the ones that matter for the paper's workloads are
    implemented here:

    - {!select_merge}: fuse stacked SELECTs into one conjunction;
    - {!select_pushdown}: move SELECT below PROJECT (substituting through
      the projection), below JOIN (to the side that binds all referenced
      tags), below UNION and DEDUP;
    - {!project_merge}: compose stacked PROJECTs;
    - {!limit_pushdown}: fuse LIMIT into ORDER as a top-k, and push LIMIT
      through PROJECT and UNION;
    - {!aggregate_pushdown}: the eager-aggregation rewrite Calcite applies
      in the paper's IC9/BI13 runs — a GROUP over an inner JOIN partially
      aggregates the right side before the join when keys come from the
      left and aggregates (COUNT/SUM/MIN/MAX) read only the right;
    - {!constant_fold}: fold constant subexpressions in SELECT/PROJECT,
      eliminating SELECT(true). *)

val select_merge : Rule.t
val select_pushdown : Rule.t
val project_merge : Rule.t
val limit_pushdown : Rule.t
val aggregate_pushdown : Rule.t
val constant_fold : Rule.t

val all : Rule.t list
