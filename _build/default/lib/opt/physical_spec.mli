(** PhysicalSpec — backend-registered physical operators and cost models
    (paper §6.3.2).

    A spec tells the CBO (a) which operator a multi-edge vertex expansion
    compiles to (flattening ExpandAll/ExpandInto vs worst-case-optimal
    ExpandIntersect), and (b) what each pattern transformation costs on the
    backend, including a communication term for distributed engines (the
    paper's cost model: communication = materialized intermediate results;
    computation = per-operator work).

    Two specs ship with the library, mirroring the paper's integrations:

    - {!neo4j}: single-machine, row-at-a-time. No intersection operator;
      closing edges flatten, so an n-edge expansion costs the sum of the
      frequencies of every flattened intermediate pattern. Communication
      factor 0.

    - {!graphscope}: distributed dataflow. Multi-edge expansions compile to
      ExpandIntersect; their computation cost is bounded by the smallest
      per-edge expansion (the worst-case-optimal property) and only the
      final unfolded result is shuffled.

    Backends register further specs with {!make}. *)

type t = {
  name : string;
  use_intersect : bool;
      (** Compile multi-edge vertex expansions to [Expand_intersect]. *)
  comm_factor : float;
      (** Weight of one shuffled intermediate row; 0 for single-machine
          backends. *)
  join_cost :
    Gopt_glogue.Glogue_query.t ->
    left:Gopt_pattern.Pattern.t ->
    right:Gopt_pattern.Pattern.t ->
    target:Gopt_pattern.Pattern.t ->
    float;
      (** Cost of [Join(left, right) -> target] (binary hash join). *)
  expand_cost :
    Gopt_glogue.Glogue_query.t ->
    target:Gopt_pattern.Pattern.t ->
    sub_edges:int list ->
    new_edges:int list ->
    anchor_vertex:int ->
    float;
      (** Cost of [Expand(sub -> target)] where [sub] is the subpattern of
          [target] induced by [sub_edges] (or the single vertex
          [anchor_vertex] when [sub_edges] is empty) and [new_edges] are the
          edges binding the new vertex. *)
}

val neo4j : t
val graphscope : t

val make :
  name:string ->
  use_intersect:bool ->
  comm_factor:float ->
  ?join_cost:
    (Gopt_glogue.Glogue_query.t ->
    left:Gopt_pattern.Pattern.t ->
    right:Gopt_pattern.Pattern.t ->
    target:Gopt_pattern.Pattern.t ->
    float) ->
  ?expand_cost:
    (Gopt_glogue.Glogue_query.t ->
    target:Gopt_pattern.Pattern.t ->
    sub_edges:int list ->
    new_edges:int list ->
    anchor_vertex:int ->
    float) ->
  unit ->
  t
(** Custom spec; omitted cost functions default to the flattening model. *)

val sub_freq :
  Gopt_glogue.Glogue_query.t -> Gopt_pattern.Pattern.t -> int list -> anchor:int -> float
(** Frequency of the subpattern of a target pattern induced by an edge set
    (the single vertex [anchor] when empty) — shared by cost models. *)
