(** The four pattern-aware heuristic rules of paper §6.1.

    - {!filter_into_pattern}: push SELECT predicates that target a single
      pattern element into that element, so constraints apply during
      matching instead of after it.
    - {!join_to_pattern}: fuse [JOIN(MATCH p1, MATCH p2)] into a single
      MATCH when the join keys are exactly the shared pattern vertices
      (sound under homomorphism semantics, Remark 3.1).
    - {!com_sub_pattern}: factor the common subpattern out of the two
      branches of a UNION, matching it once and continuing each branch from
      its bindings.
    - {!field_trim} (a whole-plan pass rather than a local rule): drop
      fields as soon as they are no longer referenced, inserting PROJECTs
      after pattern matches and annotating pattern vertices with the
      property columns actually used. *)

val filter_into_pattern : Rule.t
val join_to_pattern : Rule.t
val com_sub_pattern : Rule.t

val field_trim : Gopt_gir.Logical.t -> Gopt_gir.Logical.t
(** Top-down needed-fields analysis; inserts trimming PROJECT operators and
    sets [v_columns] on pattern vertices. *)

val all : Rule.t list
(** The three local rules, in recommended order. *)
