(** Physical-plan serialization.

    The paper hands optimized physical plans to backends as protobuf
    messages ("Output Format", §7); this module plays that role with a
    self-describing s-expression encoding. [decode (encode p)] reconstructs
    the plan exactly, so a backend process can execute plans produced by a
    separate optimizer process.

    The encoding covers every physical operator, expression, type constraint
    and edge-step field. It is versioned ([gopt-plan v1] header atom). *)

exception Decode_error of string

val encode : Physical.t -> string

val decode : string -> Physical.t
(** Raises {!Decode_error} on malformed or version-incompatible input. *)

(** Low-level s-expression layer, exposed for tests. *)
module Sexp : sig
  type t = Atom of string | List of t list

  val to_string : t -> string
  val of_string : string -> t
  (** Raises {!Decode_error} on malformed input. *)
end
