module Logical = Gopt_gir.Logical

type t = {
  name : string;
  apply : Logical.t -> Logical.t option;
}

let make name apply = { name; apply }

let fixpoint ?(max_passes = 20) rules plan =
  let log = ref [] in
  (* One top-down sweep: at each node, apply rules until none fires (a rule's
     output may enable another rule at the same node), then recurse. *)
  let rec sweep node =
    let rec at_node node budget =
      if budget = 0 then node
      else
        match List.find_map (fun r -> Option.map (fun p -> (r.name, p)) (r.apply node)) rules with
        | Some (name, node') ->
          log := name :: !log;
          at_node node' (budget - 1)
        | None -> node
    in
    let node = at_node node 50 in
    Logical.map_children sweep node
  in
  let rec iterate plan passes =
    if passes = 0 then plan
    else begin
      let plan' = sweep plan in
      if Logical.equal plan plan' then plan else iterate plan' (passes - 1)
    end
  in
  let result = iterate plan max_passes in
  (result, List.rev !log)
