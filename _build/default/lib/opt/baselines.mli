(** Baseline planners the paper compares against (§8).

    These reproduce the {e optimizer behaviours} of the compared systems —
    the plans they would emit — while executing on the same engines, exactly
    as the paper runs "Neo4j-plan" and "GS-plan" on both backends:

    - {!cypher_planner_config}: Neo4j's CypherPlanner. Cost-based, but:
      expansions only (no hybrid binary-join candidates for patterns — the
      paper's IC6 analysis), flattening ExpandInto (no worst-case-optimal
      intersection), no type inference, and none of GOpt's pattern-aware
      heuristics beyond predicate pushdown. Meant to be paired with a
      low-order {!Gopt_glogue.Glogue_query.t} (no high-order statistics,
      Table 1).

    - {!gs_rbo_config}: GraphScope's native TraversalStrategy optimizer.
      Rule-based only: patterns execute in the user-specified order; it does
      fuse joined patterns (JoinToPattern is native, §8.2) and uses
      ExpandIntersect for closing edges, but has no CBO, no
      FilterIntoPattern/FieldTrim/ComSubPattern, no type inference.

    - {!gopt_config}: GOpt with everything enabled for a given backend spec.

    - {!random_plan}: a random valid left-deep expansion order — the red
      circles of Fig. 8(c).

    - {!gopt_neo_cost_config}: GOpt but deliberately costing expansions with
      Neo4j's flattening model while emitting GraphScope operators — the
      "GOpt-Neo-Plan" of Fig. 8(c), demonstrating why backend-specific cost
      registration matters. *)

val cypher_planner_config : Planner.config
val gs_rbo_config : Planner.config
val gopt_config : Physical_spec.t -> Planner.config
val gopt_neo_cost_config : Planner.config

val random_plan :
  Gopt_util.Prng.t ->
  Physical_spec.t ->
  Gopt_pattern.Pattern.t ->
  Physical.t * string list
(** A uniformly random valid binding order for the pattern; returns the
    physical plan and the vertex order (for reporting). *)
