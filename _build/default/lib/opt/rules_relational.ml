module Logical = Gopt_gir.Logical
module Expr = Gopt_pattern.Expr
module SS = Set.Make (String)

let fields plan = SS.of_list (Logical.output_fields plan)

let tags_subset e set = List.for_all (fun t -> SS.mem t set) (Expr.free_tags e)

let select_merge =
  Rule.make "SelectMerge" (fun node ->
      match node with
      | Logical.Select (Logical.Select (x, a), b) ->
        Some (Logical.Select (x, Expr.Binop (Expr.And, a, b)))
      | _ -> None)

let subst_through ps e =
  let table = List.map (fun (expr, alias) -> (alias, expr)) ps in
  Expr.substitute (fun tag -> List.assoc_opt tag table) e

let select_pushdown =
  Rule.make "SelectPushdown" (fun node ->
      match node with
      | Logical.Select (Logical.Project (x, ps), pred) -> begin
        match subst_through ps pred with
        | Some pred' -> Some (Logical.Project (Logical.Select (x, pred'), ps))
        | None -> None
      end
      | Logical.Select (Logical.Join { left; right; keys; kind }, pred) ->
        let lf = fields left and rf = fields right in
        let push_left, push_right, keep =
          List.fold_left
            (fun (pl, pr, keep) conj ->
              if tags_subset conj lf then (conj :: pl, pr, keep)
              else if kind = Logical.Inner && tags_subset conj rf then (pl, conj :: pr, keep)
              else (pl, pr, conj :: keep))
            ([], [], []) (Expr.conjuncts pred)
        in
        if push_left = [] && push_right = [] then None
        else begin
          let wrap plan = function
            | [] -> plan
            | cs -> Logical.Select (plan, Option.get (Expr.conj (List.rev cs)))
          in
          let join =
            Logical.Join
              { left = wrap left push_left; right = wrap right push_right; keys; kind }
          in
          Some (wrap join keep)
        end
      | Logical.Select (Logical.Union (a, b), pred) ->
        Some (Logical.Union (Logical.Select (a, pred), Logical.Select (b, pred)))
      | Logical.Select (Logical.Dedup (x, tags), pred) ->
        Some (Logical.Dedup (Logical.Select (x, pred), tags))
      | Logical.Select (Logical.All_distinct (x, tags), pred) ->
        (* a row-local filter commutes with the edge-distinctness filter *)
        Some (Logical.All_distinct (Logical.Select (x, pred), tags))
      | _ -> None)

let project_merge =
  Rule.make "ProjectMerge" (fun node ->
      match node with
      | Logical.Project (Logical.Project (x, inner), outer) ->
        let substituted =
          List.map (fun (e, a) -> Option.map (fun e' -> (e', a)) (subst_through inner e)) outer
        in
        if List.for_all Option.is_some substituted then
          Some (Logical.Project (x, List.map Option.get substituted))
        else None
      | _ -> None)

let limit_pushdown =
  Rule.make "LimitPushdown" (fun node ->
      match node with
      | Logical.Limit (Logical.Order (x, ks, None), n) -> Some (Logical.Order (x, ks, Some n))
      | Logical.Limit (Logical.Order (x, ks, Some m), n) ->
        Some (Logical.Order (x, ks, Some (min m n)))
      | Logical.Limit (Logical.Limit (x, m), n) -> Some (Logical.Limit (x, min m n))
      | Logical.Limit (Logical.Skip (Logical.Order (x, ks, None), k), n) ->
        (* ORDER .. SKIP k LIMIT n = top-(k+n) then drop k *)
        Some (Logical.Skip (Logical.Order (x, ks, Some (k + n)), k))
      | Logical.Limit (Logical.Project (x, ps), n) ->
        Some (Logical.Project (Logical.Limit (x, n), ps))
      | Logical.Limit (Logical.Union (a, b), n) -> begin
        (* bound each branch, keeping the outer limit; fires once *)
        match a, b with
        | Logical.Limit _, Logical.Limit _ -> None
        | _ ->
          Some (Logical.Limit (Logical.Union (Logical.Limit (a, n), Logical.Limit (b, n)), n))
      end
      | _ -> None)

(* Eager aggregation below an inner join (Calcite's AggregatePushDown as used
   by the paper's IC9/BI13 analysis): pre-aggregate the right side per join
   key when the grouping keys read only the left input and the aggregates
   read only the right. COUNT becomes a partial COUNT summed after the join;
   SUM/MIN/MAX push through unchanged. *)
let aggregate_pushdown =
  Rule.make "AggregatePushdown" (fun node ->
      match node with
      | Logical.Group
          (Logical.Join { left; right; keys; kind = Logical.Inner }, group_keys, aggs) ->
        let lf = fields left and rf = fields right in
        let pushable_fn a =
          match a.Logical.agg_fn with
          | Logical.Count | Logical.Sum | Logical.Min | Logical.Max -> true
          | Logical.Count_distinct | Logical.Avg | Logical.Collect -> false
        in
        let reads_right a =
          match a.Logical.agg_arg with
          | None -> true
          | Some e -> tags_subset e rf
        in
        let already_rewritten a =
          match a.Logical.agg_arg with
          | Some e -> List.exists (fun t -> String.length t >= 5 && String.sub t 0 5 = "@pagg") (Expr.free_tags e)
          | None -> false
        in
        if
          group_keys <> []
          && List.for_all (fun (e, _) -> tags_subset e lf) group_keys
          && aggs <> []
          && List.for_all (fun a -> pushable_fn a && reads_right a) aggs
          && not (List.exists already_rewritten aggs)
        then begin
          let partial_alias i = Printf.sprintf "@pagg%d" i in
          let partial_aggs =
            List.mapi
              (fun i a -> { a with Logical.agg_alias = partial_alias i })
              aggs
          in
          let right' =
            Logical.Group (right, List.map (fun k -> (Expr.Var k, k)) keys, partial_aggs)
          in
          let final_aggs =
            List.mapi
              (fun i a ->
                let arg = Some (Expr.Var (partial_alias i)) in
                match a.Logical.agg_fn with
                | Logical.Count | Logical.Sum ->
                  { a with Logical.agg_fn = Logical.Sum; agg_arg = arg }
                | Logical.Min -> { a with Logical.agg_arg = arg }
                | Logical.Max -> { a with Logical.agg_arg = arg }
                | _ -> assert false)
              aggs
          in
          Some
            (Logical.Group
               ( Logical.Join { left; right = right'; keys; kind = Logical.Inner },
                 group_keys, final_aggs ))
        end
        else None
      | _ -> None)

let constant_fold =
  Rule.make "ConstantFold" (fun node ->
      match node with
      | Logical.Select (x, pred) -> begin
        let folded = Expr.const_fold pred in
        match folded with
        | Expr.Const (Gopt_graph.Value.Bool true) -> Some x
        | _ -> if Expr.equal folded pred then None else Some (Logical.Select (x, folded))
      end
      | Logical.Project (x, ps) ->
        let folded = List.map (fun (e, a) -> (Expr.const_fold e, a)) ps in
        if List.for_all2 (fun (e, _) (f, _) -> Expr.equal e f) ps folded then None
        else Some (Logical.Project (x, folded))
      | _ -> None)

let all =
  [
    constant_fold;
    select_merge;
    select_pushdown;
    project_merge;
    limit_pushdown;
    aggregate_pushdown;
  ]
