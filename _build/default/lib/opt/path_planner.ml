module Pattern = Gopt_pattern.Pattern

type result = {
  phys : Physical.t;
  split : (int * int) option;
  cost : float;
  alternatives : ((int * int) option * float) list;
}

let first_exact_path_edge p =
  let found = ref None in
  Array.iteri
    (fun i (e : Pattern.edge) ->
      if !found = None then
        match e.Pattern.e_hops with
        | Some (lo, hi) when lo = hi && lo >= 2 -> found := Some (i, lo)
        | _ -> ())
    (Pattern.edges p);
  !found

let plan_variant ?options gq spec pat =
  let cplan, _ = Cbo.optimize ?options gq spec pat in
  (Cbo.to_physical spec cplan, cplan.Cbo.cost)

let forced_split gq spec p ~at =
  match first_exact_path_edge p with
  | None -> invalid_arg "Path_planner.forced_split: no exact-length path edge"
  | Some (eid, k) ->
    if at = 0 then plan_variant gq spec p
    else begin
      if at < 1 || at >= k then invalid_arg "Path_planner.forced_split: position out of range";
      let split = Pattern.split_path_edge p ~eid ~at ~mid_alias:(Printf.sprintf "@mid%d" at) in
      plan_variant gq spec split
    end

let optimize ?options gq spec p =
  match first_exact_path_edge p with
  | None ->
    let phys, cost = plan_variant ?options gq spec p in
    { phys; split = None; cost; alternatives = [ (None, cost) ] }
  | Some (eid, k) ->
    let unsplit = plan_variant ?options gq spec p in
    let variants =
      List.map
        (fun at ->
          let split =
            Pattern.split_path_edge p ~eid ~at ~mid_alias:(Printf.sprintf "@mid%d" at)
          in
          let phys, cost = plan_variant ?options gq spec split in
          (Some (at, k - at), (phys, cost)))
        (List.init (k - 1) (fun i -> i + 1))
    in
    let all = (None, unsplit) :: variants in
    let best_split, (best_phys, best_cost) =
      List.fold_left
        (fun (bs, (bp, bc)) (s, (p', c)) -> if c < bc then (s, (p', c)) else (bs, (bp, bc)))
        (List.hd all) (List.tl all)
    in
    {
      phys = best_phys;
      split = best_split;
      cost = best_cost;
      alternatives = List.map (fun (s, (_, c)) -> (s, c)) all;
    }
