module Pattern = Gopt_pattern.Pattern
module Gq = Gopt_glogue.Glogue_query

type t = {
  name : string;
  use_intersect : bool;
  comm_factor : float;
  join_cost : Gq.t -> left:Pattern.t -> right:Pattern.t -> target:Pattern.t -> float;
  expand_cost :
    Gq.t -> target:Pattern.t -> sub_edges:int list -> new_edges:int list ->
    anchor_vertex:int -> float;
}

let sub_freq gq target edge_ids ~anchor =
  if edge_ids = [] then Gq.get_freq gq (Pattern.single_vertex target anchor)
  else Gq.get_freq gq (fst (Pattern.sub_by_edges target edge_ids))

(* Work of adding edge [eid] onto the subpattern [sub_edges]: the size of
   the resulting intermediate for plain edges; for a variable-length edge of
   k hops, the engine explores every frontier along the walk, so the work is
   the sum of the truncated-prefix frequencies (intermediate hops are
   unconstrained vertices). *)
let expansion_work gq target ~sub_edges ~anchor eid =
  let e = Pattern.edge target eid in
  match e.Pattern.e_hops with
  | None -> sub_freq gq target (eid :: sub_edges) ~anchor
  | Some (lo, _) when lo <= 1 -> sub_freq gq target (eid :: sub_edges) ~anchor
  | Some (lo, _) ->
    let q, _ = Pattern.sub_by_edges target (eid :: sub_edges) in
    let qe =
      match Pattern.edge_of_alias q e.Pattern.e_alias with
      | Some i -> i
      | None -> assert false
    in
    (* which endpoint of the walk is the new (far) one? the one absent from
       the subpattern *)
    let sub_aliases =
      if sub_edges = [] then [ (Pattern.vertex target anchor).Pattern.v_alias ]
      else
        Array.to_list (Pattern.vertices (fst (Pattern.sub_by_edges target sub_edges)))
        |> List.map (fun v -> v.Pattern.v_alias)
    in
    let qedge = Pattern.edge q qe in
    let src_alias = (Pattern.vertex q qedge.Pattern.e_src).Pattern.v_alias in
    let far = if List.mem src_alias sub_aliases then qedge.Pattern.e_dst else qedge.Pattern.e_src in
    let total = ref 0.0 in
    for i = 1 to lo do
      let qi =
        if i = lo then q
        else begin
          let q' =
            Pattern.set_edge q qe { qedge with Pattern.e_hops = (if i = 1 then None else Some (i, i)) }
          in
          (* intermediate frontier: unconstrained, unfiltered *)
          let farv = Pattern.vertex q' far in
          Pattern.set_vertex q' far
            { farv with Pattern.v_con = Gopt_pattern.Type_constraint.All; v_pred = None }
        end
      in
      total := !total +. Gq.get_freq gq qi
    done;
    !total

(* Flattening expansion (Neo4j's ExpandAll + ExpandInto): every intermediate
   pattern is materialized row by row, so the computation is the sum of all
   flattened intermediate frequencies. *)
let flatten_expand_cost ?(comm = 0.0) gq ~target ~sub_edges ~new_edges ~anchor_vertex =
  let _, total =
    List.fold_left
      (fun (edges, acc) e ->
        let work = expansion_work gq target ~sub_edges:edges ~anchor:anchor_vertex e in
        (e :: edges, acc +. (work *. (1.0 +. comm))))
      (sub_edges, 0.0) new_edges
  in
  total

(* Worst-case-optimal expansion (GraphScope's ExpandIntersect): adjacency
   lists are intersected without flattening; the merge work per input row is
   bounded by the smallest per-edge expansion, and only the final unfolded
   result is materialized (and shuffled). *)
let intersect_expand_cost ~comm gq ~target ~sub_edges ~new_edges ~anchor_vertex =
  match new_edges with
  | [] -> 0.0
  | [ e ] ->
    let f = expansion_work gq target ~sub_edges ~anchor:anchor_vertex e in
    f *. (1.0 +. comm)
  | _ ->
    let n = float_of_int (List.length new_edges) in
    let single_expansions =
      List.map (fun e -> sub_freq gq target (e :: sub_edges) ~anchor:anchor_vertex) new_edges
    in
    let smallest = List.fold_left Float.min Float.infinity single_expansions in
    let final = sub_freq gq target (new_edges @ sub_edges) ~anchor:anchor_vertex in
    (n *. smallest) +. (final *. (1.0 +. comm))

let hash_join_cost ~comm gq ~left ~right ~target:_ =
  (Gq.get_freq gq left +. Gq.get_freq gq right) *. (1.0 +. comm)

let neo4j =
  {
    name = "neo4j";
    use_intersect = false;
    comm_factor = 0.0;
    join_cost = (fun gq -> hash_join_cost ~comm:0.0 gq);
    expand_cost = (fun gq -> flatten_expand_cost ~comm:0.0 gq);
  }

let graphscope =
  let comm = 1.0 in
  {
    name = "graphscope";
    use_intersect = true;
    comm_factor = comm;
    join_cost = (fun gq -> hash_join_cost ~comm gq);
    expand_cost = (fun gq -> intersect_expand_cost ~comm gq);
  }

let make ~name ~use_intersect ~comm_factor ?join_cost ?expand_cost () =
  {
    name;
    use_intersect;
    comm_factor;
    join_cost =
      (match join_cost with
      | Some f -> f
      | None -> fun gq -> hash_join_cost ~comm:comm_factor gq);
    expand_cost =
      (match expand_cost with
      | Some f -> f
      | None ->
        if use_intersect then fun gq -> intersect_expand_cost ~comm:comm_factor gq
        else fun gq -> flatten_expand_cost ~comm:comm_factor gq);
  }
