module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical

type edge_step = {
  s_edge : Pattern.edge;
  s_from : string;
  s_to : string;
  s_forward : bool;
  s_to_con : Tc.t;
  s_to_pred : Expr.t option;
}

type t =
  | Scan of { alias : string; con : Tc.t; pred : Expr.t option }
  | Expand_all of t * edge_step
  | Expand_into of t * edge_step
  | Expand_intersect of t * edge_step list
  | Path_expand of t * edge_step
  | Hash_join of { left : t; right : t; keys : string list; kind : Logical.join_kind }
  | Select of t * Expr.t
  | Project of t * (Expr.t * string) list
  | Group of t * (Expr.t * string) list * Logical.agg list
  | Order of t * (Expr.t * Logical.sort_dir) list * int option
  | Limit of t * int
  | Skip of t * int
  | Unfold of t * Expr.t * string
  | Dedup of t * string list
  | Union of t * t
  | All_distinct of t * string list
  | With_common of { common : t; left : t; right : t; combine : Logical.combine }
  | Common_ref of string list
  | Empty of string list

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let rec output_fields = function
  | Scan { alias; _ } -> [ alias ]
  | Expand_all (x, s) ->
    dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias; s.s_to ])
  | Expand_into (x, s) -> dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias ])
  | Expand_intersect (x, steps) ->
    dedup_keep_order
      (output_fields x
      @ List.concat_map (fun s -> [ s.s_edge.Pattern.e_alias ]) steps
      @ match steps with [] -> [] | s :: _ -> [ s.s_to ])
  | Path_expand (x, s) ->
    dedup_keep_order (output_fields x @ [ s.s_edge.Pattern.e_alias; s.s_to ])
  | Hash_join { left; right; kind; _ } -> begin
    match kind with
    | Logical.Semi | Logical.Anti -> output_fields left
    | Logical.Inner | Logical.Left_outer ->
      dedup_keep_order (output_fields left @ output_fields right)
  end
  | Select (x, _) | Limit (x, _) | Skip (x, _) | Dedup (x, _) | All_distinct (x, _)
  | Order (x, _, _) ->
    output_fields x
  | Unfold (x, _, alias) -> dedup_keep_order (output_fields x @ [ alias ])
  | Project (_, ps) -> List.map snd ps
  | Group (_, ks, aggs) -> List.map snd ks @ List.map (fun a -> a.Logical.agg_alias) aggs
  | Union (a, _) -> output_fields a
  | With_common { left; right; combine; _ } -> begin
    match combine with
    | Logical.C_union -> output_fields left
    | Logical.C_join (_, (Logical.Semi | Logical.Anti)) -> output_fields left
    | Logical.C_join (_, _) -> dedup_keep_order (output_fields left @ output_fields right)
  end
  | Common_ref fields -> fields
  | Empty fields -> fields

let rec operator_count = function
  | Scan _ | Common_ref _ | Empty _ -> 1
  | Expand_all (x, _) | Expand_into (x, _) | Expand_intersect (x, _) | Path_expand (x, _)
  | Select (x, _) | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _)
  | Skip (x, _) | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) -> 1 + operator_count x
  | Hash_join { left; right; _ } | Union (left, right) ->
    1 + operator_count left + operator_count right
  | With_common { common; left; right; _ } ->
    1 + operator_count common + operator_count left + operator_count right

let rec uses_intersect = function
  | Expand_intersect _ -> true
  | Scan _ | Common_ref _ | Empty _ -> false
  | Expand_all (x, _) | Expand_into (x, _) | Path_expand (x, _) | Select (x, _)
  | Project (x, _) | Group (x, _, _) | Order (x, _, _) | Limit (x, _) | Skip (x, _)
  | Unfold (x, _, _) | Dedup (x, _) | All_distinct (x, _) -> uses_intersect x
  | Hash_join { left; right; _ } | Union (left, right) ->
    uses_intersect left || uses_intersect right
  | With_common { common; left; right; _ } ->
    uses_intersect common || uses_intersect left || uses_intersect right

let pp ?schema ppf plan =
  let ename =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.etype_name s i
    | None -> string_of_int
  in
  let vname =
    match schema with
    | Some s -> fun i -> Gopt_graph.Schema.vtype_name s i
    | None -> string_of_int
  in
  let step_str s =
    let hops =
      match s.s_edge.Pattern.e_hops with
      | None -> ""
      | Some (lo, hi) when lo = hi -> Printf.sprintf "*%d" lo
      | Some (lo, hi) -> Printf.sprintf "*%d..%d" lo hi
    in
    Format.asprintf "%s-[%s:%a%s]%s>%s:%a" s.s_from s.s_edge.Pattern.e_alias
      (Tc.pp ~names:ename) s.s_edge.Pattern.e_con hops
      (if s.s_forward then "-" else "<-")
      s.s_to (Tc.pp ~names:vname) s.s_to_con
  in
  let rec go indent plan =
    let pad = String.make (2 * indent) ' ' in
    let line fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@,") pad in
    match plan with
    | Scan { alias; con; pred } ->
      line "Scan(%s:%a)%s" alias (Tc.pp ~names:vname) con
        (match pred with None -> "" | Some p -> " WHERE " ^ Expr.to_string p)
    | Expand_all (x, s) ->
      line "ExpandAll(%s)" (step_str s);
      go (indent + 1) x
    | Expand_into (x, s) ->
      line "ExpandInto(%s)" (step_str s);
      go (indent + 1) x
    | Expand_intersect (x, steps) ->
      line "ExpandIntersect(%s)" (String.concat " & " (List.map step_str steps));
      go (indent + 1) x
    | Path_expand (x, s) ->
      line "PathExpand(%s)" (step_str s);
      go (indent + 1) x
    | Hash_join { left; right; keys; kind } ->
      line "HashJoin[%s](%s)"
        (match kind with
        | Logical.Inner -> "INNER"
        | Logical.Left_outer -> "LEFT"
        | Logical.Semi -> "SEMI"
        | Logical.Anti -> "ANTI")
        (String.concat ", " keys);
      go (indent + 1) left;
      go (indent + 1) right
    | Select (x, e) ->
      line "Select(%s)" (Expr.to_string e);
      go (indent + 1) x
    | Project (x, ps) ->
      line "Project(%s)"
        (String.concat ", "
           (List.map (fun (e, a) -> Printf.sprintf "%s AS %s" (Expr.to_string e) a) ps));
      go (indent + 1) x
    | Group (x, ks, aggs) ->
      line "Group(keys=%d, aggs=%d)" (List.length ks) (List.length aggs);
      go (indent + 1) x
    | Order (x, ks, lim) ->
      line "Order(keys=%d%s)" (List.length ks)
        (match lim with None -> "" | Some n -> Printf.sprintf ", topk=%d" n);
      go (indent + 1) x
    | Limit (x, n) ->
      line "Limit(%d)" n;
      go (indent + 1) x
    | Skip (x, n) ->
      line "Skip(%d)" n;
      go (indent + 1) x
    | Unfold (x, e, a) ->
      line "Unfold(%s AS %s)" (Expr.to_string e) a;
      go (indent + 1) x
    | Dedup (x, tags) ->
      line "Dedup(%s)" (String.concat ", " tags);
      go (indent + 1) x
    | Union (a, b) ->
      line "Union";
      go (indent + 1) a;
      go (indent + 1) b
    | All_distinct (x, tags) ->
      line "AllDistinct(%s)" (String.concat ", " tags);
      go (indent + 1) x
    | With_common { common; left; right; _ } ->
      line "WithCommon";
      go (indent + 1) common;
      go (indent + 1) left;
      go (indent + 1) right
    | Common_ref _ -> line "CommonRef"
    | Empty fields -> line "Empty(%s)" (String.concat ", " fields)
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"

let to_string ?schema plan = Format.asprintf "%a" (pp ?schema) plan
