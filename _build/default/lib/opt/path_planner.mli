(** Bidirectional S-T path planning (the paper's §8.5 case study).

    For a pattern containing a fixed-length path edge [s -[*k]-> t], the
    planner considers, besides the unsplit plan (single-direction
    expansion), every split position [i]: replace the path with
    [s -[*i]-> m -[*k-i]-> t] and let the CBO decide how to bind [m] —
    typically a hash join of an [i]-hop forward expansion from [s] and a
    [(k-i)]-hop backward expansion from [t]. The cheapest variant wins; with
    asymmetric endpoint selectivities ("scan cost = the number of vertices
    in the source sets") the optimal join position is not necessarily the
    middle — the paper's observation. *)

type result = {
  phys : Physical.t;
  split : (int * int) option;
      (** [(i, k - i)] when a split plan won, [None] for single-direction. *)
  cost : float;  (** Estimated cost of the winning plan. *)
  alternatives : ((int * int) option * float) list;
      (** All evaluated variants with their estimated costs. *)
}

val optimize :
  ?options:Cbo.options ->
  Gopt_glogue.Glogue_query.t ->
  Physical_spec.t ->
  Gopt_pattern.Pattern.t ->
  result
(** Optimize a pattern, additionally exploring split positions of its first
    exact-length path edge (if any). Falls back to plain {!Cbo.optimize}
    when the pattern has no such edge. *)

val forced_split :
  Gopt_glogue.Glogue_query.t ->
  Physical_spec.t ->
  Gopt_pattern.Pattern.t ->
  at:int ->
  Physical.t * float
(** Plan with a specific split position (used to generate the "alternative"
    bars of Fig. 11). [at = 0] means unsplit. *)
