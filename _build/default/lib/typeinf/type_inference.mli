(** Automatic type inference and validation for patterns (paper §6.2,
    Algorithm 1).

    Patterns in real CGPs often leave vertices and edges untyped (AllType) or
    loosely typed (UnionType). This module narrows every constraint to the
    types actually realizable under the graph schema, by propagating schema
    connectivity along pattern edges until a fixpoint:

    - a worklist of pattern vertices, processed most-constrained-first
      (ascending |tau(u)|, the paper's priority queue);
    - for each processed vertex, the candidate vertex types and edge types of
      its pattern neighbours are intersected with what the schema allows from
      the vertex's current constraint (we propagate along both outgoing and
      incoming pattern edges, the straightforward extension the paper notes);
    - a vertex type survives only if, for each incident pattern edge, at
      least one schema triple is compatible with the edge's and the far
      endpoint's current constraints (a strictly stronger filter than the
      paper's degree-only test, still sound);
    - if any constraint becomes empty the pattern is unsatisfiable: INVALID.

    Variable-length path edges: constraints are not propagated across them
    (multi-hop reachability typing is out of scope, matching the paper's
    focus), which is sound — inference may only narrow when certain. *)

type result =
  | Inferred of Gopt_pattern.Pattern.t * int
      (** The pattern with validated constraints, and the number of worklist
          iterations until convergence. *)
  | Invalid
      (** No type assignment can satisfy the pattern under this schema. *)

val infer : ?prioritized:bool -> Gopt_graph.Schema.t -> Gopt_pattern.Pattern.t -> result
(** [infer schema p] runs Algorithm 1. [prioritized] (default [true])
    processes most-constrained vertices first; [false] uses insertion order
    (exists for the A3 ablation — results are identical, convergence may be
    slower). *)

val assignment_satisfiable :
  Gopt_graph.Schema.t -> Gopt_pattern.Pattern.t -> int array -> bool
(** [assignment_satisfiable schema p vtypes] — do the given concrete vertex
    types (one per pattern vertex) admit edge types satisfying every
    single-hop pattern edge? Test oracle for inference soundness. *)
