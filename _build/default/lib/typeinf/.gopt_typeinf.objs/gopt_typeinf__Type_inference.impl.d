lib/typeinf/type_inference.ml: Array Fun Gopt_graph Gopt_pattern Int List Queue Set
