lib/typeinf/type_inference.mli: Gopt_graph Gopt_pattern
