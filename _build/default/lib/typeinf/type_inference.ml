module Schema = Gopt_graph.Schema
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint

type result =
  | Inferred of Pattern.t * int
  | Invalid

module Iset = Set.Make (Int)

(* For pattern edge [ei] incident to [u], the schema triples compatible with
   the *current* constraint sets are enumerated to derive candidate types for
   the far endpoint and for the edge itself. Directions:
   - u is the source of a directed edge  -> out_schema u-types
   - u is the target of a directed edge  -> in_schema u-types
   - undirected                          -> both. *)
let candidates_through schema u_types e =
  let add_dir acc dir =
    Iset.fold
      (fun ut (vs, es) ->
        List.fold_left
          (fun (vs, es) (et, other) -> (Iset.add other vs, Iset.add et es))
          (vs, es)
          (match dir with `Out -> Schema.out_schema schema ut | `In -> Schema.in_schema schema ut))
      u_types acc
  in
  fun ~u_is_src ->
    if e.Pattern.e_directed then
      if u_is_src then add_dir (Iset.empty, Iset.empty) `Out
      else add_dir (Iset.empty, Iset.empty) `In
    else
      add_dir (add_dir (Iset.empty, Iset.empty) `Out) `In

(* A vertex type [t] supports incident edge [e] (with far endpoint types
   [far] and edge types [ets]) if some compatible schema triple exists. *)
let type_supports_edge schema t ~u_is_src ~directed far ets =
  let check dir =
    let nbrs = match dir with `Out -> Schema.out_schema schema t | `In -> Schema.in_schema schema t in
    List.exists (fun (et, other) -> Iset.mem et ets && Iset.mem other far) nbrs
  in
  if directed then check (if u_is_src then `Out else `In) else check `Out || check `In

let infer ?(prioritized = true) schema p =
  let nv = Pattern.n_vertices p and ne = Pattern.n_edges p in
  let vuniv = Schema.n_vtypes schema and euniv = Schema.n_etypes schema in
  let vtypes =
    Array.init nv (fun i ->
        Iset.of_list (Tc.to_list ~universe:vuniv (Pattern.vertex p i).Pattern.v_con))
  in
  let etypes =
    Array.init ne (fun i ->
        Iset.of_list (Tc.to_list ~universe:euniv (Pattern.edge p i).Pattern.e_con))
  in
  let in_queue = Array.make nv false in
  let queue = Queue.create () in
  let initial_order =
    let idx = List.init nv Fun.id in
    if prioritized then
      List.sort
        (fun a b -> Int.compare (Iset.cardinal vtypes.(a)) (Iset.cardinal vtypes.(b)))
        idx
    else idx
  in
  List.iter
    (fun i ->
      Queue.add i queue;
      in_queue.(i) <- true)
    initial_order;
  let iterations = ref 0 in
  let invalid = ref false in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       incr iterations;
       let u_before = vtypes.(u) in
       List.iter
         (fun ei ->
           let e = Pattern.edge p ei in
           if e.Pattern.e_hops = None then begin
             let u_is_src = e.Pattern.e_src = u in
             let v = if u_is_src then e.Pattern.e_dst else e.Pattern.e_src in
             (* 1. prune u's own types that cannot support this edge *)
             let supported =
               Iset.filter
                 (fun t ->
                   type_supports_edge schema t ~u_is_src ~directed:e.Pattern.e_directed
                     vtypes.(v) etypes.(ei))
                 vtypes.(u)
             in
             if not (Iset.equal supported vtypes.(u)) then begin
               vtypes.(u) <- supported;
               if Iset.is_empty supported then raise Exit
             end;
             (* 2. propagate candidate far-endpoint and edge types *)
             let cands = candidates_through schema vtypes.(u) e in
             let cand_v, cand_e = cands ~u_is_src in
             let v' = Iset.inter vtypes.(v) cand_v in
             let e' = Iset.inter etypes.(ei) cand_e in
             if Iset.is_empty v' || Iset.is_empty e' then raise Exit;
             if not (Iset.equal e' etypes.(ei)) then etypes.(ei) <- e';
             if not (Iset.equal v' vtypes.(v)) then begin
               vtypes.(v) <- v';
               if not in_queue.(v) then begin
                 Queue.add v queue;
                 in_queue.(v) <- true
               end
             end
           end)
         (Pattern.incident_edges p u);
       (* If u's own constraint narrowed while processing its edges, earlier
          propagations used the wider set: requeue u so the fixpoint is
          independent of processing order. *)
       if (not (Iset.equal vtypes.(u) u_before)) && not in_queue.(u) then begin
         Queue.add u queue;
         in_queue.(u) <- true
       end
     done
   with Exit -> invalid := true);
  if !invalid then Invalid
  else begin
    let rebuild_v i v =
      match Tc.of_list ~universe:vuniv (Iset.elements vtypes.(i)) with
      | Some con -> { v with Pattern.v_con = con }
      | None -> assert false
    in
    let rebuild_e i e =
      match Tc.of_list ~universe:euniv (Iset.elements etypes.(i)) with
      | Some con -> { e with Pattern.e_con = con }
      | None -> assert false
    in
    let p' = Pattern.map_vertices rebuild_v p |> Pattern.map_edges rebuild_e in
    Inferred (p', !iterations)
  end

let assignment_satisfiable schema p vtypes =
  let euniv = Schema.n_etypes schema in
  let ok = ref true in
  Array.iteri
    (fun _ (e : Pattern.edge) ->
      if e.Pattern.e_hops = None then begin
        let s = vtypes.(e.Pattern.e_src) and d = vtypes.(e.Pattern.e_dst) in
        let ets = Tc.to_list ~universe:euniv e.Pattern.e_con in
        let direct =
          List.exists (fun et -> Schema.triple_allowed schema ~src:s ~etype:et ~dst:d) ets
        in
        let flipped =
          (not e.Pattern.e_directed)
          && List.exists (fun et -> Schema.triple_allowed schema ~src:d ~etype:et ~dst:s) ets
        in
        if not (direct || flipped) then ok := false
      end)
    (Pattern.edges p);
  !ok
