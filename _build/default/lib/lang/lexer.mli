(** Shared lexer for the Cypher and Gremlin frontends.

    The paper uses ANTLR-generated parsers; this hand-written lexer plus the
    recursive-descent parsers in {!Cypher_parser} and {!Gremlin_parser} play
    that role. Tokens cover both languages (Cypher's ASCII-art arrows,
    Gremlin's dotted method chains). *)

type token =
  | Ident of string  (** Identifier or keyword, original case preserved. *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string  (** Single- or double-quoted. *)
  | Lparen | Rparen
  | Lbracket | Rbracket
  | Lbrace | Rbrace
  | Colon | Semi | Comma | Dot | Dotdot | Pipe | Dollar | Underscore2
  | Dash  (** [-], both pattern dash and minus. *)
  | Arrow_right  (** [->] *)
  | Arrow_left  (** [<-] *)
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Plus | Star | Slash | Percent
  | Eof

exception Lex_error of string * int
(** Message and character offset. *)

val tokenize : string -> token array
(** Raises {!Lex_error} on malformed input. Line comments ([//]) are
    skipped. *)

val pp_token : token -> string
