(** Recursive-descent parser for the Cypher subset.

    [$name] parameters are substituted at parse time from [params]: a
    single-value parameter becomes a constant, a multi-value parameter is
    only legal as the right-hand side of [IN]. *)

exception Parse_error of string

val parse :
  ?params:(string * Gopt_graph.Value.t list) list -> string -> Cypher_ast.query
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input. *)

val parse_expression : string -> Gopt_pattern.Expr.t
(** Parse a standalone scalar expression (test/tooling helper). *)
