type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Lbracket | Rbracket
  | Lbrace | Rbrace
  | Colon | Semi | Comma | Dot | Dotdot | Pipe | Dollar | Underscore2
  | Dash
  | Arrow_right
  | Arrow_left
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Plus | Star | Slash | Percent
  | Eof

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = Gopt_util.Vec.create () in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let push t = Gopt_util.Vec.push toks t in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      if word = "__" then push Underscore2 else push (Ident word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      (* a '.' begins a fraction only when followed by a digit (so that
         ranges like 1..3 lex as Int Dotdot Int) *)
      if !pos < n && src.[!pos] = '.' && !pos + 1 < n && is_digit src.[!pos + 1] then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        push (Float_lit (float_of_string (String.sub src start (!pos - start))))
      end
      else push (Int_lit (int_of_string (String.sub src start (!pos - start))))
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      let rec consume () =
        if !pos >= n then raise (Lex_error ("unterminated string", !pos));
        let ch = src.[!pos] in
        if ch = quote then incr pos
        else if ch = '\\' && !pos + 1 < n then begin
          let next = src.[!pos + 1] in
          Buffer.add_char buf
            (match next with 'n' -> '\n' | 't' -> '\t' | other -> other);
          pos := !pos + 2;
          consume ()
        end
        else begin
          Buffer.add_char buf ch;
          incr pos;
          consume ()
        end
      in
      consume ();
      push (Str_lit (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let advance t k =
        push t;
        pos := !pos + k
      in
      match two with
      | "->" -> advance Arrow_right 2
      | "<-" -> advance Arrow_left 2
      | "<>" -> advance Neq 2
      | "!=" -> advance Neq 2
      | "<=" -> advance Leq 2
      | ">=" -> advance Geq 2
      | ".." -> advance Dotdot 2
      | _ -> (
        match c with
        | '(' -> advance Lparen 1
        | ')' -> advance Rparen 1
        | '[' -> advance Lbracket 1
        | ']' -> advance Rbracket 1
        | '{' -> advance Lbrace 1
        | '}' -> advance Rbrace 1
        | ':' -> advance Colon 1
        | ';' -> advance Semi 1
        | ',' -> advance Comma 1
        | '.' -> advance Dot 1
        | '|' -> advance Pipe 1
        | '$' -> advance Dollar 1
        | '-' -> advance Dash 1
        | '=' -> advance Eq 1
        | '<' -> advance Lt 1
        | '>' -> advance Gt 1
        | '+' -> advance Plus 1
        | '*' -> advance Star 1
        | '/' -> advance Slash 1
        | '%' -> advance Percent 1
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !pos)))
    end
  done;
  push Eof;
  Gopt_util.Vec.to_array toks

let pp_token = function
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "%S" s
  | Lparen -> "(" | Rparen -> ")"
  | Lbracket -> "[" | Rbracket -> "]"
  | Lbrace -> "{" | Rbrace -> "}"
  | Colon -> ":" | Semi -> ";" | Comma -> "," | Dot -> "." | Dotdot -> ".."
  | Pipe -> "|" | Dollar -> "$" | Underscore2 -> "__"
  | Dash -> "-" | Arrow_right -> "->" | Arrow_left -> "<-"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Leq -> "<=" | Gt -> ">" | Geq -> ">="
  | Plus -> "+" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Eof -> "<eof>"
