(** Abstract syntax of the supported Cypher subset (paper §5.2).

    The subset covers the optimization-relevant core of Cypher 9: MATCH /
    OPTIONAL MATCH with ASCII-art path patterns (labels, UnionType labels
    [:A|B], property maps, variable-length relationships), WHERE with scalar
    predicates and [NOT] pattern predicates, WITH/RETURN projections with
    implicit-grouping aggregates, DISTINCT, ORDER BY, LIMIT, and UNION
    [ALL]. *)

type node_pat = {
  n_name : string option;
  n_labels : string list;  (** [] = unlabelled; several = UnionType. *)
  n_props : (string * Gopt_graph.Value.t) list;  (** [{key: value}] sugar. *)
}

type rel_dir = R_out | R_in | R_both

type rel_pat = {
  r_name : string option;
  r_types : string list;
  r_dir : rel_dir;
  r_hops : (int * int) option;  (** [*], [*n], [*n..m] *)
  r_props : (string * Gopt_graph.Value.t) list;
}

type path_pat = { head : node_pat; tail : (rel_pat * node_pat) list }

type proj_item = {
  item : item_kind;
  alias : string option;  (** [AS name] *)
}

and item_kind =
  | Scalar of Gopt_pattern.Expr.t
  | Agg of Gopt_gir.Logical.agg_fn * bool * Gopt_pattern.Expr.t option
      (** function, DISTINCT flag, argument ([None] = count-star). *)

type projection = {
  distinct : bool;
  items : proj_item list;
  order_by : (Gopt_pattern.Expr.t * Gopt_gir.Logical.sort_dir) list;
  skip : int option;
  limit : int option;
  where : Gopt_pattern.Expr.t option;  (** [WITH ... WHERE] post-filter. *)
}

type where_conjunct =
  | Wc_expr of Gopt_pattern.Expr.t
  | Wc_pattern of bool * path_pat list
      (** Pattern predicate; the bool is [true] for EXISTS-style (semi) and
          [false] for [NOT (...)] (anti). *)

type clause =
  | C_match of { optional : bool; paths : path_pat list; where : where_conjunct list }
  | C_unwind of Gopt_pattern.Expr.t * string  (** [UNWIND expr AS name] *)
  | C_with of projection
  | C_return of projection

type single_query = clause list

type query = { parts : single_query list; union_all : bool }
