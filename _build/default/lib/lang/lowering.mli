(** Lowering of Cypher ASTs into the unified GIR (the GraphIrBuilder role of
    paper §5.2, Fig. 3(c)).

    Conventions mirroring Cypher semantics:
    - anonymous nodes/relationships receive fresh ["@v1"]/["@e1"] aliases;
    - node reuse within a MATCH unifies pattern vertices; reuse across
      clauses becomes an equi-join on the shared tag (which JoinToPattern
      later fuses when possible);
    - each MATCH with two or more relationships is wrapped in ALL_DISTINCT,
      converting homomorphism matching to Cypher's no-repeated-edge
      semantics (paper Remark 3.1); variable-length relationships use Trail
      path semantics;
    - WITH/RETURN projections with aggregates group implicitly on their
      scalar items;
    - UNION deduplicates; UNION ALL concatenates;
    - WHERE pattern predicates ([EXISTS (...)], [NOT (...)]) become
      semi/anti joins. *)

exception Lowering_error of string

val cypher :
  ?edge_distinct:bool -> Gopt_graph.Schema.t -> Cypher_ast.query -> Gopt_gir.Logical.t
(** [edge_distinct] (default [true]) controls the ALL_DISTINCT wrapping;
    disable it for pure homomorphism semantics. Raises {!Lowering_error} on
    unknown labels/types or unsupported constructs. *)

val build_pattern :
  Gopt_graph.Schema.t ->
  fresh:(string -> string) ->
  Cypher_ast.path_pat list ->
  Gopt_pattern.Pattern.t
(** Build one pattern graph from path patterns (exposed for the Gremlin
    frontend and for tests). [fresh] generates aliases for anonymous
    elements. *)
