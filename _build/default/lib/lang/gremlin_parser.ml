module L = Lexer
module Schema = Gopt_graph.Schema
module Value = Gopt_graph.Value
module Pattern = Gopt_pattern.Pattern
module Tc = Gopt_pattern.Type_constraint
module Expr = Gopt_pattern.Expr
module Logical = Gopt_gir.Logical

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- generic method-chain parsing ---------------------------------------- *)

type call = { fn : string; args : arg list }

and arg =
  | A_val of Value.t
  | A_chain of call list  (** an anonymous [__....] traversal *)
  | A_pred of string * arg list  (** [eq('a')], [within(1, 2)], ... *)

type pstate = { toks : L.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s, found %s" what (L.pp_token (peek st))

let ident st =
  match peek st with
  | L.Ident s ->
    advance st;
    s
  | t -> fail "expected identifier, found %s" (L.pp_token t)

let rec parse_chain st =
  (* leading source: 'g' or '__' *)
  (match peek st with
  | L.Ident "g" -> advance st
  | L.Underscore2 -> advance st
  | t -> fail "traversal must start with g or __, found %s" (L.pp_token t));
  let calls = ref [] in
  while peek st = L.Dot do
    advance st;
    let fn = ident st in
    expect st L.Lparen "(";
    let args = ref [] in
    if peek st <> L.Rparen then begin
      args := [ parse_arg st ];
      while peek st = L.Comma do
        advance st;
        args := parse_arg st :: !args
      done
    end;
    expect st L.Rparen ")";
    calls := { fn; args = List.rev !args } :: !calls
  done;
  List.rev !calls

and parse_arg st =
  match peek st with
  | L.Str_lit s ->
    advance st;
    A_val (Value.Str s)
  | L.Int_lit n ->
    advance st;
    A_val (Value.Int n)
  | L.Float_lit f ->
    advance st;
    A_val (Value.Float f)
  | L.Ident ("true" | "false") ->
    let b = peek st = L.Ident "true" in
    advance st;
    A_val (Value.Bool b)
  | L.Underscore2 -> A_chain (parse_chain st)
  | L.Ident name -> begin
    (* predicate call such as eq('a'), within(1,2), P.gt(3), Order.asc *)
    advance st;
    match peek st with
    | L.Dot ->
      (* qualified: P.gt(3), Order.asc *)
      advance st;
      let sub = ident st in
      if peek st = L.Lparen then begin
        advance st;
        let args = ref [] in
        if peek st <> L.Rparen then begin
          args := [ parse_arg st ];
          while peek st = L.Comma do
            advance st;
            args := parse_arg st :: !args
          done
        end;
        expect st L.Rparen ")";
        A_pred (sub, List.rev !args)
      end
      else A_pred (sub, [])
    | L.Lparen ->
      advance st;
      let args = ref [] in
      if peek st <> L.Rparen then begin
        args := [ parse_arg st ];
        while peek st = L.Comma do
          advance st;
          args := parse_arg st :: !args
        done
      end;
      expect st L.Rparen ")";
      A_pred (name, List.rev !args)
    | _ -> A_pred (name, [])
  end
  | t -> fail "unexpected argument token %s" (L.pp_token t)

(* --- pattern construction state ------------------------------------------ *)

type pvertex = {
  mutable alias : string;
  mutable con : Tc.t;
  mutable pred : Expr.t option;
  mutable merged_into : int option;
}

type pedge = {
  pe_alias : string;
  mutable pe_src : int;
  mutable pe_dst : int;
  pe_con : Tc.t;
  pe_directed : bool;
  pe_flip : bool;  (** [in()]: traversal goes against the stored direction *)
  pe_hops : (int * int) option;
}

type builder = {
  schema : Schema.t;
  mutable counter : int;
  verts : pvertex Gopt_util.Vec.t;
  edges : pedge Gopt_util.Vec.t;
  mutable cur : int;
}

let fresh b prefix =
  b.counter <- b.counter + 1;
  Printf.sprintf "@%s%d" prefix b.counter

let rec resolve b i =
  match (Gopt_util.Vec.get b.verts i).merged_into with
  | Some j -> resolve b j
  | None -> i

let new_vertex b =
  let i = Gopt_util.Vec.length b.verts in
  Gopt_util.Vec.push b.verts
    { alias = fresh b "v"; con = Tc.All; pred = None; merged_into = None };
  i

let cur_vertex b = Gopt_util.Vec.get b.verts (resolve b b.cur)

let vertex_by_alias b a =
  let found = ref None in
  Gopt_util.Vec.iteri
    (fun i v -> if v.merged_into = None && v.alias = a then found := Some i)
    b.verts;
  !found

let str_arg = function
  | A_val (Value.Str s) -> s
  | _ -> fail "expected a string argument"

let strs args = List.map str_arg args

let resolve_vcon b labels =
  let ids =
    List.map
      (fun l ->
        match Schema.find_vtype b.schema l with
        | Some i -> i
        | None -> fail "unknown vertex label %S" l)
      labels
  in
  match Tc.of_list ~universe:(Schema.n_vtypes b.schema) ids with
  | Some c -> c
  | None -> fail "empty label set"

let resolve_econ b labels =
  if labels = [] then Tc.All
  else begin
    let ids =
      List.map
        (fun l ->
          match Schema.find_etype b.schema l with
          | Some i -> i
          | None -> fail "unknown edge label %S" l)
        labels
    in
    match Tc.of_list ~universe:(Schema.n_etypes b.schema) ids with
    | Some c -> c
    | None -> fail "empty edge label set"
  end

let conj_opt a b = match a, b with None, x | x, None -> x | Some p, Some q -> Some (Expr.Binop (Expr.And, p, q))

let constrain_cur b labels =
  let v = cur_vertex b in
  let con = resolve_vcon b labels in
  match Tc.inter ~universe:(Schema.n_vtypes b.schema) v.con con with
  | Some c -> v.con <- c
  | None -> fail "contradictory labels on %s" v.alias

let add_has b key pred_arg =
  let v = cur_vertex b in
  let prop = Expr.Prop (v.alias, key) in
  let p =
    match pred_arg with
    | A_val value -> Expr.Binop (Expr.Eq, prop, Expr.Const value)
    | A_pred ("eq", [ A_val value ]) -> Expr.Binop (Expr.Eq, prop, Expr.Const value)
    | A_pred ("neq", [ A_val value ]) -> Expr.Binop (Expr.Neq, prop, Expr.Const value)
    | A_pred ("gt", [ A_val value ]) -> Expr.Binop (Expr.Gt, prop, Expr.Const value)
    | A_pred ("lt", [ A_val value ]) -> Expr.Binop (Expr.Lt, prop, Expr.Const value)
    | A_pred ("gte", [ A_val value ]) -> Expr.Binop (Expr.Geq, prop, Expr.Const value)
    | A_pred ("lte", [ A_val value ]) -> Expr.Binop (Expr.Leq, prop, Expr.Const value)
    | A_pred ("within", vs) ->
      Expr.In_list (prop, List.map (function A_val v -> v | _ -> fail "within expects literals") vs)
    | _ -> fail "unsupported has() predicate"
  in
  v.pred <- conj_opt v.pred (Some p)

let add_edge b dir labels hops =
  let con = resolve_econ b labels in
  let nv = new_vertex b in
  let cur = resolve b b.cur in
  let directed, flip, src, dst =
    match dir with
    | `Out -> (true, false, cur, nv)
    | `In -> (true, true, nv, cur)
    | `Both -> (false, false, cur, nv)
  in
  Gopt_util.Vec.push b.edges
    {
      pe_alias = fresh b "e";
      pe_src = src;
      pe_dst = dst;
      pe_con = con;
      pe_directed = directed;
      pe_flip = flip;
      pe_hops = hops;
    };
  b.cur <- nv

let unify b target_alias =
  match vertex_by_alias b target_alias with
  | None -> fail "where(eq(%S)): unknown tag" target_alias
  | Some target ->
    let cur = resolve b b.cur in
    if cur <> target then begin
      let cv = Gopt_util.Vec.get b.verts cur in
      let tv = Gopt_util.Vec.get b.verts target in
      (match Tc.inter ~universe:(Schema.n_vtypes b.schema) cv.con tv.con with
      | Some c -> tv.con <- c
      | None -> fail "contradictory labels when unifying %s with %s" cv.alias tv.alias);
      tv.pred <-
        conj_opt tv.pred
          (Option.map
             (Expr.rename_tags (fun t -> if t = cv.alias then tv.alias else t))
             cv.pred);
      cv.merged_into <- Some target;
      b.cur <- target
    end

let finalize b =
  let live = ref [] in
  Gopt_util.Vec.iteri (fun i v -> if v.merged_into = None then live := i :: !live) b.verts;
  let live = List.rev !live in
  let remap = Hashtbl.create 16 in
  List.iteri (fun new_i old_i -> Hashtbl.add remap old_i new_i) live;
  let vs =
    Array.of_list
      (List.map
         (fun i ->
           let v = Gopt_util.Vec.get b.verts i in
           Pattern.mk_vertex ?pred:v.pred ~alias:v.alias v.con)
         live)
  in
  let es =
    Array.of_list
      (List.map
         (fun (e : pedge) ->
           let src = Hashtbl.find remap (resolve b e.pe_src) in
           let dst = Hashtbl.find remap (resolve b e.pe_dst) in
           Pattern.mk_edge ~directed:e.pe_directed ?hops:e.pe_hops
             ~path:(if e.pe_hops = None then Pattern.Arbitrary else Pattern.Trail)
             ~alias:e.pe_alias ~src ~dst e.pe_con)
         (Gopt_util.Vec.to_list b.edges))
  in
  Pattern.create vs es

let clone_builder b =
  let verts = Gopt_util.Vec.create () in
  Gopt_util.Vec.iter
    (fun v -> Gopt_util.Vec.push verts { v with alias = v.alias })
    b.verts;
  let edges = Gopt_util.Vec.create () in
  Gopt_util.Vec.iter (fun (e : pedge) -> Gopt_util.Vec.push edges { e with pe_src = e.pe_src }) b.edges;
  { schema = b.schema; counter = b.counter; verts; edges; cur = b.cur }

(* --- lowering -------------------------------------------------------------- *)

let hops_of_times calls =
  (* repeat(__.out('X')).times(k) *)
  match calls with
  | [ { fn = "out" | "in" | "both"; _ } ] -> ()
  | _ -> fail "repeat() supports a single out/in/both step"

let apply_pattern_call b (c : call) =
  match c.fn, c.args with
  | "V", [] -> b.cur <- new_vertex b
  | "hasLabel", args -> constrain_cur b (strs args)
  | "has", [ A_val (Value.Str key); arg ] -> add_has b key arg
  | "out", args -> add_edge b `Out (strs args) None
  | ("in" | "in_"), args -> add_edge b `In (strs args) None
  | "both", args -> add_edge b `Both (strs args) None
  | "as", [ A_val (Value.Str a) ] -> (cur_vertex b).alias <- a
  | "select", [ A_val (Value.Str a) ] -> begin
    (* mid-pattern select: jump the traverser back to a tagged vertex *)
    match vertex_by_alias b a with
    | Some i -> b.cur <- i
    | None -> fail "select(%S): unknown tag" a
  end
  | "where", [ A_pred ("eq", [ A_val (Value.Str tag) ]) ] -> unify b tag
  | "where", [ A_pred ("neq", [ A_val (Value.Str tag) ]) ] ->
    let v = cur_vertex b in
    v.pred <- conj_opt v.pred (Some (Expr.Binop (Expr.Neq, Expr.Var v.alias, Expr.Var tag)))
  | "repeat", [ A_chain sub ] -> begin
    hops_of_times sub;
    match sub with
    | [ { fn; args } ] ->
      let dir = match fn with "out" -> `Out | "in" | "in_" -> `In | _ -> `Both in
      (* times(k) must follow; recorded by the caller *)
      add_edge b dir (strs args) (Some (1, 1))
    | _ -> assert false
  end
  | "times", [ A_val (Value.Int k) ] -> begin
    (* fix up the hops of the edge just added by repeat() *)
    let n = Gopt_util.Vec.length b.edges in
    if n = 0 then fail "times() without repeat()";
    let e = Gopt_util.Vec.get b.edges (n - 1) in
    match e.pe_hops with
    | Some (1, 1) ->
      Gopt_util.Vec.set b.edges (n - 1)
        { e with pe_hops = (if k = 1 then None else Some (k, k)) }
    | _ -> fail "times() without repeat()"
  end
  | fn, _ -> fail "unsupported pattern step %s()" fn

let is_pattern_step c =
  match c.fn with
  | "V" | "hasLabel" | "has" | "out" | "in" | "in_" | "both" | "as" | "where" | "repeat"
  | "times" -> true
  | _ -> false

let parse schema src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let calls = parse_chain st in
  if peek st <> L.Eof then fail "trailing input: %s" (L.pp_token (peek st));
  let b = { schema; counter = 0; verts = Gopt_util.Vec.create (); edges = Gopt_util.Vec.create (); cur = -1 } in
  (* split pattern prefix from relational suffix; a single-tag select() is a
     pattern jump only when followed by another pattern step *)
  let rec split acc = function
    | c :: rest when is_pattern_step c -> split (c :: acc) rest
    | ({ fn = "select"; args = [ A_val (Value.Str _) ] } as c) :: (next :: _ as rest)
      when is_pattern_step next ->
      split (c :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let pattern_calls, suffix = split [] calls in
  if pattern_calls = [] then fail "traversal must start with V()";
  List.iter (apply_pattern_call b) pattern_calls;
  (* union over pattern branches? *)
  let plan, cur_field =
    match suffix with
    | { fn = "union"; args } :: _ ->
      let branches =
        List.map
          (function
            | A_chain sub ->
              let b' = clone_builder b in
              List.iter
                (fun c ->
                  if is_pattern_step c && c.fn <> "V" then apply_pattern_call b' c
                  else fail "union branches support pattern steps only")
                sub;
              b'
            | _ -> fail "union expects anonymous traversals")
          args
      in
      (match branches with
      | [] | [ _ ] -> fail "union needs at least two branches"
      | first :: rest ->
        (* common projection: named tags present in every branch, plus the
           branch endpoint as @union *)
        let named b' =
          let acc = ref [] in
          Gopt_util.Vec.iter
            (fun v ->
              if v.merged_into = None && String.length v.alias > 0 && v.alias.[0] <> '@' then
                acc := v.alias :: !acc)
            b'.verts;
          List.rev !acc
        in
        let common =
          List.fold_left
            (fun acc b' -> List.filter (fun a -> List.mem a (named b')) acc)
            (named first) rest
        in
        let branch_plan b' =
          let endp = (cur_vertex b').alias in
          let p = finalize b' in
          Logical.Project
            ( Logical.Match p,
              List.map (fun a -> (Expr.Var a, a)) common @ [ (Expr.Var endp, "@union") ] )
        in
        let plans = List.map branch_plan branches in
        ( List.fold_left (fun acc p -> Logical.Union (acc, p)) (List.hd plans) (List.tl plans),
          "@union" ))
    | _ ->
      let endp = (cur_vertex b).alias in
      (Logical.Match (finalize b), endp)
  in
  let suffix = match suffix with { fn = "union"; _ } :: rest -> rest | s -> s in
  (* relational tail *)
  let apply plan (c : call) =
    match c.fn, c.args with
    | "count", [] ->
      Logical.Group (plan, [], [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "count" } ])
    | "values", [ A_val (Value.Str key) ] ->
      Logical.Project (plan, [ (Expr.Prop (cur_field, key), Printf.sprintf "values(%s)" key) ])
    | "select", args ->
      let tags = strs args in
      Logical.Project (plan, List.map (fun t -> (Expr.Var t, t)) tags)
    | "by", [ A_val (Value.Str key) ] -> begin
      (* modulate the previous select/order/group: replace a tag key with a
         property access on it *)
      match plan with
      | Logical.Project (inner, [ (Expr.Var t, a) ]) ->
        Logical.Project (inner, [ (Expr.Prop (t, key), a) ])
      | Logical.Order (inner, [ (Expr.Var t, dir) ], lim) ->
        Logical.Order (inner, [ (Expr.Prop (t, key), dir) ], lim)
      | Logical.Group (inner, [ (Expr.Var t, a) ], aggs) ->
        Logical.Group (inner, [ (Expr.Prop (t, key), a) ], aggs)
      | _ -> fail "by() in an unsupported position"
    end
    | "by", [ A_pred ("count", []) ] -> begin
      (* group().by(key).by(count): replace the collect value with a count *)
      match plan with
      | Logical.Group (inner, keys, [ { Logical.agg_fn = Logical.Collect; _ } ]) ->
        Logical.Group
          (inner, keys, [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "value" } ])
      | _ -> fail "by(count) in an unsupported position"
    end
    | "by", [ A_chain [ { fn = "count"; args = [] } ] ] -> begin
      match plan with
      | Logical.Group (inner, keys, [ { Logical.agg_fn = Logical.Collect; _ } ]) ->
        Logical.Group
          (inner, keys, [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "value" } ])
      | _ -> fail "by(__.count()) in an unsupported position"
    end
    | "groupCount", [] ->
      (* keyed by the current traverser; a following by('prop') refines it *)
      Logical.Group
        ( plan,
          [ (Expr.Var cur_field, "key") ],
          [ { Logical.agg_fn = Logical.Count; agg_arg = None; agg_alias = "count" } ] )
    | "group", [] ->
      Logical.Group
        ( plan,
          [ (Expr.Var cur_field, "key") ],
          [ { Logical.agg_fn = Logical.Collect; agg_arg = Some (Expr.Var cur_field); agg_alias = "value" } ] )
    | "order", [] -> Logical.Order (plan, [ (Expr.Var cur_field, Logical.Asc) ], None)
    | "dedup", [] -> Logical.Dedup (plan, [])
    | "dedup", args -> Logical.Dedup (plan, strs args)
    | "limit", [ A_val (Value.Int n) ] -> Logical.Limit (plan, n)
    | fn, _ -> fail "unsupported step %s()" fn
  in
  List.fold_left apply plan suffix
