type node_pat = {
  n_name : string option;
  n_labels : string list;
  n_props : (string * Gopt_graph.Value.t) list;
}

type rel_dir = R_out | R_in | R_both

type rel_pat = {
  r_name : string option;
  r_types : string list;
  r_dir : rel_dir;
  r_hops : (int * int) option;
  r_props : (string * Gopt_graph.Value.t) list;
}

type path_pat = { head : node_pat; tail : (rel_pat * node_pat) list }

type proj_item = {
  item : item_kind;
  alias : string option;
}

and item_kind =
  | Scalar of Gopt_pattern.Expr.t
  | Agg of Gopt_gir.Logical.agg_fn * bool * Gopt_pattern.Expr.t option

type projection = {
  distinct : bool;
  items : proj_item list;
  order_by : (Gopt_pattern.Expr.t * Gopt_gir.Logical.sort_dir) list;
  skip : int option;
  limit : int option;
  where : Gopt_pattern.Expr.t option;
}

type where_conjunct =
  | Wc_expr of Gopt_pattern.Expr.t
  | Wc_pattern of bool * path_pat list

type clause =
  | C_match of { optional : bool; paths : path_pat list; where : where_conjunct list }
  | C_unwind of Gopt_pattern.Expr.t * string
  | C_with of projection
  | C_return of projection

type single_query = clause list

type query = { parts : single_query list; union_all : bool }
