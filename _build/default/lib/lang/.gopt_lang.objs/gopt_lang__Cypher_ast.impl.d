lib/lang/cypher_ast.ml: Gopt_gir Gopt_graph Gopt_pattern
