lib/lang/lexer.ml: Buffer Gopt_util Printf String
