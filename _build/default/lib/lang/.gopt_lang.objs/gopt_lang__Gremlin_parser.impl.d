lib/lang/gremlin_parser.ml: Array Gopt_gir Gopt_graph Gopt_pattern Gopt_util Hashtbl Lexer List Option Printf String
