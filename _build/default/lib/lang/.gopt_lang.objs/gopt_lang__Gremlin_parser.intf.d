lib/lang/gremlin_parser.mli: Gopt_gir Gopt_graph
