lib/lang/cypher_parser.ml: Array Cypher_ast Gopt_gir Gopt_graph Gopt_pattern Lexer List Option Printf String
