lib/lang/lexer.mli:
