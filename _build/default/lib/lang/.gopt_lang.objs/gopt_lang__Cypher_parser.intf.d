lib/lang/cypher_parser.mli: Cypher_ast Gopt_graph Gopt_pattern
