lib/lang/lowering.ml: Array Cypher_ast Gopt_gir Gopt_graph Gopt_pattern Gopt_util Hashtbl List Printf
