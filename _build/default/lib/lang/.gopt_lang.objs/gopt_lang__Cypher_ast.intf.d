lib/lang/cypher_ast.mli: Gopt_gir Gopt_graph Gopt_pattern
