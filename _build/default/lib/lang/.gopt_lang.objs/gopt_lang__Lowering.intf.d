lib/lang/lowering.mli: Cypher_ast Gopt_gir Gopt_graph Gopt_pattern
