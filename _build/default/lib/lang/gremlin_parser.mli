(** Gremlin frontend: parser and lowering for a traversal subset
    (paper §5.2, Fig. 3(b)).

    Supported steps: [g.V()], [hasLabel], [has] (with [eq]/[neq]/[gt]/[lt]/
    [gte]/[lte]/[within] predicates or a literal), [out]/[in]/[both] (with
    edge labels), [as], [where(eq('tag'))] / [where(neq('tag'))] for cycle
    closure, [repeat(__.out(...)).times(k)] for fixed-length paths,
    [union(__.  ..., __. ...)] over pattern branches, and the relational
    tail steps [select] (with optional [by('prop')]), [values], [count],
    [dedup], [order().by(...)], [limit].

    Traversals lower to the same GIR as Cypher — the point of the unified
    IR. Gremlin matching is homomorphic (traversers may revisit edges), so
    no ALL_DISTINCT is inserted. *)

exception Parse_error of string

val parse : Gopt_graph.Schema.t -> string -> Gopt_gir.Logical.t
(** Parse and lower a traversal. Raises {!Parse_error} (or
    {!Lexer.Lex_error}) on malformed or unsupported input. *)
